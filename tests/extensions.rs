//! Integration tests of the extension features: temporal tiling,
//! periodic boundaries, pluggable halo backends, variable-coefficient
//! stencils, convergence driving, and the textual DSL — all composed
//! through the public facade.

use msc::core::schedule::{ExecPlan, Schedule};
use msc::prelude::*;
use proptest::prelude::*;

fn single_dep_program(ndim: usize, grid: &[usize], radius: usize, steps: usize) -> StencilProgram {
    let kernel = Kernel::star_normalized("k", ndim, radius);
    let mut b = StencilProgram::builder("ext")
        .kernel(kernel)
        .combine(&[(1, 1.0, "k")])
        .timesteps(steps);
    b = match ndim {
        2 => b.grid_2d("B", DType::F64, [grid[0], grid[1]], radius, 2),
        _ => b.grid_3d("B", DType::F64, [grid[0], grid[1], grid[2]], radius, 2),
    };
    b.build().unwrap()
}

fn plan_for(ndim: usize, grid: &[usize], tile: &[usize], threads: usize) -> ExecPlan {
    let mut s = Schedule::default();
    s.tile(tile);
    s.parallel("xo", threads);
    ExecPlan::lower(&s, ndim, grid).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Temporal tiling of any depth is bit-identical to step-by-step
    /// execution for arbitrary shapes and tile splits.
    #[test]
    fn temporal_tiling_equivalence(
        radius in 1usize..=2,
        steps in 1usize..=9,
        tt in 1usize..=5,
        tile_div in 2usize..=4,
        seed in 0u64..500,
    ) {
        let n = 8 * radius + 10;
        let grid = vec![n, n];
        let p = single_dep_program(2, &grid, radius, steps);
        let init: Grid<f64> = Grid::random(&grid, &p.grid.halo, seed);
        let (reference, _) = run_program(&p, &Executor::Reference, &init).unwrap();
        let plan = plan_for(2, &grid, &[n / tile_div, n / 2], 3);
        let (out, stats) =
            msc::exec::run_temporal_tiled(&p, &plan, tt, &init).unwrap();
        prop_assert_eq!(reference.as_slice(), out.as_slice());
        prop_assert_eq!(stats.steps, steps);
        prop_assert!(stats.redundancy >= 1.0 - 1e-12);
    }

    /// Periodic runs keep the interior mean exactly invariant for
    /// averaging stencils (discrete conservation on the torus).
    #[test]
    fn periodic_conservation(
        radius in 1usize..=2,
        steps in 1usize..=6,
        seed in 0u64..500,
    ) {
        let n = 6 * radius + 8;
        let p = single_dep_program(2, &[n, n], radius, steps);
        let init: Grid<f64> = Grid::random(&[n, n], &p.grid.halo, seed);
        let mut seeded = init.clone();
        msc::exec::boundary::apply(&mut seeded, Boundary::Periodic);
        let before = seeded.interior_sum();
        let (out, _) =
            run_program_bc(&p, &Executor::Reference, &init, Boundary::Periodic).unwrap();
        let after = out.interior_sum();
        prop_assert!((before - after).abs() / before.abs().max(1.0) < 1e-10);
    }

    /// Variable-coefficient sweeps with constant coefficient grids agree
    /// with the fixed-coefficient path.
    #[test]
    fn varcoeff_reduces_to_const(
        kval in 0.01f64..0.24,
        seed in 0u64..500,
    ) {
        use msc::exec::CompiledVarStencil;
        let n = 14usize;
        let expr = Expr::at("B", &[0, 0])
            + Expr::at("K", &[0, 0])
                * (Expr::at("B", &[-1, 0]) + Expr::at("B", &[1, 0])
                    + Expr::at("B", &[0, -1]) + Expr::at("B", &[0, 1])
                    - 4.0 * Expr::at("B", &[0, 0]));
        let u: Grid<f64> = Grid::random(&[n, n], &[1, 1], seed);
        let k: Grid<f64> = Grid::from_fn(&[n, n], &[1, 1], |_| kval);
        let var = CompiledVarStencil::<f64>::compile(&expr, "B", &u.layout()).unwrap();
        let mut got = u.clone();
        var.step_reference(&u, &[&k], &mut got);

        // The same stencil with the constant baked in.
        let const_expr = Expr::c(1.0 - 4.0 * kval) * Expr::at("B", &[0, 0])
            + kval * Expr::at("B", &[-1, 0])
            + kval * Expr::at("B", &[1, 0])
            + kval * Expr::at("B", &[0, -1])
            + kval * Expr::at("B", &[0, 1]);
        let cvar = CompiledVarStencil::<f64>::compile(&const_expr, "B", &u.layout()).unwrap();
        let mut want = u.clone();
        cvar.step_reference(&u, &[], &mut want);
        prop_assert!(msc::prelude::max_rel_error(&got, &want) < 1e-13);
    }
}

#[test]
fn dsl_roundtrip_executes_like_builder() {
    // The same stencil through the textual DSL and the builder API must
    // produce bitwise-identical runs.
    let src = r#"
        stencil roundtrip {
            grid B: f64[20, 20] halo 1 window 3;
            kernel S = 0.5*B[0,0] + 0.125*B[-1,0] + 0.125*B[1,0]
                     + 0.125*B[0,-1] + 0.125*B[0,1];
            combine r[t] = 0.6*S[t-1] + 0.4*S[t-2];
            run 5;
        }
    "#;
    let parsed = msc::core::parse::parse(src).unwrap().program;
    let built = StencilProgram::builder("roundtrip")
        .grid_2d("B", DType::F64, [20, 20], 1, 3)
        .kernel(Kernel::star_normalized("S", 2, 1))
        .combine(&[(1, 0.6, "S"), (2, 0.4, "S")])
        .timesteps(5)
        .build()
        .unwrap();
    let init: Grid<f64> = Grid::random(&[20, 20], &[1, 1], 33);
    let (a, _) = run_program(&parsed, &Executor::Reference, &init).unwrap();
    let (b, _) = run_program(&built, &Executor::Reference, &init).unwrap();
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn streamed_schedule_round_trips_through_dsl_and_simulator() {
    let src = r#"
        stencil streamed {
            grid B: f64[256, 256] halo 1 window 2;
            kernel S = 0.5*B[0,0] + 0.125*B[-1,0] + 0.125*B[1,0]
                     + 0.125*B[0,-1] + 0.125*B[0,1];
            schedule { tile 16 64; reorder xo yo xi yi; parallel xo 64; spm yo; stream; tile_time 2; }
            run 4;
            target sunway;
        }
    "#;
    let parsed = msc::core::parse::parse(src).unwrap();
    let sched = &parsed.program.stencil.kernels[0].schedule;
    assert!(sched.double_buffer);
    assert_eq!(sched.time_tile, 2);
    let plan = ExecPlan::lower(sched, 2, &parsed.program.grid.shape).unwrap();
    assert!(plan.double_buffer);
    assert_eq!(plan.time_tile, 2);
}

#[test]
fn convergence_and_temporal_tiling_compose() {
    // A diffusion program run to convergence by plain stepping matches
    // the temporally tiled result at the same step count.
    let p = single_dep_program(2, &[22, 22], 1, 40);
    let init: Grid<f64> = Grid::random(&[22, 22], &[1, 1], 2);
    let (plain, _) = run_program(&p, &Executor::Reference, &init).unwrap();
    let plan = plan_for(2, &[22, 22], &[11, 11], 2);
    let (tiled, stats) = msc::exec::run_temporal_tiled(&p, &plan, 5, &init).unwrap();
    assert_eq!(plain.as_slice(), tiled.as_slice());
    assert_eq!(stats.blocks, 8);
}
