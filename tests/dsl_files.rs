//! Every `.msc` file shipped under `examples/dsl/` must parse, validate,
//! lower, execute (scaled down), and generate code for its target.

use msc::core::parse::parse;
use msc::core::schedule::ExecPlan;
use msc::prelude::*;

fn dsl_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/dsl");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/dsl exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "msc"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .msc examples found");
    files
}

#[test]
fn all_dsl_examples_parse_and_validate() {
    for f in dsl_files() {
        let src = std::fs::read_to_string(&f).unwrap();
        let parsed = parse(&src).unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        let p = &parsed.program;
        assert!(p.timesteps >= 1, "{}", f.display());
        assert!(!p.stencil.kernels.is_empty());
        // The declared schedule must lower against the declared grid.
        for k in &p.stencil.kernels {
            ExecPlan::lower(&k.schedule, k.ndim, &p.grid.shape)
                .unwrap_or_else(|e| panic!("{}: schedule illegal: {e}", f.display()));
        }
    }
}

#[test]
fn all_dsl_examples_generate_code_for_their_target() {
    for f in dsl_files() {
        let src = std::fs::read_to_string(&f).unwrap();
        let parsed = parse(&src).unwrap();
        let target = parsed.target.unwrap_or(Target::Cpu);
        let pkg = compile_to_source(&parsed.program, target)
            .unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        assert!(pkg.total_loc() > 20, "{}", f.display());
    }
}

#[test]
fn all_dsl_examples_execute_and_verify_scaled_down() {
    for f in dsl_files() {
        let src = std::fs::read_to_string(&f).unwrap();
        let parsed = parse(&src).unwrap();
        let mut p = parsed.program;
        // Scale the grid down so the test stays fast, respecting the
        // stencil reach and the declared tile divisibility loosely.
        let reach = p.stencil.reach();
        let small: Vec<usize> = p
            .grid
            .shape
            .iter()
            .zip(&reach)
            .map(|(_, &r)| (8 * (r + 1)).max(16))
            .collect();
        p.grid.shape = small.clone();
        p.timesteps = 3;
        p.mpi_grid = None;
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 7);
        let (a, _) = run_program(&p, &Executor::Reference, &init)
            .unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        // Tiled run with a clamped version of the declared schedule.
        let mut sched = p.stencil.kernels[0].schedule.clone();
        let tile: Vec<usize> = small.iter().map(|&g| (g / 2).max(1)).collect();
        sched.tile(&tile);
        sched.cache_read = None;
        sched.cache_write = None;
        sched.compute_at.clear();
        sched.double_buffer = false;
        let plan = ExecPlan::lower(&sched, p.grid.ndim(), &p.grid.shape).unwrap();
        let (b, _) = run_program(&p, &Executor::Tiled(plan), &init).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "{}", f.display());
    }
}
