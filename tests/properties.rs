//! Property-based tests over the core invariants: arbitrary stencil
//! shapes, grids, tiles, thread counts and process grids.

use msc::comm::{CartDecomp, Region};
use msc::core::catalog::{points_of, Shape};
use msc::core::schedule::{ExecPlan, Schedule};
use msc::prelude::*;
use proptest::prelude::*;

/// Strategy: a random small stencil program (star or box, 2D or 3D).
fn arb_program() -> impl Strategy<Value = StencilProgram> {
    (2usize..=3, 1usize..=3, prop::bool::ANY, 1usize..=4).prop_flat_map(
        |(ndim, radius, boxed, steps)| {
            let grid_dim = 4 * radius + 4..=4 * radius + 14;
            prop::collection::vec(grid_dim, ndim).prop_map(move |grid| {
                let kernel = if boxed && ndim == 2 {
                    Kernel::boxed("k", ndim, radius, 0.5).unwrap()
                } else {
                    Kernel::star_normalized("k", ndim, radius)
                };
                let mut b = StencilProgram::builder("prop").kernel(kernel).combine(&[
                    (1, 0.7, "k"),
                    (2, 0.3, "k"),
                ]);
                b = match ndim {
                    2 => b.grid_2d("B", DType::F64, [grid[0], grid[1]], radius, 3),
                    _ => b.grid_3d("B", DType::F64, [grid[0], grid[1], grid[2]], radius, 3),
                };
                b.timesteps(steps).build().unwrap()
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tiled parallel execution is bit-identical to the serial reference
    /// for any tile shape and thread count.
    #[test]
    fn tiled_equals_reference(
        program in arb_program(),
        tile_frac in 1usize..=3,
        threads in 1usize..=6,
        seed in 0u64..1000,
    ) {
        let grid = program.grid.shape.clone();
        let init: Grid<f64> = Grid::random(&grid, &program.grid.halo, seed);
        let (reference, _) = run_program(&program, &Executor::Reference, &init).unwrap();
        let mut s = Schedule::default();
        let tile: Vec<usize> = grid.iter().map(|&g| (g / (tile_frac + 1)).max(1)).collect();
        s.tile(&tile);
        s.parallel("xo", threads);
        let plan = ExecPlan::lower(&s, grid.len(), &grid).unwrap();
        let (tiled, _) = run_program(&program, &Executor::Tiled(plan), &init).unwrap();
        prop_assert_eq!(reference.as_slice(), tiled.as_slice());
    }

    /// SPM-staged execution is bit-identical too, and its DMA get traffic
    /// is exactly (terms × tile+halo volume) summed over tiles.
    #[test]
    fn spm_equals_reference(
        program in arb_program(),
        seed in 0u64..1000,
    ) {
        let grid = program.grid.shape.clone();
        let init: Grid<f64> = Grid::random(&grid, &program.grid.halo, seed);
        let (reference, _) = run_program(&program, &Executor::Reference, &init).unwrap();
        let mut s = Schedule::default();
        let tile: Vec<usize> = grid.iter().map(|&g| (g / 2).max(1)).collect();
        s.tile(&tile);
        s.parallel("xo", 3);
        let plan = ExecPlan::lower(&s, grid.len(), &grid).unwrap();
        let (spm, _) = run_program(
            &program,
            &Executor::Spm { plan, spm_capacity: 1 << 24 },
            &init,
        ).unwrap();
        prop_assert_eq!(reference.as_slice(), spm.as_slice());
    }

    /// The tile set of any legal plan partitions the grid exactly.
    #[test]
    fn tiles_partition_grid(
        ndim in 2usize..=3,
        extent in 4usize..=20,
        tile in 1usize..=7,
    ) {
        let grid = vec![extent; ndim];
        let mut s = Schedule::default();
        s.tile(&vec![tile.min(extent); ndim]);
        let plan = ExecPlan::lower(&s, ndim, &grid).unwrap();
        let tiles = plan.tiles();
        let covered: usize = tiles.iter().map(|t| t.elems()).sum();
        prop_assert_eq!(covered, extent.pow(ndim as u32));
        // Disjointness via coordinate marking.
        let strides: Vec<usize> = (0..ndim)
            .map(|d| grid[d + 1..].iter().product::<usize>())
            .collect();
        let mut seen = vec![false; covered];
        for t in &tiles {
            let mut pos = t.origin.clone();
            loop {
                let lin: usize = pos.iter().zip(&strides).map(|(&p, &s)| p * s).sum();
                prop_assert!(!seen[lin]);
                seen[lin] = true;
                let mut d = ndim;
                let mut done = true;
                while d > 0 {
                    d -= 1;
                    pos[d] += 1;
                    if pos[d] < t.origin[d] + t.extent[d] {
                        done = false;
                        break;
                    }
                    pos[d] = t.origin[d];
                }
                if done {
                    break;
                }
            }
        }
    }

    /// Region pack/unpack round-trips for arbitrary in-bounds regions.
    #[test]
    fn pack_unpack_roundtrip(
        shape in prop::collection::vec(3usize..=10, 2..=3),
        seed in 0u64..100,
    ) {
        let halo = vec![1; shape.len()];
        let g: Grid<f64> = Grid::random(&shape, &halo, seed);
        // A region strictly inside the padded buffer.
        let start: Vec<usize> = shape.iter().map(|_| 1usize).collect();
        let extent: Vec<usize> = shape.iter().map(|&s| s.min(4)).collect();
        let region = Region::new(start, extent);
        let packed = region.pack(&g);
        let mut g2: Grid<f64> = Grid::zeros(&shape, &halo);
        region.unpack(&mut g2, &packed);
        prop_assert_eq!(region.pack(&g2), packed);
    }

    /// Cartesian decomposition covers the global grid without overlap.
    #[test]
    fn decomposition_partitions_domain(
        px in 1usize..=3,
        py in 1usize..=3,
        mult in 2usize..=4,
    ) {
        let global = vec![px * mult * 2, py * mult * 3];
        let d = CartDecomp::new(&global, &[px, py], &[1, 1]).unwrap();
        let sub = d.sub_extent();
        let total: usize = d.n_ranks() * sub.iter().product::<usize>();
        prop_assert_eq!(total, global.iter().product::<usize>());
        // Origins tile the domain.
        let mut seen = std::collections::HashSet::new();
        for r in 0..d.n_ranks() {
            prop_assert!(seen.insert(d.origin_of(r)));
        }
    }

    /// Star/box point-count formulas match the generated kernels.
    #[test]
    fn shape_point_counts(ndim in 2usize..=3, radius in 1usize..=4) {
        let star = Kernel::star_normalized("s", ndim, radius);
        prop_assert_eq!(star.points(), points_of(ndim, radius, Shape::Star));
        if ndim == 2 {
            let boxed = Kernel::boxed("b", ndim, radius, 0.5).unwrap();
            prop_assert_eq!(boxed.points(), points_of(ndim, radius, Shape::Box));
        }
    }

    /// The `.msc` parser never panics: arbitrary garbage and randomly
    /// mutated valid programs must produce `Ok` or a diagnostic `Err`,
    /// never a crash.
    #[test]
    fn parser_never_panics(
        garbage in "[ -~\\n]{0,200}",
        cut in 0usize..400,
        flip in 0usize..400,
    ) {
        use msc::core::parse::parse;
        let _ = parse(&garbage);
        let _ = parse("");
        // Mutate a valid program: truncate at a random point and flip one
        // byte to another printable character.
        let valid = "stencil s {\n  grid B: f64[16, 16] halo 1 window 3;\n  kernel k = 0.5*B[0,0] + 0.5*B[1,0];\n  combine r[t] = 0.6*k[t-1] + 0.4*k[t-2];\n  schedule { tile 4 8; parallel xo 2; }\n  run 3;\n}\n";
        let mut bytes: Vec<u8> = valid.bytes().collect();
        bytes.truncate(cut.min(bytes.len()));
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] = b' ' + ((bytes[i].wrapping_add(13)) % 94);
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse(&mutated);
    }

    /// The message-passing runtime delivers arbitrary tag/order storms
    /// correctly: every rank sends a random multiset of tagged values to
    /// every other rank, receives them in a different random order, and
    /// totals must match.
    #[test]
    fn runtime_survives_message_storms(
        n_ranks in 2usize..=5,
        n_msgs in 1usize..=8,
        seed in 0u64..1000,
    ) {
        use msc::comm::{RankCtx, World};
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let totals: Vec<f64> = World::run(n_ranks, move |mut ctx: RankCtx<f64>| {
            // Deterministic per-rank payloads: value = src*1000 + tag.
            for dst in 0..ctx.n_ranks {
                if dst == ctx.rank {
                    continue;
                }
                for tag in 0..n_msgs as u64 {
                    let v = (ctx.rank * 1000) as f64 + tag as f64;
                    ctx.isend(dst, tag, vec![v]).unwrap();
                }
            }
            // Receive in a rank-specific shuffled order.
            let mut order: Vec<(usize, u64)> = (0..ctx.n_ranks)
                .filter(|&s| s != ctx.rank)
                .flat_map(|s| (0..n_msgs as u64).map(move |t| (s, t)))
                .collect();
            let mut rng = StdRng::seed_from_u64(seed ^ ctx.rank as u64);
            order.shuffle(&mut rng);
            let mut sum = 0.0;
            for (src, tag) in order {
                let req = ctx.irecv(src, tag);
                let v = ctx.wait(req).unwrap()[0];
                // Payload integrity, not just delivery.
                assert_eq!(v, (src * 1000) as f64 + tag as f64);
                sum += v;
            }
            sum
        });
        for (rank, &total) in totals.iter().enumerate() {
            let expect: f64 = (0..n_ranks)
                .filter(|&s| s != rank)
                .flat_map(|s| (0..n_msgs as u64).map(move |t| (s * 1000) as f64 + t as f64))
                .sum();
            prop_assert_eq!(total, expect);
        }
    }

    /// A convex-combination stencil keeps any [0,1]-valued field in
    /// [0,1] for all time (max principle).
    #[test]
    fn convex_stencils_respect_max_principle(
        program in arb_program(),
        seed in 0u64..1000,
    ) {
        let init: Grid<f64> =
            Grid::random(&program.grid.shape, &program.grid.halo, seed);
        let (out, _) = run_program(&program, &Executor::Reference, &init).unwrap();
        let mut ok = true;
        out.for_each_interior(|pos| {
            let v = out.get(pos);
            if !(-1e-12..=1.0 + 1e-12).contains(&v) {
                ok = false;
            }
        });
        prop_assert!(ok);
    }
}
