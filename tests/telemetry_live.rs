//! Live telemetry end to end, in process (DESIGN.md §14): a 2-rank
//! chaos-kill run observed by the metrics sampler must leave behind
//! (a) a well-formed, schema-tagged, seq- and counter-monotone JSONL
//! stream whose tail records the kill-triggered `comm_fault` alert,
//! (b) an OpenMetrics sibling that passes the strict validator, and
//! (c) per-rank rows showing both ranks stepping — while the run itself
//! still heals and verifies bit-identical against the serial reference.

use msc::bench::results::Json;
use msc::comm::{run_distributed_resilient, FaultPlan, RunOptions};
use msc::prelude::*;
use msc::trace::{openmetrics, Sampler, SamplerConfig, TelemetryHub};
use std::sync::Arc;

fn program() -> StencilProgram {
    StencilProgram::builder("live")
        .grid_3d("B", DType::F64, [24, 16, 16], 1, 2)
        .kernel(Kernel::star_normalized("S", 3, 1))
        .timesteps(8)
        .build()
        .unwrap()
}

fn sub_plan(sub: &[usize]) -> msc::core::error::Result<msc::core::schedule::ExecPlan> {
    let mut s = msc::core::schedule::Schedule::default();
    let tile: Vec<usize> = sub.iter().map(|&x| (x / 2).max(1)).collect();
    s.tile(&tile);
    s.parallel("xo", 2);
    msc::core::schedule::ExecPlan::lower(&s, sub.len(), sub)
}

#[test]
fn chaos_kill_run_emits_valid_metrics_and_alert() {
    let dir = std::env::temp_dir().join(format!("msc_telemetry_live_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let jsonl_path = dir.join("metrics.jsonl");

    let hub = TelemetryHub::new();
    hub.set_enabled(true);
    let cfg = SamplerConfig::from_millis(25, &jsonl_path).unwrap();
    let om_path = cfg.openmetrics_path.clone();
    let sampler = Sampler::start(Arc::clone(&hub), cfg).unwrap();

    let p = program();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 42);
    let (reference, _) = run_program(&p, &Executor::Reference, &init).unwrap();

    // Rank 1 is killed at its 3rd exchange; the run restarts from the
    // step-2 checkpoint. The restart path forces a metrics flush, so the
    // stream must carry a comm_fault alert even if the run was shorter
    // than one sampling interval.
    let opts = RunOptions {
        chaos: Some(Arc::new(FaultPlan::new(1).with_kill(1, 3))),
        checkpoint_dir: Some(dir.join("ckpt")),
        checkpoint_every: 2,
        hub: Some(Arc::clone(&hub)),
        ..RunOptions::default()
    };
    let (out, stats) =
        run_distributed_resilient(&p, &[2, 1, 1], &init, Boundary::Dirichlet, &opts, sub_plan)
            .unwrap();
    assert_eq!(
        out.as_slice(),
        reference.as_slice(),
        "healed run must stay bit-identical"
    );
    assert!(stats.restarts > 0, "the kill must actually have fired");

    let summary = sampler.stop();
    assert!(summary.io_error.is_none(), "{:?}", summary.io_error);
    assert!(summary.samples >= 2, "start + final flush at minimum");
    assert!(summary.alerts >= 1, "kill must raise at least one alert");

    // --- JSONL stream: parseable, schema-tagged, monotone. ---
    let body = std::fs::read_to_string(&jsonl_path).unwrap();
    let docs: Vec<Json> = body
        .lines()
        .map(|l| Json::parse(l).expect("every line parses"))
        .collect();
    assert_eq!(docs.len() as u64, summary.samples);
    let mut saw_fault_alert = false;
    let mut prev_counters: Option<Vec<(String, f64)>> = None;
    for (i, doc) in docs.iter().enumerate() {
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(msc::trace::sampler::METRICS_SCHEMA),
            "line {i} schema tag"
        );
        assert_eq!(
            doc.get("seq").and_then(Json::as_f64),
            Some(i as f64),
            "line {i} seq"
        );
        let Some(Json::Obj(counters)) = doc.get("counters") else {
            panic!("line {i}: counters object missing");
        };
        let cur: Vec<(String, f64)> = counters
            .iter()
            .map(|(k, v)| (k.clone(), v.as_f64().unwrap()))
            .collect();
        if let Some(prev) = &prev_counters {
            for ((name, was), (_, now)) in prev.iter().zip(&cur) {
                assert!(
                    now >= was,
                    "line {i}: counter {name} went backwards {was} -> {now}"
                );
            }
        }
        prev_counters = Some(cur);
        if let Some(alerts) = doc.get("alerts").and_then(Json::as_arr) {
            for a in alerts {
                if a.get("kind").and_then(Json::as_str) == Some("comm_fault") {
                    saw_fault_alert = true;
                }
            }
        }
    }
    assert!(
        saw_fault_alert,
        "no comm_fault alert in the stream:\n{body}"
    );

    // --- Final per-rank rows: both ranks finished all 8 steps. ---
    let last = docs.last().unwrap();
    let ranks = last.get("ranks").and_then(Json::as_arr).unwrap();
    assert_eq!(ranks.len(), 2, "expected 2 rank rows, got {ranks:?}");
    for r in ranks {
        assert_eq!(
            r.get("last_step").and_then(Json::as_f64),
            Some(7.0),
            "{r:?}"
        );
        assert!(
            r.get("steps").and_then(Json::as_f64).unwrap() >= 8.0,
            "{r:?}"
        );
    }

    // --- OpenMetrics sibling: strict-validates, totals match. ---
    let om = std::fs::read_to_string(&om_path).unwrap();
    let doc = openmetrics::validate(&om).expect("exposition validates");
    assert_eq!(doc.families["msc_steps"], "counter");
    // In a sessioned hub `steps` counts rank-steps: 2 ranks x 8 steps,
    // plus whatever was re-executed after the kill.
    assert!(doc.samples["msc_steps_total"] >= 16.0);
    assert!(doc.samples["msc_alerts_total"] >= 1.0);
    assert!(doc.samples.contains_key("msc_by_rank_steps{rank=\"0\"}"));
    assert!(doc.samples.contains_key("msc_by_rank_steps{rank=\"1\"}"));

    let _ = std::fs::remove_dir_all(&dir);
}
