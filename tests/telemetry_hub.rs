//! Differential test of the sessioned telemetry plane (DESIGN.md §14):
//! running the same program through the legacy process-global trace API
//! and through an explicit [`TelemetryHub`] must be observationally
//! identical — bit-identical grids and the same deterministic counter
//! totals — across every execution tier. The hub refactor is pure
//! plumbing; it must never perturb what gets computed or counted.
//!
//! [`TelemetryHub`]: msc::trace::TelemetryHub

use msc::exec::driver::run_program_tier;
use msc::prelude::*;
use msc::trace::{Counter, CounterSet};
use std::sync::{Arc, Mutex};

/// Serialize against the process-global tracer (the legacy arm).
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn program() -> StencilProgram {
    StencilProgram::builder("hubdiff")
        .grid_3d("B", DType::F64, [16, 16, 16], 1, 2)
        .kernel(Kernel::star_normalized("S", 3, 1))
        .timesteps(5)
        .build()
        .unwrap()
}

fn tiled_executor(p: &StencilProgram) -> Executor {
    let mut s = msc::core::schedule::Schedule::default();
    s.tile(&[8, 8, 16]);
    s.parallel("xo", 2);
    let plan = msc::core::schedule::ExecPlan::lower(&s, p.grid.ndim(), &p.grid.shape).unwrap();
    Executor::Tiled(plan)
}

/// The counters a run must reproduce exactly regardless of which hub
/// observed it. Timing counters (`ns` unit) and scheduler-dependent pool
/// traffic vary run to run; everything else is deterministic.
fn deterministic_totals(set: &CounterSet) -> Vec<(Counter, u64)> {
    set.iter()
        .filter(|(c, _)| c.unit() != "ns")
        .filter(|(c, _)| {
            !matches!(
                c,
                Counter::PoolSteals
                    | Counter::PoolParks
                    | Counter::PoolUnparks
                    | Counter::HeartbeatsSent
            )
        })
        .collect()
}

#[test]
fn explicit_hub_matches_legacy_global_api_across_tiers() {
    let _g = TRACE_LOCK.lock().unwrap();
    let p = program();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 7);
    let exec = tiled_executor(&p);

    for tier in [
        msc::exec::ExecTier::Interp,
        msc::exec::ExecTier::Vm,
        msc::exec::ExecTier::Specialized,
    ] {
        // Legacy arm: the process-global default hub via free functions.
        msc::trace::reset();
        msc::trace::set_enabled(true);
        let (grid_legacy, stats_legacy) =
            run_program_tier(&p, &exec, &init, Boundary::Dirichlet, tier).unwrap();
        msc::trace::set_enabled(false);
        let legacy = msc::trace::snapshot();
        msc::trace::reset();

        // Sessioned arm: an explicit hub installed on this thread; the
        // worker pool must inherit it, and the default hub must stay
        // untouched.
        let hub = msc::trace::TelemetryHub::new();
        hub.set_enabled(true);
        let (grid_hub, stats_hub, sessioned) = {
            let _install = msc::trace::install_thread_hub(Arc::clone(&hub));
            let (g, s) = run_program_tier(&p, &exec, &init, Boundary::Dirichlet, tier).unwrap();
            (g, s, hub.snapshot())
        };
        let leaked = msc::trace::snapshot();
        assert!(
            leaked.is_zero(),
            "{tier:?}: sessioned run leaked into the default hub: {leaked:?}"
        );

        assert_eq!(
            grid_legacy.as_slice(),
            grid_hub.as_slice(),
            "{tier:?}: grids differ between legacy and hub observation"
        );
        assert_eq!(stats_legacy, stats_hub, "{tier:?}: run stats differ");
        assert_eq!(
            deterministic_totals(&legacy),
            deterministic_totals(&sessioned),
            "{tier:?}: deterministic counter totals differ"
        );
        // And the run actually exercised the tier under both hubs.
        match tier {
            msc::exec::ExecTier::Vm => {
                assert!(sessioned.get(Counter::VmDispatches) > 0, "vm tier inert")
            }
            msc::exec::ExecTier::Specialized => {
                assert!(
                    sessioned.get(Counter::SpecializedHits) > 0,
                    "specialized inert"
                )
            }
            _ => assert!(sessioned.get(Counter::TilesExecuted) > 0),
        }
    }
}

#[test]
fn concurrent_hubs_do_not_cross_talk() {
    // Two sessioned runs in parallel threads, each with its own hub:
    // both see exactly their own deterministic totals. This is the
    // property the process-global API could never offer.
    let p = program();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 13);
    let run = |steps_scale: usize| {
        let p = StencilProgram::builder("iso")
            .grid_3d("B", DType::F64, [16, 16, 16], 1, 2)
            .kernel(Kernel::star_normalized("S", 3, 1))
            .timesteps(steps_scale)
            .build()
            .unwrap();
        let exec = tiled_executor(&p);
        let hub = msc::trace::TelemetryHub::new();
        hub.set_enabled(true);
        let _g = msc::trace::install_thread_hub(Arc::clone(&hub));
        run_program(&p, &exec, &init).unwrap();
        hub.snapshot()
    };
    let (a, b) = std::thread::scope(|s| {
        let ta = s.spawn(|| run(3));
        let tb = s.spawn(|| run(6));
        (ta.join().unwrap(), tb.join().unwrap())
    });
    assert_eq!(a.get(Counter::Steps), 3);
    assert_eq!(b.get(Counter::Steps), 6);
    assert_eq!(
        b.get(Counter::ComputedPoints),
        2 * a.get(Counter::ComputedPoints)
    );
}
