//! Tier-1 guarantees of the tracing subsystem (ISSUE: msc-trace):
//!
//! 1. With tracing *disabled* (the default), running the full pipeline
//!    mutates no global trace state — counters stay zero and no spans are
//!    recorded — so production runs pay only a relaxed atomic load.
//! 2. Results are bit-identical whether tracing is enabled or not:
//!    observation must never perturb the numerics.
//!
//! Overhead is asserted through counter/span *state*, not wall-clock,
//! so the test is deterministic on any machine.

use msc::prelude::*;
use msc::trace::{Counter, Profile};
use std::sync::Mutex;

/// All tests in this binary touch the process-global tracer.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn program() -> StencilProgram {
    StencilProgram::builder("obs")
        .grid_3d("B", DType::F64, [16, 16, 16], 1, 3)
        .kernel(Kernel::star_normalized("S", 3, 1))
        .combine(&[(1, 0.6, "S"), (2, 0.4, "S")])
        .timesteps(4)
        .build()
        .unwrap()
}

fn tiled_executor(p: &StencilProgram) -> Executor {
    let mut s = msc::core::schedule::Schedule::default();
    s.tile(&[8, 8, 16]);
    s.parallel("xo", 4);
    let plan =
        msc::core::schedule::ExecPlan::lower(&s, p.grid.ndim(), &p.grid.shape).unwrap();
    Executor::Tiled(plan)
}

#[test]
fn disabled_tracing_mutates_no_global_state() {
    let _g = TRACE_LOCK.lock().unwrap();
    msc::trace::reset();
    assert!(!msc::trace::enabled());

    let p = program();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 9);
    let (_, stats) = run_program(&p, &tiled_executor(&p), &init).unwrap();
    // The local stats view still works with tracing off...
    assert_eq!(stats.steps, 4);
    assert!(stats.tiles_executed > 0);

    // ...but the global tracer saw nothing at all.
    let prof = Profile::capture("after-disabled-run");
    assert!(
        prof.counters.is_zero(),
        "disabled run leaked counters: {:?}",
        prof.counters
    );
    assert!(
        prof.spans.is_empty(),
        "disabled run recorded {} spans",
        prof.spans.len()
    );
    assert_eq!(prof.dropped_spans, 0);
}

#[test]
fn tracing_does_not_perturb_results() {
    let _g = TRACE_LOCK.lock().unwrap();
    let p = program();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 9);

    msc::trace::reset();
    let (cold, cold_stats) = run_program(&p, &tiled_executor(&p), &init).unwrap();

    msc::trace::set_enabled(true);
    let (hot, hot_stats) = run_program(&p, &tiled_executor(&p), &init).unwrap();
    msc::trace::set_enabled(false);

    // Bit-identical output and identical headline stats either way.
    assert_eq!(cold.as_slice(), hot.as_slice());
    assert_eq!(cold_stats, hot_stats);

    // The traced run produced a real profile agreeing with the stats.
    let prof = Profile::capture("traced-run");
    assert_eq!(prof.get(Counter::Steps), 4);
    assert_eq!(prof.get(Counter::TilesExecuted), hot_stats.tiles_executed);
    assert!(prof.spans.iter().any(|s| s.name == "step"));
    assert!(prof.timeline_ns() > 0);
    msc::trace::reset();
}

#[test]
fn distributed_stats_survive_with_tracing_disabled() {
    let _g = TRACE_LOCK.lock().unwrap();
    msc::trace::reset();
    let p = program();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 11);
    let (_, stats) = run_distributed(&p, &[2, 1, 2], &init, |sub| {
        let mut s = msc::core::schedule::Schedule::default();
        let tile: Vec<usize> = sub.iter().map(|&x| (x / 2).max(1)).collect();
        s.tile(&tile);
        s.parallel("xo", 2);
        msc::core::schedule::ExecPlan::lower(&s, sub.len(), sub)
    })
    .unwrap();
    // CommStats ride on per-rank counter sets, not the global tracer:
    // halo traffic is visible even though tracing is off...
    assert!(stats.halo_messages() > 0);
    assert!(stats.halo_bytes() > 0);
    assert_eq!(stats.halo_messages(), stats.messages);
    // ...and the global tracer still saw nothing.
    let prof = Profile::capture("after-distributed");
    assert!(prof.counters.is_zero());
    assert!(prof.spans.is_empty());
}
