//! The paper's headline quantitative claims, asserted as reproduction
//! bands over the deterministic simulator (see EXPERIMENTS.md for the
//! full paper-vs-measured ledger).

use msc::bench::figures::{self, scaling};
use msc::bench::tables;
use msc::machine::model::Precision;

fn avg(rows: &[figures::SpeedupRow]) -> f64 {
    rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64
}

#[test]
fn claim_fig7_msc_vs_openacc_sunway() {
    // Paper: 24.4x (fp64) and 20.7x (fp32) average.
    let fp64 = avg(&figures::fig7_rows(Precision::Fp64).unwrap());
    let fp32 = avg(&figures::fig7_rows(Precision::Fp32).unwrap());
    assert!((12.0..=40.0).contains(&fp64), "fp64 avg {fp64:.1}");
    assert!((10.0..=36.0).contains(&fp32), "fp32 avg {fp32:.1}");
}

#[test]
fn claim_fig8_parity_with_manual_openmp_on_matrix() {
    // Paper: MSC achieves 1.05x (fp64) / 1.03x (fp32) of manual OpenMP.
    let fp64 = avg(&figures::fig8_rows(Precision::Fp64).unwrap());
    assert!((1.0..=1.15).contains(&fp64), "{fp64:.3}");
}

#[test]
fn claim_fig9_roofline_classification() {
    // Paper: all benchmarks memory-bound except 2d169pt on Sunway, which
    // is compute-bound; on Matrix, 2d169pt stays memory-bound.
    use msc::core::schedule::Target;
    let sunway = figures::fig9_rows(Target::SunwayCG).unwrap();
    for p in &sunway {
        if p.name == "2d169pt_box" {
            assert!(!p.memory_bound);
        } else if p.name != "2d121pt_box" {
            // 2d121pt sits at the ridge; every other benchmark must be
            // clearly memory-bound.
            assert!(p.memory_bound, "{} should be memory-bound", p.name);
        }
    }
    let matrix = figures::fig9_rows(Target::Matrix).unwrap();
    assert!(matrix
        .iter()
        .find(|p| p.name == "2d169pt_box")
        .unwrap()
        .memory_bound);
}

#[test]
fn claim_table6_loc_reductions() {
    // Paper: 27% (Sunway) and 74% (Matrix) average LoC reduction.
    let rows = tables::table6_rows();
    let sun: f64 = rows.iter().map(|r| r.reduction_sunway()).sum::<f64>() / rows.len() as f64;
    let mat: f64 = rows.iter().map(|r| r.reduction_matrix()).sum::<f64>() / rows.len() as f64;
    assert!((0.15..=0.40).contains(&sun), "sunway {sun:.2}");
    assert!((0.60..=0.85).contains(&mat), "matrix {mat:.2}");
}

#[test]
fn claim_fig10_scaling_speedups() {
    use scaling::{end_to_end_speedup, series, Mode, Platform};
    // Paper: strong 6.74x (Sunway) / 5.85x (Tianhe-3); weak 7.85x/7.38x
    // at 8x cores.
    let strong_sun: f64 = [2, 3]
        .iter()
        .map(|&d| end_to_end_speedup(&series(d, Mode::Strong, Platform::Sunway).unwrap()))
        .sum::<f64>()
        / 2.0;
    let strong_th3: f64 = [2, 3]
        .iter()
        .map(|&d| end_to_end_speedup(&series(d, Mode::Strong, Platform::Tianhe3).unwrap()))
        .sum::<f64>()
        / 2.0;
    let weak_sun: f64 = [2, 3]
        .iter()
        .map(|&d| end_to_end_speedup(&series(d, Mode::Weak, Platform::Sunway).unwrap()))
        .sum::<f64>()
        / 2.0;
    let weak_th3: f64 = [2, 3]
        .iter()
        .map(|&d| end_to_end_speedup(&series(d, Mode::Weak, Platform::Tianhe3).unwrap()))
        .sum::<f64>()
        / 2.0;
    assert!((5.8..=8.2).contains(&strong_sun), "strong sunway {strong_sun:.2}");
    assert!((4.5..=7.8).contains(&strong_th3), "strong tianhe3 {strong_th3:.2}");
    assert!((7.0..=8.2).contains(&weak_sun), "weak sunway {weak_sun:.2}");
    assert!((6.5..=8.2).contains(&weak_th3), "weak tianhe3 {weak_th3:.2}");
    assert!(strong_sun > strong_th3, "Sunway strong-scales better");
    assert!(weak_sun >= weak_th3, "Sunway weak-scales at least as well");
}

#[test]
fn claim_fig12_halide_averages_and_crossover() {
    // Paper: over Halide-JIT, Halide-AOT averages 2.92x and MSC 3.33x;
    // Halide-AOT wins small stencils, MSC wins large ones.
    let rows = figures::fig12_rows().unwrap();
    let avg_aot = rows.iter().map(|(a, _)| a.speedup).sum::<f64>() / rows.len() as f64;
    let avg_msc = rows.iter().map(|(_, m)| m.speedup).sum::<f64>() / rows.len() as f64;
    assert!((2.0..=4.0).contains(&avg_aot), "{avg_aot:.2}");
    assert!((2.5..=5.5).contains(&avg_msc), "{avg_msc:.2}");
    assert!(avg_msc > avg_aot);
}

#[test]
fn claim_fig13_patus_average() {
    // Paper: 5.94x average over Patus.
    let a = avg(&figures::fig13_rows().unwrap());
    assert!((4.0..=8.0).contains(&a), "{a:.2}");
}

#[test]
fn claim_fig14_physis_average() {
    // Paper: 9.88x average over Physis, growing with stencil order.
    let rows = figures::fig14_rows().unwrap();
    let a = avg(&rows);
    assert!((5.0..=14.0).contains(&a), "{a:.2}");
    let hi = rows.iter().find(|r| r.name == "2d169pt_box").unwrap().speedup;
    let lo = rows.iter().find(|r| r.name == "2d9pt_box").unwrap().speedup;
    assert!(hi > lo);
}

#[test]
fn claim_fig11_autotuning_improvement() {
    // Paper: 3.28x improvement; two runs converge.
    use msc::core::analysis::StencilStats;
    use msc::core::catalog::{benchmark, BenchmarkId};
    use msc::prelude::*;
    use msc::tune::{tune, AnnealOptions, Config, TuneProblem};

    let b = benchmark(BenchmarkId::S3d7ptStar);
    let program = b.program(&[8192, 128, 128], DType::F64, 2).unwrap();
    let machine = msc::machine::presets::sunway_cg();
    let network = msc::machine::presets::taihulight_network();
    let mut times = Vec::new();
    for seed in [10u64, 20] {
        let problem = TuneProblem {
            workload: msc::tune::perf_model::Workload {
                global_grid: vec![8192, 128, 128],
                reach: program.stencil.reach(),
                stats: StencilStats::of(&program.stencil, DType::F64).unwrap(),
                n_procs: 128,
                prec: Precision::Fp64,
                points: b.points(),
            },
            machine: &machine,
            network: &network,
            options: AnnealOptions {
                iterations: 4000,
                seed,
                ..Default::default()
            },
        };
        let r = tune(
            &problem,
            Config {
                tile: vec![1, 1, 4],
                mpi_grid: vec![128, 1, 1],
            },
        )
        .unwrap();
        assert!(r.improvement() > 2.0, "improvement {:.2}", r.improvement());
        times.push(r.best_time_s);
    }
    let ratio = times[0] / times[1];
    assert!((0.8..=1.25).contains(&ratio), "runs diverge: {times:?}");
}

#[test]
fn claim_table4_reproduced() {
    for r in tables::table4_rows() {
        assert_eq!(r.paper_read, r.ir_read, "{}", r.name);
        assert_eq!(r.paper_write, r.ir_write, "{}", r.name);
        assert_eq!(r.time_deps, 2);
    }
}
