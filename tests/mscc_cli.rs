//! Integration tests of the `mscc` compiler driver binary.

use std::process::Command;

fn mscc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mscc"))
}

fn dsl(name: &str) -> String {
    format!("{}/examples/dsl/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn compiles_run_verifies_and_emits() {
    let dir = std::env::temp_dir().join("mscc_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--run", "--stats", "--simulate"])
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("compiled `wave2d`"));
    assert!(stdout.contains("verified vs serial reference: max rel err 0.00e0"));
    assert!(stdout.contains("simulated on"));
    assert!(dir.join("main.c").exists());
    assert!(dir.join("Makefile").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn autoschedule_reports_decisions() {
    let dir = std::env::temp_dir().join("mscc_cli_auto");
    let out = mscc()
        .arg(dsl("3d7pt.msc"))
        .arg("-o")
        .arg(&dir)
        .arg("--autoschedule")
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("autoschedule: tile sweep"));
    assert!(stdout.contains("autoschedule: selected tile"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn target_override_switches_output_files() {
    let dir = std::env::temp_dir().join("mscc_cli_target");
    let out = mscc()
        .arg(dsl("3d7pt.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--target", "cpu"])
        .output()
        .expect("mscc runs");
    assert!(out.status.success());
    assert!(dir.join("main.c").exists(), "cpu target emits main.c");
    assert!(!dir.join("slave.c").exists(), "no athread slave for cpu");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dump_writes_loadable_grid() {
    let dir = std::env::temp_dir().join("mscc_cli_dump");
    let _ = std::fs::create_dir_all(&dir);
    let grid_path = dir.join("out.grid");
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--run", "--dump"])
        .arg(&grid_path)
        .output()
        .expect("mscc runs");
    assert!(out.status.success());
    let g: msc::prelude::Grid<f64> = msc::exec::io::load(&grid_path).unwrap();
    assert_eq!(g.shape, vec![128, 128]);
    assert!(g.interior_sum().is_finite());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_run_heals_and_verifies_bit_exactly() {
    let dir = std::env::temp_dir().join("mscc_cli_chaos");
    let _ = std::fs::remove_dir_all(&dir);
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args([
            "--procs",
            "2x2",
            "--chaos",
            "42:drop=0.05,dup=0.02,corrupt=0.01",
        ])
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("distributed run over 4 ranks"), "{stdout}");
    assert!(
        stdout.contains("verified vs serial reference: bit-identical"),
        "{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_rank_restarts_from_checkpoint_via_cli() {
    let dir = std::env::temp_dir().join("mscc_cli_kill");
    let ckpt = std::env::temp_dir().join("mscc_cli_kill_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ckpt);
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args([
            "--procs",
            "2x1",
            "--chaos",
            "1:kill=1@3",
            "--checkpoint-every",
            "2",
        ])
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .arg("--profile")
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("1 restarts"), "{stdout}");
    assert!(
        stdout.contains("verified vs serial reference: bit-identical"),
        "{stdout}"
    );
    // Checkpoint activity must surface in the profile table.
    assert!(stdout.contains("checkpoint_bytes"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn killed_rank_heals_online_with_a_spare_via_cli() {
    // The online-recovery path end to end: with a hot spare and a
    // heartbeat the same kill that forces a restart above is instead
    // healed in place — zero restarts, one recovery, and the resolved
    // resilience policy echoed before the run banner.
    let dir = std::env::temp_dir().join("mscc_cli_spare");
    let _ = std::fs::remove_dir_all(&dir);
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args([
            "--procs",
            "2x2",
            "--chaos",
            "5:kill=1@4",
            "--checkpoint-every",
            "2",
            "--spare-ranks",
            "1",
            "--heartbeat-ms",
            "5",
            "--profile",
        ])
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("resilience policy: 1 spare rank(s)"),
        "{stdout}"
    );
    assert!(stdout.contains("heartbeat every 5 ms"), "{stdout}");
    // 4 logical + 1 spare physical ranks; the banner reports logical.
    assert!(stdout.contains("distributed run over 4 ranks"), "{stdout}");
    assert!(stdout.contains("0 restarts"), "{stdout}");
    assert!(stdout.contains("1 recoveries"), "{stdout}");
    assert!(
        stdout.contains("verified vs serial reference: bit-identical"),
        "{stdout}"
    );
    // The new counters must surface in the profile table.
    assert!(stdout.contains("rank_recoveries"), "{stdout}");
    assert!(stdout.contains("buddy_bytes"), "{stdout}");
    assert!(stdout.contains("detect_latency"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_heartbeat_interval_is_a_clean_error() {
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .args(["--heartbeat-ms", "0"])
        .output()
        .expect("mscc runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--heartbeat-ms"), "{err}");
}

#[test]
fn bad_chaos_spec_is_a_clean_error() {
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .args(["--chaos", "not-a-spec"])
        .output()
        .expect("mscc runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("chaos spec"), "{err}");
}

#[test]
fn bad_input_fails_with_diagnostic() {
    let dir = std::env::temp_dir().join("mscc_cli_bad");
    let _ = std::fs::create_dir_all(&dir);
    let bad = dir.join("bad.msc");
    std::fs::write(&bad, "stencil x { grid B f64[8]; }").unwrap();
    let out = mscc().arg(&bad).output().expect("mscc runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 1"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_reports_cleanly() {
    let out = mscc().arg("/nonexistent.msc").output().expect("mscc runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_documents_every_flag() {
    // The grouped help screen must mention every flag the parser
    // accepts — compile-mode, observability, and bench-mode alike.
    // Keep this list in sync with the match arms in src/bin/mscc.rs.
    let out = mscc().arg("--help").output().expect("mscc runs");
    assert!(out.status.success(), "--help must exit 0");
    let help = String::from_utf8_lossy(&out.stdout);
    for flag in [
        "-o",
        "--out",
        "--target",
        "--run",
        "--simulate",
        "--stats",
        "--exec-tier",
        "--autoschedule",
        "--dump",
        "--profile",
        "--trace",
        "--procs",
        "--chaos",
        "--checkpoint-every",
        "--checkpoint-dir",
        "--spare-ranks",
        "--heartbeat-ms",
        "--flight-dir",
        "--metrics-file",
        "--metrics-interval-ms",
        "--quick",
        "--validate",
        "--diff",
        "--threshold",
        "--counts-only",
        "--doctor",
        "--json",
        "--once",
        "--strict",
        "--interval-ms",
        "--socket",
        "--workers",
        "--max-queue",
        "--tenant-quota",
        "--metrics-dir",
        "--pool-threads",
        "--tenant",
        "--sleep-ms",
        "--ping",
        "--shutdown",
        "--emit-msc",
        "-h",
        "--help",
    ] {
        assert!(
            help.contains(flag),
            "help does not document `{flag}`:\n{help}"
        );
    }
    // Grouped layout: each section header present.
    for section in [
        "input / output:",
        "execution:",
        "distributed:",
        "observability:",
        "check subcommand",
        "lift subcommand",
        "bench subcommand",
        "top subcommand",
        "serve subcommand",
        "submit subcommand",
    ] {
        assert!(
            help.contains(section),
            "missing section `{section}`:\n{help}"
        );
    }
}

fn lint_fixture(name: &str) -> String {
    format!("{}/crates/lint/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_passes_clean_example() {
    let out = mscc()
        .args(["check"])
        .arg(dsl("3d7pt.msc"))
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("lint clean"), "{stdout}");
    assert!(stdout.contains("target sunway"), "{stdout}");
}

#[test]
fn check_denies_narrow_halo_with_stable_code() {
    let out = mscc()
        .args(["check"])
        .arg(lint_fixture("halo_narrow.deny.msc"))
        .output()
        .expect("mscc runs");
    assert!(!out.status.success(), "deny-level lint must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MSC-L101"), "{stdout}");
    assert!(stdout.contains("[deny]"), "{stdout}");
    // The fixed twin of the same fixture passes.
    let fixed = mscc()
        .args(["check"])
        .arg(lint_fixture("halo_narrow.fixed.msc"))
        .output()
        .expect("mscc runs");
    assert!(fixed.status.success());
}

#[test]
fn check_json_is_machine_readable() {
    let out = mscc()
        .args(["check", "--json"])
        .arg(lint_fixture("window_shallow.deny.msc"))
        .output()
        .expect("mscc runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = msc::bench::results::Json::parse(&stdout).expect("valid JSON on stdout");
    assert_eq!(doc.get("tool").and_then(|v| v.as_str()), Some("msc-lint"));
    assert!(doc.get("deny_count").and_then(|v| v.as_f64()).unwrap() >= 1.0);
    let diags = match doc.get("diagnostics") {
        Some(msc::bench::results::Json::Arr(items)) => items,
        other => panic!("diagnostics must be an array, got {other:?}"),
    };
    assert!(diags.iter().any(|d| {
        d.get("code").and_then(|v| v.as_str()) == Some("MSC-L201")
            && d.get("severity").and_then(|v| v.as_str()) == Some("deny")
    }));
}

fn lift_example(name: &str) -> String {
    format!("{}/examples/lift/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn lift_fixture(name: &str) -> String {
    format!("{}/crates/lift/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn lift_validates_corpus_kernel_and_emits_msc() {
    // A legacy C nest lifts clean, reports the bit-exact validation
    // line, and --emit-msc prints DSL source the compiler re-accepts.
    let out = mscc()
        .args(["lift", "--emit-msc"])
        .arg(lift_example("jacobi2d.c"))
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("lift clean: `jacobi2d`"), "{stdout}");
    assert!(stdout.contains("validated bit-for-bit"), "{stdout}");
    assert!(stdout.contains("3 seed(s) x 3 tier(s)"), "{stdout}");
    assert!(stdout.contains("stencil jacobi2d {"), "{stdout}");
    // The emitted source must re-parse through the DSL front end.
    let msc_src = &stdout[stdout.find("stencil jacobi2d").unwrap()..];
    msc::core::parse::parse_unchecked(msc_src).expect("emitted .msc re-parses");
}

#[test]
fn lift_run_executes_the_lifted_program() {
    let out = mscc()
        .args(["lift", "--run"])
        .arg(lift_example("jacobi3d.c"))
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("ran `jacobi3d`: 4 step(s)"), "{stdout}");
}

#[test]
fn lift_denies_inplace_nest_through_the_lint_gate() {
    // An in-place Gauss–Seidel sweep lifts structurally but must exit
    // nonzero with the same race diagnostics a DSL program would get.
    let out = mscc()
        .args(["lift"])
        .arg(lift_fixture("inplace_race.deny.c"))
        .output()
        .expect("mscc runs");
    assert!(!out.status.success(), "deny-level lift must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MSC-L201"), "{stdout}");
    assert!(stdout.contains("MSC-L302"), "{stdout}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("deny-level lint(s) lifting"), "{err}");
}

#[test]
fn lift_json_reports_structured_l5xx_diagnostics() {
    // Unsupported input never panics: it exits nonzero with a typed
    // MSC-L5xx diagnostic in the same JSON schema `mscc check` emits.
    let out = mscc()
        .args(["lift", "--json"])
        .arg(lift_fixture("nonaffine.deny.c"))
        .output()
        .expect("mscc runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = msc::bench::results::Json::parse(&stdout).expect("valid JSON on stdout");
    assert_eq!(doc.get("tool").and_then(|v| v.as_str()), Some("msc-lint"));
    let diags = match doc.get("diagnostics") {
        Some(msc::bench::results::Json::Arr(items)) => items,
        other => panic!("diagnostics must be an array, got {other:?}"),
    };
    assert!(diags.iter().any(|d| {
        d.get("code").and_then(|v| v.as_str()) == Some("MSC-L502")
            && d.get("severity").and_then(|v| v.as_str()) == Some("deny")
            && d.get("family").and_then(|v| v.as_str()) == Some("lift")
    }));
}

#[test]
fn lift_syntax_garbage_is_a_typed_diagnostic_not_a_panic() {
    let dir = std::env::temp_dir().join("mscc_cli_lift_garbage");
    let _ = std::fs::create_dir_all(&dir);
    let bad = dir.join("garbage.c");
    std::fs::write(&bad, "int main() { while (1) malloc(8); }").unwrap();
    let out = mscc().args(["lift"]).arg(&bad).output().expect("mscc runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MSC-L5"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compile_path_is_gated_by_the_linter() {
    // Plain `mscc file.msc` (no subcommand) must refuse to emit code for
    // a program the verifier denies, and name the lint code.
    let dir = std::env::temp_dir().join("mscc_cli_lint_gate");
    let _ = std::fs::remove_dir_all(&dir);
    let out = mscc()
        .arg(lint_fixture("race_parallel.deny.msc"))
        .arg("-o")
        .arg(&dir)
        .output()
        .expect("mscc runs");
    assert!(!out.status.success(), "lint deny must block compilation");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("lint rejected"), "{err}");
    assert!(err.contains("MSC-L301"), "{err}");
    assert!(!dir.join("main.c").exists(), "no code may be emitted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn denied_program_never_reaches_the_vm() {
    // The lint gate runs before any execution tier is set up, so a
    // deny-level program asked to run on the bytecode VM must die at the
    // lint stage: no "compiled" banner, no run line, and certainly no
    // bytecode compilation (run_program_tier re-checks check_deny too).
    let dir = std::env::temp_dir().join("mscc_cli_vm_lint_gate");
    let _ = std::fs::remove_dir_all(&dir);
    let out = mscc()
        .arg(lint_fixture("spm_overflow.deny.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--run", "--exec-tier", "vm"])
        .output()
        .expect("mscc runs");
    assert!(
        !out.status.success(),
        "denied program must not run on any tier"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("lint rejected"), "{err}");
    assert!(err.contains("[deny]"), "{err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("compiled"),
        "lint must fire pre-compile: {stdout}"
    );
    assert!(!stdout.contains("ran"), "lint must fire pre-run: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exec_tier_selects_the_vm_and_reports_it() {
    // --exec-tier vm routes the functional run through the bytecode VM
    // (visible in the run banner) and stays bit-identical to the serial
    // reference, which --stats verifies in-process.
    let dir = std::env::temp_dir().join("mscc_cli_vm_tier");
    let _ = std::fs::remove_dir_all(&dir);
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--run", "--stats", "--exec-tier", "vm"])
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("vm tier"), "{stdout}");
    assert!(
        stdout.contains("verified vs serial reference: max rel err 0.00e0"),
        "{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_exec_tier_is_a_clean_error() {
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .args(["--exec-tier", "warp"])
        .output()
        .expect("mscc runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown exec tier"), "{err}");
}

#[test]
fn distributed_trace_stitches_all_ranks_with_flows() {
    // The tentpole end-to-end: a 2x2 distributed run under --trace must
    // write one merged chrome://tracing document with span rows from all
    // four ranks and matched send->recv flow arrows, and print the
    // per-step straggler report to stdout.
    let dir = std::env::temp_dir().join("mscc_cli_stitch");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    let trace_path = dir.join("stitched.json");
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--procs", "2x2", "--trace"])
        .arg(&trace_path)
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("critical path: rank"), "{stdout}");
    assert!(stdout.contains("slowest"), "{stdout}");
    assert!(
        stdout.contains("wrote stitched chrome://tracing profile (4 ranks)"),
        "{stdout}"
    );

    let json = std::fs::read_to_string(&trace_path).unwrap();
    let summary = msc::trace::validate_chrome_json(&json).expect("structurally valid");
    assert_eq!(summary.ranks, vec![0, 1, 2, 3], "spans from all four ranks");
    assert!(
        summary.flow_pairs > 0,
        "halo send->recv flow arrows present"
    );
    assert_eq!(summary.unmatched_flows, 0, "every flow id pairs up");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flight_dir_captures_comm_fault_dump() {
    // --flight-dir wires the always-on flight recorder: a chaos kill
    // must leave a structured JSON dump naming the failure.
    let dir = std::env::temp_dir().join("mscc_cli_flight");
    let flight = std::env::temp_dir().join("mscc_cli_flight_dumps");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&flight);
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args([
            "--procs",
            "2x1",
            "--chaos",
            "1:kill=1@3",
            "--checkpoint-every",
            "2",
        ])
        .arg("--flight-dir")
        .arg(&flight)
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    let dumps: Vec<_> = std::fs::read_dir(&flight)
        .expect("flight dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let n = e.file_name();
            let n = n.to_string_lossy().into_owned();
            n.starts_with("flight_") && n.ends_with(".json")
        })
        .collect();
    assert!(!dumps.is_empty(), "kill must dump the flight recorder");
    let body = std::fs::read_to_string(dumps[0].path()).unwrap();
    assert!(body.contains("\"flight_recorder\""), "{body}");
    assert!(body.contains("\"reason\""), "{body}");
    assert!(body.contains("\"kind\""), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&flight);
}

#[test]
fn serve_and_submit_round_trip_through_the_binaries() {
    // The daemon end to end through the real binaries: start `mscc
    // serve`, submit the same program twice (second is a cache hit),
    // bounce a deny fixture off the lint front door without killing the
    // daemon, then shut down gracefully over the wire.
    let dir = std::env::temp_dir().join(format!("mscc_cli_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("mscd.sock");

    let mut daemon = mscc()
        .args(["serve", "--workers", "2", "--socket"])
        .arg(&socket)
        .arg("--metrics-dir")
        .arg(dir.join("metrics"))
        .spawn()
        .expect("mscd starts");
    // Wait for the socket to appear.
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(socket.exists(), "daemon never bound its socket");

    let submit = |extra: &[&str], file: &str| {
        let mut cmd = mscc();
        cmd.args(["submit", "--socket"]).arg(&socket);
        cmd.args(extra);
        if !file.is_empty() {
            cmd.arg(file);
        }
        cmd.output().expect("mscc submit runs")
    };

    let first = submit(&["--run"], &dsl("wave2d.msc"));
    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(first.status.success(), "{stdout}");
    assert!(stdout.contains("compiled `wave2d`"), "{stdout}");
    assert!(!stdout.contains("[cache hit]"), "{stdout}");
    assert!(stdout.contains("counters"), "{stdout}");
    assert!(stdout.contains("metrics stream"), "{stdout}");

    let second = submit(&[], &dsl("wave2d.msc"));
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(second.status.success(), "{stdout}");
    assert!(stdout.contains("[cache hit]"), "{stdout}");

    // A deny-level program comes back as structured diagnostics with a
    // nonzero exit — and the daemon survives it.
    let denied = submit(&[], &lint_fixture("halo_narrow.deny.msc"));
    assert!(!denied.status.success(), "deny must exit nonzero");
    let err = String::from_utf8_lossy(&denied.stderr);
    assert!(err.contains("MSC-L101"), "{err}");
    assert!(err.contains("denied"), "{err}");

    let ping = submit(&["--ping"], "");
    assert!(ping.status.success());
    let stdout = String::from_utf8_lossy(&ping.stdout);
    assert!(stdout.contains("mscd alive"), "{stdout}");

    let stats = submit(&["--stats"], "");
    let stdout = String::from_utf8_lossy(&stats.stdout);
    assert!(stats.status.success(), "{stdout}");
    assert!(stdout.contains("2 done, 1 denied"), "{stdout}");
    assert!(stdout.contains("1 hit(s)"), "{stdout}");

    let down = submit(&["--shutdown"], "");
    assert!(down.status.success());
    let code = daemon.wait().expect("daemon exits");
    assert!(code.success(), "daemon must exit cleanly after shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_records_validates_and_gates_regressions() {
    // The recorded-trajectory cycle: record (quick grids), validate the
    // schema, self-diff clean, then prove the gate fires on a doctored
    // 20% slowdown — with a nonzero exit code.
    let dir = std::env::temp_dir().join("mscc_cli_bench");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    let base = dir.join("base.json");
    let slowed = dir.join("slowed.json");

    let rec = mscc()
        .args(["bench", "--quick", "--out"])
        .arg(&base)
        .output()
        .expect("mscc runs");
    assert!(
        rec.status.success(),
        "{}",
        String::from_utf8_lossy(&rec.stderr)
    );
    let text = std::fs::read_to_string(&base).unwrap();
    assert!(text.contains("\"schema_version\": 6"), "{text}");

    let val = mscc()
        .args(["bench", "--validate"])
        .arg(&base)
        .output()
        .unwrap();
    assert!(val.status.success());

    let clean = mscc()
        .args(["bench", "--diff"])
        .arg(&base)
        .arg(&base)
        .arg("--counts-only")
        .output()
        .unwrap();
    assert!(clean.status.success(), "self-diff must be clean");

    let doc = mscc()
        .args(["bench", "--doctor"])
        .arg(&base)
        .arg(&slowed)
        .output()
        .unwrap();
    let doc_out = String::from_utf8_lossy(&doc.stdout);
    assert!(doc.status.success(), "{doc_out}");
    // The doctor also runs the kill/heal self-test and reports it.
    assert!(
        doc_out.contains("recovery smoke: 1 recoveries, 0 restarts"),
        "{doc_out}"
    );
    assert!(doc_out.contains("detection latency p50"), "{doc_out}");

    let gate = mscc()
        .args(["bench", "--diff"])
        .arg(&base)
        .arg(&slowed)
        .output()
        .unwrap();
    assert!(!gate.status.success(), "20% slowdown must exit nonzero");
    let err = String::from_utf8_lossy(&gate.stderr);
    assert!(err.contains("regression"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
