//! Integration tests of the `mscc` compiler driver binary.

use std::process::Command;

fn mscc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mscc"))
}

fn dsl(name: &str) -> String {
    format!("{}/examples/dsl/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn compiles_run_verifies_and_emits() {
    let dir = std::env::temp_dir().join("mscc_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--run", "--stats", "--simulate"])
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("compiled `wave2d`"));
    assert!(stdout.contains("verified vs serial reference: max rel err 0.00e0"));
    assert!(stdout.contains("simulated on"));
    assert!(dir.join("main.c").exists());
    assert!(dir.join("Makefile").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn autoschedule_reports_decisions() {
    let dir = std::env::temp_dir().join("mscc_cli_auto");
    let out = mscc()
        .arg(dsl("3d7pt.msc"))
        .arg("-o")
        .arg(&dir)
        .arg("--autoschedule")
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("autoschedule: tile sweep"));
    assert!(stdout.contains("autoschedule: selected tile"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn target_override_switches_output_files() {
    let dir = std::env::temp_dir().join("mscc_cli_target");
    let out = mscc()
        .arg(dsl("3d7pt.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--target", "cpu"])
        .output()
        .expect("mscc runs");
    assert!(out.status.success());
    assert!(dir.join("main.c").exists(), "cpu target emits main.c");
    assert!(!dir.join("slave.c").exists(), "no athread slave for cpu");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dump_writes_loadable_grid() {
    let dir = std::env::temp_dir().join("mscc_cli_dump");
    let _ = std::fs::create_dir_all(&dir);
    let grid_path = dir.join("out.grid");
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--run", "--dump"])
        .arg(&grid_path)
        .output()
        .expect("mscc runs");
    assert!(out.status.success());
    let g: msc::prelude::Grid<f64> = msc::exec::io::load(&grid_path).unwrap();
    assert_eq!(g.shape, vec![128, 128]);
    assert!(g.interior_sum().is_finite());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_run_heals_and_verifies_bit_exactly() {
    let dir = std::env::temp_dir().join("mscc_cli_chaos");
    let _ = std::fs::remove_dir_all(&dir);
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--procs", "2x2", "--chaos", "42:drop=0.05,dup=0.02,corrupt=0.01"])
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("distributed run over 4 ranks"), "{stdout}");
    assert!(stdout.contains("verified vs serial reference: bit-identical"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_rank_restarts_from_checkpoint_via_cli() {
    let dir = std::env::temp_dir().join("mscc_cli_kill");
    let ckpt = std::env::temp_dir().join("mscc_cli_kill_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ckpt);
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .arg("-o")
        .arg(&dir)
        .args(["--procs", "2x1", "--chaos", "1:kill=1@3", "--checkpoint-every", "2"])
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .arg("--profile")
        .output()
        .expect("mscc runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("1 restarts"), "{stdout}");
    assert!(stdout.contains("verified vs serial reference: bit-identical"), "{stdout}");
    // Checkpoint activity must surface in the profile table.
    assert!(stdout.contains("checkpoint_bytes"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn bad_chaos_spec_is_a_clean_error() {
    let out = mscc()
        .arg(dsl("wave2d.msc"))
        .args(["--chaos", "not-a-spec"])
        .output()
        .expect("mscc runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("chaos spec"), "{err}");
}

#[test]
fn bad_input_fails_with_diagnostic() {
    let dir = std::env::temp_dir().join("mscc_cli_bad");
    let _ = std::fs::create_dir_all(&dir);
    let bad = dir.join("bad.msc");
    std::fs::write(&bad, "stencil x { grid B f64[8]; }").unwrap();
    let out = mscc().arg(&bad).output().expect("mscc runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 1"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_reports_cleanly() {
    let out = mscc().arg("/nonexistent.msc").output().expect("mscc runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
