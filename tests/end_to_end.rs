//! End-to-end integration: DSL → schedule → functional execution →
//! distributed execution → code generation, across the full benchmark
//! catalog.

use msc::core::catalog::all_benchmarks;
use msc::core::schedule::{ExecPlan, Schedule};
use msc::prelude::*;

fn tiled_plan(ndim: usize, grid: &[usize], threads: usize) -> ExecPlan {
    let mut s = Schedule::default();
    let tile: Vec<usize> = grid.iter().map(|&g| (g / 2).max(1)).collect();
    s.tile(&tile);
    s.parallel("xo", threads);
    ExecPlan::lower(&s, ndim, grid).unwrap()
}

#[test]
fn every_benchmark_runs_through_all_executors() {
    for b in all_benchmarks() {
        let grid = b.test_grid();
        let program = b.program(&grid, DType::F64, 3).unwrap();
        let init: Grid<f64> = Grid::random(&program.grid.shape, &program.grid.halo, 1);

        let (reference, _) = run_program(&program, &Executor::Reference, &init).unwrap();
        let plan = tiled_plan(b.ndim, &grid, 4);
        let (tiled, _) = run_program(&program, &Executor::Tiled(plan.clone()), &init).unwrap();
        let (spm, st) = run_program(
            &program,
            &Executor::Spm {
                plan,
                spm_capacity: 1 << 22,
            },
            &init,
        )
        .unwrap();

        assert_eq!(reference.as_slice(), tiled.as_slice(), "{} tiled", b.name);
        assert_eq!(reference.as_slice(), spm.as_slice(), "{} spm", b.name);
        assert!(st.dma_get_bytes > 0, "{}", b.name);
    }
}

#[test]
fn every_benchmark_distributes_bit_identically() {
    for b in all_benchmarks() {
        let grid: Vec<usize> = match b.ndim {
            2 => vec![36, 48],
            _ => vec![18, 18, 24],
        };
        let program = b.program(&grid, DType::F64, 3).unwrap();
        let init: Grid<f64> = Grid::random(&program.grid.shape, &program.grid.halo, 5);
        let (single, _) = run_program(&program, &Executor::Reference, &init).unwrap();
        let procs: Vec<usize> = match b.ndim {
            2 => vec![2, 2],
            _ => vec![1, 2, 2],
        };
        let (multi, stats) = run_distributed(&program, &procs, &init, |sub| {
            Ok(tiled_plan(sub.len(), sub, 2))
        })
        .unwrap();
        assert_eq!(single.as_slice(), multi.as_slice(), "{}", b.name);
        assert!(stats.messages > 0, "{}", b.name);
    }
}

#[test]
fn every_benchmark_generates_code_for_all_targets() {
    for b in all_benchmarks() {
        let mut program = b.program(&b.default_grid(), DType::F64, 10).unwrap();
        program.mpi_grid = Some(match b.ndim {
            2 => vec![4, 4],
            _ => vec![4, 4, 4],
        });
        for target in [Target::SunwayCG, Target::Matrix, Target::Cpu] {
            let pkg = compile_to_source(&program, target).unwrap();
            assert!(pkg.total_loc() > 40, "{} {target:?}", b.name);
            assert!(pkg.file("Makefile").is_some());
            for name in pkg.file_names() {
                if name.ends_with(".c") {
                    let src = pkg.file(name).unwrap();
                    assert_eq!(
                        src.matches('{').count(),
                        src.matches('}').count(),
                        "{} {target:?} {name}: unbalanced braces",
                        b.name
                    );
                }
            }
        }
    }
}

#[test]
fn fp32_and_fp64_respect_paper_error_bounds_end_to_end() {
    use msc::exec::verify::verify_against_reference;
    for b in all_benchmarks() {
        let grid = b.test_grid();
        let plan = tiled_plan(b.ndim, &grid, 4);

        let p64 = b.program(&grid, DType::F64, 5).unwrap();
        let e64 =
            verify_against_reference::<f64>(&p64, &Executor::Tiled(plan.clone()), 11).unwrap();
        assert!(e64 < 1e-10, "{}: {e64}", b.name);

        let p32 = b.program(&grid, DType::F32, 5).unwrap();
        let e32 = verify_against_reference::<f32>(&p32, &Executor::Tiled(plan), 11).unwrap();
        assert!(e32 < 1e-5, "{}: {e32}", b.name);
    }
}

#[test]
fn simulator_and_functional_executor_agree_on_dma_traffic() {
    // The timing simulator's SPM traffic model must match what the
    // functional SPM executor actually moves.
    use msc::core::analysis::StencilStats;
    use msc::machine::presets::sunway_cg;

    let b = &all_benchmarks()[4]; // 3d7pt_star
    let grid = vec![32usize, 32, 32];
    let program = b.program(&grid, DType::F64, 1).unwrap();
    let init: Grid<f64> = Grid::random(&program.grid.shape, &program.grid.halo, 3);

    let mut sched = Schedule::default();
    sched
        .tile(&[8, 8, 16])
        .parallel("xo", 4)
        .cache_read("B", "br", msc::core::schedule::BufferScope::Global)
        .cache_write("bw", msc::core::schedule::BufferScope::Global)
        .compute_at("br", "zo")
        .compute_at("bw", "zo");
    let plan = ExecPlan::lower(&sched, 3, &grid).unwrap();

    let (_, stats) = run_program(
        &program,
        &Executor::Spm {
            plan: plan.clone(),
            spm_capacity: 1 << 20,
        },
        &init,
    )
    .unwrap();

    let stencil_stats = StencilStats::of(&program.stencil, DType::F64).unwrap();
    let rep = simulate_step(
        &StepInputs {
            stats: stencil_stats,
            reach: program.stencil.reach(),
            plan: &plan,
            prec: Precision::Fp64,
        },
        &sunway_cg(),
    );
    let measured = (stats.dma_get_bytes + stats.dma_put_bytes) as f64;
    let rel = (rep.dram_bytes - measured).abs() / measured;
    assert!(
        rel < 1e-9,
        "simulator {} vs executor {} bytes (rel {rel})",
        rep.dram_bytes,
        measured
    );
}
