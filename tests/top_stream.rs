//! Regression tests for `msc::top`: reading a sampler JSONL stream that
//! is being appended to concurrently. A follower (`mscc top`, or the
//! strict CI replay) can observe the file at *any* byte boundary, so
//! every prefix of a valid stream — including prefixes that cut a line
//! or even a multi-byte UTF-8 character in half — must read cleanly and
//! yield exactly the complete samples.

use msc::top;
use std::path::PathBuf;

fn schema() -> &'static str {
    msc::trace::sampler::METRICS_SCHEMA
}

/// A small schema-valid stream: monotone seq + counters, per-rank rows,
/// and an alert whose message contains multi-byte UTF-8 (the sampler
/// writes arbitrary text there, so read boundaries can split a scalar).
fn fixture() -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\"schema\":\"{}\",\"seq\":0,\"reason\":\"tick\",\"counters\":{{\"steps\":1}},\
         \"rates\":{{\"steps_per_s\":10.0}},\"ranks\":[{{\"rank\":0,\"steps\":1}}],\"alerts\":[]}}\n",
        schema()
    ));
    s.push_str(&format!(
        "{{\"schema\":\"{}\",\"seq\":1,\"reason\":\"tick\",\"counters\":{{\"steps\":2}},\
         \"rates\":{{\"steps_per_s\":11.0}},\"ranks\":[{{\"rank\":0,\"steps\":2}}],\"alerts\":[]}}\n",
        schema()
    ));
    s.push_str(&format!(
        "{{\"schema\":\"{}\",\"seq\":2,\"reason\":\"alert\",\"counters\":{{\"steps\":3}},\
         \"rates\":{{\"steps_per_s\":2.0}},\"ranks\":[{{\"rank\":0,\"steps\":3}}],\
         \"alerts\":[{{\"kind\":\"stall\",\"message\":\"rank 0 est arrêté — stalled ≥ 5s\"}}]}}\n",
        schema()
    ));
    s
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("msc-top-stream-{}-{tag}.jsonl", std::process::id()))
}

#[test]
fn full_stream_reads_and_validates() {
    let path = temp_path("full");
    std::fs::write(&path, fixture()).unwrap();
    let read = top::read_stream(&path, true).unwrap();
    assert_eq!(read.docs.len(), 3);
    assert!(!read.partial_tail);
    top::strict_check_stream(&path, &read.docs).unwrap();
    let rendered = top::render_top(&path, &read.docs);
    assert!(rendered.contains("est arrêté"), "alert lost: {rendered}");
    std::fs::remove_file(&path).unwrap();
}

/// The core regression: every byte-truncation of a valid stream must
/// read without error — even in strict mode — and yield exactly the
/// samples whose lines are fully written. Before the fix, a truncation
/// inside the multi-byte 'ê' made the whole read fail (invalid UTF-8),
/// and a torn-but-newline-terminated tail failed `--strict` spuriously.
#[test]
fn every_byte_truncation_reads_cleanly() {
    let full = fixture();
    let bytes = full.as_bytes();
    let path = temp_path("trunc");
    for len in 0..=bytes.len() {
        let prefix = &bytes[..len];
        std::fs::write(&path, prefix).unwrap();
        let read = top::read_stream(&path, true)
            .unwrap_or_else(|e| panic!("strict read failed at truncation {len}: {e}"));
        // A sample is visible once its line is complete. The trailing
        // fragment counts too in the one case where the truncation
        // landed exactly between a line's last byte and its newline —
        // the fragment is then whole, parseable JSON.
        let newline_terminated = prefix.iter().filter(|&&b| b == b'\n').count();
        let frag_is_whole_line = bytes.get(len) == Some(&b'\n');
        let complete = newline_terminated + usize::from(frag_is_whole_line);
        assert_eq!(
            read.docs.len(),
            complete,
            "truncation {len}: expected {complete} complete samples"
        );
        if len > 0 && len < bytes.len() && prefix.last() != Some(&b'\n') {
            assert!(read.partial_tail, "truncation {len}: tail not flagged");
        }
        top::strict_check_stream(&path, &read.docs)
            .unwrap_or_else(|e| panic!("strict check failed at truncation {len}: {e}"));
        // Rendering a partial stream must never panic either.
        let _ = top::render_top(&path, &read.docs);
    }
    std::fs::remove_file(&path).unwrap();
}

/// A line torn *after* its trailing newline was written (reader saw the
/// newline but only part of the payload is sane JSON) is still the tail
/// of the stream and must be tolerated, not reported as corruption.
#[test]
fn newline_terminated_torn_tail_is_tolerated() {
    let mut text = fixture();
    text.push_str("{\"schema\":\"msc-metr\n");
    let path = temp_path("torn");
    std::fs::write(&path, &text).unwrap();
    let read = top::read_stream(&path, true).unwrap();
    assert_eq!(read.docs.len(), 3);
    assert!(read.partial_tail);
    std::fs::remove_file(&path).unwrap();
}

/// Interior corruption is a different story: a malformed line *followed
/// by* valid lines cannot be a mid-append race and must fail strict
/// reads (and be skipped, not crashed on, in tolerant reads).
#[test]
fn interior_corruption_still_fails_strict() {
    let mut lines: Vec<String> = fixture().lines().map(str::to_string).collect();
    lines.insert(1, "{not json at all".to_string());
    let text = lines.join("\n") + "\n";
    let path = temp_path("corrupt");
    std::fs::write(&path, &text).unwrap();
    assert!(top::read_stream(&path, true).is_err());
    let tolerant = top::read_stream(&path, false).unwrap();
    assert_eq!(tolerant.docs.len(), 3);
    std::fs::remove_file(&path).unwrap();
}
