//! Reading, validating and rendering `msc-metrics-v1` JSONL streams —
//! the library half of `mscc top`, shared with the daemon's smoke tests.
//!
//! The sampler appends one JSONL line per sample while `mscc top` (or a
//! strict CI replay) re-reads the file, so every read races the writer.
//! A reader can catch:
//!
//! * a **partial trailing line** — the line's bytes are mid-append;
//! * a **split UTF-8 scalar** — the read boundary landed inside a
//!   multi-byte character (alert messages are arbitrary text), which
//!   makes the whole file invalid UTF-8 even though every *complete*
//!   line is fine.
//!
//! Both are transient: the next read sees the line whole. [`read_stream`]
//! therefore decodes the longest valid UTF-8 prefix, tolerates a
//! malformed final line (reporting it as a partial tail so followers can
//! re-read), and treats only malformed *interior* lines as corruption —
//! fatal in strict mode, skipped otherwise.

use msc_bench::results::Json;
use std::path::Path;

/// One racy read of a metrics stream: every complete sample, plus
/// whether the read ended on a partially-written tail (re-read to see
/// it whole).
#[derive(Debug)]
pub struct StreamRead {
    pub docs: Vec<Json>,
    pub partial_tail: bool,
}

/// Read and parse `path`, tolerating a writer racing the read (see the
/// module docs). Errors are unreadable files or — in strict mode —
/// malformed interior lines.
pub fn read_stream(path: &Path, strict: bool) -> Result<StreamRead, String> {
    let bytes =
        std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    // A read boundary inside a multi-byte character leaves an invalid
    // UTF-8 tail; decode the longest valid prefix and treat the rest as
    // the partial tail it is.
    let (text, utf8_truncated) = match std::str::from_utf8(&bytes) {
        Ok(t) => (t, false),
        Err(e) => {
            let valid = std::str::from_utf8(&bytes[..e.valid_up_to()]).unwrap();
            (valid, true)
        }
    };
    let mut read = parse_metrics_lines(text, strict)?;
    read.partial_tail |= utf8_truncated;
    Ok(read)
}

/// Parse every complete line of `text`. A malformed **final** line is
/// always tolerated (the sampler may be mid-append — even a line that
/// already ends in `\n` can be torn by the reader's read boundary); any
/// earlier malformed line is corruption — fatal in strict mode, skipped
/// otherwise.
pub fn parse_metrics_lines(text: &str, strict: bool) -> Result<StreamRead, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut docs = Vec::with_capacity(lines.len());
    let mut partial_tail = !text.is_empty() && !text.ends_with('\n');
    for (i, line) in lines.iter().enumerate() {
        match Json::parse(line) {
            Ok(doc) => docs.push(doc),
            Err(_) if i + 1 == lines.len() => partial_tail = true,
            Err(e) if strict => return Err(format!("metrics line {}: {e}", i + 1)),
            Err(_) => {}
        }
    }
    Ok(StreamRead { docs, partial_tail })
}

/// Strict stream validation: schema tag on every line, seq monotone from
/// 0, counters monotone non-decreasing, and a well-formed OpenMetrics
/// sibling (when present on disk).
pub fn strict_check_stream(input: &Path, docs: &[Json]) -> Result<(), String> {
    for (i, doc) in docs.iter().enumerate() {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != msc_trace::sampler::METRICS_SCHEMA {
            return Err(format!(
                "metrics line {}: schema {:?}, expected {:?}",
                i + 1,
                schema,
                msc_trace::sampler::METRICS_SCHEMA
            ));
        }
        let seq = doc.get("seq").and_then(Json::as_f64).unwrap_or(-1.0);
        if seq != i as f64 {
            return Err(format!("metrics line {}: seq {seq}, expected {i}", i + 1));
        }
        if let Some(prev) = i.checked_sub(1).map(|p| &docs[p]) {
            let (Some(Json::Obj(cur)), Some(before)) = (doc.get("counters"), prev.get("counters"))
            else {
                return Err(format!("metrics line {}: missing counters object", i + 1));
            };
            for (name, v) in cur {
                let now = v.as_f64().unwrap_or(0.0);
                let was = before.get(name).and_then(Json::as_f64).unwrap_or(0.0);
                if now < was {
                    return Err(format!(
                        "metrics line {}: counter {name} went backwards: {was} -> {now}",
                        i + 1
                    ));
                }
            }
        }
    }
    let om_path = input.with_extension("om");
    if om_path.exists() {
        let om = std::fs::read_to_string(&om_path)
            .map_err(|e| format!("cannot read {}: {e}", om_path.display()))?;
        msc_trace::openmetrics::validate(&om).map_err(|e| format!("{}: {e}", om_path.display()))?;
    }
    Ok(())
}

/// Render the per-rank dashboard for the latest sample of a stream.
pub fn render_top(input: &Path, docs: &[Json]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let Some(last) = docs.last() else {
        let _ = writeln!(out, "mscc top — {} (no samples yet)", input.display());
        return out;
    };
    let f = |key: &str| last.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let rate = |key: &str| {
        last.get("rates")
            .and_then(|r| r.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let _ = writeln!(
        out,
        "mscc top — {} | sample {} ({}) | {:.1} steps/s | halo p99 {:.2} ms | {:.1} steals/s",
        input.display(),
        f("seq") as u64,
        last.get("reason").and_then(Json::as_str).unwrap_or("?"),
        rate("steps_per_s"),
        rate("halo_wait_p99_ns") / 1e6,
        rate("pool_steals_per_s"),
    );
    let _ = writeln!(
        out,
        "{:>5} {:>10} {:>10} {:>12} {:>12} {:>8} {:>8} {:>6}",
        "rank", "steps", "last_step", "steps/s", "halo ms", "steals", "retrans", "recov"
    );
    if let Some(ranks) = last.get("ranks").and_then(Json::as_arr) {
        for r in ranks {
            let g = |key: &str| r.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "{:>5} {:>10} {:>10} {:>12.1} {:>12.2} {:>8} {:>8} {:>6}",
                g("rank") as u64,
                g("steps") as u64,
                g("last_step") as u64,
                g("step_rate"),
                g("halo_wait_ns") / 1e6,
                g("steals") as u64,
                g("retransmits") as u64,
                g("recoveries") as u64,
            );
        }
        if ranks.is_empty() {
            let _ = writeln!(out, "  (no per-rank samples yet)");
        }
    }
    // Most recent alert anywhere in the stream, plus the running total.
    let mut alerts_total = 0usize;
    let mut last_alert = None;
    for doc in docs {
        if let Some(alerts) = doc.get("alerts").and_then(Json::as_arr) {
            alerts_total += alerts.len();
            if let Some(a) = alerts.last() {
                last_alert = Some(a);
            }
        }
    }
    match last_alert {
        Some(a) => {
            let _ = writeln!(
                out,
                "alerts: {} total; last: [{}] {}",
                alerts_total,
                a.get("kind").and_then(Json::as_str).unwrap_or("?"),
                a.get("message").and_then(Json::as_str).unwrap_or(""),
            );
        }
        None => {
            let _ = writeln!(out, "alerts: none");
        }
    }
    out
}
