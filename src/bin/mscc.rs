//! `mscc` — the MSC compiler driver.
//!
//! Compiles a `.msc` stencil description to a C source package (plus
//! Makefile) for a target, optionally running the program functionally
//! and printing a simulated performance report:
//!
//! ```text
//! mscc stencil.msc                      # emit code for the file's target
//! mscc stencil.msc -o outdir            # choose the output directory
//! mscc stencil.msc --target matrix      # override the target
//! mscc stencil.msc --run                # execute functionally, print stats
//! mscc stencil.msc --simulate           # predicted time on the target model
//! mscc stencil.msc --stats              # static kernel statistics
//! mscc stencil.msc --autoschedule       # pick tiles/stream/tile_time automatically
//! mscc stencil.msc --run --dump out.grid  # save the final state (MSCGRID1 format)
//! mscc stencil.msc --profile            # run under tracing, print the profile table
//! mscc stencil.msc --trace out.json     # run under tracing, write chrome://tracing JSON
//! mscc stencil.msc --procs 2x2          # distributed run over a 2x2 process grid
//! mscc stencil.msc --procs 2x2 --trace out.json
//!                                       # ...stitched cross-rank trace + straggler report
//! mscc stencil.msc --procs 2x2 --chaos 42:drop=0.05,dup=0.02,corrupt=0.01
//!                                       # ...with seeded fault injection
//! mscc stencil.msc --procs 2x2 --chaos 1:kill=1@3 --checkpoint-every 2
//!                                       # kill a rank, restart from checkpoint
//! mscc bench --out BENCH_0006.json      # record the benchmark trajectory
//! mscc bench --diff OLD.json NEW.json   # exit nonzero on perf regression
//! mscc serve --workers 4                # run the mscd compile-and-run daemon
//! mscc submit stencil.msc --run         # send a program to a running mscd
//! ```
//!
//! `--profile` and `--trace` imply `--run`; both may be combined.
//! `--chaos` and `--checkpoint-every` imply a distributed run (default
//! process grid `2x1[x1...]` unless `--procs` is given); the result is
//! always verified bit-exactly against the serial reference.

use msc::bench::results::Json;
use msc::bench::suite;
use msc::comm::{run_distributed_resilient, FaultPlan, HeartbeatConfig, RunOptions};
use msc::core::analysis::StencilStats;
use msc::core::schedule::ExecPlan;
use msc::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// Grouped flag reference. Every flag the parser accepts must appear
/// here — `tests/mscc_cli.rs::help_documents_every_flag` enforces it.
const HELP: &str = "\
mscc — MSC stencil compiler driver

usage:
  mscc <file.msc> [options]    compile a stencil (and optionally run it)
  mscc check <file.msc> [options]  run the static stencil verifier only
  mscc lift <file.c> [options]  lift a restricted C loop nest to stencil IR
  mscc bench [options]         record or check the benchmark trajectory
  mscc top METRICS.jsonl [options]  live per-rank view of a metrics stream
  mscc serve [options]         run the mscd compile-and-run daemon
  mscc submit <file.msc> [options]  send a program to a running mscd

input / output:
  -o, --out DIR            output directory for the generated C package
      --target NAME        code generation target: sunway | matrix | cpu
      --dump PATH          save the final state to PATH (MSCGRID1 format)

execution:
      --run                execute functionally and print run statistics
      --exec-tier TIER     row evaluation tier: auto | interp | vm | specialized
                           (default auto — fastest applicable; every tier is
                           bit-identical to the interpreter)
      --simulate           print the predicted time on the target machine model
      --stats              print static kernel statistics
      --autoschedule       pick tiles/stream/tile_time automatically
      --pool-threads N     cap the persistent worker pool at N threads;
                           0 disables the pool and respawns worker threads
                           every step (the pre-pool scheduler). Default:
                           pool on, width decided by the plan

distributed:
      --procs PxQ[xR]      run over a process grid (e.g. 2x2), verified
                           bit-exactly against the serial reference
      --chaos SEED:SPEC    seeded fault injection (drop=,dup=,delay=,
                           corrupt=, kill=RANK@N); implies distributed
      --checkpoint-every K write a checkpoint every K steps
      --checkpoint-dir DIR checkpoint directory (default: temp dir)
      --spare-ranks N      launch N hot-spare ranks; a dead rank is healed
                           online (spare adopts its subdomain from the
                           buddy snapshot) instead of restarting the
                           world; implies distributed
      --heartbeat-ms MS    liveness beacon interval in ms (failure
                           detection timeout is 4x MS; default 50);
                           implies distributed and the membership layer

observability:
      --profile            run under tracing; print the counter and latency-
                           histogram tables (distributed runs also print the
                           per-step straggler report)
      --trace OUT.json     run under tracing; write chrome://tracing JSON
                           (distributed runs stitch all ranks into one
                           timeline with send->recv flow arrows)
      --flight-dir DIR     dump the always-on flight recorder to DIR as JSON
                           when a communication fault or restart fires
      --metrics-file PATH  sample live metrics during the run: one JSONL
                           line per interval appended to PATH (schema
                           msc-metrics-v1) plus an OpenMetrics snapshot
                           atomically rewritten at PATH's .om sibling;
                           the stream is flushed on exit and on faults,
                           and the online stall detector raises alerts
      --metrics-interval-ms MS
                           sampling interval in ms (default 250;
                           requires --metrics-file)

top subcommand (mscc top):
      --once               render one snapshot and exit (no tail-follow)
      --strict             validate the stream while rendering: schema
                           tag, monotone seq and counters, well-formed
                           OpenMetrics sibling; exit nonzero on violation
      --interval-ms MS     redraw interval while following (default 500)

check subcommand (mscc check):
      --json               emit machine-readable JSON diagnostics on stdout
                           (exit code still reflects deny-level findings;
                           --target selects the capacity lints as above)

lift subcommand (mscc lift):
      --emit-msc           print the lifted program as `.msc` DSL source
      --run                execute the lifted program (serial reference)
                           and print run statistics
      --json               emit machine-readable JSON diagnostics on stdout
                           (same schema and deny-gated exit code as
                           `mscc check`; MSC-L5xx codes report lift
                           failures, and a successful lift is additionally
                           validated bit-for-bit against direct
                           interpretation of the C nest on every
                           execution tier)

serve subcommand (mscc serve):
      --socket PATH        Unix socket to listen on (default: mscd.sock in
                           the system temp directory)
      --workers N          job worker threads (default 2)
      --max-queue N        admission bound on queued jobs (default 16); a
                           full queue answers a typed busy/queue response
                           instead of blocking the client
      --tenant-quota N     per-tenant in-flight bound, queued + running
                           (default 4); at quota a tenant gets busy/quota
                           while other tenants still get through
      --metrics-dir DIR    give every job its own telemetry session sampled
                           into DIR/job_<id>.jsonl (+ OpenMetrics sibling)
      --pool-threads N     helper threads each worker pre-warms in its
                           persistent execution pool (0 = grow on demand)

submit subcommand (mscc submit):
      --socket PATH        daemon socket to connect to (same default)
      --tenant NAME        tenant identity for admission control
                           (default `default`)
      --run                also execute the program functionally and report
                           steps/tiles and this job's telemetry counters
      --target NAME        override the code generation target
      --sleep-ms MS        artificial delay before the job body (a load
                           knob for admission-control testing)
      --ping               liveness probe instead of a submission
      --stats              print service-wide counters instead of a
                           submission
      --shutdown           ask the daemon to finish queued jobs and exit

bench subcommand (mscc bench):
      --quick              small grids — CI smoke mode
      --out FILE           write the recording to FILE (default BENCH_0006.json)
      --validate FILE      schema-check a recording and exit
      --diff OLD NEW       compare two recordings; exit nonzero on regression
      --threshold PCT      time-metric regression threshold in percent (default 15)
      --counts-only        diff only deterministic count metrics
      --doctor IN OUT      write a 20%-slowed copy of IN (regression-gate self-test)

  -h, --help               show this help
";

struct Args {
    input: PathBuf,
    outdir: Option<PathBuf>,
    target: Option<Target>,
    run: bool,
    simulate: bool,
    stats: bool,
    autoschedule: bool,
    dump: Option<PathBuf>,
    profile: bool,
    trace: Option<PathBuf>,
    procs: Option<Vec<usize>>,
    chaos: Option<String>,
    checkpoint_every: usize,
    checkpoint_dir: Option<PathBuf>,
    spare_ranks: usize,
    heartbeat_ms: Option<u64>,
    flight_dir: Option<PathBuf>,
    pool_threads: Option<usize>,
    exec_tier: msc::exec::ExecTier,
    metrics_file: Option<PathBuf>,
    metrics_interval_ms: Option<u64>,
}

struct TopArgs {
    input: PathBuf,
    once: bool,
    strict: bool,
    interval_ms: u64,
}

struct BenchArgs {
    quick: bool,
    out: PathBuf,
    validate: Option<PathBuf>,
    diff: Option<(PathBuf, PathBuf)>,
    doctor: Option<(PathBuf, PathBuf)>,
    threshold: f64,
    counts_only: bool,
}

struct CheckArgs {
    input: PathBuf,
    json: bool,
    target: Option<Target>,
}

struct LiftArgs {
    input: PathBuf,
    emit_msc: bool,
    run: bool,
    json: bool,
}

struct ServeArgs {
    socket: Option<PathBuf>,
    workers: usize,
    max_queue: usize,
    tenant_quota: usize,
    metrics_dir: Option<PathBuf>,
    pool_threads: usize,
}

/// What a `mscc submit` invocation asks the daemon for.
enum SubmitOp {
    Job(PathBuf),
    Ping,
    Stats,
    Shutdown,
}

struct SubmitArgs {
    socket: Option<PathBuf>,
    op: SubmitOp,
    tenant: String,
    run: bool,
    target: Option<Target>,
    sleep_ms: u64,
}

enum Cli {
    Compile(Box<Args>),
    Check(CheckArgs),
    Lift(LiftArgs),
    Bench(BenchArgs),
    Top(TopArgs),
    Serve(ServeArgs),
    Submit(SubmitArgs),
    Help,
}

fn parse_cli() -> Result<Cli, String> {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("bench") {
        argv.next();
        return parse_bench_args(argv).map(Cli::Bench);
    }
    if argv.peek().map(String::as_str) == Some("check") {
        argv.next();
        return parse_check_args(argv).map(Cli::Check);
    }
    if argv.peek().map(String::as_str) == Some("lift") {
        argv.next();
        return parse_lift_args(argv).map(Cli::Lift);
    }
    if argv.peek().map(String::as_str) == Some("top") {
        argv.next();
        return parse_top_args(argv).map(Cli::Top);
    }
    if argv.peek().map(String::as_str) == Some("serve") {
        argv.next();
        return parse_serve_args(argv).map(Cli::Serve);
    }
    if argv.peek().map(String::as_str) == Some("submit") {
        argv.next();
        return parse_submit_args(argv).map(Cli::Submit);
    }
    parse_args(argv)
}

fn parse_serve_args(mut argv: impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut s = ServeArgs {
        socket: None,
        workers: 2,
        max_queue: 16,
        tenant_quota: 4,
        metrics_dir: None,
        pool_threads: 0,
    };
    let count = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next()
            .ok_or(format!("missing count after {flag}"))?
            .parse::<usize>()
            .map_err(|_| format!("bad count after {flag}"))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--socket" => {
                s.socket = Some(PathBuf::from(
                    argv.next().ok_or("missing path after --socket")?,
                ))
            }
            "--workers" => {
                s.workers = count(&mut argv, "--workers")?;
                if s.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--max-queue" => s.max_queue = count(&mut argv, "--max-queue")?,
            "--tenant-quota" => s.tenant_quota = count(&mut argv, "--tenant-quota")?,
            "--metrics-dir" => {
                s.metrics_dir = Some(PathBuf::from(
                    argv.next().ok_or("missing directory after --metrics-dir")?,
                ))
            }
            "--pool-threads" => s.pool_threads = count(&mut argv, "--pool-threads")?,
            "-h" | "--help" => return Err("__help__".into()),
            other => return Err(format!("unexpected serve argument `{other}`")),
        }
    }
    Ok(s)
}

fn parse_submit_args(mut argv: impl Iterator<Item = String>) -> Result<SubmitArgs, String> {
    let mut input = None;
    let mut socket = None;
    let mut tenant = "default".to_string();
    let mut run = false;
    let mut target = None;
    let mut sleep_ms = 0u64;
    let (mut ping, mut stats, mut shutdown) = (false, false, false);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--socket" => {
                socket = Some(PathBuf::from(
                    argv.next().ok_or("missing path after --socket")?,
                ))
            }
            "--tenant" => tenant = argv.next().ok_or("missing name after --tenant")?,
            "--run" => run = true,
            "--target" => {
                let t = argv.next().ok_or("missing target name")?;
                target = Some(parse_target(&t)?);
            }
            "--sleep-ms" => {
                sleep_ms = argv
                    .next()
                    .ok_or("missing interval after --sleep-ms")?
                    .parse()
                    .map_err(|_| "bad interval after --sleep-ms".to_string())?;
            }
            "--ping" => ping = true,
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "-h" | "--help" => return Err("__help__".into()),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unexpected submit argument `{other}`")),
        }
    }
    let op = match (ping, stats, shutdown, input) {
        (true, false, false, None) => SubmitOp::Ping,
        (false, true, false, None) => SubmitOp::Stats,
        (false, false, true, None) => SubmitOp::Shutdown,
        (false, false, false, Some(file)) => SubmitOp::Job(file),
        (false, false, false, None) => {
            return Err("no input file (try --ping, --stats, --shutdown, or --help)".into())
        }
        _ => return Err("--ping/--stats/--shutdown are exclusive and take no file".into()),
    };
    Ok(SubmitArgs {
        socket,
        op,
        tenant,
        run,
        target,
        sleep_ms,
    })
}

fn parse_top_args(mut argv: impl Iterator<Item = String>) -> Result<TopArgs, String> {
    let mut input = None;
    let mut once = false;
    let mut strict = false;
    let mut interval_ms = 500u64;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--once" => once = true,
            "--strict" => strict = true,
            "--interval-ms" => {
                interval_ms = argv
                    .next()
                    .ok_or("missing interval after --interval-ms")?
                    .parse()
                    .map_err(|_| "bad interval after --interval-ms".to_string())?;
                if interval_ms == 0 {
                    return Err("--interval-ms must be at least 1".into());
                }
            }
            "-h" | "--help" => return Err("__help__".into()),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unexpected top argument `{other}`")),
        }
    }
    Ok(TopArgs {
        input: input.ok_or("no metrics file (try --help)")?,
        once,
        strict,
        interval_ms,
    })
}

fn parse_check_args(mut argv: impl Iterator<Item = String>) -> Result<CheckArgs, String> {
    let mut input = None;
    let mut json = false;
    let mut target = None;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => json = true,
            "--target" => {
                let t = argv.next().ok_or("missing target name")?;
                target = Some(parse_target(&t)?);
            }
            "-h" | "--help" => return Err("__help__".into()),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unexpected check argument `{other}`")),
        }
    }
    Ok(CheckArgs {
        input: input.ok_or("no input file (try --help)")?,
        json,
        target,
    })
}

fn parse_lift_args(mut argv: impl Iterator<Item = String>) -> Result<LiftArgs, String> {
    let mut input = None;
    let mut emit_msc = false;
    let mut run = false;
    let mut json = false;
    for a in argv.by_ref() {
        match a.as_str() {
            "--emit-msc" => emit_msc = true,
            "--run" => run = true,
            "--json" => json = true,
            "-h" | "--help" => return Err("__help__".into()),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unexpected lift argument `{other}`")),
        }
    }
    Ok(LiftArgs {
        input: input.ok_or("no input file (try --help)")?,
        emit_msc,
        run,
        json,
    })
}

fn parse_target(name: &str) -> Result<Target, String> {
    match name {
        "sunway" => Ok(Target::SunwayCG),
        "matrix" => Ok(Target::Matrix),
        "cpu" => Ok(Target::Cpu),
        other => Err(format!("unknown target `{other}`")),
    }
}

fn parse_bench_args(mut argv: impl Iterator<Item = String>) -> Result<BenchArgs, String> {
    let mut b = BenchArgs {
        quick: false,
        out: PathBuf::from(suite::BENCH_FILE),
        validate: None,
        diff: None,
        doctor: None,
        threshold: suite::DEFAULT_THRESHOLD,
        counts_only: false,
    };
    let path = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next()
            .map(PathBuf::from)
            .ok_or(format!("missing path after {flag}"))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--quick" => b.quick = true,
            "--out" => b.out = path(&mut argv, "--out")?,
            "--validate" => b.validate = Some(path(&mut argv, "--validate")?),
            "--diff" => b.diff = Some((path(&mut argv, "--diff")?, path(&mut argv, "--diff")?)),
            "--doctor" => {
                b.doctor = Some((path(&mut argv, "--doctor")?, path(&mut argv, "--doctor")?))
            }
            "--threshold" => {
                let pct: f64 = argv
                    .next()
                    .ok_or("missing percent after --threshold")?
                    .parse()
                    .map_err(|_| "bad percent after --threshold".to_string())?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err("--threshold must be within 0..=100".into());
                }
                b.threshold = pct / 100.0;
            }
            "--counts-only" => b.counts_only = true,
            "-h" | "--help" => return Err("__help__".into()),
            other => return Err(format!("unexpected bench argument `{other}`")),
        }
    }
    Ok(b)
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut input = None;
    let mut outdir = None;
    let mut target = None;
    let mut run = false;
    let mut simulate = false;
    let mut stats = false;
    let mut autoschedule = false;
    let mut dump = None;
    let mut profile = false;
    let mut trace = None;
    let mut procs = None;
    let mut chaos = None;
    let mut checkpoint_every = 0usize;
    let mut checkpoint_dir = None;
    let mut spare_ranks = 0usize;
    let mut heartbeat_ms = None;
    let mut flight_dir = None;
    let mut pool_threads = None;
    let mut exec_tier = msc::exec::ExecTier::Auto;
    let mut metrics_file = None;
    let mut metrics_interval_ms = None;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-o" | "--out" => {
                outdir = Some(PathBuf::from(
                    argv.next().ok_or("missing directory after -o")?,
                ))
            }
            "--target" => {
                let t = argv.next().ok_or("missing target name")?;
                target = Some(parse_target(&t)?);
            }
            "--run" => run = true,
            "--simulate" => simulate = true,
            "--stats" => stats = true,
            "--autoschedule" => autoschedule = true,
            "--dump" => {
                dump = Some(PathBuf::from(
                    argv.next().ok_or("missing path after --dump")?,
                ))
            }
            "--profile" => profile = true,
            "--trace" => {
                trace = Some(PathBuf::from(
                    argv.next().ok_or("missing path after --trace")?,
                ))
            }
            "--procs" => {
                let spec = argv.next().ok_or("missing process grid after --procs")?;
                let grid: Result<Vec<usize>, _> =
                    spec.split('x').map(|p| p.trim().parse::<usize>()).collect();
                let grid = grid.map_err(|_| format!("bad process grid `{spec}` (try 2x2)"))?;
                if grid.is_empty() || grid.contains(&0) {
                    return Err(format!("bad process grid `{spec}`"));
                }
                procs = Some(grid);
            }
            "--chaos" => chaos = Some(argv.next().ok_or("missing spec after --chaos")?),
            "--checkpoint-every" => {
                checkpoint_every = argv
                    .next()
                    .ok_or("missing step count after --checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad step count after --checkpoint-every".to_string())?;
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(PathBuf::from(
                    argv.next()
                        .ok_or("missing directory after --checkpoint-dir")?,
                ))
            }
            "--spare-ranks" => {
                spare_ranks = argv
                    .next()
                    .ok_or("missing rank count after --spare-ranks")?
                    .parse()
                    .map_err(|_| "bad rank count after --spare-ranks".to_string())?;
            }
            "--heartbeat-ms" => {
                let ms: u64 = argv
                    .next()
                    .ok_or("missing interval after --heartbeat-ms")?
                    .parse()
                    .map_err(|_| "bad interval after --heartbeat-ms".to_string())?;
                if ms == 0 {
                    return Err("--heartbeat-ms must be at least 1".into());
                }
                heartbeat_ms = Some(ms);
            }
            "--flight-dir" => {
                flight_dir = Some(PathBuf::from(
                    argv.next().ok_or("missing directory after --flight-dir")?,
                ))
            }
            "--metrics-file" => {
                metrics_file = Some(PathBuf::from(
                    argv.next().ok_or("missing path after --metrics-file")?,
                ))
            }
            "--metrics-interval-ms" => {
                metrics_interval_ms = Some(
                    argv.next()
                        .ok_or("missing interval after --metrics-interval-ms")?
                        .parse::<u64>()
                        .map_err(|_| "bad interval after --metrics-interval-ms".to_string())?,
                );
            }
            "--exec-tier" => {
                let t = argv.next().ok_or("missing tier after --exec-tier")?;
                exec_tier = msc::exec::ExecTier::parse(&t).ok_or(format!(
                    "unknown exec tier `{t}` (try auto, interp, vm, specialized)"
                ))?;
            }
            "--pool-threads" => {
                pool_threads = Some(
                    argv.next()
                        .ok_or("missing thread count after --pool-threads")?
                        .parse()
                        .map_err(|_| "bad thread count after --pool-threads".to_string())?,
                )
            }
            "-h" | "--help" => return Ok(Cli::Help),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if metrics_interval_ms.is_some() && metrics_file.is_none() {
        return Err("--metrics-interval-ms requires --metrics-file".into());
    }
    Ok(Cli::Compile(Box::new(Args {
        input: input.ok_or("no input file (try --help)")?,
        outdir,
        target,
        // Tracing flags are about observing a run, so they imply one.
        run: run || profile || trace.is_some(),
        simulate,
        stats,
        autoschedule,
        dump,
        profile,
        trace,
        procs,
        chaos,
        checkpoint_every,
        checkpoint_dir,
        spare_ranks,
        heartbeat_ms,
        flight_dir,
        pool_threads,
        exec_tier,
        metrics_file,
        metrics_interval_ms,
    })))
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) if e == "__help__" => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("mscc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cli {
        Cli::Help => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Cli::Compile(args) => drive(*args),
        Cli::Check(args) => drive_check(args),
        Cli::Lift(args) => drive_lift(args),
        Cli::Bench(args) => drive_bench(args),
        Cli::Top(args) => drive_top(args),
        Cli::Serve(args) => drive_serve(args),
        Cli::Submit(args) => drive_submit(args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mscc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_recording(path: &PathBuf) -> Result<Json, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()).into())
}

fn drive_bench(args: BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = &args.validate {
        let doc = load_recording(path)?;
        suite::validate(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "{}: valid trajectory recording (schema v{})",
            path.display(),
            suite::SCHEMA_VERSION
        );
        return Ok(());
    }
    if let Some((old_path, new_path)) = &args.diff {
        let old = load_recording(old_path)?;
        let new = load_recording(new_path)?;
        let regs = suite::diff(&old, &new, args.threshold, args.counts_only)?;
        if regs.is_empty() {
            println!(
                "no regressions: {} vs {} (threshold {:.0}%{})",
                old_path.display(),
                new_path.display(),
                args.threshold * 100.0,
                if args.counts_only {
                    ", counts only"
                } else {
                    ""
                }
            );
            return Ok(());
        }
        for r in &regs {
            eprintln!("regression: {r}");
        }
        return Err(format!("{} regression(s) found", regs.len()).into());
    }
    if let Some((input, out)) = &args.doctor {
        let doc = load_recording(input)?;
        suite::validate(&doc).map_err(|e| format!("{}: {e}", input.display()))?;
        // End-to-end resilience self-test: kill a rank mid-run and demand
        // a bit-exact online heal before certifying the rig healthy.
        let smoke = suite::recovery_smoke()?;
        println!(
            "recovery smoke: {} recoveries, {} restarts, {} buddy bytes; \
             detection latency p50 {:.1} us / p99 {:.1} us",
            smoke.recoveries,
            smoke.restarts,
            smoke.buddy_bytes,
            smoke.detect_p50_ns as f64 / 1e3,
            smoke.detect_p99_ns as f64 / 1e3,
        );
        // Observability must stay near-free: gate the metrics sampler's
        // wall-clock cost on the run it observes.
        let so = suite::sampler_overhead()?;
        println!(
            "sampler overhead: {:.1} ms bare vs {:.1} ms sampled at 100 ms \
             ({} sample(s), +{:.2}% wall, budget {:.0}%)",
            so.base_ns as f64 / 1e6,
            so.sampled_ns as f64 / 1e6,
            so.samples,
            so.overhead_frac * 100.0,
            suite::SAMPLER_OVERHEAD_BUDGET * 100.0,
        );
        if !so.within_budget {
            return Err(format!(
                "metrics sampler overhead {:.2}% exceeds the {:.0}% budget",
                so.overhead_frac * 100.0,
                suite::SAMPLER_OVERHEAD_BUDGET * 100.0
            )
            .into());
        }
        let slowed = suite::scale_times(&doc, 1.2);
        std::fs::write(out, format!("{slowed}\n"))
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!(
            "wrote 20%-slowed copy of {} to {} (regression-gate self-test input)",
            input.display(),
            out.display()
        );
        return Ok(());
    }
    let doc = suite::run_suite(args.quick)?;
    suite::validate(&doc).map_err(|e| format!("recorded document invalid: {e}"))?;
    std::fs::write(&args.out, format!("{doc}\n"))
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    let cases = doc
        .get("cases")
        .and_then(Json::as_arr)
        .map_or(0, |c| c.len());
    println!(
        "recorded {} benchmark case(s) to {} (schema v{}, {} mode)",
        cases,
        args.out.display(),
        suite::SCHEMA_VERSION,
        if args.quick { "quick" } else { "full" }
    );
    Ok(())
}

/// `mscc top`: tail-follow a sampler JSONL stream and redraw a per-rank
/// table (step rate, halo wait, steals, recoveries, last alert). With
/// `--once` it renders a single snapshot — the mode CI uses together
/// with `--strict`, which re-validates the whole stream and its
/// OpenMetrics sibling on every pass.
fn drive_top(args: TopArgs) -> Result<(), Box<dyn std::error::Error>> {
    use msc::top;
    let mut last_rendered = String::new();
    // In --once mode a read can race the sampler mid-append; retry a few
    // times before concluding the stream really has no complete samples.
    let mut once_retries = 50u32;
    loop {
        let read = top::read_stream(&args.input, args.strict)?;
        if args.strict {
            top::strict_check_stream(&args.input, &read.docs)?;
        }
        if args.once && read.docs.is_empty() && read.partial_tail && once_retries > 0 {
            once_retries -= 1;
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        }
        let rendered = top::render_top(&args.input, &read.docs);
        if rendered != last_rendered {
            if !args.once {
                // Home + clear: redraw in place while following.
                print!("\x1b[H\x1b[2J");
            }
            print!("{rendered}");
            last_rendered = rendered;
        }
        if args.once {
            if read.docs.is_empty() {
                return Err(format!("{}: no complete samples yet", args.input.display()).into());
            }
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(args.interval_ms));
    }
}

/// `mscc serve`: run the mscd daemon in the foreground until a wire
/// `shutdown` request arrives (queued jobs finish first).
fn drive_serve(args: ServeArgs) -> Result<(), Box<dyn std::error::Error>> {
    use msc::service::{Daemon, ServiceConfig};
    let defaults = ServiceConfig::default();
    let cfg = ServiceConfig {
        socket: args.socket.unwrap_or(defaults.socket),
        workers: args.workers,
        max_queue: args.max_queue,
        tenant_quota: args.tenant_quota,
        metrics_dir: args.metrics_dir,
        pool_threads: args.pool_threads,
    };
    let metrics = cfg
        .metrics_dir
        .as_ref()
        .map(|d| format!(", metrics under {}", d.display()))
        .unwrap_or_default();
    let daemon = Daemon::start(cfg)?;
    println!(
        "mscd listening on {} ({} worker(s), queue depth {}, {} job(s)/tenant{metrics})",
        daemon.socket().display(),
        daemon.stats().workers,
        args.max_queue,
        args.tenant_quota,
    );
    let stats = daemon.join();
    println!(
        "mscd exiting: {} done, {} denied, {} failed, {} rejected; compile cache {} hit(s) / {} miss(es)",
        stats.jobs_done,
        stats.jobs_denied,
        stats.jobs_failed,
        stats.jobs_rejected,
        stats.cache_hits,
        stats.cache_misses,
    );
    Ok(())
}

/// `mscc submit`: one synchronous request to a running mscd. Exit code
/// is nonzero for denied, busy, and failed jobs — scripts can gate on it.
fn drive_submit(args: SubmitArgs) -> Result<(), Box<dyn std::error::Error>> {
    use msc::service::{Client, Request, Response, ServiceConfig, Submission};
    let socket = args.socket.unwrap_or(ServiceConfig::default().socket);
    let mut client = Client::connect(&socket)?;
    let request = match &args.op {
        SubmitOp::Ping => Request::Ping,
        SubmitOp::Stats => Request::Stats,
        SubmitOp::Shutdown => Request::Shutdown,
        SubmitOp::Job(file) => {
            let source = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            Request::Submit(Submission {
                tenant: args.tenant.clone(),
                source,
                target: args.target,
                run: args.run,
                sleep_ms: args.sleep_ms,
            })
        }
    };
    match client.call(&request)? {
        Response::Pong { version, jobs_done } => {
            println!("mscd alive: protocol v{version}, {jobs_done} job(s) done");
        }
        Response::Stats(st) => {
            println!(
                "jobs: {} done, {} denied, {} failed, {} rejected; queue {} deep, \
                 {} running on {} worker(s); compile cache {} hit(s) / {} miss(es)",
                st.jobs_done,
                st.jobs_denied,
                st.jobs_failed,
                st.jobs_rejected,
                st.queue_depth,
                st.running,
                st.workers,
                st.cache_hits,
                st.cache_misses,
            );
        }
        Response::ShuttingDown => println!("mscd is shutting down (queued jobs finish first)"),
        Response::Done(d) => {
            println!(
                "job {}: compiled `{}` for {} ({} LoC, {:?}){}",
                d.job,
                d.program,
                d.target,
                d.loc,
                d.files,
                if d.cache_hit { " [cache hit]" } else { "" },
            );
            if let (Some(steps), Some(tiles)) = (d.steps, d.tiles) {
                println!("job {}: ran {steps} step(s), {tiles} tile(s)", d.job);
            }
            if !d.counters.is_empty() {
                let list: Vec<String> =
                    d.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
                println!("job {}: counters {}", d.job, list.join(" "));
            }
            if let Some(path) = &d.metrics_path {
                println!("job {}: metrics stream {path}", d.job);
            }
        }
        Response::Denied { program, report } => {
            // Surface each structured diagnostic the way `mscc check`
            // renders them, then fail.
            let diags = report.get("diagnostics").and_then(Json::as_arr);
            for d in diags.into_iter().flatten() {
                let code = d.get("code").and_then(Json::as_str).unwrap_or("?");
                let msg = d.get("message").and_then(Json::as_str).unwrap_or("");
                eprintln!("{code}: {msg}");
            }
            return Err(format!("daemon denied `{program}` (deny-level lints)").into());
        }
        Response::Busy {
            reason,
            depth,
            limit,
        } => {
            return Err(format!(
                "daemon busy ({}): {depth} of {limit} slot(s) taken; resubmit later",
                reason.as_str()
            )
            .into());
        }
        Response::Error { message } => return Err(format!("job failed: {message}").into()),
    }
    Ok(())
}

/// `mscc check`: parse without the builder's hard halo/window validation
/// so *every* defect surfaces as a structured lint, then run the
/// verifier. Exit code is nonzero iff a deny-level diagnostic fired.
fn drive_check(args: CheckArgs) -> Result<(), Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input.display()))?;
    let parsed = msc::core::parse::parse_unchecked(&source)?;
    let target = args.target.or(parsed.target);
    let report = msc::lint::lint_program(&parsed.program, target);
    if args.json {
        println!("{}", report.to_json());
    } else if report.is_clean() {
        println!(
            "lint clean: `{}` (halo, window, race, capacity; target {})",
            parsed.program.name,
            target.map_or("none", Target::as_str)
        );
    } else {
        print!("{}", report.render());
    }
    if report.has_deny() {
        return Err(format!(
            "{} deny-level lint(s) in `{}`",
            report.deny_count(),
            parsed.program.name
        )
        .into());
    }
    Ok(())
}

/// `mscc lift`: statically lift a restricted C loop nest into the
/// stencil IR, run the full verifier over the recovered program, and —
/// when it comes back clean — validate the translation bit-for-bit
/// against direct interpretation of the original nest on every
/// execution tier. Exit code is nonzero iff a deny-level diagnostic
/// fired (MSC-L5xx lift failures included).
fn drive_lift(args: LiftArgs) -> Result<(), Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input.display()))?;
    let fallback = args
        .input
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("lifted");
    let outcome = msc::lift::lift_source(&source, fallback);
    let (mut report, lifted) = (outcome.report, outcome.lifted);
    let mut validation = None;
    if let Some(lifted) = &lifted {
        if !report.has_deny() {
            match msc::lift::validate(lifted, &msc::lift::DEFAULT_SEEDS) {
                Ok(v) => validation = Some(v),
                Err(e) => report.push(e.to_diagnostic()),
            }
        }
    }
    let name = lifted
        .as_ref()
        .map_or(fallback, |l| l.program.name.as_str())
        .to_string();
    if args.json {
        println!("{}", report.to_json());
    } else if report.is_clean() {
        let v = validation
            .as_ref()
            .expect("clean lift reports always carry a validation outcome");
        println!(
            "lift clean: `{name}` validated bit-for-bit on {} seed(s) x {} tier(s) ({} cells compared)",
            v.seeds.len(),
            v.tiers,
            v.cells_compared
        );
    } else {
        print!("{}", report.render());
    }
    if report.has_deny() {
        return Err(format!(
            "{} deny-level lint(s) lifting `{name}`",
            report.deny_count()
        )
        .into());
    }
    let lifted = lifted.expect("a deny-free lift report implies a lifted program");
    if args.emit_msc {
        print!("{}", msc::core::parse::to_msc_source(&lifted.program, None));
    }
    if args.run {
        let grid = &lifted.program.grid;
        let init: msc::exec::Grid<f64> = msc::exec::Grid::random(&grid.shape, &grid.halo, 42);
        let (out, stats) = msc::exec::run_program_tier(
            &lifted.program,
            &msc::exec::driver::Executor::Reference,
            &init,
            msc::exec::Boundary::Dirichlet,
            msc::exec::ExecTier::Auto,
        )?;
        println!(
            "ran `{name}`: {} step(s), {} tile(s), interior sum {:.6e}",
            stats.steps,
            stats.tiles_executed,
            out.interior_sum()
        );
    }
    Ok(())
}

fn drive(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input.display()))?;
    let parsed = msc::core::parse::parse_unchecked(&source)?;
    let mut program = parsed.program;
    let target = args.target.or(parsed.target).unwrap_or(Target::Cpu);

    // The lint gate runs before anything else: deny-level findings stop
    // the build with every defect listed (the library entry points
    // re-check, so this is also the user-facing error path), and
    // warnings print to stderr without failing.
    let lint = msc::lint::lint_program(&program, Some(target));
    if lint.has_deny() {
        return Err(format!("lint rejected `{}`:\n{}", program.name, lint.render()).into());
    }
    if !lint.is_clean() {
        eprint!("{}", lint.render());
    }

    // Live telemetry: a metrics-sampled run gets its own session hub so
    // the sampler observes exactly this invocation. Installed before the
    // flight-dir handling below, which then scopes to the same session.
    let mut sampler = None;
    let mut hub_guard = None;
    let session_hub = if let Some(path) = &args.metrics_file {
        let cfg =
            msc::trace::SamplerConfig::from_millis(args.metrics_interval_ms.unwrap_or(250), path)?;
        let hub = msc::trace::TelemetryHub::new();
        hub.set_enabled(true);
        hub_guard = Some(msc::trace::install_thread_hub(Arc::clone(&hub)));
        sampler = Some(
            msc::trace::Sampler::start(Arc::clone(&hub), cfg)
                .map_err(|e| format!("cannot start metrics sampler: {e}"))?,
        );
        Some(hub)
    } else {
        None
    };
    let _hub_guard = hub_guard;

    if let Some(dir) = &args.flight_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        msc::trace::set_flight_dump_dir(Some(dir.clone()));
    }

    if let Some(n) = args.pool_threads {
        msc::exec::pool::set_pool_threads(n);
    }

    // Tier selection for every execution path in this invocation; the
    // distributed branch also carries it explicitly through RunOptions.
    msc::exec::set_exec_tier(args.exec_tier);

    println!(
        "compiled `{}`: {}D grid {:?}, {} kernels, window {}, {} timesteps, target {}",
        program.name,
        program.grid.ndim(),
        program.grid.shape,
        program.stencil.kernels.len(),
        program.stencil.time_window(),
        program.timesteps,
        target.as_str()
    );

    if args.autoschedule {
        let machine = match target {
            Target::SunwayCG => msc::machine::presets::sunway_cg(),
            Target::Matrix => msc::machine::presets::matrix_processor(),
            Target::Cpu => msc::machine::presets::xeon_server(),
        };
        let stats = StencilStats::of(&program.stencil, program.grid.dtype)?;
        let auto = msc::tune::auto_schedule(
            &program.grid.shape,
            &stats,
            &program.stencil.reach(),
            program.stencil.kernels[0].points(),
            &machine,
            target,
            if program.grid.dtype == DType::F32 {
                Precision::Fp32
            } else {
                Precision::Fp64
            },
        )?;
        for d in &auto.decisions {
            println!("autoschedule: {d}");
        }
        println!(
            "autoschedule: selected tile {:?}, stream {}, tile_time {} ({:.3} ms/step predicted)",
            auto.schedule.tile_factors,
            auto.schedule.double_buffer,
            auto.schedule.time_tile,
            auto.predicted_s * 1e3
        );
        for k in &mut program.stencil.kernels {
            k.schedule = auto.schedule.clone();
        }
    }

    if args.stats {
        let dtype = program.grid.dtype;
        let s = StencilStats::of(&program.stencil, dtype)?;
        println!(
            "per point: {} reads ({} B), {} B written, {} flops; reach {:?}",
            s.points,
            s.read_bytes,
            s.write_bytes,
            s.ops(),
            program.stencil.reach()
        );
    }

    if args.simulate {
        let machine = match target {
            Target::SunwayCG => msc::machine::presets::sunway_cg(),
            Target::Matrix => msc::machine::presets::matrix_processor(),
            Target::Cpu => msc::machine::presets::xeon_server(),
        };
        let sched = effective_schedule(&program, target);
        let plan = ExecPlan::lower(&sched, program.grid.ndim(), &program.grid.shape)?;
        let stats = StencilStats::of(&program.stencil, program.grid.dtype)?;
        let rep = simulate_step(
            &StepInputs {
                stats,
                reach: program.stencil.reach(),
                plan: &plan,
                prec: if program.grid.dtype == DType::F32 {
                    Precision::Fp32
                } else {
                    Precision::Fp64
                },
            },
            &machine,
        );
        println!(
            "simulated on {}: {:.3} ms/step, {:.1} GFlop/s, {:?}-bound (OI {:.2} F/B)",
            machine.name,
            rep.time_s * 1e3,
            rep.gflops(),
            rep.bound,
            rep.oi_dram
        );
    }

    let distributed = args.procs.is_some()
        || args.chaos.is_some()
        || args.checkpoint_every > 0
        || args.spare_ranks > 0
        || args.heartbeat_ms.is_some();
    if distributed {
        let ndim = program.grid.ndim();
        let procs = match &args.procs {
            Some(p) if p.len() == ndim => p.clone(),
            Some(p) => {
                return Err(
                    format!("--procs has {} dims but the grid is {}D", p.len(), ndim).into(),
                )
            }
            None => {
                let mut p = vec![1; ndim];
                p[0] = 2;
                p
            }
        };
        let mut opts = RunOptions {
            tier: args.exec_tier,
            hub: session_hub.clone(),
            ..RunOptions::default()
        };
        if let Some(spec) = &args.chaos {
            opts.chaos = Some(Arc::new(FaultPlan::parse(spec)?));
        }
        if args.checkpoint_every > 0 {
            let dir = args.checkpoint_dir.clone().unwrap_or_else(|| {
                std::env::temp_dir().join(format!("mscc_ckpt_{}", program.name))
            });
            // Snapshots from an earlier invocation must never be resumed.
            let _ = std::fs::remove_dir_all(&dir);
            opts.checkpoint_dir = Some(dir);
            opts.checkpoint_every = args.checkpoint_every;
        }
        opts.spare_ranks = args.spare_ranks;
        if let Some(ms) = args.heartbeat_ms {
            opts.heartbeat = Some(HeartbeatConfig::from_millis(ms)?);
        }
        if opts.spare_ranks > 0 || opts.heartbeat.is_some() {
            let hb = opts.heartbeat.clone().unwrap_or_default();
            println!(
                "resilience policy: {} spare rank(s), heartbeat every {} ms, \
                 failure detection after {} ms, keeping {} buddy generation(s)",
                opts.spare_ranks,
                hb.every.as_millis(),
                hb.detect.as_millis(),
                opts.checkpoint_keep,
            );
        }
        let tracing = args.profile || args.trace.is_some();
        if tracing {
            msc::trace::reset();
            msc::trace::set_enabled(true);
        }
        let init: Grid<f64> = Grid::random(&program.grid.shape, &program.grid.halo, 42);
        let t0 = std::time::Instant::now();
        let (out, stats) = run_distributed_resilient(
            &program,
            &procs,
            &init,
            Boundary::Dirichlet,
            &opts,
            |sub| {
                let mut s = msc::core::schedule::Schedule::default();
                let tile: Vec<usize> = sub.iter().map(|&x| (x / 2).max(1)).collect();
                s.tile(&tile);
                s.parallel("xo", 2);
                ExecPlan::lower(&s, sub.len(), sub)
            },
        )?;
        let dt = t0.elapsed();
        if tracing {
            msc::trace::set_enabled(false);
        }
        println!(
            "distributed run over {} ranks {:?}: {} steps in {:.1} ms; {} halo msgs, \
             {} faults injected, {} retransmits, {} restarts, {} recoveries, \
             {} checkpoint bytes; interior checksum {:.6e}",
            stats.ranks,
            procs,
            stats.steps,
            dt.as_secs_f64() * 1e3,
            stats.messages,
            stats.faults_injected(),
            stats.retransmits(),
            stats.restarts,
            stats.recoveries,
            stats.checkpoint_bytes(),
            out.interior_sum()
        );
        let (reference, _) = run_program(&program, &Executor::Reference, &init)?;
        if out.as_slice() != reference.as_slice() {
            return Err(format!(
                "distributed result differs from serial reference (max rel err {:.2e})",
                max_rel_error(&out, &reference)
            )
            .into());
        }
        println!("verified vs serial reference: bit-identical");
        if tracing {
            // CommStats carries the authoritative counters and latency
            // histograms (merged across ranks by the driver); the global
            // capture contributes the rank-tagged span timeline recorded
            // by the worker threads. Stitched together they are one
            // cross-rank profile.
            let mut prof = stats.profile(format!("{} (distributed)", program.name));
            let spans = msc::trace::Profile::capture(String::new()).spans;
            prof.spans = spans;
            let report = msc::trace::straggler_report(&prof);
            print!("{}", msc::trace::render_straggler_report(&report));
            if args.profile {
                print!("{}", prof.to_table());
            }
            if let Some(path) = &args.trace {
                std::fs::write(path, prof.to_chrome_json())
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                println!(
                    "wrote stitched chrome://tracing profile ({} ranks) to {}",
                    stats.ranks,
                    path.display()
                );
            }
            // A metrics session still owes its final flush; resetting
            // the hub here would zero the sampler's last sample.
            if session_hub.is_none() {
                msc::trace::reset();
            }
        }
        if let Some(path) = &args.dump {
            msc::exec::io::save(&out, path)?;
            println!("dumped final state to {}", path.display());
        }
    } else if args.run {
        let tracing = args.profile || args.trace.is_some();
        let init: Grid<f64> = Grid::random(&program.grid.shape, &program.grid.halo, 42);
        let sched = effective_schedule(&program, target);
        let plan = ExecPlan::lower(&sched, program.grid.ndim(), &program.grid.shape)?;
        if tracing {
            msc::trace::reset();
            msc::trace::set_enabled(true);
        }
        let t0 = std::time::Instant::now();
        let (out, stats) = run_program(&program, &Executor::Tiled(plan), &init)?;
        let dt = t0.elapsed();
        if tracing {
            msc::trace::set_enabled(false);
        }
        // Resolved tier, reconstructed from what the run actually counted
        // (Auto may have degraded, e.g. an off-menu shape falling back to
        // the VM), not from what was requested.
        let tier = if stats.specialized_hits() > 0 {
            "specialized"
        } else if stats.vm_dispatches() > 0 {
            "vm"
        } else {
            "interp"
        };
        println!(
            "ran {} steps in {:.1} ms ({} tiles, {tier} tier); interior checksum {:.6e}",
            stats.steps,
            dt.as_secs_f64() * 1e3,
            stats.tiles_executed,
            out.interior_sum()
        );
        if tracing {
            let prof = msc::trace::Profile::capture(program.name.clone());
            if args.profile {
                print!("{}", prof.to_table());
            }
            if let Some(path) = &args.trace {
                std::fs::write(path, prof.to_chrome_json())
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                println!("wrote chrome://tracing profile to {}", path.display());
            }
            if session_hub.is_none() {
                msc::trace::reset();
            }
        }
        let (reference, _) = run_program(&program, &Executor::Reference, &init)?;
        println!(
            "verified vs serial reference: max rel err {:.2e}",
            max_rel_error(&out, &reference)
        );
        if let Some(path) = &args.dump {
            msc::exec::io::save(&out, path)?;
            println!("dumped final state to {}", path.display());
        }
    }

    if let Some(s) = sampler.take() {
        let sum = s.stop();
        println!(
            "metrics: {} sample(s), {} alert(s) -> {} (OpenMetrics: {})",
            sum.samples,
            sum.alerts,
            sum.jsonl_path.display(),
            sum.openmetrics_path.display()
        );
        if let Some(e) = sum.io_error {
            eprintln!("mscc: metrics stream had write errors: {e}");
        }
    }

    let dir = args
        .outdir
        .unwrap_or_else(|| PathBuf::from(format!("{}_{}", program.name, target.as_str())));
    let pkg = compile_to_source(&program, target)?;
    pkg.write_to(&dir)?;
    println!(
        "wrote {:?} ({} LoC) to {}",
        pkg.file_names(),
        pkg.total_loc(),
        dir.display()
    );
    Ok(())
}

/// The kernel's own schedule if any primitives were given, else the
/// Table 5 preset clamped to the grid.
fn effective_schedule(program: &StencilProgram, target: Target) -> msc::core::schedule::Schedule {
    let k = &program.stencil.kernels[0];
    if k.schedule.tile_factors.is_empty() && k.schedule.parallel.is_none() {
        preset_for_grid(k.ndim, k.points(), target, &program.grid.shape)
    } else {
        k.schedule.clone()
    }
}
