//! `mscc` — the MSC compiler driver.
//!
//! Compiles a `.msc` stencil description to a C source package (plus
//! Makefile) for a target, optionally running the program functionally
//! and printing a simulated performance report:
//!
//! ```text
//! mscc stencil.msc                      # emit code for the file's target
//! mscc stencil.msc -o outdir            # choose the output directory
//! mscc stencil.msc --target matrix      # override the target
//! mscc stencil.msc --run                # execute functionally, print stats
//! mscc stencil.msc --simulate           # predicted time on the target model
//! mscc stencil.msc --stats              # static kernel statistics
//! mscc stencil.msc --autoschedule       # pick tiles/stream/tile_time automatically
//! mscc stencil.msc --run --dump out.grid  # save the final state (MSCGRID1 format)
//! mscc stencil.msc --profile            # run under tracing, print the profile table
//! mscc stencil.msc --trace out.json     # run under tracing, write chrome://tracing JSON
//! ```
//!
//! `--profile` and `--trace` imply `--run`; both may be combined.

use msc::core::analysis::StencilStats;
use msc::core::schedule::ExecPlan;
use msc::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    input: PathBuf,
    outdir: Option<PathBuf>,
    target: Option<Target>,
    run: bool,
    simulate: bool,
    stats: bool,
    autoschedule: bool,
    dump: Option<PathBuf>,
    profile: bool,
    trace: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut outdir = None;
    let mut target = None;
    let mut run = false;
    let mut simulate = false;
    let mut stats = false;
    let mut autoschedule = false;
    let mut dump = None;
    let mut profile = false;
    let mut trace = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-o" | "--out" => {
                outdir = Some(PathBuf::from(
                    argv.next().ok_or("missing directory after -o")?,
                ))
            }
            "--target" => {
                let t = argv.next().ok_or("missing target name")?;
                target = Some(match t.as_str() {
                    "sunway" => Target::SunwayCG,
                    "matrix" => Target::Matrix,
                    "cpu" => Target::Cpu,
                    other => return Err(format!("unknown target `{other}`")),
                });
            }
            "--run" => run = true,
            "--simulate" => simulate = true,
            "--stats" => stats = true,
            "--autoschedule" => autoschedule = true,
            "--dump" => dump = Some(PathBuf::from(argv.next().ok_or("missing path after --dump")?)),
            "--profile" => profile = true,
            "--trace" => {
                trace = Some(PathBuf::from(
                    argv.next().ok_or("missing path after --trace")?,
                ))
            }
            "-h" | "--help" => {
                return Err("usage: mscc <file.msc> [-o DIR] [--target sunway|matrix|cpu] [--run] [--simulate] [--stats] [--autoschedule] [--profile] [--trace OUT.json]".into())
            }
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Args {
        input: input.ok_or("no input file (try --help)")?,
        outdir,
        target,
        // Tracing flags are about observing a run, so they imply one.
        run: run || profile || trace.is_some(),
        simulate,
        stats,
        autoschedule,
        dump,
        profile,
        trace,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mscc: {e}");
            return ExitCode::FAILURE;
        }
    };
    match drive(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mscc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn drive(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input.display()))?;
    let parsed = msc::core::parse::parse(&source)?;
    let mut program = parsed.program;
    let target = args
        .target
        .or(parsed.target)
        .unwrap_or(Target::Cpu);

    println!(
        "compiled `{}`: {}D grid {:?}, {} kernels, window {}, {} timesteps, target {}",
        program.name,
        program.grid.ndim(),
        program.grid.shape,
        program.stencil.kernels.len(),
        program.stencil.time_window(),
        program.timesteps,
        target.as_str()
    );

    if args.autoschedule {
        let machine = match target {
            Target::SunwayCG => msc::machine::presets::sunway_cg(),
            Target::Matrix => msc::machine::presets::matrix_processor(),
            Target::Cpu => msc::machine::presets::xeon_server(),
        };
        let stats = StencilStats::of(&program.stencil, program.grid.dtype)?;
        let auto = msc::tune::auto_schedule(
            &program.grid.shape,
            &stats,
            &program.stencil.reach(),
            program.stencil.kernels[0].points(),
            &machine,
            target,
            if program.grid.dtype == DType::F32 {
                Precision::Fp32
            } else {
                Precision::Fp64
            },
        )?;
        for d in &auto.decisions {
            println!("autoschedule: {d}");
        }
        println!(
            "autoschedule: selected tile {:?}, stream {}, tile_time {} ({:.3} ms/step predicted)",
            auto.schedule.tile_factors,
            auto.schedule.double_buffer,
            auto.schedule.time_tile,
            auto.predicted_s * 1e3
        );
        for k in &mut program.stencil.kernels {
            k.schedule = auto.schedule.clone();
        }
    }

    if args.stats {
        let dtype = program.grid.dtype;
        let s = StencilStats::of(&program.stencil, dtype)?;
        println!(
            "per point: {} reads ({} B), {} B written, {} flops; reach {:?}",
            s.points,
            s.read_bytes,
            s.write_bytes,
            s.ops(),
            program.stencil.reach()
        );
    }

    if args.simulate {
        let machine = match target {
            Target::SunwayCG => msc::machine::presets::sunway_cg(),
            Target::Matrix => msc::machine::presets::matrix_processor(),
            Target::Cpu => msc::machine::presets::xeon_server(),
        };
        let sched = effective_schedule(&program, target);
        let plan = ExecPlan::lower(&sched, program.grid.ndim(), &program.grid.shape)?;
        let stats = StencilStats::of(&program.stencil, program.grid.dtype)?;
        let rep = simulate_step(
            &StepInputs {
                stats,
                reach: program.stencil.reach(),
                plan: &plan,
                prec: if program.grid.dtype == DType::F32 {
                    Precision::Fp32
                } else {
                    Precision::Fp64
                },
            },
            &machine,
        );
        println!(
            "simulated on {}: {:.3} ms/step, {:.1} GFlop/s, {:?}-bound (OI {:.2} F/B)",
            machine.name,
            rep.time_s * 1e3,
            rep.gflops(),
            rep.bound,
            rep.oi_dram
        );
    }

    if args.run {
        let tracing = args.profile || args.trace.is_some();
        let init: Grid<f64> = Grid::random(&program.grid.shape, &program.grid.halo, 42);
        let sched = effective_schedule(&program, target);
        let plan = ExecPlan::lower(&sched, program.grid.ndim(), &program.grid.shape)?;
        if tracing {
            msc::trace::reset();
            msc::trace::set_enabled(true);
        }
        let t0 = std::time::Instant::now();
        let (out, stats) = run_program(&program, &Executor::Tiled(plan), &init)?;
        let dt = t0.elapsed();
        if tracing {
            msc::trace::set_enabled(false);
        }
        println!(
            "ran {} steps in {:.1} ms ({} tiles); interior checksum {:.6e}",
            stats.steps,
            dt.as_secs_f64() * 1e3,
            stats.tiles_executed,
            out.interior_sum()
        );
        if tracing {
            let prof = msc::trace::Profile::capture(program.name.clone());
            if args.profile {
                print!("{}", prof.to_table());
            }
            if let Some(path) = &args.trace {
                std::fs::write(path, prof.to_chrome_json())
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                println!("wrote chrome://tracing profile to {}", path.display());
            }
            msc::trace::reset();
        }
        let (reference, _) = run_program(&program, &Executor::Reference, &init)?;
        println!(
            "verified vs serial reference: max rel err {:.2e}",
            max_rel_error(&out, &reference)
        );
        if let Some(path) = &args.dump {
            msc::exec::io::save(&out, path)?;
            println!("dumped final state to {}", path.display());
        }
    }

    let dir = args
        .outdir
        .unwrap_or_else(|| PathBuf::from(format!("{}_{}", program.name, target.as_str())));
    let pkg = compile_to_source(&program, target)?;
    pkg.write_to(&dir)?;
    println!(
        "wrote {:?} ({} LoC) to {}",
        pkg.file_names(),
        pkg.total_loc(),
        dir.display()
    );
    Ok(())
}

/// The kernel's own schedule if any primitives were given, else the
/// Table 5 preset clamped to the grid.
fn effective_schedule(program: &StencilProgram, target: Target) -> msc::core::schedule::Schedule {
    let k = &program.stencil.kernels[0];
    if k.schedule.tile_factors.is_empty() && k.schedule.parallel.is_none() {
        preset_for_grid(k.ndim, k.points(), target, &program.grid.shape)
    } else {
        k.schedule.clone()
    }
}
