//! # MSC — a stencil DSL and compiler for many-core processors
//!
//! A from-scratch Rust reproduction of *"Automatic Code Generation and
//! Optimization of Large-scale Stencil Computation on Many-core
//! Processors"* (ICPP '21). This facade crate re-exports the whole
//! system; see the individual crates for the pieces:
//!
//! * [`core`] (`msc-core`) — the DSL, IR, schedule primitives, benchmark
//!   catalog and static analysis (the paper's contribution);
//! * [`machine`] (`msc-machine`) — Sunway SW26010 / Matrix MT2000+ /
//!   Xeon models, DMA, caches, interconnects;
//! * [`exec`] (`msc-exec`) — functional executors (serial reference,
//!   tiled parallel, SPM-staged) with correctness verification, running
//!   rows through tiered evaluation (interpreter / VM / specialized);
//! * [`vm`] (`msc-vm`) — the bytecode compiler and row-vectorized
//!   register VM behind the `vm` execution tier;
//! * [`sim`] (`msc-sim`) — the deterministic timing simulator behind the
//!   figures;
//! * [`codegen`] (`msc-codegen`) — AOT C generation (OpenMP, athread,
//!   MPI) plus Makefiles and LoC accounting;
//! * [`comm`] (`msc-comm`) — the communication library: decomposition,
//!   message-passing runtime, asynchronous halo exchange, distributed
//!   driver;
//! * [`lint`] (`msc-lint`) — the compile-time stencil verifier: footprint
//!   inference, halo/window sufficiency, parallel-race and capacity
//!   lints, gating every codegen and execution entry point;
//! * [`lift`] (`msc-lift`) — static lifting of legacy C loop nests into
//!   the stencil IR: parse → affine analysis → footprint recovery →
//!   bit-exact translation validation (`mscc lift`);
//! * [`tune`] (`msc-tune`) — regression performance model + simulated
//!   annealing auto-tuner;
//! * [`trace`] (`msc-trace`) — low-overhead runtime tracing and metrics:
//!   counters, span timelines, profiles, chrome://tracing export;
//! * [`service`] (`msc-service`) — the `mscd` compile-and-run daemon:
//!   line-JSON protocol, compile cache, admission control, per-job
//!   telemetry sessions (`mscc serve` / `mscc submit`);
//! * [`baselines`] (`msc-baselines`) — OpenACC/OpenMP/Halide/Patus/
//!   Physis comparison models;
//! * [`mod@bench`] (`msc-bench`) — the per-table/figure experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use msc::prelude::*;
//!
//! // Listing 1 of the paper: a 3d7pt stencil with two time dependencies.
//! let program = StencilProgram::builder("3d7pt")
//!     .grid_3d("B", DType::F64, [32, 32, 32], 1, 3)
//!     .kernel(Kernel::star_normalized("S_3d7pt", 3, 1))
//!     .combine(&[(1, 0.6, "S_3d7pt"), (2, 0.4, "S_3d7pt")])
//!     .timesteps(4)
//!     .build()
//!     .unwrap();
//!
//! // Run it functionally and check it against the serial reference.
//! let init: Grid<f64> = Grid::random(&program.grid.shape, &program.grid.halo, 42);
//! let (result, stats) = run_program(&program, &Executor::Reference, &init).unwrap();
//! assert_eq!(stats.steps, 4);
//! assert!(result.interior_sum().is_finite());
//! ```

pub use msc_baselines as baselines;
pub use msc_bench as bench;
pub use msc_codegen as codegen;
pub use msc_comm as comm;
pub use msc_core as core;
pub use msc_exec as exec;
pub use msc_lift as lift;
pub use msc_lint as lint;
pub use msc_machine as machine;
pub use msc_service as service;
pub use msc_sim as sim;
pub use msc_trace as trace;
pub use msc_tune as tune;
pub use msc_vm as vm;

pub mod top;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use msc_codegen::compile_to_source;
    pub use msc_comm::{run_distributed, run_distributed_bc};
    pub use msc_core::prelude::*;
    pub use msc_core::schedule::{preset_for_grid, BufferScope, Target};
    pub use msc_exec::driver::{run_program, run_program_bc, Executor, RunStats};
    pub use msc_exec::Boundary;
    pub use msc_exec::{max_rel_error, Grid};
    pub use msc_lint::{check_deny, lint_program, LintCode};
    pub use msc_machine::model::Precision;
    pub use msc_sim::{simulate_step, StepInputs};
}
