//! Acoustic wave propagation through a **heterogeneous medium** — the
//! §5.6 workload class (WRF/POP2-style kernels with coefficient grids):
//!
//! ```text
//! u[t] = 2·u[t-1] − u[t-2] + K(x) · ∇²u[t-1],   K(x) = (c(x)·Δt/Δx)²
//! ```
//!
//! The velocity field `c(x)` has a slow layer and a fast layer; the
//! wavefront visibly travels further in the fast layer. The update is a
//! variable-coefficient stencil compiled from a single IR expression.
//!
//! Run with: `cargo run --release --example variable_velocity`

use msc::core::schedule::{ExecPlan, Schedule};
use msc::exec::CompiledVarStencil;
use msc::prelude::*;

const N: usize = 160;
const K_SLOW: f64 = 0.1;
const K_FAST: f64 = 0.45;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2·u + K(x)·∇²u  (the t-2 term is combined in the leapfrog loop).
    let expr = 2.0 * Expr::at("B", &[0, 0])
        + Expr::at("K", &[0, 0])
            * (Expr::at("B", &[-1, 0]) + Expr::at("B", &[1, 0]) + Expr::at("B", &[0, -1])
                + Expr::at("B", &[0, 1])
                - 4.0 * Expr::at("B", &[0, 0]));

    let u0: Grid<f64> = Grid::zeros(&[N, N], &[1, 1]);
    let stencil = CompiledVarStencil::<f64>::compile(&expr, "B", &u0.layout())?;
    println!(
        "compiled variable-coefficient stencil: {} taps, coefficient grids {:?}",
        6, stencil.coeff_names
    );

    // Layered velocity model: slow upper half, fast lower half.
    let k: Grid<f64> = Grid::from_fn(&[N, N], &[1, 1], |p| {
        if p[0] < N / 2 {
            K_SLOW
        } else {
            K_FAST
        }
    });
    let coeffs = stencil.bind(&u0.layout(), &[("K", &k)])?;

    // Leapfrog state: point source on the layer interface.
    let mut prev = u0.clone();
    let mut cur = u0.clone();
    cur.set(&[N / 2, N / 2], 1.0);
    prev.set(&[N / 2, N / 2], 1.0);

    let mut sched = Schedule::default();
    sched.tile(&[20, 160]).parallel("xo", 4);
    let plan = ExecPlan::lower(&sched, 2, &[N, N])?;

    let mut tmp = u0.clone();
    let steps = 70;
    for _ in 0..steps {
        // tmp = 2*cur + K*lap(cur); next = tmp - prev.
        stencil.step_tiled(&plan, &cur, &coeffs, &mut tmp);
        let prev_slice = prev.as_slice().to_vec();
        for (o, p) in tmp.as_mut_slice().iter_mut().zip(prev_slice) {
            *o -= p;
        }
        std::mem::swap(&mut prev, &mut cur);
        std::mem::swap(&mut cur, &mut tmp);
    }

    // Measure wavefront extent along the vertical line through the
    // source: upward into the slow layer, downward into the fast layer
    // (a pure-layer path, uncontaminated by lateral propagation).
    let thr = 1e-3;
    let mut slow_extent = 0.0f64;
    let mut fast_extent = 0.0f64;
    for x in 0..N {
        if cur.get(&[x, N / 2]).abs() > thr {
            let d = x as f64 - (N / 2) as f64;
            if d < 0.0 {
                slow_extent = slow_extent.max(-d);
            } else {
                fast_extent = fast_extent.max(d);
            }
        }
    }
    println!(
        "after {steps} steps: wavefront reach {:.1} cells (slow layer) vs {:.1} (fast layer)",
        slow_extent, fast_extent
    );
    let ratio = fast_extent / slow_extent;
    let expected = (K_FAST / K_SLOW).sqrt();
    println!(
        "speed ratio {:.2} (theory sqrt(K_fast/K_slow) = {:.2})",
        ratio, expected
    );
    assert!(
        (ratio - expected).abs() / expected < 0.30,
        "wave speeds should follow the velocity model"
    );

    // Cross-check the tiled sweep against the serial sweep.
    let mut a = u0.clone();
    let mut b = u0.clone();
    stencil.step_reference(&cur, &coeffs, &mut a);
    stencil.step_tiled(&plan, &cur, &coeffs, &mut b);
    assert_eq!(a.as_slice(), b.as_slice());
    println!("tiled and serial variable-coefficient sweeps agree bitwise");
    Ok(())
}
