//! Auto-tuning demo (the paper's §5.4 / Figure 11 workflow at reduced
//! iteration count): fit the regression performance model, anneal over
//! tile sizes × MPI grid shapes, and report the convergence trace.
//!
//! Run with: `cargo run --release --example autotune`

use msc::core::analysis::StencilStats;
use msc::core::catalog::{benchmark, BenchmarkId};
use msc::prelude::*;
use msc::tune::{tune, AnnealOptions, Config, TuneProblem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = benchmark(BenchmarkId::S3d7ptStar);
    let program = b.program(&[8192, 128, 128], DType::F64, 2)?;
    let machine = msc::machine::presets::sunway_cg();
    let network = msc::machine::presets::taihulight_network();

    let problem = TuneProblem {
        workload: msc::tune::perf_model::Workload {
            global_grid: vec![8192, 128, 128],
            reach: program.stencil.reach(),
            stats: StencilStats::of(&program.stencil, DType::F64)?,
            n_procs: 128,
            prec: Precision::Fp64,
            points: b.points(),
        },
        machine: &machine,
        network: &network,
        options: AnnealOptions {
            iterations: 8000,
            seed: 7,
            ..Default::default()
        },
    };

    // Deliberately poor starting point, like Figure 11's first iterations.
    let start = Config {
        tile: vec![1, 1, 4],
        mpi_grid: vec![128, 1, 1],
    };
    let result = tune(&problem, start)?;

    println!("auto-tuning 3d7pt_star on 8192x128x128 over 128 CGs");
    println!("convergence trace (best-so-far model cost):");
    for p in result.trace.iter().take(15) {
        println!("  iter {:>6}: {:.4} ms", p.iteration, p.best_cost * 1e3);
    }
    println!(
        "best: tile {:?}, MPI grid {:?}",
        result.best.tile, result.best.mpi_grid
    );
    println!(
        "step time {:.3} ms -> {:.3} ms: {:.2}x improvement (paper: 3.28x)",
        result.initial_time_s * 1e3,
        result.best_time_s * 1e3,
        result.improvement()
    );
    assert!(result.improvement() > 1.5);
    Ok(())
}
