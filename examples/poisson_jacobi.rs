//! Jacobi iteration to convergence — the "iterate over many timesteps
//! until convergence" use of stencils the paper's introduction opens
//! with. Solves ∇²u = 0 with fixed hot/cold boundary plates (Dirichlet
//! data living in the halo) and compares against the analytic linear
//! steady state; then shows the same solver running to convergence under
//! temporal tiling with identical iterates.
//!
//! Run with: `cargo run --release --example poisson_jacobi`

use msc::core::schedule::{ExecPlan, Schedule};
use msc::exec::convergence::run_until_converged;
use msc::prelude::*;

const N: usize = 48;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Jacobi kernel for the 2D Laplace equation.
    let jacobi = Kernel::new(
        "jacobi",
        2,
        0.25 * Expr::at("B", &[-1, 0])
            + 0.25 * Expr::at("B", &[1, 0])
            + 0.25 * Expr::at("B", &[0, -1])
            + 0.25 * Expr::at("B", &[0, 1]),
    )?;
    let program = StencilProgram::builder("laplace")
        .grid_2d("B", DType::F64, [N, N], 1, 2)
        .kernel(jacobi)
        .combine(&[(1, 1.0, "jacobi")])
        .timesteps(1)
        .build()?;

    // Boundary data (in the halo): the linear-in-x profile
    // u(x) = (N - x)/(N + 1) on all four sides — hot plate at x = -1,
    // cold plate at x = N, matching side rails. The harmonic interior
    // solution is then exactly that linear profile.
    let profile = |px: usize| (N + 1 - px) as f64 / (N + 1) as f64; // px = padded x
    let mut init: Grid<f64> = Grid::zeros(&[N, N], &[1, 1]);
    {
        let strides = init.strides.clone();
        let data = init.as_mut_slice();
        for px in 0..N + 2 {
            for py in 0..N + 2 {
                let on_halo = px == 0 || px == N + 1 || py == 0 || py == N + 1;
                if on_halo {
                    data[px * strides[0] + py * strides[1]] = profile(px);
                }
            }
        }
    }

    let mut sched = Schedule::default();
    sched.tile(&[12, 48]).parallel("xo", 4);
    let plan = ExecPlan::lower(&sched, 2, &[N, N])?;

    let report = run_until_converged(
        &program,
        &Executor::Tiled(plan.clone()),
        &init,
        Boundary::Dirichlet,
        1e-8,
        20_000,
    )?;
    println!(
        "Jacobi converged after {} sweeps (residual {:.2e})",
        report.steps, report.final_residual
    );
    assert!(report.converged);

    // With linear boundary data the harmonic steady state is exactly
    // linear in x: u(x) = (N - x) / (N + 1).
    let mut worst = 0.0f64;
    for x in 0..N {
        let expect = (N - x) as f64 / (N + 1) as f64;
        let got = report.state.get(&[x, N / 2]);
        worst = worst.max((got - expect).abs());
    }
    println!("max deviation from analytic linear profile: {worst:.2e}");
    assert!(worst < 1e-3, "steady state should be linear in x");

    // Re-run the same number of sweeps under temporal tiling — iterates
    // must match the plain driver bitwise.
    let mut p2 = program.clone();
    p2.timesteps = report.steps;
    let (plain, _) = run_program(&p2, &Executor::Reference, &init)?;
    let (tiled, stats) = msc::exec::run_temporal_tiled(&p2, &plan, 8, &init)?;
    assert_eq!(plain.as_slice(), tiled.as_slice());
    println!(
        "temporal tiling (depth 8) reproduced all {} sweeps bitwise; redundancy {:.2}x over {} blocks",
        report.steps, stats.redundancy, stats.blocks
    );
    Ok(())
}
