//! Second-order wave propagation — the class of PDEs the paper motivates
//! multi-time-dependency stencils with ("second-order wave functions such
//! as mechanical waves, electromagnetic waves, and gravitational waves").
//!
//! The leapfrog discretization of `u_tt = c² ∇²u` is
//!
//! ```text
//! u[t] = 2·u[t-1] − u[t-2] + (cΔt/Δx)² · ∇²u[t-1]
//! ```
//!
//! which in MSC becomes a `Stencil` with two kernels at two temporal
//! distances — exactly the `Res[t] << A[t-1] + B[t-2]` form of §4.2. A
//! point source is injected and the expanding wavefront is tracked.
//!
//! Run with: `cargo run --release --example seismic_wave`

use msc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 200;
    // CFL number (cΔt/Δx)²: stable below 0.5 in 2D.
    const K: f64 = 0.4;

    // Kernel at t-1: 2·u + K·∇²u  (taps: centre 2-4K, axis neighbours K).
    let propagate = Kernel::new(
        "propagate",
        2,
        (2.0 - 4.0 * K) * Expr::at("B", &[0, 0])
            + K * Expr::at("B", &[-1, 0])
            + K * Expr::at("B", &[1, 0])
            + K * Expr::at("B", &[0, -1])
            + K * Expr::at("B", &[0, 1]),
    )?;
    // Kernel at t-2: the identity (subtracted by its term weight).
    let previous = Kernel::new("previous", 2, 1.0 * Expr::at("B", &[0, 0]))?;

    let program = StencilProgram::builder("wave2d")
        .grid_2d("B", DType::F64, [N, N], 1, 3)
        .kernel(propagate)
        .kernel(previous)
        .combine(&[(1, 1.0, "propagate"), (2, -1.0, "previous")])
        .timesteps(60)
        .build()?;

    // Point source in the centre.
    let mut init: Grid<f64> = Grid::zeros(&program.grid.shape, &program.grid.halo);
    init.set(&[N / 2, N / 2], 1.0);

    // Track the wavefront radius at a few checkpoints by re-running with
    // increasing step counts (each run is cheap at this size).
    println!("step  wavefront radius (cells)  max |u|");
    for steps in [10usize, 20, 40, 60] {
        let mut p = program.clone();
        p.timesteps = steps;
        let (u, _) = run_program(&p, &Executor::Reference, &init)?;
        let mut radius: f64 = 0.0;
        let mut peak: f64 = 0.0;
        u.for_each_interior(|pos| {
            let v = u.get(pos).abs();
            peak = peak.max(v);
            if v > 1e-6 {
                let dx = pos[0] as f64 - (N / 2) as f64;
                let dy = pos[1] as f64 - (N / 2) as f64;
                radius = radius.max((dx * dx + dy * dy).sqrt());
            }
        });
        println!("{steps:>4}  {radius:>24.1}  {peak:.4}");
        // The front must expand at roughly the CFL speed (sqrt(K) cells
        // per step) and stay inside the domain.
        assert!(radius > 0.4 * steps as f64 * K.sqrt());
        assert!(radius < 1.8 * steps as f64);
    }

    // Cross-check the scheduled parallel executor on the same program.
    let mut sched = msc::core::schedule::Schedule::default();
    sched.tile(&[25, 50]).parallel("xo", 4);
    let plan = msc::core::schedule::ExecPlan::lower(&sched, 2, &program.grid.shape)?;
    let (tiled, _) = run_program(&program, &Executor::Tiled(plan), &init)?;
    let (serial, _) = run_program(&program, &Executor::Reference, &init)?;
    println!(
        "tiled-parallel vs serial: max rel err = {:.2e}",
        max_rel_error(&tiled, &serial)
    );
    assert_eq!(tiled.as_slice(), serial.as_slice());
    println!("wave propagation OK: two-time-dependency stencil verified");
    Ok(())
}
