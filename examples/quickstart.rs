//! Quickstart: the paper's Listing 1 — a 3d7pt stencil with two time
//! dependencies — expressed in the Rust DSL, scheduled with the Listing 2
//! primitives, executed functionally, verified against the serial
//! reference, and compiled to C source packages for all three targets.
//!
//! Run with: `cargo run --release --example quickstart`

use msc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Listing 1: stencil definition -------------------------------
    let mut kernel = Kernel::star_normalized("S_3d7pt", 3, 1);
    // --- Listing 2: optimization primitives --------------------------
    kernel
        .sched()
        .tile(&[8, 8, 32])
        .reorder(&["xo", "yo", "zo", "xi", "yi", "zi"])
        .parallel("xo", 8)
        .cache_read("B", "buffer_read", BufferScope::Global)
        .cache_write("buffer_write", BufferScope::Global)
        .compute_at("buffer_read", "zo")
        .compute_at("buffer_write", "zo");

    let program = StencilProgram::builder("3d7pt")
        .grid_3d("B", DType::F64, [64, 64, 64], 1, 3)
        .kernel(kernel)
        .combine(&[(1, 0.6, "S_3d7pt"), (2, 0.4, "S_3d7pt")])
        .mpi_grid(&[2, 2, 2])
        .timesteps(10)
        .build()?;

    println!(
        "program `{}`: {} timesteps, window {}, footprint {:.1} MB",
        program.name,
        program.timesteps,
        program.stencil.time_window(),
        program.footprint_bytes() as f64 / 1e6
    );

    // --- Functional execution ----------------------------------------
    let init: Grid<f64> = Grid::random(&program.grid.shape, &program.grid.halo, 42);
    let plan = msc::core::schedule::ExecPlan::lower(
        &program.stencil.kernels[0].schedule,
        3,
        &program.grid.shape,
    )?;
    let (tiled, stats) = run_program(
        &program,
        &Executor::Spm {
            plan,
            spm_capacity: 64 * 1024,
        },
        &init,
    )?;
    println!(
        "ran {} steps over {} tiles; DMA moved {:.1} MB through a {} B SPM footprint",
        stats.steps,
        stats.tiles_executed,
        (stats.dma_get_bytes + stats.dma_put_bytes) as f64 / 1e6,
        stats.spm_peak_bytes
    );

    // --- Correctness: paper §5.1 -------------------------------------
    let (reference, _) = run_program(&program, &Executor::Reference, &init)?;
    let err = max_rel_error(&tiled, &reference);
    println!("max relative error vs serial reference: {err:.3e} (bound 1e-10)");
    assert!(err < 1e-10);

    // --- AOT code generation ------------------------------------------
    for target in [Target::SunwayCG, Target::Matrix, Target::Cpu] {
        let pkg = compile_to_source(&program, target)?;
        let dir = std::env::temp_dir().join(format!("msc_quickstart_{}", target.as_str()));
        pkg.write_to(&dir)?;
        println!(
            "generated {:?} ({} LoC) -> {}",
            pkg.file_names(),
            pkg.total_loc(),
            dir.display()
        );
    }
    Ok(())
}
