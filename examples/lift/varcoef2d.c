/* Anisotropic 2D 9-point star of radius 2: distinct (some negative)
 * coefficients per tap, two guard cells per side (36x36 padded, 32x32
 * interior). Canonical tap order:
 * [-2,0] [-1,0] [0,-2] [0,-1] [0,0] [0,1] [0,2] [1,0] [2,0]. */
double P[36][36];
double Q[36][36];

void varcoef2d(void) {
  for (int i = 2; i < 34; i++)
    for (int j = 2; j < 34; j++)
      Q[i][j] = 0.01*P[i-2][j] + 0.07*P[i-1][j]
              + 0.02*P[i][j-2] + 0.11*P[i][j-1]
              + 0.5*P[i][j]
              - 0.12*P[i][j+1] + 0.03*P[i][j+2]
              + 0.08*P[i+1][j] - 0.04*P[i+2][j];
}
