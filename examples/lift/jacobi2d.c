/* 2D 5-point Jacobi sweep over a 34x34 padded array (32x32 interior,
 * one guard cell per side). Taps are written in canonical
 * (lexicographic offset) order so the lifted fold replays this exact
 * rounding sequence: [-1,0] [0,-1] [0,0] [0,1] [1,0]. */
double A[34][34];
double B[34][34];

void jacobi2d(void) {
  for (int i = 1; i < 33; i++)
    for (int j = 1; j < 33; j++)
      B[i][j] = 0.25*A[i-1][j] + 0.2*A[i][j-1] + 0.1*A[i][j]
              + 0.2*A[i][j+1] + 0.25*A[i+1][j];
}
