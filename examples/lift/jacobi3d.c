/* 3D 7-point Jacobi sweep (the paper's 3d7pt_star shape) over an
 * 18^3 padded array, 16^3 interior. Canonical tap order. */
double A[18][18][18];
double B[18][18][18];

void jacobi3d(void) {
  for (int i = 1; i < 17; i++)
    for (int j = 1; j < 17; j++)
      for (int k = 1; k < 17; k++)
        B[i][j][k] = 0.1*A[i-1][j][k] + 0.1*A[i][j-1][k] + 0.1*A[i][j][k-1]
                   + 0.4*A[i][j][k] + 0.1*A[i][j][k+1] + 0.1*A[i][j+1][k]
                   + 0.1*A[i+1][j][k];
}
