/* 3D 27-point box stencil: every neighbour of the 3x3x3 cube weighted
 * equally (1/32 = 0.03125 keeps the literal exact in binary). Writing
 * the taps in odometer order over the cube is already canonical. */
double U[12][12][12];
double V[12][12][12];

void star27(void) {
  for (int i = 1; i < 11; i++)
    for (int j = 1; j < 11; j++)
      for (int k = 1; k < 11; k++)
        V[i][j][k] =
            0.03125*U[i-1][j-1][k-1] + 0.03125*U[i-1][j-1][k] + 0.03125*U[i-1][j-1][k+1]
          + 0.03125*U[i-1][j][k-1]   + 0.03125*U[i-1][j][k]   + 0.03125*U[i-1][j][k+1]
          + 0.03125*U[i-1][j+1][k-1] + 0.03125*U[i-1][j+1][k] + 0.03125*U[i-1][j+1][k+1]
          + 0.03125*U[i][j-1][k-1]   + 0.03125*U[i][j-1][k]   + 0.03125*U[i][j-1][k+1]
          + 0.03125*U[i][j][k-1]     + 0.1875*U[i][j][k]      + 0.03125*U[i][j][k+1]
          + 0.03125*U[i][j+1][k-1]   + 0.03125*U[i][j+1][k]   + 0.03125*U[i][j+1][k+1]
          + 0.03125*U[i+1][j-1][k-1] + 0.03125*U[i+1][j-1][k] + 0.03125*U[i+1][j-1][k+1]
          + 0.03125*U[i+1][j][k-1]   + 0.03125*U[i+1][j][k]   + 0.03125*U[i+1][j][k+1]
          + 0.03125*U[i+1][j+1][k-1] + 0.03125*U[i+1][j+1][k] + 0.03125*U[i+1][j+1][k+1];
}
