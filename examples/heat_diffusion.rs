//! 2D heat diffusion with AOT code generation: builds a 2d9pt averaging
//! stencil, runs it to a smooth state, and emits the OpenMP C package a
//! Matrix/CPU user would compile — then (if a host C compiler exists)
//! actually compiles and runs the generated code and compares checksums.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use msc::prelude::*;
use std::process::Command;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 96;
    let b = msc::core::catalog::benchmark(msc::core::catalog::BenchmarkId::S2d9ptBox);
    let program = b.program(&[N, N], DType::F64, 25)?;

    // Hot square in the middle of a cold plate.
    let init: Grid<f64> = Grid::from_fn(&[N, N], &[1, 1], |p| {
        let hot = (N / 3..2 * N / 3).contains(&p[0]) && (N / 3..2 * N / 3).contains(&p[1]);
        if hot {
            100.0
        } else {
            0.0
        }
    });

    // Run under tracing and print the measured profile afterwards.
    msc::trace::set_enabled(true);
    let (out, _) = run_program(&program, &Executor::Reference, &init)?;
    msc::trace::set_enabled(false);
    let centre = out.get(&[N / 2, N / 2]);
    let corner = out.get(&[2, 2]);
    println!("after {} steps: centre {:.2}, corner {:.4}", program.timesteps, centre, corner);
    assert!(centre < 100.0 && centre > corner, "heat must diffuse outward");
    print!("{}", msc::trace::Profile::capture("heat_diffusion").to_table());
    msc::trace::reset();

    // Generate the OpenMP package.
    let pkg = compile_to_source(&program, Target::Cpu)?;
    let dir = std::env::temp_dir().join("msc_heat_diffusion");
    pkg.write_to(&dir)?;
    println!("wrote {:?} to {}", pkg.file_names(), dir.display());

    // Compile and run it if a C compiler is available.
    if Command::new("cc").arg("--version").output().is_ok() {
        let exe = dir.join("heat");
        let ok = Command::new("cc")
            .args(["-O2", "-std=c99", "-o"])
            .arg(&exe)
            .arg(dir.join("main.c"))
            .arg("-lm")
            .status()?
            .success();
        assert!(ok, "generated C failed to compile");
        let out_c = Command::new(&exe).output()?;
        let c_sum: f64 = String::from_utf8_lossy(&out_c.stdout).trim().parse()?;

        // The generated program initializes with its own deterministic
        // msc_input(); rerun the executor from that state to compare.
        let mut gen_init: Grid<f64> = Grid::zeros(&program.grid.shape, &program.grid.halo);
        for (lin, v) in gen_init.as_mut_slice().iter_mut().enumerate() {
            let x = (lin as u64).wrapping_mul(2654435761).wrapping_add(12345) as u32;
            *v = x as f64 / 4294967296.0;
        }
        let (gen_out, _) = run_program(&program, &Executor::Reference, &gen_init)?;
        let rust_sum = gen_out.interior_sum();
        let rel = (c_sum - rust_sum).abs() / rust_sum.abs().max(1.0);
        println!("generated C checksum {c_sum:.6e} vs executor {rust_sum:.6e} (rel {rel:.2e})");
        assert!(rel < 1e-12);
        println!("generated C agrees with the executor");
    } else {
        println!("no host C compiler found; skipped compile-and-run check");
    }
    Ok(())
}
