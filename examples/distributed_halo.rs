//! Large-scale execution in miniature: run a box stencil over a 2×3 MPI
//! world (ranks as threads, real messages) and verify the result is
//! bit-identical to the single-node run — the §4.4 communication library
//! end to end.
//!
//! Run with: `cargo run --release --example distributed_halo`

use msc::core::schedule::{ExecPlan, Schedule};
use msc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = msc::core::catalog::benchmark(msc::core::catalog::BenchmarkId::S2d121ptBox);
    // 2d121pt has reach 5 — a demanding halo (corners matter).
    let program = b.program(&[60, 90], DType::F64, 6)?;
    let init: Grid<f64> = Grid::random(&program.grid.shape, &program.grid.halo, 2024);

    let (single, _) = run_program(&program, &Executor::Reference, &init)?;

    let (multi, stats) = run_distributed(&program, &[2, 3], &init, |sub| {
        let mut s = Schedule::default();
        let tile: Vec<usize> = sub.iter().map(|&x| (x / 2).max(1)).collect();
        s.tile(&tile);
        s.parallel("xo", 2);
        ExecPlan::lower(&s, sub.len(), sub)
    })?;

    println!(
        "{} ranks exchanged {} messages over {} steps",
        stats.ranks, stats.messages, stats.steps
    );
    let err = max_rel_error(&multi, &single);
    println!("distributed vs single-node: max rel err = {err:.3e}");
    assert_eq!(
        single.as_slice(),
        multi.as_slice(),
        "distributed execution must be bit-identical"
    );

    // The expected message count: interior exchanges per step for the
    // first timesteps-1 steps (the final state is not published).
    let decomp = msc::comm::CartDecomp::new(&program.grid.shape, &[2, 3], &[5, 5])?;
    let per_round: usize = (0..stats.ranks).map(|r| decomp.n_neighbors(r)).sum();
    assert_eq!(stats.messages as usize, per_round * (program.timesteps - 1));
    println!("message accounting checks out ({per_round} per round)");
    Ok(())
}
