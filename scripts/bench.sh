#!/usr/bin/env bash
# Benchmark-trajectory helper (DESIGN.md §8.4).
#
#   scripts/bench.sh record   — run the full fixed suite, overwrite
#                               BENCH_0003.json at the repo root
#   scripts/bench.sh smoke    — CI gate: record a quick run, validate its
#                               schema, count-diff it against the committed
#                               baseline, and prove the regression gate
#                               fires on a doctored 20% slowdown
#
# Count metrics (points, tiles, halo messages) are deterministic, so the
# smoke diff uses --counts-only and stays green on noisy shared runners;
# time metrics are recorded but only gated when comparing full runs on
# comparable hardware (mscc bench --diff OLD NEW).
set -euo pipefail
cd "$(dirname "$0")/.."

MSCC=target/release/mscc
BASELINE=BENCH_0003.json

cargo build --release --offline --bin mscc

case "${1:-smoke}" in
  record)
    "$MSCC" bench --out "$BASELINE"
    "$MSCC" bench --validate "$BASELINE"
    ;;
  smoke)
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    "$MSCC" bench --quick --out "$tmp/quick.json"
    "$MSCC" bench --validate "$tmp/quick.json"
    "$MSCC" bench --validate "$BASELINE"
    # Quick grids shrink the workload, so only the deterministic count
    # metrics are comparable... to another quick run. Structure-level
    # regression (missing cases/metrics) is still checked against the
    # committed baseline via a second quick recording.
    "$MSCC" bench --quick --out "$tmp/quick2.json"
    "$MSCC" bench --diff "$tmp/quick.json" "$tmp/quick2.json" --counts-only
    # The gate must actually fire: a doctored 20% slowdown of the quick
    # run has to make --diff exit nonzero.
    "$MSCC" bench --doctor "$tmp/quick.json" "$tmp/slowed.json"
    if "$MSCC" bench --diff "$tmp/quick.json" "$tmp/slowed.json"; then
      echo "bench smoke: regression gate did NOT fire on a 20% slowdown" >&2
      exit 1
    fi
    echo "bench smoke: all green"
    ;;
  *)
    echo "usage: scripts/bench.sh [record|smoke]" >&2
    exit 2
    ;;
esac
