#!/usr/bin/env bash
# Benchmark-trajectory helper (DESIGN.md §8.4).
#
#   scripts/bench.sh record   — run the full fixed suite, overwrite
#                               BENCH_0006.json at the repo root
#   scripts/bench.sh smoke    — CI gate: record a quick run, validate its
#                               schema, count-diff it against the committed
#                               baseline, and prove the regression gate
#                               fires on a doctored 20% slowdown
#
# Count metrics (points, tiles, halo messages) are deterministic, so the
# smoke diff uses --counts-only and stays green on noisy shared runners;
# time metrics are recorded but only gated when comparing full runs on
# comparable hardware (mscc bench --diff OLD NEW).
set -euo pipefail
cd "$(dirname "$0")/.."

MSCC=target/release/mscc
BASELINE=BENCH_0006.json

cargo build --release --offline --bin mscc

# Extract the pool-vs-respawn speedup from a recording and fail when the
# persistent pool is not at least MIN_SPEEDUP× the per-step respawn path.
check_pool_speedup() {
  python3 - "$1" "$2" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
need = float(sys.argv[2])
case = next(c for c in doc["cases"] if c["name"] == "s3d7pt_star_pool_vs_respawn")
got = next(m["value"] for m in case["metrics"] if m["name"] == "pool_speedup")
print(f"pool_vs_respawn speedup: {got:.2f}x (need >= {need:.2f}x)")
sys.exit(0 if got >= need else 1)
PY
}

# Extract the execution-tier speedups from the s3d7pt_interp_vs_vm case.
# The bytecode VM must beat the tap interpreter by at least MIN_SPEEDUP x
# (the ISSUE gate is 2x); the 5x stretch target is reported but not gated,
# so a run that clears 2x while missing 5x stays green.
check_vm_speedup() {
  python3 - "$1" "$2" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
need = float(sys.argv[2])
case = next(c for c in doc["cases"] if c["name"] == "s3d7pt_interp_vs_vm")
vm = next(m["value"] for m in case["metrics"] if m["name"] == "vm_speedup")
spec = next(m["value"] for m in case["metrics"] if m["name"] == "specialized_speedup")
print(f"vm_vs_interp speedup: {vm:.2f}x (need >= {need:.2f}x)")
best = max(vm, spec)
status = "met" if best >= 5.0 else "not met"
print(f"specialized_vs_interp speedup: {spec:.2f}x (5x stretch target {status}; not gated)")
sys.exit(0 if vm >= need else 1)
PY
}

case "${1:-smoke}" in
  record)
    "$MSCC" bench --out "$BASELINE"
    "$MSCC" bench --validate "$BASELINE"
    # The committed trajectory must show the persistent pool beating the
    # per-step respawn scheduler by >= 10% on the 100-step 3D star case.
    check_pool_speedup "$BASELINE" 1.10
    # ... and the bytecode VM beating the tap interpreter by >= 2x on the
    # single-thread whole-grid s3d7pt tier comparison.
    check_vm_speedup "$BASELINE" 2.00
    ;;
  smoke)
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    "$MSCC" bench --quick --out "$tmp/quick.json"
    "$MSCC" bench --validate "$tmp/quick.json"
    "$MSCC" bench --validate "$BASELINE"
    # Quick grids shrink the workload, so only the deterministic count
    # metrics are comparable... to another quick run. Structure-level
    # regression (missing cases/metrics) is still checked against the
    # committed baseline via a second quick recording.
    "$MSCC" bench --quick --out "$tmp/quick2.json"
    "$MSCC" bench --diff "$tmp/quick.json" "$tmp/quick2.json" --counts-only
    # The gate must actually fire: a doctored 20% slowdown of the quick
    # run has to make --diff exit nonzero.
    "$MSCC" bench --doctor "$tmp/quick.json" "$tmp/slowed.json"
    if "$MSCC" bench --diff "$tmp/quick.json" "$tmp/slowed.json"; then
      echo "bench smoke: regression gate did NOT fire on a 20% slowdown" >&2
      exit 1
    fi
    # The pool must beat respawn even on the quick grids (the smaller the
    # tiles, the more the per-step spawn/join overhead dominates); a loose
    # 1.0 floor keeps the gate meaningful without tripping on CI noise.
    check_pool_speedup "$tmp/quick.json" 1.00
    # The VM tier gate runs on the quick grids too: rows are still a full
    # 32-point axis, so the 2x compute advantage holds; dispatches and
    # bit-identity are checked inside the case itself.
    check_vm_speedup "$tmp/quick.json" 2.00
    echo "bench smoke: all green"
    ;;
  *)
    echo "usage: scripts/bench.sh [record|smoke]" >&2
    exit 2
    ;;
esac
