#!/usr/bin/env bash
# Full local verification: what CI runs, in the same order.
# The workspace builds fully offline (see DESIGN.md §6) — every external
# dependency is a vendored shim, so --offline is load-bearing, not an
# optimization.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== chaos suite (fixed seeds) =="
# Fault-injected runs must stay bit-identical to fault-free references;
# seeds are fixed so failures reproduce exactly.
cargo test -q -p msc-comm --test chaos --offline

echo "== online recovery suite (tier x chaos matrix) =="
# A rank killed mid-run must be healed in place by a hot spare from its
# buddy's diskless snapshot — zero world restarts, bit-identical grid —
# under every execution tier (the kill suite names one test per tier).
cargo test -q -p msc-comm --test recovery --offline
for tier in interp vm specialized; do
  cargo test -q -p msc-comm --test recovery --offline \
    "spare_adopts_killed_rank_${tier}_tier"
done

echo "== execution-tier differential (interp vs VM vs specialized) =="
# Every catalog stencil must produce bit-identical grids on all three
# row-evaluation tiers (DESIGN.md §12.3) — the interpreter is the oracle.
cargo test -q -p msc-exec --test tier_differential --offline

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== examples & benches compile =="
cargo build --workspace --examples --benches --offline

echo "== stencil verifier (mscc check) =="
# Every shipped example must lint clean; every deny fixture must be
# denied and its fixed twin must pass.
cargo build --offline --bin mscc
for f in examples/dsl/*.msc; do
  ./target/debug/mscc check "$f"
done
for f in crates/lint/fixtures/*.deny.msc; do
  if ./target/debug/mscc check "$f" >/dev/null; then
    echo "expected deny: $f" >&2
    exit 1
  fi
done
for f in crates/lint/fixtures/*.fixed.msc; do
  ./target/debug/mscc check "$f" >/dev/null
done

echo "== legacy C lifting (mscc lift: corpus + deny fixtures) =="
# Every corpus kernel must lift lint-clean and validate bit-for-bit
# against direct interpretation of the C nest on all execution tiers;
# every deny fixture must fail with a typed structured diagnostic
# (never a panic), surfaced through --json as machine-readable MSC-L
# codes.
tmpl=$(mktemp -d)
for f in examples/lift/*.c; do
  ./target/debug/mscc lift "$f" > "$tmpl/lift.out"
  grep -q 'validated bit-for-bit' "$tmpl/lift.out"
done
for f in crates/lift/fixtures/*.deny.c; do
  if ./target/debug/mscc lift "$f" --json >"$tmpl/deny.json"; then
    echo "expected lift deny: $f" >&2
    exit 1
  fi
  grep -q '"diagnostics"' "$tmpl/deny.json" || {
    echo "lift deny must emit structured JSON: $f" >&2
    exit 1
  }
done
# The lifted corpus round-trips through the DSL front end: emitted .msc
# source must pass the same `mscc check` gate as hand-written programs.
for f in examples/lift/*.c; do
  out="$tmpl/$(basename "${f%.c}").msc"
  ./target/debug/mscc lift "$f" --emit-msc | sed -n '/^stencil/,$p' > "$out"
  ./target/debug/mscc check "$out" >/dev/null
done
rm -rf "$tmpl"

echo "== live telemetry (chaos-kill run + strict metrics validation) =="
# A 2-rank run with a mid-run kill must still heal bit-identically while
# the sampler leaves behind a JSONL metrics stream and an OpenMetrics
# sibling; `mscc top --once --strict` replays the stream through the
# strict checker (schema tag, seq continuity, counter monotonicity, and
# the OpenMetrics parser on the .om file).
tmpm=$(mktemp -d)
./target/release/mscc examples/dsl/3d7pt.msc --run --procs 2x1x1 \
  --chaos '1:kill=1@3' --checkpoint-dir "$tmpm/ckpt" --checkpoint-every 2 \
  --metrics-file "$tmpm/metrics.jsonl" --metrics-interval-ms 100 \
  -o "$tmpm/out"
./target/release/mscc top "$tmpm/metrics.jsonl" --once --strict
test -s "$tmpm/metrics.om"
grep -q comm_fault "$tmpm/metrics.jsonl"
rm -rf "$tmpm"

echo "== compile-and-run service (mscd smoke) =="
# Start mscd, prove the compile cache (the second identical submission
# is a hit), the lint front door (a deny fixture bounces with its MSC-L
# code as a structured error while the daemon survives), admission
# liveness (ping), and graceful shutdown over the wire.
tmps=$(mktemp -d)
./target/release/mscc serve --socket "$tmps/mscd.sock" --workers 2 \
  --metrics-dir "$tmps/metrics" &
mscd_pid=$!
for _ in $(seq 1 100); do
  [ -S "$tmps/mscd.sock" ] && break
  sleep 0.05
done
test -S "$tmps/mscd.sock"
./target/release/mscc submit --socket "$tmps/mscd.sock" --run examples/dsl/wave2d.msc
# Capture, then grep: `grep -q` exits on first match and closing the
# pipe mid-print makes the client die on EPIPE (a long-standing flake).
./target/release/mscc submit --socket "$tmps/mscd.sock" examples/dsl/wave2d.msc \
  > "$tmps/second.out"
grep -q 'cache hit' "$tmps/second.out"
if ./target/release/mscc submit --socket "$tmps/mscd.sock" \
    crates/lint/fixtures/halo_narrow.deny.msc 2>"$tmps/deny.err"; then
  echo "expected daemon deny: halo_narrow.deny.msc" >&2
  exit 1
fi
grep -q 'MSC-L101' "$tmps/deny.err"
./target/release/mscc submit --socket "$tmps/mscd.sock" --ping > "$tmps/ping.out"
grep -q 'mscd alive' "$tmps/ping.out"
./target/release/mscc submit --socket "$tmps/mscd.sock" --shutdown
wait "$mscd_pid"
rm -rf "$tmps"

echo "== bench smoke (trajectory schema + regression gate) =="
scripts/bench.sh smoke

echo "verify: all green"
