//! # msc-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (§5). Each
//! module computes its rows/series from the library crates and renders
//! the same structure the paper reports; the `src/bin/` binaries are
//! thin wrappers that print them, and the integration tests assert the
//! paper-shape properties (who wins, by roughly what factor, where the
//! crossovers fall). EXPERIMENTS.md records paper-vs-measured values.

pub mod experiments;
pub mod results;
pub mod suite;
pub mod table;

pub use experiments::*;
