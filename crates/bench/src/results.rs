//! Machine-readable experiment output: a minimal JSON value type and
//! emitter (dependency-free), used by `all_experiments --json` so
//! downstream tooling can diff reproduction runs.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    pub fn n(v: f64) -> Json {
        Json::Num(v)
    }

    /// Parse a JSON document. Strict enough for round-tripping our own
    /// emitter and the schema-checked bench trajectory files; rejects
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Field lookup on an object (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Single-line rendering (the `Display` impl pretty-prints across
    /// lines) — for line-delimited protocols and JSONL files.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

/// Nesting cap for the recursive-descent parser. The parser recurses
/// once per `[`/`{` level, so hostile input like `"[".repeat(1 << 20)`
/// would otherwise overflow the stack (an abort, not an `Err`). Our own
/// emitters nest a handful of levels; 512 is far beyond any legitimate
/// document.
const MAX_DEPTH: usize = 512;

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos, depth + 1)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by our emitter;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        self.write(&mut buf, 0);
        f.write_str(&buf)
    }
}

impl Json {
    fn write(&self, out: &mut String, indent: usize) {
        let pad = |n: usize| "  ".repeat(n);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => escape(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    escape(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push('}');
            }
        }
    }
}

/// Dump every speedup-style experiment as one JSON document.
pub fn experiments_json() -> msc_core::error::Result<Json> {
    use crate::figures;
    use msc_machine::model::Precision;

    let speedups = |rows: &[figures::SpeedupRow]| {
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj(vec![
                        ("benchmark", Json::s(r.name)),
                        ("speedup", Json::n(r.speedup)),
                    ])
                })
                .collect(),
        )
    };

    let fig10 = |mode: figures::scaling::Mode| -> msc_core::error::Result<Json> {
        use figures::scaling::*;
        let mut out = Vec::new();
        for platform in [Platform::Sunway, Platform::Tianhe3] {
            for dim in [2usize, 3] {
                let pts = series(dim, mode, platform)?;
                out.push(Json::obj(vec![
                    ("platform", Json::s(format!("{platform:?}"))),
                    ("dim", Json::n(dim as f64)),
                    (
                        "points",
                        Json::Arr(
                            pts.iter()
                                .map(|p| {
                                    Json::obj(vec![
                                        ("cores", Json::n(p.cores as f64)),
                                        ("gflops", Json::n(p.gflops)),
                                        ("ideal", Json::n(p.ideal_gflops)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]));
            }
        }
        Ok(Json::Arr(out))
    };

    Ok(Json::obj(vec![
        ("fig7_fp64", speedups(&figures::fig7_rows(Precision::Fp64)?)),
        ("fig7_fp32", speedups(&figures::fig7_rows(Precision::Fp32)?)),
        ("fig8_fp64", speedups(&figures::fig8_rows(Precision::Fp64)?)),
        ("fig10_strong", fig10(figures::scaling::Mode::Strong)?),
        ("fig10_weak", fig10(figures::scaling::Mode::Weak)?),
        (
            "fig12",
            Json::Arr(
                figures::fig12_rows()?
                    .iter()
                    .map(|(aot, msc)| {
                        Json::obj(vec![
                            ("benchmark", Json::s(aot.name)),
                            ("halide_aot", Json::n(aot.speedup)),
                            ("msc", Json::n(msc.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("fig13", speedups(&figures::fig13_rows()?)),
        ("fig14", speedups(&figures::fig14_rows()?)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::n(3.0).to_string(), "3");
        assert_eq!(Json::n(3.5).to_string(), "3.5");
        assert_eq!(Json::n(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::s("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn nested_structure_renders() {
        let j = Json::obj(vec![
            ("name", Json::s("x")),
            ("vals", Json::Arr(vec![Json::n(1.0), Json::n(2.0)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = j.to_string();
        assert!(s.contains("\"name\": \"x\""));
        assert!(s.contains("\"empty\": []"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn parser_roundtrips_emitter_output() {
        let j = Json::obj(vec![
            ("name", Json::s("x\"y\n")),
            ("vals", Json::Arr(vec![Json::n(1.0), Json::n(-2.5), Json::Null])),
            ("ok", Json::Bool(true)),
            ("empty", Json::Obj(vec![])),
        ]);
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(back, j);
        assert_eq!(back.get("name").and_then(Json::as_str), Some("x\"y\n"));
        assert_eq!(
            back.get("vals").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "{} trailing", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn compact_rendering_is_one_line_and_round_trips() {
        let j = Json::obj(vec![
            ("name", Json::s("x\ny")),
            ("vals", Json::Arr(vec![Json::n(1.0), Json::Null, Json::Bool(true)])),
            ("empty", Json::Obj(vec![])),
        ]);
        let s = j.to_compact();
        assert!(!s.contains('\n'), "not single-line: {s}");
        assert_eq!(Json::parse(&s).unwrap(), j);
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        // Pre-fix, each of these recursed once per byte and aborted the
        // process with a stack overflow instead of returning Err.
        for doc in ["[".repeat(100_000), "{\"k\":".repeat(100_000)] {
            let err = Json::parse(&doc).unwrap_err();
            assert!(err.contains("nesting"), "unexpected error: {err}");
        }
        // Deep-but-sane documents still parse.
        let depth = 64;
        let ok = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn experiments_document_builds() {
        let j = experiments_json().unwrap();
        let s = j.to_string();
        assert!(s.contains("fig7_fp64"));
        assert!(s.contains("fig13"));
        assert!(s.contains("2d169pt_box"));
        // Must be parseable by a strict reader: balanced braces.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
