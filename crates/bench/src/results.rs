//! Machine-readable experiment output: a minimal JSON value type and
//! emitter (dependency-free), used by `all_experiments --json` so
//! downstream tooling can diff reproduction runs.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    pub fn n(v: f64) -> Json {
        Json::Num(v)
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        self.write(&mut buf, 0);
        f.write_str(&buf)
    }
}

impl Json {
    fn write(&self, out: &mut String, indent: usize) {
        let pad = |n: usize| "  ".repeat(n);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => escape(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    escape(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push('}');
            }
        }
    }
}

/// Dump every speedup-style experiment as one JSON document.
pub fn experiments_json() -> msc_core::error::Result<Json> {
    use crate::figures;
    use msc_machine::model::Precision;

    let speedups = |rows: &[figures::SpeedupRow]| {
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj(vec![
                        ("benchmark", Json::s(r.name)),
                        ("speedup", Json::n(r.speedup)),
                    ])
                })
                .collect(),
        )
    };

    let fig10 = |mode: figures::scaling::Mode| -> msc_core::error::Result<Json> {
        use figures::scaling::*;
        let mut out = Vec::new();
        for platform in [Platform::Sunway, Platform::Tianhe3] {
            for dim in [2usize, 3] {
                let pts = series(dim, mode, platform)?;
                out.push(Json::obj(vec![
                    ("platform", Json::s(format!("{platform:?}"))),
                    ("dim", Json::n(dim as f64)),
                    (
                        "points",
                        Json::Arr(
                            pts.iter()
                                .map(|p| {
                                    Json::obj(vec![
                                        ("cores", Json::n(p.cores as f64)),
                                        ("gflops", Json::n(p.gflops)),
                                        ("ideal", Json::n(p.ideal_gflops)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]));
            }
        }
        Ok(Json::Arr(out))
    };

    Ok(Json::obj(vec![
        ("fig7_fp64", speedups(&figures::fig7_rows(Precision::Fp64)?)),
        ("fig7_fp32", speedups(&figures::fig7_rows(Precision::Fp32)?)),
        ("fig8_fp64", speedups(&figures::fig8_rows(Precision::Fp64)?)),
        ("fig10_strong", fig10(figures::scaling::Mode::Strong)?),
        ("fig10_weak", fig10(figures::scaling::Mode::Weak)?),
        (
            "fig12",
            Json::Arr(
                figures::fig12_rows()?
                    .iter()
                    .map(|(aot, msc)| {
                        Json::obj(vec![
                            ("benchmark", Json::s(aot.name)),
                            ("halide_aot", Json::n(aot.speedup)),
                            ("msc", Json::n(msc.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("fig13", speedups(&figures::fig13_rows()?)),
        ("fig14", speedups(&figures::fig14_rows()?)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::n(3.0).to_string(), "3");
        assert_eq!(Json::n(3.5).to_string(), "3.5");
        assert_eq!(Json::n(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::s("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn nested_structure_renders() {
        let j = Json::obj(vec![
            ("name", Json::s("x")),
            ("vals", Json::Arr(vec![Json::n(1.0), Json::n(2.0)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = j.to_string();
        assert!(s.contains("\"name\": \"x\""));
        assert!(s.contains("\"empty\": []"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn experiments_document_builds() {
        let j = experiments_json().unwrap();
        let s = j.to_string();
        assert!(s.contains("fig7_fp64"));
        assert!(s.contains("fig13"));
        assert!(s.contains("2d169pt_box"));
        // Must be parseable by a strict reader: balanced braces.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
