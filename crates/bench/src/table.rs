//! Minimal fixed-width table rendering for the harness binaries.

/// Render rows of cells as an aligned text table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out += &fmt_row(&header_cells, &widths);
    out += "\n";
    out += &"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1));
    out += "\n";
    for row in rows {
        out += &fmt_row(row, &widths);
        out += "\n";
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let t = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert_eq!(lines[2].len(), lines[3].len());
    }
}
