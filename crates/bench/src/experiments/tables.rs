//! Regenerators for the paper's tables.

use crate::table::render;
use msc_codegen::loc::LocReport;
use msc_core::analysis::KernelStats;
use msc_core::catalog::all_benchmarks;
use msc_core::prelude::*;
use msc_core::schedule::{table5_reorder, table5_tile, Target};
use msc_machine::model::Precision;
use msc_machine::presets::{matrix_processor, sunway_cg, xeon_server};

/// Table 3: platform configurations.
pub fn table3() -> String {
    let rows: Vec<Vec<String>> = [sunway_cg(), matrix_processor(), xeon_server()]
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.cores.to_string(),
                format!("{:.2}", m.freq_ghz),
                format!("{:.0}", m.peak_gflops(Precision::Fp64)),
                format!("{:.1}", m.mem_bw_gbps),
                if m.is_cacheless() { "SPM+DMA" } else { "cache" }.to_string(),
            ]
        })
        .collect();
    render(
        &["processor", "cores", "GHz", "peak GF/s", "BW GB/s", "memory"],
        &rows,
    )
}

/// Table 4 rows: paper values plus the values our IR derives.
pub struct Table4Row {
    pub name: &'static str,
    pub paper_read: usize,
    pub ir_read: usize,
    pub paper_write: usize,
    pub ir_write: usize,
    pub paper_ops: usize,
    pub ir_ops: usize,
    pub time_deps: usize,
}

pub fn table4_rows() -> Vec<Table4Row> {
    all_benchmarks()
        .iter()
        .map(|b| {
            let s = KernelStats::of(&b.kernel(), DType::F64);
            Table4Row {
                name: b.name,
                paper_read: b.paper.read_bytes,
                ir_read: s.read_bytes,
                paper_write: b.paper.write_bytes,
                ir_write: s.write_bytes,
                paper_ops: b.paper.ops,
                ir_ops: s.ops(),
                time_deps: b.paper.time_deps,
            }
        })
        .collect()
}

pub fn table4() -> String {
    let rows: Vec<Vec<String>> = table4_rows()
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{}/{}", r.paper_read, r.ir_read),
                format!("{}/{}", r.paper_write, r.ir_write),
                format!("{}/{}", r.paper_ops, r.ir_ops),
                r.time_deps.to_string(),
            ]
        })
        .collect();
    render(
        &[
            "benchmark",
            "read B (paper/IR)",
            "write B (paper/IR)",
            "ops (paper/IR)",
            "time dep",
        ],
        &rows,
    )
}

/// Table 5: parameter settings per benchmark and target.
pub fn table5() -> String {
    let rows: Vec<Vec<String>> = all_benchmarks()
        .iter()
        .map(|b| {
            let grid = b.default_grid();
            vec![
                b.name.to_string(),
                format!("{grid:?}"),
                format!("{:?}", table5_tile(b.ndim, b.points(), Target::SunwayCG)),
                format!("{:?}", table5_tile(b.ndim, b.points(), Target::Matrix)),
                table5_reorder(b.ndim).join(","),
            ]
        })
        .collect();
    render(
        &["stencil", "grid", "tile (Sunway)", "tile (Matrix)", "reorder"],
        &rows,
    )
}

/// Table 6: LoC comparison.
pub fn table6_rows() -> Vec<LocReport> {
    all_benchmarks().iter().map(LocReport::of).collect()
}

pub fn table6() -> String {
    let rows: Vec<Vec<String>> = table6_rows()
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.msc_sunway.to_string(),
                r.manual_sunway.to_string(),
                r.msc_matrix.to_string(),
                r.manual_matrix.to_string(),
            ]
        })
        .collect();
    let mut out = render(
        &["benchmark", "MSC(Sun)", "OpenACC", "MSC(Mat)", "OpenMP"],
        &rows,
    );
    let rs: f64 = table6_rows().iter().map(LocReport::reduction_sunway).sum::<f64>() / 8.0;
    let rm: f64 = table6_rows().iter().map(LocReport::reduction_matrix).sum::<f64>() / 8.0;
    out += &format!(
        "\navg LoC reduction: Sunway {:.0}% (paper 27%), Matrix {:.0}% (paper 74%)\n",
        rs * 100.0,
        rm * 100.0
    );
    out
}

/// Table 7: strong/weak scaling configurations (regenerated from the
/// scaling experiment definitions in [`crate::figures`]).
pub fn table7() -> String {
    use crate::figures::scaling::{configs, Mode, Platform};
    let mut rows = Vec::new();
    for dim in [2usize, 3] {
        for mode in [Mode::Weak, Mode::Strong] {
            for platform in [Platform::Sunway, Platform::Tianhe3] {
                for c in configs(dim, mode, platform) {
                    rows.push(vec![
                        format!("{dim}D"),
                        format!("{mode:?}"),
                        format!("{platform:?}"),
                        format!("{:?}", c.sub_grid),
                        format!("{:?}", c.mpi_grid),
                        c.n_procs().to_string(),
                        c.cores().to_string(),
                    ]);
                }
            }
        }
    }
    render(
        &["dim", "mode", "platform", "sub-grid/MPI", "MPI grid", "procs", "cores"],
        &rows,
    )
}

/// Table 8: MSC configurations vs Physis on the CPU platform.
pub fn table8() -> String {
    let rows = vec![
        ("2D", vec![4096, 4096], vec![4, 7], 28, 1),
        ("2D", vec![8192, 4096], vec![2, 7], 14, 2),
        ("2D", vec![16384, 4096], vec![1, 7], 7, 4),
        ("3D", vec![256, 256, 256], vec![2, 2, 7], 28, 1),
        ("3D", vec![512, 256, 256], vec![1, 2, 7], 14, 2),
        ("3D", vec![512, 512, 256], vec![1, 1, 7], 7, 4),
    ];
    let rows: Vec<Vec<String>> = rows
        .into_iter()
        .map(|(dim, sub, mpi, procs, omp)| {
            vec![
                dim.to_string(),
                format!("{sub:?}"),
                format!("{mpi:?}"),
                procs.to_string(),
                omp.to_string(),
            ]
        })
        .collect();
    render(&["dim", "sub-grid", "MPI grid", "MPI procs", "OMP threads"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_paper_traffic_reproduced_exactly() {
        for r in table4_rows() {
            assert_eq!(r.paper_read, r.ir_read, "{}", r.name);
            assert_eq!(r.paper_write, r.ir_write, "{}", r.name);
            assert_eq!(r.time_deps, 2, "{}", r.name);
        }
    }

    #[test]
    fn table4_ir_ops_track_paper_within_factored_form() {
        // The paper's op counts use algebraically factored kernels; our
        // IR's 2p-1 form must agree for the simple stencils and stay
        // within ~50% elsewhere.
        for r in table4_rows() {
            let ratio = r.ir_ops as f64 / r.paper_ops as f64;
            assert!((0.9..=1.6).contains(&ratio), "{}: {ratio}", r.name);
        }
    }

    #[test]
    fn tables_render_without_panicking() {
        for t in [table3(), table4(), table5(), table6(), table7(), table8()] {
            assert!(t.lines().count() >= 3, "{t}");
        }
    }

    #[test]
    fn table7_has_four_scales_per_series() {
        let t = table7();
        // 2 dims x 2 modes x 2 platforms x 4 scales = 32 data rows.
        assert_eq!(t.lines().count(), 2 + 32);
    }
}
