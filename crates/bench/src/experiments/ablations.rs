//! Ablation studies for the design choices DESIGN.md calls out.

use crate::table::render;
use msc_core::analysis::StencilStats;
use msc_core::catalog::{benchmark, BenchmarkId};
use msc_core::error::Result;
use msc_core::prelude::*;
use msc_core::schedule::{preset_for_grid, ExecPlan, Target, WindowPlan};
use msc_machine::model::Precision;
use msc_machine::presets::{sunway_cg, taihulight_network};
use msc_sim::{simulate_step, StepInputs};

/// SPM staging + DMA vs direct global access on Sunway — the mechanism
/// behind Figure 7. Returns `(spm_time, direct_time)` per benchmark.
pub fn spm_ablation() -> Result<Vec<(&'static str, f64, f64)>> {
    let m = sunway_cg();
    BenchmarkId::all()
        .into_iter()
        .map(|id| {
            let b = benchmark(id);
            let grid = b.default_grid();
            let p = b.program(&grid, DType::F64, 2)?;
            let stats = StencilStats::of(&p.stencil, DType::F64)?;
            let reach = p.stencil.reach();

            let spm_sched = preset_for_grid(b.ndim, b.points(), Target::SunwayCG, &grid);
            let mut direct_sched = spm_sched.clone();
            direct_sched.cache_read = None;
            direct_sched.cache_write = None;
            direct_sched.compute_at.clear();

            let spm = simulate_step(
                &StepInputs {
                    stats,
                    reach: reach.clone(),
                    plan: &ExecPlan::lower(&spm_sched, b.ndim, &grid)?,
                    prec: Precision::Fp64,
                },
                &m,
            );
            let direct = simulate_step(
                &StepInputs {
                    stats,
                    reach,
                    plan: &ExecPlan::lower(&direct_sched, b.ndim, &grid)?,
                    prec: Precision::Fp64,
                },
                &m,
            );
            Ok((b.name, spm.time_s, direct.time_s))
        })
        .collect()
}

pub fn spm_ablation_report() -> Result<String> {
    let rows: Vec<Vec<String>> = spm_ablation()?
        .iter()
        .map(|(n, spm, direct)| {
            vec![
                n.to_string(),
                format!("{:.2}", spm * 1e3),
                format!("{:.2}", direct * 1e3),
                format!("{:.1}x", direct / spm),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation — SPM staging vs direct global access (Sunway CG, ms/step)\n{}",
        render(&["benchmark", "SPM+DMA", "direct", "gain"], &rows)
    ))
}

/// Asynchronous vs master-coordinated halo exchange across scales — why
/// the communication library is asynchronous (§4.4, §5.5).
pub fn async_halo_ablation() -> Vec<(usize, f64, f64)> {
    let net = taihulight_network();
    [64usize, 128, 256, 512, 1024]
        .into_iter()
        .map(|procs| {
            // 3d7pt on 256^3 sub-grids: 6 faces x 2 states.
            let bytes = 6.0 * 256.0 * 256.0 * 8.0 * 2.0;
            let asy = net.exchange_time_s(12, bytes, procs);
            let coord = net.coordinated_exchange_time_s(12, bytes, procs);
            (procs, asy, coord)
        })
        .collect()
}

pub fn async_halo_report() -> String {
    let rows: Vec<Vec<String>> = async_halo_ablation()
        .iter()
        .map(|(p, a, c)| {
            vec![
                p.to_string(),
                format!("{:.3}", a * 1e3),
                format!("{:.3}", c * 1e3),
                format!("{:.0}x", c / a),
            ]
        })
        .collect();
    format!(
        "Ablation — asynchronous vs coordinated halo exchange (ms/round)\n{}",
        render(&["procs", "async", "coordinated", "penalty"], &rows)
    )
}

/// Sliding time window vs keep-all-timesteps memory footprint (Figure 5).
pub fn window_ablation(steps: usize) -> Result<Vec<(&'static str, usize, usize)>> {
    BenchmarkId::all()
        .into_iter()
        .map(|id| {
            let b = benchmark(id);
            let p = b.program(&b.default_grid(), DType::F64, steps)?;
            let per_step = p.grid.padded_elems() * 8;
            let window = WindowPlan::for_max_dt(p.stencil.max_dt())?;
            Ok((b.name, window.window * per_step, steps.max(window.window) * per_step))
        })
        .collect()
}

pub fn window_report(steps: usize) -> Result<String> {
    let rows: Vec<Vec<String>> = window_ablation(steps)?
        .iter()
        .map(|(n, w, all)| {
            vec![
                n.to_string(),
                format!("{:.2}", *w as f64 / 1e9),
                format!("{:.2}", *all as f64 / 1e9),
                format!("{:.0}x", *all as f64 / *w as f64),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation — sliding window vs keep-all buffers over {steps} steps (GB)\n{}",
        render(&["benchmark", "window", "keep-all", "savings"], &rows)
    ))
}

/// Tile-size sweep on Sunway for 3d7pt: time per step as the innermost
/// tile extent varies (what the auto-tuner searches over).
pub fn tile_sweep() -> Result<Vec<(Vec<usize>, f64)>> {
    let b = benchmark(BenchmarkId::S3d7ptStar);
    let grid = b.default_grid();
    let p = b.program(&grid, DType::F64, 2)?;
    let stats = StencilStats::of(&p.stencil, DType::F64)?;
    let reach = p.stencil.reach();
    let m = sunway_cg();
    let mut out = Vec::new();
    for tz in [8usize, 16, 32, 64, 128, 256] {
        let mut sched = preset_for_grid(3, 7, Target::SunwayCG, &grid);
        sched.tile(&[2, 8, tz]);
        let plan = ExecPlan::lower(&sched, 3, &grid)?;
        let rep = simulate_step(
            &StepInputs {
                stats,
                reach: reach.clone(),
                plan: &plan,
                prec: Precision::Fp64,
            },
            &m,
        );
        out.push((vec![2, 8, tz], rep.time_s));
    }
    Ok(out)
}

pub fn tile_sweep_report() -> Result<String> {
    let rows: Vec<Vec<String>> = tile_sweep()?
        .iter()
        .map(|(t, s)| vec![format!("{t:?}"), format!("{:.2}", s * 1e3)])
        .collect();
    Ok(format!(
        "Ablation — 3d7pt tile sweep on Sunway CG (ms/step)\n{}",
        render(&["tile", "time"], &rows)
    ))
}

/// Temporal-tiling depth sweep on Sunway for 3d7pt: per-step time as the
/// time-tile depth varies — DMA passes drop ~1/tt while redundant halo
/// compute grows, so an optimum appears in the middle (§2.1's classic
/// trade-off).
pub fn temporal_sweep() -> Result<Vec<(usize, f64, f64)>> {
    let b = benchmark(BenchmarkId::S3d7ptStar);
    let grid = b.default_grid();
    let p = b.program(&grid, DType::F64, 2)?;
    let stats = StencilStats::of(&p.stencil, DType::F64)?;
    let reach = p.stencil.reach();
    let m = sunway_cg();
    let mut out = Vec::new();
    for tt in [1usize, 2, 3, 4, 6, 8] {
        let mut sched = preset_for_grid(3, 7, Target::SunwayCG, &grid);
        sched.tile(&[8, 16, 64]).tile_time(tt);
        let plan = ExecPlan::lower(&sched, 3, &grid)?;
        let rep = simulate_step(
            &StepInputs {
                stats,
                reach: reach.clone(),
                plan: &plan,
                prec: Precision::Fp64,
            },
            &m,
        );
        out.push((tt, rep.time_s, rep.dram_bytes));
    }
    Ok(out)
}

pub fn temporal_sweep_report() -> Result<String> {
    let rows: Vec<Vec<String>> = temporal_sweep()?
        .iter()
        .map(|(tt, t, bytes)| {
            vec![
                tt.to_string(),
                format!("{:.2}", t * 1e3),
                format!("{:.1}", bytes / 1e6),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation — temporal tiling depth (3d7pt, Sunway CG; ms/step, MB DMA/step)\n{}",
        render(&["tt", "time", "DMA"], &rows)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spm_always_wins_on_sunway() {
        for (name, spm, direct) in spm_ablation().unwrap() {
            assert!(direct > 2.0 * spm, "{name}: {direct} vs {spm}");
        }
    }

    #[test]
    fn coordination_penalty_grows_with_scale() {
        let rows = async_halo_ablation();
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(last.2 / last.1 > first.2 / first.1);
    }

    #[test]
    fn window_savings_scale_with_steps() {
        let w10 = window_ablation(10).unwrap();
        let w100 = window_ablation(100).unwrap();
        for (a, b) in w10.iter().zip(&w100) {
            assert_eq!(a.1, b.1, "window footprint is step-independent");
            assert!(b.2 > a.2);
        }
    }

    #[test]
    fn larger_rows_amortize_dma_startup() {
        let sweep = tile_sweep().unwrap();
        // Startup amortizes until the halo overhead curve flattens.
        assert!(sweep.first().unwrap().1 > sweep.last().unwrap().1 * 0.9);
    }

    #[test]
    fn temporal_tiling_reduces_dma_traffic() {
        let sweep = temporal_sweep().unwrap();
        let (_, _, bytes1) = sweep[0];
        let (_, _, bytes4) = sweep.iter().find(|(tt, _, _)| *tt == 4).copied().unwrap();
        assert!(bytes4 < bytes1, "tt=4 DMA {bytes4} >= tt=1 {bytes1}");
    }

    #[test]
    fn temporal_tiling_has_an_interior_optimum_or_monotone_gain() {
        // Deep time tiles eventually pay more in redundant compute than
        // they save in DMA; time must not keep improving forever.
        let sweep = temporal_sweep().unwrap();
        let t1 = sweep[0].1;
        let best = sweep.iter().map(|(_, t, _)| *t).fold(f64::MAX, f64::min);
        let deepest = sweep.last().unwrap().1;
        assert!(best < t1, "temporal tiling should beat tt=1 somewhere");
        assert!(deepest > best * 0.99, "no free lunch at extreme depth");
    }

    #[test]
    fn reports_render() {
        spm_ablation_report().unwrap();
        async_halo_report();
        window_report(100).unwrap();
        tile_sweep_report().unwrap();
        temporal_sweep_report().unwrap();
    }
}
