//! Regenerators for the paper's figures (7–14).

use crate::table::render;
use msc_baselines::{halide, openacc, openmp_manual, patus, physis, BaselineCase};
use msc_core::catalog::all_benchmarks;
use msc_core::error::Result;
use msc_core::schedule::Target;
use msc_machine::model::Precision;
use msc_machine::presets::{matrix_processor, sunway_cg, xeon_server};
use msc_machine::Roofline;

/// One bar of a speedup figure.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    pub name: &'static str,
    pub speedup: f64,
}

fn average(rows: &[SpeedupRow]) -> f64 {
    rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64
}

fn render_speedups(title: &str, rows: &[SpeedupRow], paper_avg: f64) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.name.to_string(), format!("{:.2}x", r.speedup)])
        .collect();
    format!(
        "{title}\n{}\naverage: {:.2}x (paper: {:.2}x)\n",
        render(&["benchmark", "speedup"], &cells),
        average(rows),
        paper_avg
    )
}

/// Figure 7: MSC vs manually optimized OpenACC on one Sunway CG.
pub fn fig7_rows(prec: Precision) -> Result<Vec<SpeedupRow>> {
    let m = sunway_cg();
    all_benchmarks()
        .iter()
        .map(|b| {
            let c = BaselineCase::for_benchmark(b, prec)?;
            let acc = openacc::step_time_s(&c, &m)?;
            let msc = c.msc_step(&m, Target::SunwayCG)?.time_s;
            Ok(SpeedupRow {
                name: b.name,
                speedup: acc / msc,
            })
        })
        .collect()
}

pub fn fig7() -> Result<String> {
    let mut out = render_speedups(
        "Figure 7 (fp64): MSC speedup over OpenACC on a Sunway CG",
        &fig7_rows(Precision::Fp64)?,
        24.4,
    );
    out += "\n";
    out += &render_speedups(
        "Figure 7 (fp32)",
        &fig7_rows(Precision::Fp32)?,
        20.7,
    );
    Ok(out)
}

/// Figure 8: MSC vs manually optimized OpenMP on Matrix.
pub fn fig8_rows(prec: Precision) -> Result<Vec<SpeedupRow>> {
    let m = matrix_processor();
    all_benchmarks()
        .iter()
        .map(|b| {
            let c = BaselineCase::for_benchmark(b, prec)?;
            let omp = openmp_manual::step_time_s(&c, &m)?;
            let msc = c.msc_step(&m, Target::Matrix)?.time_s;
            Ok(SpeedupRow {
                name: b.name,
                speedup: omp / msc,
            })
        })
        .collect()
}

pub fn fig8() -> Result<String> {
    let mut out = render_speedups(
        "Figure 8 (fp64): MSC speedup over manual OpenMP on Matrix",
        &fig8_rows(Precision::Fp64)?,
        1.05,
    );
    out += "\n";
    out += &render_speedups("Figure 8 (fp32)", &fig8_rows(Precision::Fp32)?, 1.03);
    Ok(out)
}

/// Figure 9: roofline points (fp64) on both many-core targets.
#[derive(Debug, Clone)]
pub struct RooflinePoint {
    pub name: &'static str,
    pub oi: f64,
    pub achieved_gflops: f64,
    pub attainable_gflops: f64,
    pub memory_bound: bool,
}

pub fn fig9_rows(target: Target) -> Result<Vec<RooflinePoint>> {
    let machine = match target {
        Target::SunwayCG => sunway_cg(),
        Target::Matrix => matrix_processor(),
        Target::Cpu => xeon_server(),
    };
    let roof = Roofline::of(&machine, Precision::Fp64);
    all_benchmarks()
        .iter()
        .map(|b| {
            let c = BaselineCase::for_benchmark(b, Precision::Fp64)?;
            let rep = c.msc_step(&machine, target)?;
            Ok(RooflinePoint {
                name: b.name,
                oi: rep.oi_dram,
                achieved_gflops: rep.gflops(),
                attainable_gflops: roof.attainable_gflops(rep.oi_dram),
                memory_bound: rep.bound == msc_sim::Bound::Memory,
            })
        })
        .collect()
}

pub fn fig9() -> Result<String> {
    let mut out = String::new();
    for (target, label) in [(Target::SunwayCG, "Sunway CG"), (Target::Matrix, "Matrix")] {
        let machine = match target {
            Target::SunwayCG => sunway_cg(),
            _ => matrix_processor(),
        };
        let roof = Roofline::of(&machine, Precision::Fp64);
        out += &format!(
            "Figure 9 — roofline on {label}: peak {:.0} GF/s, BW {:.1} GB/s, ridge {:.1} F/B\n",
            roof.peak_gflops, roof.bw_gbps, roof.ridge_point()
        );
        let rows: Vec<Vec<String>> = fig9_rows(target)?
            .iter()
            .map(|p| {
                vec![
                    p.name.to_string(),
                    format!("{:.2}", p.oi),
                    format!("{:.1}", p.achieved_gflops),
                    format!("{:.1}", p.attainable_gflops),
                    if p.memory_bound { "memory" } else { "compute" }.to_string(),
                ]
            })
            .collect();
        out += &render(
            &["benchmark", "OI (F/B)", "achieved GF/s", "roofline GF/s", "bound"],
            &rows,
        );
        out += "\n";
    }
    Ok(out)
}

/// Figure 10: strong/weak scalability.
pub mod scaling {
    use super::*;
    use msc_core::analysis::StencilStats;
    use msc_core::catalog::{benchmark, BenchmarkId};
    use msc_core::prelude::*;
    use msc_core::schedule::{preset_for_grid, ExecPlan};
    use msc_machine::presets::{taihulight_network, tianhe3_network};
    use msc_sim::{simulate_distributed, DistributedConfig};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Mode {
        Strong,
        Weak,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Platform {
        Sunway,
        Tianhe3,
    }

    impl Platform {
        /// Cores per MPI process as the paper counts them (65 per Sunway
        /// CG including the MPE; 32 per Matrix supernode).
        pub fn cores_per_proc(self) -> usize {
            match self {
                Platform::Sunway => 65,
                Platform::Tianhe3 => 32,
            }
        }
    }

    /// One scaling configuration (a row of Table 7).
    #[derive(Debug, Clone)]
    pub struct ScaleConfig {
        pub platform: Platform,
        pub sub_grid: Vec<usize>,
        pub mpi_grid: Vec<usize>,
    }

    impl ScaleConfig {
        pub fn n_procs(&self) -> usize {
            self.mpi_grid.iter().product()
        }

        pub fn cores(&self) -> usize {
            self.n_procs() * self.platform.cores_per_proc()
        }

        pub fn global_grid(&self) -> Vec<usize> {
            self.sub_grid
                .iter()
                .zip(&self.mpi_grid)
                .map(|(&s, &p)| s * p)
                .collect()
        }
    }

    /// The Table 7 configuration series.
    pub fn configs(dim: usize, mode: Mode, platform: Platform) -> Vec<ScaleConfig> {
        let (mpi_grids_2d, mpi_grids_3d): (Vec<Vec<usize>>, Vec<Vec<usize>>) = match platform {
            Platform::Sunway => (
                vec![vec![16, 8], vec![16, 16], vec![32, 16], vec![32, 32]],
                vec![
                    vec![8, 4, 4],
                    vec![8, 8, 4],
                    vec![8, 8, 8],
                    vec![16, 8, 8],
                ],
            ),
            Platform::Tianhe3 => (
                vec![vec![8, 4], vec![8, 8], vec![16, 8], vec![16, 16]],
                vec![
                    vec![4, 4, 2],
                    vec![4, 4, 4],
                    vec![4, 8, 4],
                    vec![8, 8, 4],
                ],
            ),
        };
        let grids = if dim == 2 { mpi_grids_2d } else { mpi_grids_3d };
        let weak_sub: Vec<usize> = if dim == 2 {
            vec![4096, 4096]
        } else {
            vec![256, 256, 256]
        };
        grids
            .into_iter()
            .enumerate()
            .map(|(i, mpi)| {
                let sub = match mode {
                    Mode::Weak => weak_sub.clone(),
                    Mode::Strong => {
                        // Fixed global grid = first config's global; sub
                        // shrinks as procs grow.
                        let base = ScaleConfig {
                            platform,
                            sub_grid: weak_sub.clone(),
                            mpi_grid: configs_first_mpi(dim, platform),
                        }
                        .global_grid();
                        base.iter().zip(&mpi).map(|(&g, &p)| g / p).collect()
                    }
                };
                let _ = i;
                ScaleConfig {
                    platform,
                    sub_grid: sub,
                    mpi_grid: mpi,
                }
            })
            .collect()
    }

    fn configs_first_mpi(dim: usize, platform: Platform) -> Vec<usize> {
        match (dim, platform) {
            (2, Platform::Sunway) => vec![16, 8],
            (2, Platform::Tianhe3) => vec![8, 4],
            (_, Platform::Sunway) => vec![8, 4, 4],
            (_, Platform::Tianhe3) => vec![4, 4, 2],
        }
    }

    /// One point of a Figure 10 series.
    #[derive(Debug, Clone)]
    pub struct ScalePoint {
        pub cores: usize,
        pub gflops: f64,
        pub ideal_gflops: f64,
    }

    /// Simulate a scaling series for the representative stencils
    /// (2d9pt_star for 2D, 3d7pt_star for 3D).
    pub fn series(dim: usize, mode: Mode, platform: Platform) -> Result<Vec<ScalePoint>> {
        let bench = if dim == 2 {
            benchmark(BenchmarkId::S2d9ptStar)
        } else {
            benchmark(BenchmarkId::S3d7ptStar)
        };
        let (machine, network, target) = match platform {
            Platform::Sunway => (sunway_cg(), taihulight_network(), Target::SunwayCG),
            Platform::Tianhe3 => (matrix_processor(), tianhe3_network(), Target::Matrix),
        };
        let mut points = Vec::new();
        let mut base_per_proc_gflops = None;
        for cfg in configs(dim, mode, platform) {
            let global = cfg.global_grid();
            let p = bench.program(&global, DType::F64, 2)?;
            let stats = StencilStats::of(&p.stencil, DType::F64)?;
            let sched = preset_for_grid(dim, bench.points(), target, &cfg.sub_grid);
            let plan = ExecPlan::lower(&sched, dim, &cfg.sub_grid)?;
            let dc = DistributedConfig {
                global_grid: global,
                mpi_grid: cfg.mpi_grid.clone(),
                reach: p.stencil.reach(),
                n_states: stats.time_deps,
                prec: Precision::Fp64,
            };
            let rep = simulate_distributed(&dc, &stats, &plan, &machine, &network)?;
            let per_proc =
                base_per_proc_gflops.get_or_insert(rep.total_gflops / cfg.n_procs() as f64);
            points.push(ScalePoint {
                cores: cfg.cores(),
                gflops: rep.total_gflops,
                ideal_gflops: *per_proc * cfg.n_procs() as f64,
            });
        }
        Ok(points)
    }

    /// Speedup at the largest scale over the smallest.
    pub fn end_to_end_speedup(points: &[ScalePoint]) -> f64 {
        points.last().unwrap().gflops / points.first().unwrap().gflops
    }
}

pub fn fig10() -> Result<String> {
    use scaling::*;
    let mut out = String::new();
    for (mode, label, paper) in [
        (Mode::Strong, "strong", (6.74, 5.85)),
        (Mode::Weak, "weak", (7.85, 7.38)),
    ] {
        out += &format!("Figure 10 — {label} scalability\n");
        for (platform, paper_avg) in [(Platform::Sunway, paper.0), (Platform::Tianhe3, paper.1)] {
            for dim in [2usize, 3] {
                let pts = series(dim, mode, platform)?;
                let rows: Vec<Vec<String>> = pts
                    .iter()
                    .map(|p| {
                        vec![
                            p.cores.to_string(),
                            format!("{:.1}", p.gflops),
                            format!("{:.1}", p.ideal_gflops),
                        ]
                    })
                    .collect();
                out += &format!("\n{platform:?} {dim}D ({label}):\n");
                out += &render(&["cores", "GF/s", "ideal GF/s"], &rows);
                out += &format!(
                    "8x-scale speedup: {:.2}x (paper platform avg: {:.2}x)\n",
                    end_to_end_speedup(&pts),
                    paper_avg
                );
            }
        }
        out += "\n";
    }
    Ok(out)
}

/// Figure 11: auto-tuning convergence.
pub fn fig11() -> Result<String> {
    use msc_core::analysis::StencilStats;
    use msc_core::catalog::{benchmark, BenchmarkId};
    use msc_core::prelude::*;
    use msc_machine::presets::taihulight_network;
    use msc_tune::{tune, AnnealOptions, Config, TuneProblem};

    let b = benchmark(BenchmarkId::S3d7ptStar);
    let program = b.program(&[8192, 128, 128], DType::F64, 2)?;
    let machine = sunway_cg();
    let network = taihulight_network();
    let mut out = String::from(
        "Figure 11 — auto-tuning 3d7pt_star, 8192x128x128 on 128 Sunway CGs\n",
    );
    for seed in [1u64, 2] {
        let problem = TuneProblem {
            workload: msc_tune::perf_model::Workload {
                global_grid: vec![8192, 128, 128],
                reach: program.stencil.reach(),
                stats: StencilStats::of(&program.stencil, DType::F64)?,
                n_procs: 128,
                prec: Precision::Fp64,
                points: b.points(),
            },
            machine: &machine,
            network: &network,
            options: AnnealOptions {
                iterations: 20_000,
                seed,
                ..Default::default()
            },
        };
        let start = Config {
            tile: vec![1, 1, 4],
            mpi_grid: vec![128, 1, 1],
        };
        let r = tune(&problem, start)?;
        out += &format!(
            "run {seed}: best {:?} over MPI {:?}, step {:.3} ms (from {:.3} ms), improvement {:.2}x (paper: 3.28x), trace points {}\n",
            r.best.tile,
            r.best.mpi_grid,
            r.best_time_s * 1e3,
            r.initial_time_s * 1e3,
            r.improvement(),
            r.trace.len()
        );
        for p in r.trace.iter().take(12) {
            out += &format!("  iter {:>6}: best {:.4} ms\n", p.iteration, p.best_cost * 1e3);
        }
    }
    Ok(out)
}

/// Figure 12: vs Halide JIT/AOT on the CPU platform.
pub fn fig12_rows() -> Result<Vec<(SpeedupRow, SpeedupRow)>> {
    let m = xeon_server();
    all_benchmarks()
        .iter()
        .map(|b| {
            let c = BaselineCase::for_benchmark(b, Precision::Fp64)?;
            let jit = halide::jit_run_time_s(&c, &m, halide::FIG12_STEPS)?;
            let aot = halide::aot_step_time_s(&c, &m)? * halide::FIG12_STEPS as f64;
            let msc = halide::msc_run_time_s(&c, &m, halide::FIG12_STEPS)?;
            Ok((
                SpeedupRow {
                    name: b.name,
                    speedup: jit / aot,
                },
                SpeedupRow {
                    name: b.name,
                    speedup: jit / msc,
                },
            ))
        })
        .collect()
}

pub fn fig12() -> Result<String> {
    let rows = fig12_rows()?;
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|(aot, msc)| {
            vec![
                aot.name.to_string(),
                format!("{:.2}x", aot.speedup),
                format!("{:.2}x", msc.speedup),
            ]
        })
        .collect();
    let avg_aot = rows.iter().map(|(a, _)| a.speedup).sum::<f64>() / rows.len() as f64;
    let avg_msc = rows.iter().map(|(_, m)| m.speedup).sum::<f64>() / rows.len() as f64;
    Ok(format!(
        "Figure 12 — speedup over Halide-JIT (baseline)\n{}\naverages: Halide-AOT {:.2}x (paper 2.92x), MSC {:.2}x (paper 3.33x)\n",
        render(&["benchmark", "Halide-AOT", "MSC"], &cells),
        avg_aot,
        avg_msc
    ))
}

/// Figure 13: vs Patus.
pub fn fig13_rows() -> Result<Vec<SpeedupRow>> {
    let m = xeon_server();
    all_benchmarks()
        .iter()
        .map(|b| {
            let c = BaselineCase::for_benchmark(b, Precision::Fp64)?;
            let p = patus::step_time_s(&c, &m)?;
            let msc = c.msc_step(&m, Target::Cpu)?.time_s;
            Ok(SpeedupRow {
                name: b.name,
                speedup: p / msc,
            })
        })
        .collect()
}

pub fn fig13() -> Result<String> {
    Ok(render_speedups(
        "Figure 13 — MSC speedup over Patus (CPU)",
        &fig13_rows()?,
        5.94,
    ))
}

/// Figure 14: vs Physis.
pub fn fig14_rows() -> Result<Vec<SpeedupRow>> {
    let m = xeon_server();
    all_benchmarks()
        .iter()
        .map(|b| {
            let c = physis::PhysisCase::for_benchmark(b)?;
            Ok(SpeedupRow {
                name: b.name,
                speedup: c.speedup(&m)?,
            })
        })
        .collect()
}

pub fn fig14() -> Result<String> {
    Ok(render_speedups(
        "Figure 14 — MSC speedup over Physis (CPU, Table 8 grids)",
        &fig14_rows()?,
        9.88,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_average_band() {
        let rows = fig7_rows(Precision::Fp64).unwrap();
        let avg = average(&rows);
        assert!((12.0..=40.0).contains(&avg), "{avg}");
    }

    #[test]
    fn fig8_is_parity() {
        let rows = fig8_rows(Precision::Fp64).unwrap();
        for r in rows {
            assert!((1.0..=1.25).contains(&r.speedup), "{}: {}", r.name, r.speedup);
        }
    }

    #[test]
    fn fig9_only_2d169pt_is_compute_bound_on_sunway() {
        let rows = fig9_rows(Target::SunwayCG).unwrap();
        for p in &rows {
            if p.name == "2d169pt_box" {
                assert!(!p.memory_bound, "2d169pt must be compute-bound");
            }
        }
        // And it stays memory-bound on Matrix (paper §5.2.2).
        let rows = fig9_rows(Target::Matrix).unwrap();
        let p = rows.iter().find(|p| p.name == "2d169pt_box").unwrap();
        assert!(p.memory_bound);
    }

    #[test]
    fn fig9_achieved_below_attainable() {
        for target in [Target::SunwayCG, Target::Matrix] {
            for p in fig9_rows(target).unwrap() {
                assert!(
                    p.achieved_gflops <= p.attainable_gflops * 1.01,
                    "{target:?} {}: {} > {}",
                    p.name,
                    p.achieved_gflops,
                    p.attainable_gflops
                );
            }
        }
    }

    #[test]
    fn fig10_weak_scaling_is_near_ideal() {
        use scaling::*;
        for platform in [Platform::Sunway, Platform::Tianhe3] {
            for dim in [2, 3] {
                let pts = series(dim, Mode::Weak, platform).unwrap();
                let s = end_to_end_speedup(&pts);
                assert!((6.0..=8.2).contains(&s), "{platform:?} {dim}D weak: {s}");
            }
        }
    }

    #[test]
    fn fig10_strong_scaling_matches_paper_shape() {
        use scaling::*;
        // Sunway strong scaling near-ideal; Tianhe-3 2D deviates due to
        // congestion (paper §5.3).
        let sun3 = end_to_end_speedup(&series(3, Mode::Strong, Platform::Sunway).unwrap());
        assert!((5.5..=8.2).contains(&sun3), "sunway 3D strong {sun3}");
        let th3_3d = end_to_end_speedup(&series(3, Mode::Strong, Platform::Tianhe3).unwrap());
        let th3_2d = end_to_end_speedup(&series(2, Mode::Strong, Platform::Tianhe3).unwrap());
        assert!(
            th3_2d < th3_3d,
            "2D strong scaling must congest more: 2D {th3_2d} vs 3D {th3_3d}"
        );
    }

    #[test]
    fn fig12_halide_crossover() {
        let rows = fig12_rows().unwrap();
        let aot = |n: &str| rows.iter().find(|(a, _)| a.name == n).unwrap().0.speedup;
        let msc = |n: &str| rows.iter().find(|(a, _)| a.name == n).unwrap().1.speedup;
        // Small stencils: Halide-AOT ahead; large: MSC ahead.
        assert!(aot("3d7pt_star") > msc("3d7pt_star"));
        assert!(msc("2d169pt_box") > aot("2d169pt_box"));
    }

    #[test]
    fn fig13_and_fig14_msc_wins() {
        for r in fig13_rows().unwrap() {
            assert!(r.speedup > 1.0, "patus {}: {}", r.name, r.speedup);
        }
        for r in fig14_rows().unwrap() {
            assert!(r.speedup > 1.0, "physis {}: {}", r.name, r.speedup);
        }
    }

    #[test]
    fn renders_do_not_panic() {
        fig7().unwrap();
        fig8().unwrap();
        fig9().unwrap();
        fig12().unwrap();
        fig13().unwrap();
        fig14().unwrap();
    }
}
