//! Experiment regenerators, one per table/figure of the paper.

pub mod ablations;
pub mod figures;
pub mod tables;
