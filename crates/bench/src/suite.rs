//! Recorded benchmark trajectory: a fixed, schema-versioned suite whose
//! results are committed at the repo root (`BENCH_0006.json`) so the
//! project's performance history rides along with its code history.
//!
//! The suite runs two serial and two distributed stencil workloads, a
//! scheduler A/B case (persistent worker pool vs per-step thread
//! respawn), and an execution-tier A/B case (tap interpreter vs bytecode
//! VM vs shape-specialized row kernels), and records two kinds of metric
//! per case:
//!
//! * **count** metrics (computed points, tiles, halo messages) — exact
//!   and deterministic; any change between two recordings is a
//!   correctness-level regression and always flagged by [`diff`];
//! * **time** metrics (wall time, halo-wait p90) — machine- and
//!   load-dependent; [`diff`] flags them only past a relative threshold,
//!   and `--counts-only` skips them entirely for noisy CI boxes.
//!
//! [`validate`] checks any recording against the schema before it is
//! trusted, and [`scale_times`] produces a deliberately slowed copy so
//! the regression gate can prove it fires (`mscc bench --doctor`).

use crate::results::Json;
use msc_comm::run_distributed;
use msc_core::catalog::{benchmark, BenchmarkId};
use msc_core::error::MscError;
use msc_core::error::Result;
use msc_core::prelude::*;
use msc_core::schedule::plan::ExecPlan;
use msc_core::schedule::Schedule;
use msc_exec::driver::{run_program, run_program_tier, Executor};
use msc_exec::{Boundary, ExecTier, Grid};
use msc_trace::Hist;
use std::time::Instant;

/// Schema version of the trajectory document; bump on layout changes.
pub const SCHEMA_VERSION: u64 = 6;

/// Canonical file name of the committed trajectory recording.
pub const BENCH_FILE: &str = "BENCH_0006.json";

/// Default relative slowdown on a time metric that counts as a
/// regression (ISSUE: >15%).
pub const DEFAULT_THRESHOLD: f64 = 0.15;

struct CaseSpec {
    name: &'static str,
    bench: BenchmarkId,
    grid: &'static [usize],
    quick_grid: &'static [usize],
    steps: usize,
    /// `None` runs serially; `Some` runs distributed over this grid.
    procs: Option<&'static [usize]>,
    /// Run the case twice — persistent worker pool vs per-step thread
    /// respawn — and record both walls plus the speedup. Serial only.
    pool_compare: bool,
    /// Run the case once per execution tier — interpreter, bytecode VM,
    /// shape-specialized — on a single-thread whole-grid plan (pure
    /// per-row compute, no tiling or threading noise), assert the
    /// outputs bit-identical, and record the walls plus the speedups.
    /// Serial only; mutually exclusive with `pool_compare`.
    tier_compare: bool,
}

/// The fixed suite. Order and names are part of the schema: diffs match
/// cases by name.
const SUITE: &[CaseSpec] = &[
    CaseSpec {
        name: "s2d9pt_box_serial",
        bench: BenchmarkId::S2d9ptBox,
        grid: &[64, 64],
        quick_grid: &[32, 32],
        steps: 8,
        procs: None,
        pool_compare: false,
        tier_compare: false,
    },
    CaseSpec {
        name: "s3d7pt_star_serial",
        bench: BenchmarkId::S3d7ptStar,
        grid: &[32, 32, 32],
        quick_grid: &[16, 16, 16],
        steps: 4,
        procs: None,
        pool_compare: false,
        tier_compare: false,
    },
    CaseSpec {
        name: "s2d9pt_box_dist_2x2",
        bench: BenchmarkId::S2d9ptBox,
        grid: &[64, 64],
        quick_grid: &[32, 32],
        steps: 8,
        procs: Some(&[2, 2]),
        pool_compare: false,
        tier_compare: false,
    },
    CaseSpec {
        name: "s3d7pt_star_dist_2x2x1",
        bench: BenchmarkId::S3d7ptStar,
        grid: &[32, 32, 32],
        quick_grid: &[16, 16, 16],
        steps: 4,
        procs: Some(&[2, 2, 1]),
        pool_compare: false,
        tier_compare: false,
    },
    CaseSpec {
        name: "s3d7pt_star_pool_vs_respawn",
        bench: BenchmarkId::S3d7ptStar,
        grid: &[12, 12, 12],
        quick_grid: &[8, 8, 8],
        steps: 100,
        procs: None,
        pool_compare: true,
        tier_compare: false,
    },
    CaseSpec {
        // Quick mode keeps a 32-point axis: the VM amortizes its chunk
        // dispatch over whole rows, so rows must be long enough for the
        // smoke-mode speedup gate to measure compute rather than
        // dispatch overhead.
        name: "s3d7pt_interp_vs_vm",
        bench: BenchmarkId::S3d7ptStar,
        grid: &[48, 48, 48],
        quick_grid: &[32, 32, 32],
        steps: 8,
        procs: None,
        pool_compare: false,
        tier_compare: true,
    },
];

fn sub_plan(sub: &[usize]) -> Result<ExecPlan> {
    let mut s = Schedule::default();
    let tile: Vec<usize> = sub.iter().map(|&x| (x / 2).max(1)).collect();
    s.tile(&tile);
    s.parallel("xo", 2);
    ExecPlan::lower(&s, sub.len(), sub)
}

/// One tile covering the whole interior, one thread: every step is a
/// straight sweep of full-width rows through the chosen tier, so the
/// tier walls compare per-row compute and nothing else.
fn whole_grid_plan(sub: &[usize]) -> Result<ExecPlan> {
    let mut s = Schedule::default();
    s.tile(sub);
    s.parallel("xo", 1);
    ExecPlan::lower(&s, sub.len(), sub)
}

fn metric(name: &str, kind: &str, value: f64) -> Json {
    Json::obj(vec![
        ("name", Json::s(name)),
        ("kind", Json::s(kind)),
        ("value", Json::n(value)),
    ])
}

fn run_case(spec: &CaseSpec, quick: bool) -> Result<Json> {
    let grid = if quick { spec.quick_grid } else { spec.grid };
    let p = benchmark(spec.bench).program(grid, DType::F64, spec.steps)?;
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 42);
    let mut metrics = Vec::new();
    let wall_ns;
    if spec.pool_compare {
        // A/B the schedulers on the identical program: persistent pool
        // first, then the legacy per-step respawn path. Only scheduling
        // differs, so the counts are shared and the outputs bit-identical
        // (enforced by crates/exec/tests/pool_determinism.rs).
        let exec = Executor::Tiled(sub_plan(grid)?);
        msc_exec::pool::set_persistent(true);
        let t0 = Instant::now();
        let (_, stats) = run_program(&p, &exec, &init)?;
        let pool_ns = t0.elapsed().as_nanos() as f64;
        msc_exec::pool::set_persistent(false);
        let t1 = Instant::now();
        let respawn = run_program(&p, &exec, &init);
        let respawn_ns = t1.elapsed().as_nanos() as f64;
        msc_exec::pool::set_persistent(true);
        respawn?;
        wall_ns = pool_ns;
        metrics.push(metric("wall_ns", "time", pool_ns));
        metrics.push(metric("respawn_wall_ns", "time", respawn_ns));
        metrics.push(metric("pool_speedup", "time", respawn_ns / pool_ns));
        metrics.push(metric(
            "computed_points",
            "count",
            stats.computed_points() as f64,
        ));
        metrics.push(metric(
            "tiles_executed",
            "count",
            stats.tiles_executed as f64,
        ));
        metrics.push(metric("steps", "count", stats.steps as f64));
    } else if spec.tier_compare {
        // A/B/C the execution tiers on the identical program and plan.
        // The tiers are bit-identical by construction (ISSUE 6), and the
        // recording refuses to exist unless that holds right here too —
        // a speedup over a wrong answer is not a speedup.
        let exec = Executor::Tiled(whole_grid_plan(grid)?);
        let time_tier = |tier: ExecTier| -> Result<(Grid<f64>, f64, u64)> {
            let t0 = Instant::now();
            let (out, stats) = run_program_tier(&p, &exec, &init, Boundary::Dirichlet, tier)?;
            let ns = t0.elapsed().as_nanos() as f64;
            Ok((out, ns, stats.vm_dispatches()))
        };
        let (interp_out, interp_ns, _) = time_tier(ExecTier::Interp)?;
        let (vm_out, vm_ns, vm_dispatches) = time_tier(ExecTier::Vm)?;
        let (spec_out, spec_ns, _) = time_tier(ExecTier::Specialized)?;
        if vm_out.as_slice() != interp_out.as_slice()
            || spec_out.as_slice() != interp_out.as_slice()
        {
            return Err(MscError::InvalidConfig(format!(
                "{}: execution tiers are not bit-identical",
                spec.name
            )));
        }
        wall_ns = vm_ns;
        metrics.push(metric("interp_wall_ns", "time", interp_ns));
        metrics.push(metric("wall_ns", "time", vm_ns));
        metrics.push(metric("specialized_wall_ns", "time", spec_ns));
        metrics.push(metric("vm_speedup", "time", interp_ns / vm_ns));
        metrics.push(metric("specialized_speedup", "time", interp_ns / spec_ns));
        // Row-chunk dispatch count is a pure function of grid shape and
        // steps — exact, so any change is a lowering regression.
        metrics.push(metric("vm_dispatches", "count", vm_dispatches as f64));
        metrics.push(metric("steps", "count", spec.steps as f64));
    } else {
        match spec.procs {
            None => {
                let plan = sub_plan(grid)?;
                let t0 = Instant::now();
                let (_, stats) = run_program(&p, &Executor::Tiled(plan), &init)?;
                wall_ns = t0.elapsed().as_nanos() as f64;
                metrics.push(metric("wall_ns", "time", wall_ns));
                metrics.push(metric(
                    "computed_points",
                    "count",
                    stats.computed_points() as f64,
                ));
                metrics.push(metric(
                    "tiles_executed",
                    "count",
                    stats.tiles_executed as f64,
                ));
                metrics.push(metric("steps", "count", stats.steps as f64));
            }
            Some(procs) => {
                let t0 = Instant::now();
                let (_, stats) = run_distributed(&p, procs, &init, sub_plan)?;
                wall_ns = t0.elapsed().as_nanos() as f64;
                metrics.push(metric("wall_ns", "time", wall_ns));
                metrics.push(metric("halo_messages", "count", stats.messages as f64));
                metrics.push(metric("retransmits", "count", stats.retransmits() as f64));
                metrics.push(metric("steps", "count", stats.steps as f64));
                let wait = stats.hists.get(Hist::HaloWaitNanos);
                if !wait.is_empty() {
                    metrics.push(metric("halo_wait_p90_ns", "time", wait.p90() as f64));
                }
            }
        }
    }
    let points_per_step: usize = grid.iter().product();
    let total_points = (points_per_step * spec.steps) as f64;
    metrics.push(metric(
        "mpoints_per_s",
        "time",
        total_points / (wall_ns / 1e9) / 1e6,
    ));
    Ok(Json::obj(vec![
        ("name", Json::s(spec.name)),
        (
            "grid",
            Json::Arr(grid.iter().map(|&g| Json::n(g as f64)).collect()),
        ),
        ("steps", Json::n(spec.steps as f64)),
        (
            "procs",
            match spec.procs {
                None => Json::Null,
                Some(p) => Json::Arr(p.iter().map(|&g| Json::n(g as f64)).collect()),
            },
        ),
        ("metrics", Json::Arr(metrics)),
    ]))
}

/// Run the whole suite and return the trajectory document. `quick`
/// shrinks the grids for CI smoke runs (same cases, same metric names —
/// quick and full recordings still schema-validate identically, but
/// should only be count-diffed against each other).
pub fn run_suite(quick: bool) -> Result<Json> {
    let cases = SUITE
        .iter()
        .map(|spec| run_case(spec, quick))
        .collect::<Result<Vec<_>>>()?;
    Ok(Json::obj(vec![
        ("schema_version", Json::n(SCHEMA_VERSION as f64)),
        ("suite", Json::s("msc-bench-trajectory")),
        ("mode", Json::s(if quick { "quick" } else { "full" })),
        ("cases", Json::Arr(cases)),
    ]))
}

/// What the recovery smoke run observed (`mscc bench --doctor`).
pub struct RecoverySmoke {
    pub recoveries: usize,
    pub restarts: usize,
    pub buddy_bytes: u64,
    pub detect_p50_ns: u64,
    pub detect_p99_ns: u64,
}

/// Kill one rank of a 2x2 world mid-run and heal it online with a hot
/// spare, then check the recovered grid against the fault-free serial
/// reference bit for bit. `mscc bench --doctor` runs this as a self-test
/// of the recovery machinery alongside the regression-gate self-test,
/// surfacing the recovery counters and the detection-latency histogram.
pub fn recovery_smoke() -> Result<RecoverySmoke> {
    use msc_comm::{run_distributed_resilient, FaultPlan, HeartbeatConfig, RunOptions};
    let p = benchmark(BenchmarkId::S2d9ptBox).program(&[32, 32], DType::F64, 6)?;
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 42);
    let (reference, _) = run_program(&p, &Executor::Reference, &init)?;
    let opts = RunOptions {
        chaos: Some(std::sync::Arc::new(FaultPlan::new(5).with_kill(1, 4))),
        checkpoint_every: 2, // diskless: buddy snapshots only
        spare_ranks: 1,
        heartbeat: Some(HeartbeatConfig::from_millis(5).map_err(MscError::InvalidConfig)?),
        ..RunOptions::default()
    };
    let (out, stats) =
        run_distributed_resilient(&p, &[2, 2], &init, Boundary::Dirichlet, &opts, sub_plan)?;
    if out.as_slice() != reference.as_slice() {
        return Err(MscError::InvalidConfig(
            "recovery smoke: healed grid is not bit-identical to the fault-free run".into(),
        ));
    }
    let d = stats.hists.get(Hist::DetectLatencyNanos);
    Ok(RecoverySmoke {
        recoveries: stats.recoveries,
        restarts: stats.restarts,
        buddy_bytes: stats.buddy_bytes(),
        detect_p50_ns: d.p50(),
        detect_p99_ns: d.p99(),
    })
}

/// What the sampler-overhead self-test measured (`mscc bench --doctor`).
pub struct SamplerOverhead {
    /// Median wall for the bare traced run across the rounds.
    pub base_ns: u64,
    /// Median wall for the run observed by a 100 ms sampler.
    pub sampled_ns: u64,
    /// Samples the sampler emitted during one observed run.
    pub samples: u64,
    /// Median of the per-round paired differences `(sampled - bare) /
    /// bare`, clamped at 0 for faster-than-base.
    pub overhead_frac: f64,
    /// Whether the gate passes (see [`SAMPLER_OVERHEAD_BUDGET`]).
    pub within_budget: bool,
}

/// Observing a run may cost at most this fraction of its wall-clock.
/// This is a claim about optimized builds; debug builds pay unoptimized
/// tick costs (snapshot + render + I/O, all ~50x slower) that the wider
/// debug slack below absorbs, keeping the gate wired but honest there.
pub const SAMPLER_OVERHEAD_BUDGET: f64 = 0.02;
/// Absolute slack: differences under this are scheduler noise on a
/// sub-second micro-run, not sampler cost, regardless of the fraction.
const SAMPLER_OVERHEAD_SLACK_NS: u64 = if cfg!(debug_assertions) {
    100_000_000
} else {
    5_000_000
};
/// Interleaved bare/sampled rounds; the gate statistic is the median of
/// the per-round paired differences.
const SAMPLER_OVERHEAD_ROUNDS: usize = 5;

/// Measure what the metrics sampler costs a run it observes: the same
/// small stencil under tracing, bare vs sampled at 100 ms. Both arms
/// trace into their own [`TelemetryHub`]s so the only difference is the
/// sampler thread itself.
///
/// The gate statistic is the **median of paired per-round differences**
/// (each round runs bare then sampled back to back): run-to-run wall
/// noise on small or busy machines is easily several percent — more
/// than the budget itself — but it drifts both arms together, so pairing
/// cancels it while a real, systematic sampler cost survives the median.
///
/// [`TelemetryHub`]: msc_trace::TelemetryHub
pub fn sampler_overhead() -> Result<SamplerOverhead> {
    // Large enough that one run spans a few sampling intervals (~100s of
    // ms): a percentage gate over a single-digit-ms run would measure
    // the sampler's fixed start/stop cost, not its steady-state drag.
    // Debug builds run the stencil ~50x slower, so they reach the same
    // multi-interval wall with a much smaller workload.
    let (grid, steps) = if cfg!(debug_assertions) {
        ([32usize, 32, 32], 100)
    } else {
        ([48usize, 48, 48], 400)
    };
    let p = benchmark(BenchmarkId::S3d7ptStar).program(&grid, DType::F64, steps)?;
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 42);
    let exec = Executor::Tiled(sub_plan(&grid)?);

    let run_once = |sampled: bool, tag: &str| -> Result<(u64, u64)> {
        let hub = msc_trace::TelemetryHub::new();
        hub.set_enabled(true);
        let _g = msc_trace::install_thread_hub(std::sync::Arc::clone(&hub));
        let sampler = if sampled {
            let dir = std::env::temp_dir()
                .join(format!("msc_doctor_sampler_{}_{tag}", std::process::id()));
            let cfg = msc_trace::SamplerConfig::from_millis(100, dir.join("metrics.jsonl"))
                .map_err(MscError::InvalidConfig)?;
            Some(
                msc_trace::Sampler::start(std::sync::Arc::clone(&hub), cfg)
                    .map_err(|e| MscError::InvalidConfig(format!("sampler: {e}")))?,
            )
        } else {
            None
        };
        let t0 = Instant::now();
        run_program(&p, &exec, &init)?;
        let wall = t0.elapsed().as_nanos() as u64;
        let samples = match sampler {
            Some(s) => {
                let sum = s.stop();
                if let Some(dir) = sum.jsonl_path.parent() {
                    let _ = std::fs::remove_dir_all(dir);
                }
                sum.samples
            }
            None => 0,
        };
        Ok((wall, samples))
    };

    let median = |v: &mut Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let mut bares = Vec::new();
    let mut sampleds = Vec::new();
    let mut diffs: Vec<i64> = Vec::new();
    let mut samples = 0u64;
    for i in 0..SAMPLER_OVERHEAD_ROUNDS {
        let (b, _) = run_once(false, &format!("base{i}"))?;
        let (s, n) = run_once(true, &format!("on{i}"))?;
        bares.push(b);
        sampleds.push(s);
        diffs.push(s as i64 - b as i64);
        samples = samples.max(n);
    }
    let base_ns = median(&mut bares);
    let sampled_ns = median(&mut sampleds);
    diffs.sort_unstable();
    let extra = diffs[diffs.len() / 2].max(0) as u64;
    let overhead_frac = if base_ns > 0 {
        extra as f64 / base_ns as f64
    } else {
        0.0
    };
    Ok(SamplerOverhead {
        base_ns,
        sampled_ns,
        samples,
        overhead_frac,
        within_budget: overhead_frac < SAMPLER_OVERHEAD_BUDGET || extra < SAMPLER_OVERHEAD_SLACK_NS,
    })
}

fn require<'a>(doc: &'a Json, key: &str, ctx: &str) -> std::result::Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("{ctx}: missing `{key}`"))
}

/// Schema-check a trajectory document: version, required fields, and
/// well-formed metric entries with a known kind.
pub fn validate(doc: &Json) -> std::result::Result<(), String> {
    let version = require(doc, "schema_version", "document")?
        .as_f64()
        .ok_or("schema_version must be a number")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    require(doc, "suite", "document")?
        .as_str()
        .ok_or("suite must be a string")?;
    let cases = require(doc, "cases", "document")?
        .as_arr()
        .ok_or("cases must be an array")?;
    if cases.is_empty() {
        return Err("cases is empty".into());
    }
    for case in cases {
        let name = require(case, "name", "case")?
            .as_str()
            .ok_or("case name must be a string")?;
        let metrics = require(case, "metrics", name)?
            .as_arr()
            .ok_or_else(|| format!("{name}: metrics must be an array"))?;
        if metrics.is_empty() {
            return Err(format!("{name}: no metrics"));
        }
        for m in metrics {
            let mname = require(m, "name", name)?
                .as_str()
                .ok_or_else(|| format!("{name}: metric name must be a string"))?;
            let kind = require(m, "kind", mname)?
                .as_str()
                .ok_or_else(|| format!("{mname}: kind must be a string"))?;
            if kind != "time" && kind != "count" {
                return Err(format!("{mname}: unknown metric kind `{kind}`"));
            }
            let value = require(m, "value", mname)?
                .as_f64()
                .ok_or_else(|| format!("{mname}: value must be a number"))?;
            if !value.is_finite() {
                return Err(format!("{mname}: non-finite value"));
            }
        }
    }
    Ok(())
}

/// One regression found by [`diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    pub case: String,
    pub metric: String,
    pub old: f64,
    pub new: f64,
    pub detail: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} -> {} ({})",
            self.case, self.metric, self.old, self.new, self.detail
        )
    }
}

fn metrics_of(case: &Json) -> Vec<(&str, &str, f64)> {
    case.get("metrics")
        .and_then(Json::as_arr)
        .map(|ms| {
            ms.iter()
                .filter_map(|m| {
                    Some((
                        m.get("name")?.as_str()?,
                        m.get("kind")?.as_str()?,
                        m.get("value")?.as_f64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compare two validated recordings. Count metrics must match exactly;
/// time metrics regress when `new > old * (1 + threshold)` (pass
/// `counts_only` to skip them on noisy machines). A case or metric
/// present in `old` but missing from `new` is itself a regression —
/// the trajectory must never silently lose coverage.
pub fn diff(
    old: &Json,
    new: &Json,
    threshold: f64,
    counts_only: bool,
) -> std::result::Result<Vec<Regression>, String> {
    validate(old)?;
    validate(new)?;
    let mut regressions = Vec::new();
    let old_cases = old.get("cases").and_then(Json::as_arr).unwrap_or(&[]);
    let new_cases = new.get("cases").and_then(Json::as_arr).unwrap_or(&[]);
    for oc in old_cases {
        let name = oc.get("name").and_then(Json::as_str).unwrap_or("?");
        let Some(nc) = new_cases
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
        else {
            regressions.push(Regression {
                case: name.into(),
                metric: "<case>".into(),
                old: 0.0,
                new: 0.0,
                detail: "case missing from new recording".into(),
            });
            continue;
        };
        let new_metrics = metrics_of(nc);
        for (mname, kind, old_v) in metrics_of(oc) {
            let Some(&(_, _, new_v)) = new_metrics.iter().find(|(n, _, _)| *n == mname) else {
                regressions.push(Regression {
                    case: name.into(),
                    metric: mname.into(),
                    old: old_v,
                    new: 0.0,
                    detail: "metric missing from new recording".into(),
                });
                continue;
            };
            match kind {
                "count" => {
                    if new_v != old_v {
                        regressions.push(Regression {
                            case: name.into(),
                            metric: mname.into(),
                            old: old_v,
                            new: new_v,
                            detail: "count metric changed".into(),
                        });
                    }
                }
                _ if counts_only => {}
                // Bigger-is-better time metrics (throughput, speedup
                // ratios) regress downward; raw latencies regress upward.
                _ if mname.contains("per_s") || mname.contains("speedup") => {
                    if new_v < old_v * (1.0 - threshold) {
                        regressions.push(Regression {
                            case: name.into(),
                            metric: mname.into(),
                            old: old_v,
                            new: new_v,
                            detail: format!(
                                "throughput dropped {:.0}% (> {:.0}% threshold)",
                                (1.0 - new_v / old_v) * 100.0,
                                threshold * 100.0
                            ),
                        });
                    }
                }
                _ => {
                    if new_v > old_v * (1.0 + threshold) {
                        regressions.push(Regression {
                            case: name.into(),
                            metric: mname.into(),
                            old: old_v,
                            new: new_v,
                            detail: format!(
                                "slowed {:.0}% (> {:.0}% threshold)",
                                (new_v / old_v - 1.0) * 100.0,
                                threshold * 100.0
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(regressions)
}

/// Return a copy of `doc` with every time metric slowed by `factor`
/// (latencies multiplied, throughputs divided). Used by
/// `mscc bench --doctor` to prove the [`diff`] gate fires.
pub fn scale_times(doc: &Json, factor: f64) -> Json {
    fn rewrite(j: &Json, factor: f64) -> Json {
        match j {
            Json::Arr(items) => Json::Arr(items.iter().map(|i| rewrite(i, factor)).collect()),
            Json::Obj(fields) => {
                let is_time_metric = j.get("kind").and_then(Json::as_str) == Some("time");
                let name = j.get("name").and_then(Json::as_str).unwrap_or("");
                Json::Obj(
                    fields
                        .iter()
                        .map(|(k, v)| {
                            if is_time_metric && k == "value" {
                                let v0 = v.as_f64().unwrap_or(0.0);
                                let scaled = if name.contains("per_s") || name.contains("speedup") {
                                    v0 / factor
                                } else {
                                    v0 * factor
                                };
                                (k.clone(), Json::n(scaled))
                            } else {
                                (k.clone(), rewrite(v, factor))
                            }
                        })
                        .collect(),
                )
            }
            other => other.clone(),
        }
    }
    rewrite(doc, factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_runs_and_validates() {
        let doc = run_suite(true).unwrap();
        validate(&doc).unwrap();
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        validate(&back).unwrap();
        assert_eq!(
            back.get("cases").and_then(Json::as_arr).map(|c| c.len()),
            Some(6)
        );
        // The tier-compare case must carry its speedup metrics.
        let cases = back.get("cases").and_then(Json::as_arr).unwrap();
        let tier_case = cases
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some("s3d7pt_interp_vs_vm"))
            .expect("s3d7pt_interp_vs_vm case present");
        for want in ["vm_speedup", "specialized_speedup", "vm_dispatches"] {
            assert!(
                metrics_of(tier_case).iter().any(|(n, _, _)| *n == want),
                "missing {want}"
            );
        }
    }

    #[test]
    fn self_diff_is_clean_and_doctored_diff_fires() {
        let doc = run_suite(true).unwrap();
        assert!(diff(&doc, &doc, DEFAULT_THRESHOLD, false)
            .unwrap()
            .is_empty());
        let slowed = scale_times(&doc, 1.2);
        let regs = diff(&doc, &slowed, DEFAULT_THRESHOLD, false).unwrap();
        assert!(!regs.is_empty(), "20% slowdown must trip a 15% gate");
        assert!(regs.iter().all(|r| r.detail.contains("%")), "{regs:?}");
        // Counts are untouched by the doctoring, so counts-only stays clean.
        assert!(diff(&doc, &slowed, DEFAULT_THRESHOLD, true)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn count_changes_always_flag() {
        let doc = run_suite(true).unwrap();
        // Hand-edit one count metric.
        let text = doc.to_string();
        let mut edited = Json::parse(&text).unwrap();
        if let Json::Obj(fields) = &mut edited {
            for (k, v) in fields.iter_mut() {
                if k != "cases" {
                    continue;
                }
                if let Json::Arr(cases) = v {
                    if let Json::Obj(cf) = &mut cases[0] {
                        for (ck, cv) in cf.iter_mut() {
                            if ck != "metrics" {
                                continue;
                            }
                            if let Json::Arr(ms) = cv {
                                for m in ms.iter_mut() {
                                    if m.get("kind").and_then(Json::as_str) == Some("count") {
                                        if let Json::Obj(mf) = m {
                                            for (mk, mv) in mf.iter_mut() {
                                                if mk == "value" {
                                                    *mv = Json::n(mv.as_f64().unwrap() + 1.0);
                                                }
                                            }
                                        }
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let regs = diff(&doc, &edited, DEFAULT_THRESHOLD, true).unwrap();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].detail.contains("count"), "{regs:?}");
    }

    #[test]
    fn missing_case_is_a_regression() {
        let doc = run_suite(true).unwrap();
        let mut pruned = doc.clone();
        if let Json::Obj(fields) = &mut pruned {
            for (k, v) in fields.iter_mut() {
                if k == "cases" {
                    if let Json::Arr(cases) = v {
                        cases.pop();
                    }
                }
            }
        }
        let regs = diff(&doc, &pruned, DEFAULT_THRESHOLD, true).unwrap();
        assert!(regs.iter().any(|r| r.detail.contains("case missing")));
    }

    #[test]
    fn validator_rejects_bad_documents() {
        for (bad, why) in [
            ("{}", "missing version"),
            (
                "{\"schema_version\": 4, \"suite\": \"x\", \"cases\": []}",
                "old version",
            ),
            (
                "{\"schema_version\": 6, \"suite\": \"x\", \"cases\": []}",
                "no cases",
            ),
            (
                "{\"schema_version\": 6, \"suite\": \"x\", \"cases\": [{\"name\": \"c\", \
                 \"metrics\": [{\"name\": \"m\", \"kind\": \"weird\", \"value\": 1}]}]}",
                "bad kind",
            ),
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(validate(&doc).is_err(), "{why}");
        }
    }
}
