//! Regenerates Table 4: stencil benchmark characteristics (paper vs IR).
fn main() {
    print!("{}", msc_bench::tables::table4());
}
