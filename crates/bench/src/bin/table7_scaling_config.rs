//! Regenerates Table 7: strong/weak scaling configurations.
fn main() {
    print!("{}", msc_bench::tables::table7());
}
