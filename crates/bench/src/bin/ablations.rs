//! Runs the four ablation studies from DESIGN.md §5.
use msc_bench::ablations;
fn main() {
    println!("{}", ablations::spm_ablation_report().expect("spm"));
    println!("{}", ablations::async_halo_report());
    println!("{}", ablations::window_report(100).expect("window"));
    println!("{}", ablations::tile_sweep_report().expect("tiles"));
    println!("{}", ablations::temporal_sweep_report().expect("temporal"));
}
