//! Regenerates Figure 13: MSC vs Patus.
fn main() {
    print!("{}", msc_bench::figures::fig13().expect("fig13"));
}
