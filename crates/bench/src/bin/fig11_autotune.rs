//! Regenerates Figure 11: auto-tuning convergence (two runs).
fn main() {
    print!("{}", msc_bench::figures::fig11().expect("fig11"));
}
