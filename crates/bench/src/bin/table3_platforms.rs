//! Regenerates Table 3: platform configurations.
fn main() {
    print!("{}", msc_bench::tables::table3());
}
