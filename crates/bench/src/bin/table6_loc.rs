//! Regenerates Table 6: lines-of-code comparison.
fn main() {
    print!("{}", msc_bench::tables::table6());
}
