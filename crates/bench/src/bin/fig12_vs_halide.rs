//! Regenerates Figure 12: MSC and Halide-AOT vs Halide-JIT.
fn main() {
    print!("{}", msc_bench::figures::fig12().expect("fig12"));
}
