//! Regenerates every table and figure of the paper in one run — the
//! output behind EXPERIMENTS.md. Pass `--json <path>` to also dump a
//! machine-readable document of every series.
use msc_bench::{ablations, figures, results, tables};
fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).expect("--json needs a path");
        let doc = results::experiments_json().expect("experiments");
        std::fs::write(path, doc.to_string()).expect("write json");
        eprintln!("wrote {path}");
    }
    println!("== Table 3 ==\n{}", tables::table3());
    println!("== Table 4 ==\n{}", tables::table4());
    println!("== Table 5 ==\n{}", tables::table5());
    println!("== Figure 7 ==\n{}", figures::fig7().expect("fig7"));
    println!("== Figure 8 ==\n{}", figures::fig8().expect("fig8"));
    println!("== Figure 9 ==\n{}", figures::fig9().expect("fig9"));
    println!("== Table 6 ==\n{}", tables::table6());
    println!("== Table 7 ==\n{}", tables::table7());
    println!("== Figure 10 ==\n{}", figures::fig10().expect("fig10"));
    println!("== Figure 11 ==\n{}", figures::fig11().expect("fig11"));
    println!("== Table 8 ==\n{}", tables::table8());
    println!("== Figure 12 ==\n{}", figures::fig12().expect("fig12"));
    println!("== Figure 13 ==\n{}", figures::fig13().expect("fig13"));
    println!("== Figure 14 ==\n{}", figures::fig14().expect("fig14"));
    println!("== Ablations ==");
    println!("{}", ablations::spm_ablation_report().expect("spm"));
    println!("{}", ablations::async_halo_report());
    println!("{}", ablations::window_report(100).expect("window"));
    println!("{}", ablations::tile_sweep_report().expect("tiles"));
    println!("{}", ablations::temporal_sweep_report().expect("temporal"));
}
