//! Regenerates Figure 8: MSC vs manual OpenMP on Matrix.
fn main() {
    print!("{}", msc_bench::figures::fig8().expect("fig8"));
}
