//! Regenerates Table 8: MSC configurations for the Physis comparison.
fn main() {
    print!("{}", msc_bench::tables::table8());
}
