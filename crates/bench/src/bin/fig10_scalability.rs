//! Regenerates Figure 10: strong/weak scalability series.
fn main() {
    print!("{}", msc_bench::figures::fig10().expect("fig10"));
}
