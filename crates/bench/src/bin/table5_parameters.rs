//! Regenerates Table 5: MSC parameter settings per benchmark/target.
fn main() {
    print!("{}", msc_bench::tables::table5());
}
