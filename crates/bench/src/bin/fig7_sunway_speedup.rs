//! Regenerates Figure 7: MSC vs OpenACC on a Sunway CG.
fn main() {
    print!("{}", msc_bench::figures::fig7().expect("fig7"));
}
