//! Regenerates Figure 9: roofline analysis on Sunway and Matrix.
fn main() {
    print!("{}", msc_bench::figures::fig9().expect("fig9"));
}
