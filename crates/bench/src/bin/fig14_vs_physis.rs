//! Regenerates Figure 14: MSC vs Physis.
fn main() {
    print!("{}", msc_bench::figures::fig14().expect("fig14"));
}
