//! Criterion benchmarks of the communication library: region pack/unpack
//! and full multi-rank halo exchanges through the message-passing
//! runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msc_comm::{CartDecomp, HaloExchange, Region, World};
use msc_exec::Grid;

fn bench_pack_unpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack_unpack");
    for &n in &[64usize, 256, 1024] {
        let g: Grid<f64> = Grid::random(&[n, n], &[2, 2], 1);
        // A full contiguous face and a strided (column) face.
        let row_face = Region::new(vec![2, 2], vec![2, n]);
        let col_face = Region::new(vec![2, 2], vec![n, 2]);
        group.throughput(Throughput::Bytes((row_face.len() * 8) as u64));
        group.bench_with_input(BenchmarkId::new("pack_rows", n), &g, |b, g| {
            b.iter(|| row_face.pack(g));
        });
        group.bench_with_input(BenchmarkId::new("pack_cols", n), &g, |b, g| {
            b.iter(|| col_face.pack(g));
        });
        let buf = row_face.pack(&g);
        group.bench_with_input(BenchmarkId::new("unpack_rows", n), &buf, |b, buf| {
            let mut g2 = g.clone();
            b.iter(|| row_face.unpack(&mut g2, buf));
        });
    }
    group.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_exchange");
    group.sample_size(10);
    for (procs, label) in [(vec![2usize, 2], "2x2"), (vec![3, 3], "3x3")] {
        let decomp = CartDecomp::new(&[192, 192], &procs, &[2, 2]).unwrap();
        let ex = HaloExchange::new(decomp.clone());
        group.bench_function(BenchmarkId::new("full_round", label), |b| {
            b.iter(|| {
                let d = decomp.clone();
                let ex = ex.clone();
                World::run(d.n_ranks(), move |mut ctx| {
                    let mut g: Grid<f64> = Grid::random(&d.sub_extent(), &d.reach, 7);
                    ex.exchange(&mut ctx, &mut g, 0).unwrap()
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pack_unpack, bench_exchange);
criterion_main!(benches);
