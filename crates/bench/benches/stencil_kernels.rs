//! Criterion benchmarks of the functional executors: serial reference vs
//! tiled-parallel vs SPM-staged, across the Table 4 stencils — real
//! wall-clock measurements on the host (complementing the deterministic
//! simulator numbers of the figure harnesses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msc_core::catalog::{all_benchmarks, benchmark, BenchmarkId as Bid};
use msc_core::prelude::*;
use msc_core::schedule::{ExecPlan, Schedule};
use msc_exec::{reference, spm, tiled, ExecTier, Grid, TieredStencil};

fn plan(ndim: usize, grid: &[usize], tile: &[usize], threads: usize) -> ExecPlan {
    let mut s = Schedule::default();
    s.tile(tile);
    s.parallel("xo", threads);
    ExecPlan::lower(&s, ndim, grid).unwrap()
}

fn bench_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group("executors_3d7pt");
    group.sample_size(20);
    let b = benchmark(Bid::S3d7ptStar);
    let grid = vec![64usize, 64, 64];
    let p = b.program(&grid, DType::F64, 1).unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 1);
    let compiled = TieredStencil::compile(&p, &init, ExecTier::Auto).unwrap();
    group.throughput(Throughput::Elements(init.interior_len() as u64));

    group.bench_function("reference_serial", |bch| {
        let mut out = init.clone();
        bch.iter(|| reference::step(&compiled, &[&init, &init], &mut out));
    });

    for threads in [1usize, 2, 4, 8] {
        let pl = plan(3, &grid, &[8, 16, 64], threads);
        group.bench_with_input(BenchmarkId::new("tiled", threads), &pl, |bch, pl| {
            let mut out = init.clone();
            bch.iter(|| tiled::step(&compiled, pl, &[&init, &init], &mut out));
        });
    }

    let pl = plan(3, &grid, &[4, 8, 64], 4);
    group.bench_function("spm_staged", |bch| {
        let mut out = init.clone();
        bch.iter(|| spm::step(&compiled, &pl, &[&init, &init], &mut out, 1 << 20).unwrap());
    });
    group.finish();
}

fn bench_all_stencils(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_stencils");
    group.sample_size(15);
    for b in all_benchmarks() {
        let grid: Vec<usize> = match b.ndim {
            2 => vec![256, 256],
            _ => vec![48, 48, 48],
        };
        let p = b.program(&grid, DType::F64, 1).unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 2);
        let compiled = TieredStencil::compile(&p, &init, ExecTier::Auto).unwrap();
        let tile: Vec<usize> = grid.iter().map(|&g| (g / 4).max(1)).collect();
        let pl = plan(b.ndim, &grid, &tile, 4);
        group.throughput(Throughput::Elements(init.interior_len() as u64));
        group.bench_function(b.name, |bch| {
            let mut out = init.clone();
            bch.iter(|| tiled::step(&compiled, &pl, &[&init, &init], &mut out));
        });
    }
    group.finish();
}

fn bench_temporal_tiling(c: &mut Criterion) {
    // Wall-clock effect of temporal tiling on the host: at depth tt the
    // grid is traversed once per tt steps.
    let mut group = c.benchmark_group("temporal_tiling_2d9pt");
    group.sample_size(15);
    let b = benchmark(Bid::S2d9ptBox);
    let grid = vec![256usize, 256];
    let p = {
        let mut builder = msc_core::dsl::StencilProgram::builder(b.name)
            .kernel(b.kernel())
            .combine(&[(1, 1.0, b.name)])
            .timesteps(8);
        builder = builder.grid_2d("B", DType::F64, [256, 256], 1, 2);
        builder.build().unwrap()
    };
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 3);
    for tt in [1usize, 2, 4, 8] {
        let pl = plan(2, &grid, &[64, 128], 4);
        group.bench_with_input(BenchmarkId::new("depth", tt), &tt, |bch, &tt| {
            bch.iter(|| msc_exec::run_temporal_tiled(&p, &pl, tt, &init).unwrap());
        });
    }
    group.finish();
}

fn bench_varcoeff(c: &mut Criterion) {
    use msc_core::expr::Expr;
    use msc_exec::CompiledVarStencil;
    let mut group = c.benchmark_group("varcoeff_sweep");
    group.sample_size(20);
    let n = 256usize;
    let expr = Expr::at("B", &[0, 0])
        + Expr::at("K", &[0, 0])
            * (Expr::at("B", &[-1, 0]) + Expr::at("B", &[1, 0]) + Expr::at("B", &[0, -1])
                + Expr::at("B", &[0, 1])
                - 2.0 * (Expr::at("B", &[0, 0]) + Expr::at("B", &[0, 0])));
    let u: Grid<f64> = Grid::random(&[n, n], &[1, 1], 1);
    let k: Grid<f64> = Grid::random(&[n, n], &[1, 1], 2);
    let stencil = CompiledVarStencil::<f64>::compile(&expr, "B", &u.layout()).unwrap();
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_function("reference", |bch| {
        let mut out = u.clone();
        bch.iter(|| stencil.step_reference(&u, &[&k], &mut out));
    });
    let pl = plan(2, &[n, n], &[32, 256], 4);
    group.bench_function("tiled_x4", |bch| {
        let mut out = u.clone();
        bch.iter(|| stencil.step_tiled(&pl, &u, &[&k], &mut out));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_executors,
    bench_all_stencils,
    bench_temporal_tiling,
    bench_varcoeff
);
criterion_main!(benches);
