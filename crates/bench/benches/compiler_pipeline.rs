//! Criterion benchmarks of the compiler pipeline itself: kernel
//! construction, schedule lowering, C code generation, and the auto-tuner
//! inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msc_codegen::compile_to_source;
use msc_core::analysis::StencilStats;
use msc_core::catalog::{benchmark, BenchmarkId as Bid};
use msc_core::prelude::*;
use msc_core::schedule::{preset_for_grid, ExecPlan, Target};
use msc_machine::model::Precision;
use msc_machine::presets::{sunway_cg, taihulight_network};
use msc_tune::perf_model::{Config, Workload};

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowering");
    for id in [Bid::S3d7ptStar, Bid::S2d169ptBox] {
        let b = benchmark(id);
        let grid = b.default_grid();
        group.bench_function(BenchmarkId::new("kernel_build", b.name), |bch| {
            bch.iter(|| b.kernel().to_op().unwrap());
        });
        let sched = preset_for_grid(b.ndim, b.points(), Target::SunwayCG, &grid);
        group.bench_function(BenchmarkId::new("plan_lower", b.name), |bch| {
            bch.iter(|| ExecPlan::lower(&sched, b.ndim, &grid).unwrap());
        });
    }
    group.finish();
}

fn bench_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen");
    for (id, target) in [
        (Bid::S3d7ptStar, Target::SunwayCG),
        (Bid::S3d7ptStar, Target::Cpu),
        (Bid::S2d169ptBox, Target::Cpu),
    ] {
        let b = benchmark(id);
        let p = b.program(&b.default_grid(), DType::F64, 10).unwrap();
        group.bench_function(
            BenchmarkId::new(target.as_str(), b.name),
            |bch| {
                bch.iter(|| compile_to_source(&p, target).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_tuner_inner_loop(c: &mut Criterion) {
    let b = benchmark(Bid::S3d7ptStar);
    let p = b.program(&[8192, 128, 128], DType::F64, 2).unwrap();
    let w = Workload {
        global_grid: vec![8192, 128, 128],
        reach: p.stencil.reach(),
        stats: StencilStats::of(&p.stencil, DType::F64).unwrap(),
        n_procs: 128,
        prec: Precision::Fp64,
        points: b.points(),
    };
    let m = sunway_cg();
    let n = taihulight_network();
    let cfg = Config {
        tile: vec![2, 8, 64],
        mpi_grid: vec![8, 4, 4],
    };
    let mut group = c.benchmark_group("tuner");
    group.bench_function("simulator_measure", |bch| {
        bch.iter(|| w.measure(&cfg, &m, &n).unwrap());
    });
    group.bench_function("feature_extraction", |bch| {
        bch.iter(|| w.features(&cfg).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_lowering, bench_codegen, bench_tuner_inner_loop);
criterion_main!(benches);
