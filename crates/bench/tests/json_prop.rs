//! Property tests for [`msc_bench::results::Json::parse`]: the parser
//! sits behind every tool that re-reads our own emitted files (bench
//! trajectories, sampler streams, flight recordings, the service
//! protocol), where a torn write or a bad disk can hand it *anything*.
//! The contract is `Err`, never a panic or abort, on arbitrary input.

use msc_bench::results::Json;
use proptest::prelude::*;

/// Valid documents covering every construct the emitter produces:
/// scalars, escapes, unicode, nesting, empty containers.
fn corpus() -> Vec<String> {
    vec![
        "null".to_string(),
        "[1, -2.5e3, true, \"a\\n\\\"b\\u00e9\", {}, []]".to_string(),
        r#"{"schema":"msc-metrics-v1","seq":3,"counters":{"steps":42,"halo_bytes":1.5e9},"ranks":[{"rank":0,"steps":42}],"alerts":[{"kind":"stall","message":"rank 0 est arrêté"}]}"#
            .to_string(),
        Json::obj(vec![
            ("name", Json::s("x\"y\n\t\\z")),
            ("vals", Json::Arr(vec![Json::n(1.0), Json::Null, Json::Bool(false)])),
            ("nested", Json::obj(vec![("deep", Json::Arr(vec![Json::obj(vec![])]))])),
        ])
        .to_string(),
        "3.141592653589793".to_string(),
        "\"\"".to_string(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Mutate valid documents with byte flips and truncation; the
    /// parser must return (Ok or Err), never panic. Whatever it does
    /// accept must survive an emit/re-parse round trip.
    #[test]
    fn parse_survives_mutated_valid_documents(
        doc_idx in 0usize..=5,
        flips in prop::collection::vec((0usize..=4095, 0u8..=255), 0..=8),
        cut in 0usize..=4095,
    ) {
        let mut bytes = corpus()[doc_idx].clone().into_bytes();
        for (p, v) in flips {
            let i = p % bytes.len();
            bytes[i] = v;
        }
        bytes.truncate(cut % (bytes.len() + 1));
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(v) = Json::parse(&text) {
            let reparsed = Json::parse(&v.to_string());
            prop_assert!(reparsed.is_ok(), "emit/re-parse failed on {text:?}");
        }
    }

    /// Pure garbage: arbitrary byte soup (lossily decoded — the parser
    /// takes `&str`) must never panic the parser.
    #[test]
    fn parse_survives_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..=96),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
    }

    /// Hostile structural nesting at arbitrary depths: shallow parses,
    /// deep errors, nothing overflows the stack.
    #[test]
    fn parse_survives_any_nesting_depth(
        depth in 0usize..=2048,
        open in 0usize..=1,
    ) {
        let (o, c) = [("[", "]"), ("{\"k\":", "}")][open];
        let doc = format!("{}1{}", o.repeat(depth), c.repeat(depth));
        let parsed = Json::parse(&doc);
        // 512 is the documented cap; stay clear of the boundary on both
        // sides rather than encoding its exact off-by-one here.
        if depth <= 256 {
            prop_assert!(parsed.is_ok(), "depth {depth} rejected: {parsed:?}");
        } else if depth >= 1024 {
            prop_assert!(parsed.is_err(), "depth {depth} accepted");
        }
    }
}

#[test]
fn corpus_is_actually_valid() {
    for doc in corpus() {
        Json::parse(&doc).unwrap_or_else(|e| panic!("corpus doc rejected ({e}): {doc}"));
    }
}
