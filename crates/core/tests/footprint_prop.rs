//! Property tests for footprint inference: [`Footprint`] must agree with
//! a brute-force enumeration of the raw accesses in the expression tree,
//! for arbitrary tap sets, time depths, and temporal combinations.

use msc_core::expr::BinOp;
use msc_core::prelude::*;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// One random tap: spatial offsets (one per dim) and a time depth.
type RawTap = (Vec<i64>, usize);

/// Strategy: 1–12 taps over `ndim` dims with offsets in -3..=3 and
/// time_back in 0..=2. Duplicates are allowed on purpose — dedup is part
/// of what the footprint pass must get right.
fn arb_taps(ndim: usize) -> impl Strategy<Value = Vec<RawTap>> {
    prop::collection::vec((prop::collection::vec(-3i64..=3, ndim), 0usize..=2), 1..=12)
}

/// Sum of `0.25 * B[offsets, t-time_back]` terms — the general linear
/// form every catalog kernel reduces to.
fn sum_expr(taps: &[RawTap]) -> Expr {
    let term = |(off, tb): &RawTap| {
        Expr::Binary(
            BinOp::Mul,
            Box::new(Expr::c(0.25)),
            Box::new(Expr::at_time("B", off, *tb)),
        )
    };
    let mut iter = taps.iter();
    let mut e = term(iter.next().expect("at least one tap"));
    for t in iter {
        e = Expr::Binary(BinOp::Add, Box::new(e), Box::new(term(t)));
    }
    e
}

/// Brute force: walk `expr.accesses()` and bucket offsets by
/// `(tensor, time)` with no cleverness at all.
fn brute_slots(expr: &Expr, time_base: usize) -> BTreeMap<(String, usize), BTreeSet<Vec<i64>>> {
    let mut slots: BTreeMap<(String, usize), BTreeSet<Vec<i64>>> = BTreeMap::new();
    for a in expr.accesses() {
        slots
            .entry((a.tensor.clone(), time_base + a.time_back))
            .or_default()
            .insert(a.offsets.clone());
    }
    slots
}

/// Check a [`Footprint`] against brute-forced slot buckets: same slot
/// keys, same offset sets, boxes that are the exact elementwise min/max.
fn assert_matches(
    fp: &Footprint,
    expected: &BTreeMap<(String, usize), BTreeSet<Vec<i64>>>,
    ndim: usize,
) {
    assert_eq!(fp.num_slots(), expected.len());
    let mut total_points = 0usize;
    for ((tensor, time), offsets) in expected {
        let slot = fp
            .slot(tensor, *time)
            .unwrap_or_else(|| panic!("missing slot ({tensor}, {time})"));
        let got: BTreeSet<Vec<i64>> = slot.offsets.iter().cloned().collect();
        assert_eq!(&got, offsets);
        total_points += offsets.len();
        for d in 0..ndim {
            let lo = offsets.iter().map(|o| o[d]).min().unwrap();
            let hi = offsets.iter().map(|o| o[d]).max().unwrap();
            assert_eq!(slot.lo[d], lo);
            assert_eq!(slot.hi[d], hi);
        }
    }
    assert_eq!(fp.distinct_points(), total_points);
    // The merged box is the union of slot boxes, and the halo demand is
    // its largest outward excursion (never negative).
    for d in 0..ndim {
        let lo = expected.values().flatten().map(|o| o[d]).min().unwrap();
        let hi = expected.values().flatten().map(|o| o[d]).max().unwrap();
        assert_eq!(fp.lo()[d], lo);
        assert_eq!(fp.hi()[d], hi);
        let halo = (-lo).max(hi).max(0) as usize;
        assert_eq!(fp.required_halo()[d], halo);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Expression-level inference equals brute force for arbitrary taps.
    #[test]
    fn expr_footprint_matches_brute_force(
        ndim in 1usize..=3,
        seed_taps in arb_taps(3),
    ) {
        // Truncate the 3-wide offsets to the sampled dimensionality so
        // ndim itself is part of the random space.
        let taps: Vec<RawTap> = seed_taps
            .iter()
            .map(|(off, tb)| (off[..ndim].to_vec(), *tb))
            .collect();
        let expr = sum_expr(&taps);
        let fp = Footprint::of_expr(&expr, ndim);
        assert_matches(&fp, &brute_slots(&expr, 0), ndim);
    }

    /// Kernel-level inference: the halo demand equals the kernel's own
    /// symmetric reach for every catalog benchmark kernel.
    #[test]
    fn catalog_kernel_halo_equals_reach(case in 0usize..1000) {
        let benches = all_benchmarks();
        let b = &benches[case % benches.len()];
        let k = b.kernel();
        let fp = Footprint::of_kernel(&k);
        prop_assert_eq!(fp.required_halo(), k.reach());
        prop_assert_eq!(fp.distinct_points(), k.points());
    }

    /// Stencil-level inference with randomized temporal terms: slots are
    /// keyed by the absolute depth `term.dt + access.time_back`, and the
    /// window demand is the deepest slot plus one.
    #[test]
    fn stencil_footprint_matches_brute_force(
        ndim in 1usize..=3,
        seed_taps in arb_taps(3),
        dt1 in 1usize..=3,
        dt2 in 1usize..=3,
    ) {
        let taps: Vec<RawTap> = seed_taps
            .iter()
            .map(|(off, tb)| (off[..ndim].to_vec(), *tb))
            .collect();
        let kernel = Kernel::new("k", ndim, sum_expr(&taps)).unwrap();
        let mut terms = vec![TimeTerm { dt: dt1, weight: 0.6, kernel: "k".into() }];
        if dt2 != dt1 {
            terms.push(TimeTerm { dt: dt2, weight: 0.4, kernel: "k".into() });
        }
        let stencil = Stencil::new("prop", vec![kernel.clone()], terms.clone()).unwrap();
        let fp = Footprint::of_stencil(&stencil).unwrap();

        let mut expected: BTreeMap<(String, usize), BTreeSet<Vec<i64>>> = BTreeMap::new();
        for t in &terms {
            for ((tensor, time), offs) in brute_slots(&kernel.expr, t.dt) {
                expected.entry((tensor, time)).or_default().extend(offs);
            }
        }
        assert_matches(&fp, &expected, ndim);

        let deepest = expected.keys().map(|(_, t)| *t).max().unwrap();
        prop_assert_eq!(fp.max_time(), deepest);
        prop_assert_eq!(fp.required_window(), deepest + 1);
    }
}
