//! Schedule layer: the optimization primitives of the paper (§4.3) and the
//! lowering from a scheduled kernel to a loop nest / execution plan.
//!
//! * [`primitives`] — `tile`, `reorder`, `parallel`, `cache_read`,
//!   `cache_write`, `compute_at` (all rewrite the IR, paper Table 2).
//! * [`looptree`] — the loop-nest statement tree produced by lowering;
//!   consumed by the C code generator.
//! * [`plan`] — [`ExecPlan`], the flat execution plan consumed by the
//!   functional executor and the timing simulator.
//! * [`legality`] — schedule validation.
//! * [`window`] — the sliding-time-window planner (paper Figure 5).
//! * [`presets`] — the paper's Table 5 parameter settings.

pub mod legality;
pub mod looptree;
pub mod plan;
pub mod presets;
pub mod primitives;
pub mod window;

pub use plan::ExecPlan;
pub use presets::{preset_for, preset_for_grid, table5_reorder, table5_tile, Target};
pub use primitives::{BufferScope, Schedule};
pub use window::WindowPlan;
