//! Optimization primitives (paper §4.3). Each primitive records a rewrite
//! of the kernel's loop nest; [`crate::schedule::looptree`] and
//! [`crate::schedule::plan`] materialize them.
//!
//! Axis naming convention follows the paper's Figure 4: spatial dimensions
//! (outermost first) are named `x`, `y`, `z`; `tile` splits `x` into
//! `xo`/`xi`, etc.

use crate::error::{MscError, Result};

/// Canonical axis name for spatial dimension `dim` (0 = outermost).
pub fn axis_name(dim: usize) -> &'static str {
    ["x", "y", "z"][dim]
}

/// Parse `"xo"` / `"yi"` / ... into `(dim, is_inner)`.
pub fn parse_split_axis(name: &str) -> Result<(usize, bool)> {
    let mut chars = name.chars();
    let base = chars.next().ok_or_else(|| {
        MscError::IllegalSchedule("empty axis name".into())
    })?;
    let suffix = chars.next();
    let dim = match base {
        'x' => 0,
        'y' => 1,
        'z' => 2,
        _ => {
            return Err(MscError::IllegalSchedule(format!(
                "unknown axis `{name}` (expected x/y/z with o/i suffix)"
            )))
        }
    };
    match suffix {
        Some('o') => Ok((dim, false)),
        Some('i') => Ok((dim, true)),
        _ => Err(MscError::IllegalSchedule(format!(
            "axis `{name}` must carry an `o`/`i` split suffix"
        ))),
    }
}

/// Scope of an SPM buffer allocation: `global` hoists the allocation out of
/// all loops to avoid repeated malloc/free (paper §4.3, Figure 4(e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BufferScope {
    #[default]
    Global,
    Local,
}

/// A read or write buffer placed in local memory (SPM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSpec {
    /// Buffer identifier, e.g. `buffer_read`.
    pub buffer: String,
    /// The tensor bound to the buffer.
    pub tensor: String,
    pub scope: BufferScope,
}

/// DMA placement: transfer `buffer` at the boundary of loop `axis`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeAt {
    pub buffer: String,
    pub axis: String,
}

/// The full set of primitives applied to one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Tile (loop fission) factor per spatial dimension; empty = untiled.
    pub tile_factors: Vec<usize>,
    /// Loop order after splitting, e.g. `[xo, yo, zo, xi, yi, zi]`.
    pub loop_order: Vec<String>,
    /// Multi-threading: `(axis, n_threads)`.
    pub parallel: Option<(String, usize)>,
    /// SPM read buffer binding (`cache_read`).
    pub cache_read: Option<CacheSpec>,
    /// SPM write buffer binding (`cache_write`).
    pub cache_write: Option<CacheSpec>,
    /// DMA transfer points (`compute_at`).
    pub compute_at: Vec<ComputeAt>,
    /// Double-buffered (pipelined) DMA: prefetch tile k+1 while
    /// computing tile k, overlapping data access and computation within
    /// the limited local memory (the paper's §5.6 streaming extension).
    pub double_buffer: bool,
    /// Temporal tile depth: process this many timesteps per staged tile
    /// with overlapped (redundant) halo computation (§2.1's temporal
    /// tiling; 1 = spatial tiling only).
    pub time_tile: usize,
}

impl Default for Schedule {
    fn default() -> Schedule {
        Schedule {
            tile_factors: Vec::new(),
            loop_order: Vec::new(),
            parallel: None,
            cache_read: None,
            cache_write: None,
            compute_at: Vec::new(),
            double_buffer: false,
            time_tile: 1,
        }
    }
}

impl Schedule {
    /// `tile_time(tt)` — overlapped temporal tiling: each staged tile
    /// advances `tt` timesteps locally, trading redundant halo
    /// computation for tt-fold fewer DMA passes over the grid.
    pub fn tile_time(&mut self, tt: usize) -> &mut Self {
        self.time_tile = tt.max(1);
        self
    }

    /// `tile(τ_x, τ_y, ..)` — split every spatial loop by the given
    /// factors (loop fission, paper Figure 4(a)→(b)).
    pub fn tile(&mut self, factors: &[usize]) -> &mut Self {
        self.tile_factors = factors.to_vec();
        self
    }

    /// `reorder(xo, yo, zo, xi, yi, zi)` — set the loop order after
    /// splitting (paper Figure 4(b)→(c)).
    pub fn reorder(&mut self, order: &[&str]) -> &mut Self {
        self.loop_order = order.iter().map(|s| s.to_string()).collect();
        self
    }

    /// `parallel(ax, N)` — multi-thread the given (outermost) axis over
    /// `n_threads` cores (paper Figure 4(c)/(d)).
    pub fn parallel(&mut self, axis: &str, n_threads: usize) -> &mut Self {
        self.parallel = Some((axis.to_string(), n_threads));
        self
    }

    /// `cache_read(tensor, buffer, scope)` — bind the input tensor to an
    /// SPM read buffer.
    pub fn cache_read(&mut self, tensor: &str, buffer: &str, scope: BufferScope) -> &mut Self {
        self.cache_read = Some(CacheSpec {
            buffer: buffer.to_string(),
            tensor: tensor.to_string(),
            scope,
        });
        self
    }

    /// `cache_write(buffer, scope)` — bind the kernel output to an SPM
    /// write buffer (a `TeNode` temporary).
    pub fn cache_write(&mut self, buffer: &str, scope: BufferScope) -> &mut Self {
        self.cache_write = Some(CacheSpec {
            buffer: buffer.to_string(),
            tensor: String::new(),
            scope,
        });
        self
    }

    /// `stream()` — enable double-buffered DMA so transfers overlap with
    /// computation (requires SPM primitives; doubles buffer footprint).
    pub fn stream(&mut self) -> &mut Self {
        self.double_buffer = true;
        self
    }

    /// `compute_at(buffer, axis)` — issue the buffer's DMA transfer at the
    /// boundary of `axis` (paper Figure 4(e)).
    pub fn compute_at(&mut self, buffer: &str, axis: &str) -> &mut Self {
        self.compute_at.push(ComputeAt {
            buffer: buffer.to_string(),
            axis: axis.to_string(),
        });
        self
    }

    /// Whether SPM caching primitives are in play (Sunway-style lowering,
    /// Figure 4 path (a),(b),(d),(e)).
    pub fn uses_spm(&self) -> bool {
        self.cache_read.is_some() || self.cache_write.is_some()
    }

    /// The default loop order for an `ndim`-dimensional tiled nest:
    /// all outer axes then all inner axes.
    pub fn canonical_order(ndim: usize) -> Vec<String> {
        let mut v: Vec<String> = (0..ndim).map(|d| format!("{}o", axis_name(d))).collect();
        v.extend((0..ndim).map(|d| format!("{}i", axis_name(d))));
        v
    }

    /// Number of threads requested (1 if not parallel).
    pub fn n_threads(&self) -> usize {
        self.parallel.as_ref().map(|(_, n)| *n).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_chaining() {
        let mut s = Schedule::default();
        s.tile(&[8, 8, 32])
            .reorder(&["xo", "yo", "zo", "xi", "yi", "zi"])
            .parallel("xo", 64)
            .cache_read("B", "buffer_read", BufferScope::Global)
            .cache_write("buffer_write", BufferScope::Global)
            .compute_at("buffer_read", "zo")
            .compute_at("buffer_write", "zo");
        assert_eq!(s.tile_factors, vec![8, 8, 32]);
        assert_eq!(s.n_threads(), 64);
        assert!(s.uses_spm());
        assert_eq!(s.compute_at.len(), 2);
    }

    #[test]
    fn canonical_order_2d_and_3d() {
        assert_eq!(Schedule::canonical_order(2), vec!["xo", "yo", "xi", "yi"]);
        assert_eq!(
            Schedule::canonical_order(3),
            vec!["xo", "yo", "zo", "xi", "yi", "zi"]
        );
    }

    #[test]
    fn parse_axis_names() {
        assert_eq!(parse_split_axis("xo").unwrap(), (0, false));
        assert_eq!(parse_split_axis("zi").unwrap(), (2, true));
        assert!(parse_split_axis("w").is_err());
        assert!(parse_split_axis("x").is_err());
        assert!(parse_split_axis("").is_err());
    }

    #[test]
    fn defaults_are_serial_untiled() {
        let s = Schedule::default();
        assert!(!s.uses_spm());
        assert_eq!(s.n_threads(), 1);
        assert!(s.tile_factors.is_empty());
    }
}
