//! Sliding time window (paper §4.3, Figure 5): instead of storing the
//! output of every timestep, keep only the `window` most recent states in
//! a ring of buffers and recycle the oldest slot for each new output.

use crate::error::{MscError, Result};

/// Plan mapping logical timesteps to physical buffer slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPlan {
    /// Number of live buffers (`max_dt + 1`).
    pub window: usize,
}

impl WindowPlan {
    /// Build a plan for a stencil whose largest temporal dependency is
    /// `max_dt` (window = `max_dt + 1`, paper Figure 5: deps on `t-1`,
    /// `t-2` → width three).
    pub fn for_max_dt(max_dt: usize) -> Result<WindowPlan> {
        if max_dt == 0 {
            return Err(MscError::InvalidConfig(
                "sliding window needs at least one temporal dependency".into(),
            ));
        }
        Ok(WindowPlan {
            window: max_dt + 1,
        })
    }

    /// Physical slot holding the state of logical timestep `t`.
    pub fn slot_of(&self, t: usize) -> usize {
        t % self.window
    }

    /// Slot that timestep `t`'s *output* is written into — it recycles the
    /// slot of timestep `t - window`, which is no longer needed.
    pub fn output_slot(&self, t: usize) -> usize {
        self.slot_of(t)
    }

    /// Slot read for the dependency `t - dt`. Errors if `dt` exceeds what
    /// the window retains.
    pub fn input_slot(&self, t: usize, dt: usize) -> Result<usize> {
        if dt == 0 || dt >= self.window {
            return Err(MscError::TimeWindowTooSmall {
                tensor: "<window>".into(),
                window: self.window,
                required: dt + 1,
            });
        }
        if dt > t {
            return Err(MscError::InvalidConfig(format!(
                "timestep {t} cannot depend {dt} steps back"
            )));
        }
        Ok(self.slot_of(t - dt))
    }

    /// Buffers kept live versus the keep-everything scheme after
    /// `total_steps` steps (paper Figure 5(b) vs 5(c)).
    pub fn buffers_saved(&self, total_steps: usize) -> usize {
        total_steps.saturating_sub(self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_width_matches_paper_figure5() {
        // Dependencies on t-1 and t-2 -> window of three.
        let w = WindowPlan::for_max_dt(2).unwrap();
        assert_eq!(w.window, 3);
    }

    #[test]
    fn slots_rotate_and_never_collide_with_live_inputs() {
        let w = WindowPlan::for_max_dt(2).unwrap();
        for t in 2..50 {
            let out = w.output_slot(t);
            let in1 = w.input_slot(t, 1).unwrap();
            let in2 = w.input_slot(t, 2).unwrap();
            assert_ne!(out, in1, "t={t}");
            assert_ne!(out, in2, "t={t}");
            assert_ne!(in1, in2, "t={t}");
        }
    }

    #[test]
    fn output_recycles_oldest() {
        let w = WindowPlan::for_max_dt(2).unwrap();
        // Output slot at t equals the slot that held t-3 (t - window).
        for t in 3..20 {
            assert_eq!(w.output_slot(t), w.slot_of(t - 3));
        }
    }

    #[test]
    fn dt_beyond_window_rejected() {
        let w = WindowPlan::for_max_dt(2).unwrap();
        assert!(w.input_slot(10, 3).is_err());
        assert!(w.input_slot(10, 0).is_err());
    }

    #[test]
    fn dt_before_start_rejected() {
        let w = WindowPlan::for_max_dt(2).unwrap();
        assert!(w.input_slot(1, 2).is_err());
    }

    #[test]
    fn zero_dep_window_rejected() {
        assert!(WindowPlan::for_max_dt(0).is_err());
    }

    #[test]
    fn savings_grow_linearly() {
        let w = WindowPlan::for_max_dt(2).unwrap();
        assert_eq!(w.buffers_saved(3), 0);
        assert_eq!(w.buffers_saved(100), 97);
    }
}
