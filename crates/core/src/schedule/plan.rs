//! [`ExecPlan`]: the flat execution plan a scheduled kernel lowers to.
//! It is the single source of truth shared by the functional executor
//! (`msc-exec`), the timing simulator (`msc-sim`), and — via the loop tree
//! — the C code generator (`msc-codegen`).

use crate::error::Result;
use crate::schedule::legality;
use crate::schedule::primitives::{parse_split_axis, Schedule};

/// A loop in the lowered nest: which spatial dimension it iterates and
/// whether it is the inner (intra-tile) loop of a split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopVar {
    pub dim: usize,
    pub inner: bool,
}

/// Lowered execution plan for one kernel sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    pub ndim: usize,
    /// Interior grid extents, outermost first.
    pub grid: Vec<usize>,
    /// Tile extents (equal to `grid` when untiled).
    pub tile: Vec<usize>,
    /// Loop order, outermost first.
    pub order: Vec<LoopVar>,
    /// Threads executing tiles (CPEs / cores).
    pub n_threads: usize,
    /// Whether the plan stages tiles through SPM with DMA.
    pub use_spm: bool,
    /// Number of outer loops enclosing the DMA transfer point; equal to the
    /// count of outer loops when DMA wraps the innermost outer loop
    /// (`compute_at(buf, zo)` in the paper → depth = 3 for 3D).
    pub dma_depth: usize,
    /// Double-buffered DMA (overlap transfers with compute).
    pub double_buffer: bool,
    /// Temporal tile depth (1 = spatial only).
    pub time_tile: usize,
}

impl ExecPlan {
    /// Lower a schedule for a kernel over `grid`. Validates legality first.
    pub fn lower(schedule: &Schedule, ndim: usize, grid: &[usize]) -> Result<ExecPlan> {
        legality::check(schedule, ndim, grid)?;
        let tiled = !schedule.tile_factors.is_empty();
        let tile = if tiled {
            schedule.tile_factors.clone()
        } else {
            grid.to_vec()
        };
        let order_names: Vec<String> = if tiled {
            legality::effective_order(schedule, ndim)
        } else {
            // A single whole-grid tile: no outer loops at all.
            (0..ndim)
                .map(|d| format!("{}i", super::primitives::axis_name(d)))
                .collect()
        };
        let mut order = Vec::with_capacity(order_names.len());
        for name in &order_names {
            let (dim, inner) = parse_split_axis(name)?;
            order.push(LoopVar { dim, inner });
        }
        let n_outer = order.iter().filter(|l| !l.inner).count();
        let dma_depth = schedule
            .compute_at
            .iter()
            .filter_map(|ca| order_names.iter().position(|n| n == &ca.axis))
            .map(|pos| pos + 1)
            .max()
            .unwrap_or(n_outer);
        Ok(ExecPlan {
            ndim,
            grid: grid.to_vec(),
            tile,
            order,
            n_threads: schedule.n_threads(),
            use_spm: schedule.uses_spm(),
            dma_depth,
            double_buffer: schedule.double_buffer,
            time_tile: schedule.time_tile,
        })
    }

    /// Number of tiles along dimension `d` (rounding up for remainders).
    pub fn tiles_along(&self, d: usize) -> usize {
        self.grid[d].div_ceil(self.tile[d])
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        (0..self.ndim).map(|d| self.tiles_along(d)).product()
    }

    /// Elements inside one full tile.
    pub fn tile_elems(&self) -> usize {
        self.tile.iter().product()
    }

    /// Elements of one tile *including* the overlapped halo needed by a
    /// stencil with per-dimension `radius` (the paper assigns tiles
    /// overlapped halo regions so tasks are independent).
    pub fn tile_elems_with_halo(&self, radius: &[usize]) -> usize {
        self.tile
            .iter()
            .zip(radius)
            .map(|(&t, &r)| t + 2 * r)
            .product()
    }

    /// Ratio of halo-included footprint to interior tile volume — the
    /// redundant-transfer overhead of overlapped tiling.
    pub fn halo_overhead(&self, radius: &[usize]) -> f64 {
        self.tile_elems_with_halo(radius) as f64 / self.tile_elems() as f64
    }

    /// Tiles assigned to one thread under the paper's
    /// `mod(task_id, n_threads) == my_id` round-robin mapping; returns the
    /// per-thread maximum (load balance bound).
    pub fn tiles_per_thread(&self) -> usize {
        self.num_tiles().div_ceil(self.n_threads)
    }

    /// Iterate the origin (per-dim start, in interior coordinates) and
    /// extent of every tile, in `order`-respecting task order.
    pub fn tiles(&self) -> Vec<TileRange> {
        let dims_outer: Vec<usize> = self
            .order
            .iter()
            .filter(|l| !l.inner)
            .map(|l| l.dim)
            .collect();
        let counts: Vec<usize> = dims_outer.iter().map(|&d| self.tiles_along(d)).collect();
        let total: usize = counts.iter().product();
        let mut out = Vec::with_capacity(total);
        for task in 0..total {
            // Decompose task id in mixed radix, outermost loop slowest.
            let mut rem = task;
            let mut idx = vec![0usize; dims_outer.len()];
            for pos in (0..dims_outer.len()).rev() {
                idx[pos] = rem % counts[pos];
                rem /= counts[pos];
            }
            let mut origin = vec![0usize; self.ndim];
            // Dimensions without an outer loop are covered whole by the tile.
            let mut extent: Vec<usize> = (0..self.ndim)
                .map(|d| self.tile[d].min(self.grid[d]))
                .collect();
            for (pos, &d) in dims_outer.iter().enumerate() {
                origin[d] = idx[pos] * self.tile[d];
                extent[d] = self.tile[d].min(self.grid[d] - origin[d]);
            }
            out.push(TileRange {
                task_id: task,
                origin,
                extent,
            });
        }
        out
    }
}

/// One tile task: interior-coordinate origin and (clamped) extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileRange {
    pub task_id: usize,
    pub origin: Vec<usize>,
    pub extent: Vec<usize>,
}

impl TileRange {
    pub fn elems(&self) -> usize {
        self.extent.iter().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::primitives::BufferScope;

    fn plan_3d() -> ExecPlan {
        let mut s = Schedule::default();
        s.tile(&[8, 8, 32])
            .reorder(&["xo", "yo", "zo", "xi", "yi", "zi"])
            .parallel("xo", 64)
            .cache_read("B", "br", BufferScope::Global)
            .cache_write("bw", BufferScope::Global)
            .compute_at("br", "zo")
            .compute_at("bw", "zo");
        ExecPlan::lower(&s, 3, &[256, 256, 256]).unwrap()
    }

    #[test]
    fn tile_counts_match_paper_example() {
        // Paper §4.3: 256^3 split by (8,8,32) -> 32x32x8 tiles.
        let p = plan_3d();
        assert_eq!(p.tiles_along(0), 32);
        assert_eq!(p.tiles_along(1), 32);
        assert_eq!(p.tiles_along(2), 8);
        assert_eq!(p.num_tiles(), 32 * 32 * 8);
    }

    #[test]
    fn per_cpe_task_count_matches_paper() {
        // Paper §5.2.1 (3d13pt example): each of the 64 CPEs calculates
        // 8192/64 = 128 tiles with (2,8,64) tiling... here with (8,8,32)
        // we check the generic round-robin bound instead.
        let p = plan_3d();
        assert_eq!(p.tiles_per_thread(), 8192 / 64);
    }

    #[test]
    fn dma_depth_is_innermost_outer_loop() {
        let p = plan_3d();
        assert_eq!(p.dma_depth, 3);
        assert!(p.use_spm);
    }

    #[test]
    fn untiled_plan_is_one_tile() {
        let p = ExecPlan::lower(&Schedule::default(), 2, &[64, 48]).unwrap();
        assert_eq!(p.num_tiles(), 1);
        assert_eq!(p.tile, vec![64, 48]);
        assert_eq!(p.n_threads, 1);
        let tiles = p.tiles();
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].extent, vec![64, 48]);
    }

    #[test]
    fn tiles_cover_grid_exactly() {
        let mut s = Schedule::default();
        s.tile(&[32, 48]); // 100/32 and 100/48 leave remainders
        let p = ExecPlan::lower(&s, 2, &[100, 100]).unwrap();
        let tiles = p.tiles();
        let total: usize = tiles.iter().map(|t| t.elems()).sum();
        assert_eq!(total, 100 * 100);
        // Remainder tiles are clamped.
        let max_x = tiles.iter().map(|t| t.origin[0] + t.extent[0]).max();
        assert_eq!(max_x, Some(100));
    }

    #[test]
    fn tiles_are_disjoint() {
        let mut s = Schedule::default();
        s.tile(&[3, 5]);
        let p = ExecPlan::lower(&s, 2, &[7, 11]).unwrap();
        let mut seen = [false; 7 * 11];
        for t in p.tiles() {
            for x in t.origin[0]..t.origin[0] + t.extent[0] {
                for y in t.origin[1]..t.origin[1] + t.extent[1] {
                    let idx = x * 11 + y;
                    assert!(!seen[idx], "overlap at ({x},{y})");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn halo_overhead_shrinks_with_larger_tiles() {
        let mut s1 = Schedule::default();
        s1.tile(&[4, 4, 4]);
        let p1 = ExecPlan::lower(&s1, 3, &[256, 256, 256]).unwrap();
        let mut s2 = Schedule::default();
        s2.tile(&[32, 32, 32]);
        let p2 = ExecPlan::lower(&s2, 3, &[256, 256, 256]).unwrap();
        let r = [1, 1, 1];
        assert!(p1.halo_overhead(&r) > p2.halo_overhead(&r));
        assert!(p2.halo_overhead(&r) > 1.0);
    }

    #[test]
    fn task_order_respects_loop_order() {
        // Reorder so that y tiles vary fastest.
        let mut s = Schedule::default();
        s.tile(&[2, 2]).reorder(&["xo", "yo", "xi", "yi"]);
        let p = ExecPlan::lower(&s, 2, &[4, 4]).unwrap();
        let tiles = p.tiles();
        assert_eq!(tiles[0].origin, vec![0, 0]);
        assert_eq!(tiles[1].origin, vec![0, 2]);
        assert_eq!(tiles[2].origin, vec![2, 0]);
    }
}
