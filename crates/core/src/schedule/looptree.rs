//! Loop-nest statement tree: the structured form of a lowered kernel that
//! the AOT C code generator walks (paper Figure 4(c)-(e)).

use crate::axis::Axis;
use crate::error::Result;
use crate::kernel::Kernel;
use crate::schedule::plan::ExecPlan;
use crate::schedule::primitives::Schedule;

/// A statement in the lowered nest.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Plain `for` loop.
    For { axis: Axis, body: Vec<Stmt> },
    /// Parallel loop: OpenMP `parallel for` on homogeneous targets,
    /// athread task striping on Sunway.
    ParallelFor {
        axis: Axis,
        n_threads: usize,
        body: Vec<Stmt>,
    },
    /// DMA get: main memory → SPM read buffer.
    DmaGet { buffer: String, tensor: String },
    /// DMA put: SPM write buffer → main memory.
    DmaPut { buffer: String, tensor: String },
    /// The stencil point update.
    Compute { kernel: String },
}

impl Stmt {
    /// Depth-first count of loops in the tree.
    pub fn count_loops(&self) -> usize {
        match self {
            Stmt::For { body, .. } | Stmt::ParallelFor { body, .. } => {
                1 + body.iter().map(Stmt::count_loops).sum::<usize>()
            }
            _ => 0,
        }
    }

    /// Whether the subtree contains any DMA statement.
    pub fn has_dma(&self) -> bool {
        match self {
            Stmt::DmaGet { .. } | Stmt::DmaPut { .. } => true,
            Stmt::For { body, .. } | Stmt::ParallelFor { body, .. } => {
                body.iter().any(Stmt::has_dma)
            }
            _ => false,
        }
    }
}

/// Build the loop tree for a scheduled kernel over `grid`.
///
/// Loops follow the plan's order; if the schedule stages through SPM, the
/// DMA get/put statements wrap the loops below `dma_depth` (paper
/// Figure 4(e): "transfer the read/write buffers at the beginning/end of
/// the `zo` loop").
pub fn build(kernel: &Kernel, grid: &[usize]) -> Result<Stmt> {
    let plan = ExecPlan::lower(&kernel.schedule, kernel.ndim, grid)?;
    build_from_plan(kernel, &plan, &kernel.schedule)
}

/// Build the loop tree from an already-lowered plan.
pub fn build_from_plan(kernel: &Kernel, plan: &ExecPlan, schedule: &Schedule) -> Result<Stmt> {
    // Innermost body: the compute statement, optionally bracketed by DMA.
    let mut body = vec![Stmt::Compute {
        kernel: kernel.name.clone(),
    }];

    // Walk loops inside-out.
    for (depth, lv) in plan.order.iter().enumerate().rev() {
        let extent = if lv.inner {
            plan.tile[lv.dim]
        } else {
            plan.tiles_along(lv.dim)
        };
        let suffix = if lv.inner { "i" } else { "o" };
        let base = ["x", "y", "z"][lv.dim];
        let axis = Axis::new(&format!("{base}{suffix}"), depth, extent);

        // When creating the loop at the `compute_at` axis, bracket its body
        // with the DMA get/put so transfers happen once per tile, at the
        // beginning/end of that loop's body (paper Figure 4(e)).
        let at_dma_axis = plan.use_spm && depth + 1 == plan.dma_depth;
        let mut wrapped = Vec::new();
        if at_dma_axis {
            if let Some(cr) = &schedule.cache_read {
                wrapped.push(Stmt::DmaGet {
                    buffer: cr.buffer.clone(),
                    tensor: cr.tensor.clone(),
                });
            }
        }
        wrapped.extend(body);
        if at_dma_axis {
            if let Some(cw) = &schedule.cache_write {
                wrapped.push(Stmt::DmaPut {
                    buffer: cw.buffer.clone(),
                    tensor: kernel.input.clone(),
                });
            }
        }
        body = wrapped;

        let is_parallel = depth == 0 && plan.n_threads > 1;
        let stmt = if is_parallel {
            Stmt::ParallelFor {
                axis,
                n_threads: plan.n_threads,
                body,
            }
        } else {
            Stmt::For { axis, body }
        };
        body = vec![stmt];
    }
    Ok(body.into_iter().next().expect("nest has at least one loop"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::primitives::BufferScope;

    fn sunway_kernel() -> Kernel {
        let mut k = Kernel::star_normalized("S_3d7pt", 3, 1);
        k.sched()
            .tile(&[8, 8, 32])
            .reorder(&["xo", "yo", "zo", "xi", "yi", "zi"])
            .parallel("xo", 64)
            .cache_read("B", "buffer_read", BufferScope::Global)
            .cache_write("buffer_write", BufferScope::Global)
            .compute_at("buffer_read", "zo")
            .compute_at("buffer_write", "zo");
        k
    }

    #[test]
    fn six_loop_nest_after_tiling() {
        let tree = build(&sunway_kernel(), &[256, 256, 256]).unwrap();
        assert_eq!(tree.count_loops(), 6);
    }

    #[test]
    fn outermost_is_parallel() {
        let tree = build(&sunway_kernel(), &[256, 256, 256]).unwrap();
        match &tree {
            Stmt::ParallelFor {
                axis, n_threads, ..
            } => {
                assert_eq!(axis.name, "xo");
                assert_eq!(*n_threads, 64);
            }
            other => panic!("expected parallel outer loop, got {other:?}"),
        }
    }

    #[test]
    fn dma_wraps_inner_loops_at_zo() {
        let tree = build(&sunway_kernel(), &[256, 256, 256]).unwrap();
        // Descend to depth 3 (inside zo): its body must start with DmaGet
        // and end with DmaPut.
        fn descend(s: &Stmt, depth: usize) -> &Vec<Stmt> {
            match s {
                Stmt::For { body, .. } | Stmt::ParallelFor { body, .. } => {
                    if depth == 0 {
                        body
                    } else {
                        descend(&body[0], depth - 1)
                    }
                }
                _ => panic!("expected a loop"),
            }
        }
        // After xo(0), yo(1), zo(2): zo's body holds DMA + xi loop + DMA.
        let outer = descend(&tree, 0); // xo body
        let zo_body = match &outer[0] {
            Stmt::For { axis, body } if axis.name == "yo" => match &body[0] {
                Stmt::For { axis, body } if axis.name == "zo" => body,
                other => panic!("expected zo, got {other:?}"),
            },
            other => panic!("expected yo, got {other:?}"),
        };
        assert!(matches!(zo_body.first(), Some(Stmt::DmaGet { .. })));
        assert!(matches!(zo_body.last(), Some(Stmt::DmaPut { .. })));
    }

    #[test]
    fn untiled_serial_kernel_has_ndim_loops_no_dma() {
        let k = Kernel::star_normalized("S", 2, 1);
        let tree = build(&k, &[64, 64]).unwrap();
        assert_eq!(tree.count_loops(), 2);
        assert!(!tree.has_dma());
    }

    #[test]
    fn matrix_style_schedule_has_no_dma() {
        let mut k = Kernel::star_normalized("S", 3, 1);
        k.sched()
            .tile(&[2, 8, 256])
            .reorder(&["xo", "yo", "zo", "xi", "yi", "zi"])
            .parallel("xo", 32);
        let tree = build(&k, &[256, 256, 256]).unwrap();
        assert_eq!(tree.count_loops(), 6);
        assert!(!tree.has_dma());
    }
}
