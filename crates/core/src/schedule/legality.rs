//! Schedule legality checks: a schedule must describe a valid rewriting of
//! the kernel's loop nest before lowering.

use crate::error::{MscError, Result};
use crate::schedule::primitives::{parse_split_axis, Schedule};

/// Validate `schedule` for an `ndim`-dimensional kernel over `grid`.
///
/// Rules enforced:
/// 1. Tile factors, if present, cover every dimension, are ≥ 1 and no
///    larger than the grid extent.
/// 2. The reorder list is a permutation of the axes produced by tiling
///    (`xo..zo, xi..zi` for a tiled nest; `x..z` conceptually for an
///    untiled nest, which we represent by an empty order).
/// 3. Every outer axis appears before its own inner axis (`xo` before
///    `xi`): splitting requires the tile loop to enclose the point loop.
/// 4. The parallel axis, if any, is the outermost loop of the final order
///    (the paper parallelizes the outermost `xo`).
/// 5. `compute_at` axes must be *outer* axes — DMA at an inner axis would
///    transfer per point.
pub fn check(schedule: &Schedule, ndim: usize, grid: &[usize]) -> Result<()> {
    if grid.len() != ndim {
        return Err(MscError::DimMismatch {
            expected: ndim,
            got: grid.len(),
        });
    }
    let tiled = !schedule.tile_factors.is_empty();
    if tiled {
        if schedule.tile_factors.len() != ndim {
            return Err(MscError::IllegalSchedule(format!(
                "tile() got {} factors for a {}D kernel",
                schedule.tile_factors.len(),
                ndim
            )));
        }
        for (d, (&f, &g)) in schedule.tile_factors.iter().zip(grid).enumerate() {
            if f == 0 {
                return Err(MscError::IllegalSchedule(format!(
                    "tile factor for dim {d} is zero"
                )));
            }
            if f > g {
                return Err(MscError::IllegalSchedule(format!(
                    "tile factor {f} exceeds extent {g} in dim {d}"
                )));
            }
        }
    }

    if !schedule.loop_order.is_empty() {
        if !tiled {
            return Err(MscError::IllegalSchedule(
                "reorder() requires tile() first (only split axes can be reordered)".into(),
            ));
        }
        if schedule.loop_order.len() != 2 * ndim {
            return Err(MscError::IllegalSchedule(format!(
                "reorder() needs all {} split axes, got {}",
                2 * ndim,
                schedule.loop_order.len()
            )));
        }
        let mut seen = vec![[false; 2]; ndim];
        let mut outer_pos = vec![usize::MAX; ndim];
        for (pos, name) in schedule.loop_order.iter().enumerate() {
            let (dim, inner) = parse_split_axis(name)?;
            if dim >= ndim {
                return Err(MscError::IllegalSchedule(format!(
                    "axis `{name}` names dim {dim} of a {ndim}D kernel"
                )));
            }
            if seen[dim][inner as usize] {
                return Err(MscError::IllegalSchedule(format!(
                    "axis `{name}` appears twice in reorder()"
                )));
            }
            seen[dim][inner as usize] = true;
            if !inner {
                outer_pos[dim] = pos;
            } else if outer_pos[dim] == usize::MAX {
                return Err(MscError::IllegalSchedule(format!(
                    "inner axis `{name}` precedes its outer axis"
                )));
            }
        }
    }

    if let Some((axis, n)) = &schedule.parallel {
        if *n == 0 {
            return Err(MscError::IllegalSchedule(
                "parallel() with zero threads".into(),
            ));
        }
        let order = effective_order(schedule, ndim);
        if order.first().map(String::as_str) != Some(axis.as_str()) {
            return Err(MscError::IllegalSchedule(format!(
                "parallel axis `{axis}` must be the outermost loop (outermost is `{}`)",
                order.first().cloned().unwrap_or_default()
            )));
        }
    }

    for ca in &schedule.compute_at {
        let (_, inner) = parse_split_axis(&ca.axis)?;
        if inner {
            return Err(MscError::IllegalSchedule(format!(
                "compute_at(`{}`, `{}`): DMA must attach to an outer (tile) axis",
                ca.buffer, ca.axis
            )));
        }
        let known = schedule.cache_read.as_ref().map(|c| c.buffer.clone())
            == Some(ca.buffer.clone())
            || schedule.cache_write.as_ref().map(|c| c.buffer.clone()) == Some(ca.buffer.clone());
        if !known {
            return Err(MscError::Undefined {
                kind: "buffer",
                name: ca.buffer.clone(),
            });
        }
    }

    if schedule.double_buffer && !schedule.uses_spm() {
        return Err(MscError::IllegalSchedule(
            "stream() requires cache_read/cache_write (SPM staging) first".into(),
        ));
    }

    if schedule.uses_spm() && schedule.compute_at.is_empty() {
        return Err(MscError::IllegalSchedule(
            "cache_read/cache_write without compute_at: no DMA point specified".into(),
        ));
    }

    Ok(())
}

/// The loop order the schedule will lower to: explicit `reorder` if given,
/// otherwise the canonical all-outer-then-all-inner order for tiled nests.
pub fn effective_order(schedule: &Schedule, ndim: usize) -> Vec<String> {
    if !schedule.loop_order.is_empty() {
        schedule.loop_order.clone()
    } else {
        Schedule::canonical_order(ndim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::primitives::BufferScope;

    fn sunway_sched() -> Schedule {
        let mut s = Schedule::default();
        s.tile(&[8, 8, 32])
            .reorder(&["xo", "yo", "zo", "xi", "yi", "zi"])
            .parallel("xo", 64)
            .cache_read("B", "buffer_read", BufferScope::Global)
            .cache_write("buffer_write", BufferScope::Global)
            .compute_at("buffer_read", "zo")
            .compute_at("buffer_write", "zo");
        s
    }

    const GRID: [usize; 3] = [256, 256, 256];

    #[test]
    fn paper_listing2_schedule_is_legal() {
        assert!(check(&sunway_sched(), 3, &GRID).is_ok());
    }

    #[test]
    fn wrong_tile_arity() {
        let mut s = sunway_sched();
        s.tile(&[8, 8]);
        assert!(check(&s, 3, &GRID).is_err());
    }

    #[test]
    fn zero_or_oversized_tile() {
        let mut s = sunway_sched();
        s.tile(&[0, 8, 32]);
        assert!(check(&s, 3, &GRID).is_err());
        s.tile(&[8, 8, 512]);
        assert!(check(&s, 3, &GRID).is_err());
    }

    #[test]
    fn reorder_must_be_permutation() {
        let mut s = sunway_sched();
        s.reorder(&["xo", "yo", "zo", "xi", "yi", "xi"]);
        assert!(check(&s, 3, &GRID).is_err());
        s.reorder(&["xo", "yo", "zo", "xi", "yi"]);
        assert!(check(&s, 3, &GRID).is_err());
    }

    #[test]
    fn inner_before_outer_rejected() {
        let mut s = sunway_sched();
        s.reorder(&["xi", "xo", "yo", "zo", "yi", "zi"]);
        assert!(check(&s, 3, &GRID).is_err());
    }

    #[test]
    fn parallel_must_be_outermost() {
        let mut s = sunway_sched();
        s.parallel("yo", 64);
        assert!(check(&s, 3, &GRID).is_err());
    }

    #[test]
    fn zero_threads_rejected() {
        let mut s = sunway_sched();
        s.parallel("xo", 0);
        assert!(check(&s, 3, &GRID).is_err());
    }

    #[test]
    fn compute_at_inner_axis_rejected() {
        let mut s = sunway_sched();
        s.compute_at("buffer_read", "zi");
        assert!(check(&s, 3, &GRID).is_err());
    }

    #[test]
    fn compute_at_unknown_buffer_rejected() {
        let mut s = sunway_sched();
        s.compute_at("mystery", "zo");
        assert!(matches!(
            check(&s, 3, &GRID),
            Err(MscError::Undefined { .. })
        ));
    }

    #[test]
    fn spm_without_dma_point_rejected() {
        let mut s = Schedule::default();
        s.tile(&[8, 8, 32])
            .cache_read("B", "buffer_read", BufferScope::Global);
        assert!(check(&s, 3, &GRID).is_err());
    }

    #[test]
    fn reorder_without_tile_rejected() {
        let mut s = Schedule::default();
        s.reorder(&["xo", "yo", "xi", "yi"]);
        assert!(check(&s, 2, &[64, 64]).is_err());
    }

    #[test]
    fn untiled_serial_schedule_is_legal() {
        assert!(check(&Schedule::default(), 3, &GRID).is_ok());
    }
}
