//! Default schedules per benchmark and target, reproducing the paper's
//! Table 5 ("The parameter settings of 2D/3D stencils using MSC on a
//! single Sunway (a CG) / Matrix (32 cores) processor").

use crate::schedule::primitives::{BufferScope, Schedule};

/// Code-generation / execution target (paper: `st.build("sunway")`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// One Sunway SW26010 core group: 1 MPE + 64 CPEs, SPM + DMA.
    SunwayCG,
    /// Matrix MT2000+ supernode allocation (32 cache-coherent cores).
    Matrix,
    /// Generic multicore CPU (the paper's E5-2680v4 platform).
    Cpu,
}

impl Target {
    /// Threads used by the paper's single-processor experiments.
    pub fn default_threads(self) -> usize {
        match self {
            Target::SunwayCG => 64, // CPEs per CG
            Target::Matrix => 32,   // one supernode allocation
            Target::Cpu => 28,      // two-socket E5-2680v4
        }
    }

    /// Whether the target is cache-less and needs SPM/DMA staging.
    pub fn needs_spm(self) -> bool {
        matches!(self, Target::SunwayCG)
    }

    /// The string accepted by `build()` in the paper's Listing 2.
    pub fn as_str(self) -> &'static str {
        match self {
            Target::SunwayCG => "sunway",
            Target::Matrix => "matrix",
            Target::Cpu => "cpu",
        }
    }
}

/// Table 5 tile sizes. `ndim` and `points` identify the benchmark class:
/// low-order 2D (9pt), high-order 2D (121/169pt), low-order 3D (7/13pt),
/// high-order 3D (25/31pt).
pub fn table5_tile(ndim: usize, points: usize, target: Target) -> Vec<usize> {
    match (ndim, target) {
        (2, Target::SunwayCG) => {
            if points <= 9 {
                vec![32, 64]
            } else {
                vec![16, 32]
            }
        }
        (2, _) => vec![2, 2048],
        (3, Target::SunwayCG) => {
            if points <= 13 {
                vec![2, 8, 64]
            } else {
                vec![2, 4, 32]
            }
        }
        (3, _) => vec![2, 8, 256],
        _ => vec![1; ndim],
    }
}

/// Table 5 reorder rule: all outer axes then all inner axes.
pub fn table5_reorder(ndim: usize) -> Vec<&'static str> {
    match ndim {
        2 => vec!["xo", "yo", "xi", "yi"],
        _ => vec!["xo", "yo", "zo", "xi", "yi", "zi"],
    }
}

/// Build the full Table 5 schedule for a benchmark on a target, including
/// the Sunway SPM/DMA primitives of Listing 2.
pub fn preset_for(ndim: usize, points: usize, target: Target) -> Schedule {
    let mut s = Schedule::default();
    s.tile(&table5_tile(ndim, points, target))
        .reorder(&table5_reorder(ndim))
        .parallel("xo", target.default_threads());
    finish_preset(&mut s, ndim, target);
    s
}

/// Table 5 schedule with tile factors clamped to a concrete grid (the
/// presets assume the paper's 4096²/256³ grids; smaller grids clamp).
pub fn preset_for_grid(ndim: usize, points: usize, target: Target, grid: &[usize]) -> Schedule {
    let tile: Vec<usize> = table5_tile(ndim, points, target)
        .into_iter()
        .zip(grid)
        .map(|(t, &g)| t.min(g))
        .collect();
    let mut s = Schedule::default();
    s.tile(&tile)
        .reorder(&table5_reorder(ndim))
        .parallel("xo", target.default_threads());
    finish_preset(&mut s, ndim, target);
    s
}

fn finish_preset(s: &mut Schedule, ndim: usize, target: Target) {
    if target.needs_spm() {
        s.cache_read("B", "buffer_read", BufferScope::Global)
            .cache_write("buffer_write", BufferScope::Global);
        let dma_axis = if ndim == 2 { "yo" } else { "zo" };
        s.compute_at("buffer_read", dma_axis)
            .compute_at("buffer_write", dma_axis);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::legality;

    #[test]
    fn table5_sunway_tiles() {
        assert_eq!(table5_tile(2, 9, Target::SunwayCG), vec![32, 64]);
        assert_eq!(table5_tile(2, 121, Target::SunwayCG), vec![16, 32]);
        assert_eq!(table5_tile(3, 7, Target::SunwayCG), vec![2, 8, 64]);
        assert_eq!(table5_tile(3, 25, Target::SunwayCG), vec![2, 4, 32]);
    }

    #[test]
    fn table5_matrix_tiles() {
        assert_eq!(table5_tile(2, 9, Target::Matrix), vec![2, 2048]);
        assert_eq!(table5_tile(3, 31, Target::Matrix), vec![2, 8, 256]);
    }

    #[test]
    fn presets_are_legal_on_paper_grids() {
        for (ndim, points, grid) in [
            (2usize, 9usize, vec![4096usize, 4096]),
            (2, 121, vec![4096, 4096]),
            (3, 7, vec![256, 256, 256]),
            (3, 25, vec![256, 256, 256]),
        ] {
            for target in [Target::SunwayCG, Target::Matrix, Target::Cpu] {
                let s = preset_for(ndim, points, target);
                legality::check(&s, ndim, &grid).unwrap_or_else(|e| {
                    panic!("preset ({ndim}d {points}pt {target:?}) illegal: {e}")
                });
            }
        }
    }

    #[test]
    fn sunway_preset_stages_through_spm() {
        let s = preset_for(3, 7, Target::SunwayCG);
        assert!(s.uses_spm());
        assert_eq!(s.n_threads(), 64);
    }

    #[test]
    fn matrix_preset_uses_caches_not_spm() {
        let s = preset_for(3, 7, Target::Matrix);
        assert!(!s.uses_spm());
        assert_eq!(s.n_threads(), 32);
    }

    #[test]
    fn target_strings_match_listing2() {
        assert_eq!(Target::SunwayCG.as_str(), "sunway");
        assert_eq!(Target::Matrix.as_str(), "matrix");
    }
}
