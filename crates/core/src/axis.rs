//! Nested-loop IR (`Axis`, paper Table 2): each axis records its
//! identifier, its order inside the nest, its iteration range, and stride.

use std::fmt;

/// One axis of a (possibly tiled) loop nest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Axis {
    /// Identifier (`id_var`), e.g. `x`, `xo`, `xi`.
    pub name: String,
    /// Position in the nest, 0 = outermost (`order`).
    pub order: usize,
    /// Inclusive start.
    pub start: i64,
    /// Exclusive end.
    pub end: i64,
    /// Stride (usually 1).
    pub stride: i64,
}

impl Axis {
    /// New unit-stride axis over `[0, extent)`.
    pub fn new(name: &str, order: usize, extent: usize) -> Axis {
        Axis {
            name: name.to_string(),
            order,
            start: 0,
            end: extent as i64,
            stride: 1,
        }
    }

    /// Number of iterations the axis performs.
    pub fn trip_count(&self) -> usize {
        if self.end <= self.start || self.stride <= 0 {
            return 0;
        }
        ((self.end - self.start + self.stride - 1) / self.stride) as usize
    }

    /// Split this axis by `factor`, producing `(outer, inner)` axes named
    /// `<name>o` / `<name>i`. The outer axis covers `ceil(extent/factor)`
    /// tiles; remainder tiles are handled by the executor/codegen clamping
    /// the inner extent.
    pub fn split(&self, factor: usize) -> (Axis, Axis) {
        let extent = self.trip_count();
        let outer_extent = extent.div_ceil(factor.max(1));
        let outer = Axis {
            name: format!("{}o", self.name),
            order: self.order,
            start: 0,
            end: outer_extent as i64,
            stride: 1,
        };
        let inner = Axis {
            name: format!("{}i", self.name),
            order: self.order + 1,
            start: 0,
            end: factor as i64,
            stride: 1,
        };
        (outer, inner)
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in [{}, {}) step {}",
            self.name, self.start, self.end, self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_unit_stride() {
        assert_eq!(Axis::new("x", 0, 256).trip_count(), 256);
    }

    #[test]
    fn trip_count_strided() {
        let a = Axis {
            name: "x".into(),
            order: 0,
            start: 0,
            end: 10,
            stride: 3,
        };
        assert_eq!(a.trip_count(), 4); // 0,3,6,9
    }

    #[test]
    fn trip_count_empty_and_degenerate() {
        let a = Axis {
            name: "x".into(),
            order: 0,
            start: 5,
            end: 5,
            stride: 1,
        };
        assert_eq!(a.trip_count(), 0);
        let b = Axis {
            name: "x".into(),
            order: 0,
            start: 0,
            end: 5,
            stride: 0,
        };
        assert_eq!(b.trip_count(), 0);
    }

    #[test]
    fn split_exact() {
        let (o, i) = Axis::new("x", 0, 256).split(8);
        assert_eq!(o.name, "xo");
        assert_eq!(i.name, "xi");
        assert_eq!(o.trip_count(), 32);
        assert_eq!(i.trip_count(), 8);
        assert_eq!(i.order, 1);
    }

    #[test]
    fn split_with_remainder_rounds_up() {
        let (o, i) = Axis::new("x", 0, 100).split(32);
        assert_eq!(o.trip_count(), 4); // 3 full + 1 remainder tile
        assert_eq!(i.trip_count(), 32);
    }

    #[test]
    fn display_format() {
        let a = Axis::new("zi", 5, 32);
        assert_eq!(a.to_string(), "zi in [0, 32) step 1");
    }
}
