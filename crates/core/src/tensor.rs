//! Tensor IR (paper Table 2): `SpNode` — a tensor *with* halo region and a
//! sliding time window; `TeNode` — a compiler-internal temporary *without*
//! halo, holding one timestep of the computation domain.

use crate::dtype::DType;
use crate::error::{MscError, Result};

/// User-visible grid tensor with a halo region (`SpNode`).
///
/// MSC allocates extra space for the halo in every spatial dimension and
/// for `time_window` timesteps of state (paper §4.2, §4.3 "sliding time
/// window").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpNode {
    pub name: String,
    pub dtype: DType,
    /// Interior (computation-domain) shape, outermost dimension first.
    pub shape: Vec<usize>,
    /// Halo width per dimension.
    pub halo: Vec<usize>,
    /// Number of timesteps kept live (≥ max time dependency + 1).
    pub time_window: usize,
}

impl SpNode {
    /// Create an `SpNode` with uniform halo width.
    pub fn new(
        name: &str,
        dtype: DType,
        shape: &[usize],
        halo_width: usize,
        time_window: usize,
    ) -> Result<SpNode> {
        if shape.is_empty() || shape.len() > 3 {
            return Err(MscError::InvalidConfig(format!(
                "SpNode `{name}` must be 1D/2D/3D, got {}D",
                shape.len()
            )));
        }
        if shape.contains(&0) {
            return Err(MscError::InvalidConfig(format!(
                "SpNode `{name}` has a zero-sized dimension"
            )));
        }
        if time_window == 0 {
            return Err(MscError::InvalidConfig(format!(
                "SpNode `{name}` needs a time window of at least 1"
            )));
        }
        Ok(SpNode {
            name: name.to_string(),
            dtype,
            shape: shape.to_vec(),
            halo: vec![halo_width; shape.len()],
            time_window,
        })
    }

    /// Number of spatial dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Shape including halos on both sides.
    pub fn padded_shape(&self) -> Vec<usize> {
        self.shape
            .iter()
            .zip(&self.halo)
            .map(|(&s, &h)| s + 2 * h)
            .collect()
    }

    /// Interior element count.
    pub fn interior_elems(&self) -> usize {
        self.shape.iter().product()
    }

    /// Element count of one padded timestep buffer.
    pub fn padded_elems(&self) -> usize {
        self.padded_shape().iter().product()
    }

    /// Total bytes allocated: padded buffer × time window.
    pub fn alloc_bytes(&self) -> usize {
        self.padded_elems() * self.time_window * self.dtype.size_bytes()
    }

    /// Bytes the *sliding window* saves versus storing every timestep of a
    /// `total_steps`-long run (paper Figure 5).
    pub fn window_savings_bytes(&self, total_steps: usize) -> usize {
        let per_step = self.padded_elems() * self.dtype.size_bytes();
        per_step * total_steps.saturating_sub(self.time_window)
    }

    /// Validate that the halo is wide enough for a stencil with the given
    /// per-dimension reach.
    pub fn check_reach(&self, reach: &[usize]) -> Result<()> {
        if reach.len() != self.ndim() {
            return Err(MscError::DimMismatch {
                expected: self.ndim(),
                got: reach.len(),
            });
        }
        for (dim, (&h, &r)) in self.halo.iter().zip(reach).enumerate() {
            if r > h {
                return Err(MscError::HaloTooSmall {
                    tensor: self.name.clone(),
                    dim,
                    halo: h,
                    required: r,
                });
            }
        }
        Ok(())
    }
}

/// Compiler-internal temporary without halo (`TeNode`), holding the
/// intermediate domain data of one timestep (or one tile, for SPM write
/// buffers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TeNode {
    pub name: String,
    pub dtype: DType,
    pub shape: Vec<usize>,
}

impl TeNode {
    pub fn new(name: &str, dtype: DType, shape: &[usize]) -> TeNode {
        TeNode {
            name: name.to_string(),
            dtype,
            shape: shape.to_vec(),
        }
    }

    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    pub fn elems(&self) -> usize {
        self.shape.iter().product()
    }

    pub fn bytes(&self) -> usize {
        self.elems() * self.dtype.size_bytes()
    }
}

/// Either tensor kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorDecl {
    Sp(SpNode),
    Te(TeNode),
}

impl TensorDecl {
    pub fn name(&self) -> &str {
        match self {
            TensorDecl::Sp(t) => &t.name,
            TensorDecl::Te(t) => &t.name,
        }
    }

    pub fn dtype(&self) -> DType {
        match self {
            TensorDecl::Sp(t) => t.dtype,
            TensorDecl::Te(t) => t.dtype,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b3d() -> SpNode {
        SpNode::new("B", DType::F64, &[256, 256, 256], 1, 2).unwrap()
    }

    #[test]
    fn padded_shape_adds_double_halo() {
        assert_eq!(b3d().padded_shape(), vec![258, 258, 258]);
    }

    #[test]
    fn alloc_accounts_for_time_window() {
        let t = b3d();
        assert_eq!(t.alloc_bytes(), 258 * 258 * 258 * 2 * 8);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(SpNode::new("B", DType::F64, &[], 1, 2).is_err());
        assert!(SpNode::new("B", DType::F64, &[4, 4, 4, 4], 1, 2).is_err());
        assert!(SpNode::new("B", DType::F64, &[0, 4], 1, 2).is_err());
        assert!(SpNode::new("B", DType::F64, &[4, 4], 1, 0).is_err());
    }

    #[test]
    fn reach_check() {
        let t = b3d();
        assert!(t.check_reach(&[1, 1, 1]).is_ok());
        assert!(matches!(
            t.check_reach(&[1, 2, 1]),
            Err(MscError::HaloTooSmall { dim: 1, .. })
        ));
        assert!(matches!(
            t.check_reach(&[1, 1]),
            Err(MscError::DimMismatch { .. })
        ));
    }

    #[test]
    fn window_savings_grow_with_steps() {
        let t = b3d();
        assert_eq!(t.window_savings_bytes(2), 0);
        let per_step = 258 * 258 * 258 * 8;
        assert_eq!(t.window_savings_bytes(10), per_step * 8);
    }

    #[test]
    fn tenode_bytes() {
        let t = TeNode::new("tmp", DType::F32, &[8, 8, 32]);
        assert_eq!(t.bytes(), 8 * 8 * 32 * 4);
        assert_eq!(t.ndim(), 3);
    }

    #[test]
    fn decl_accessors() {
        let d = TensorDecl::Sp(b3d());
        assert_eq!(d.name(), "B");
        assert_eq!(d.dtype(), DType::F64);
    }
}
