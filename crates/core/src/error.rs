//! Error type shared across the MSC compiler layers.

use std::fmt;

/// Errors raised while building, validating, scheduling, or lowering a
/// stencil program.
#[derive(Debug, Clone, PartialEq)]
pub enum MscError {
    /// A name (tensor, kernel, axis, buffer) was referenced but never defined.
    Undefined { kind: &'static str, name: String },
    /// A name was defined twice in the same scope.
    Duplicate { kind: &'static str, name: String },
    /// A stencil access reaches outside the declared halo region.
    HaloTooSmall {
        tensor: String,
        dim: usize,
        halo: usize,
        required: usize,
    },
    /// The time window of a tensor is too small for the stencil's
    /// temporal dependencies.
    TimeWindowTooSmall {
        tensor: String,
        window: usize,
        required: usize,
    },
    /// A schedule primitive was used illegally (bad tile factor,
    /// non-permutation reorder, parallel axis not outermost, ...).
    IllegalSchedule(String),
    /// A kernel expression is not in a form the requested lowering supports.
    UnsupportedExpr(String),
    /// Dimension mismatch between cooperating objects.
    DimMismatch { expected: usize, got: usize },
    /// Invalid user-provided configuration (grid shape, process grid, ...).
    InvalidConfig(String),
    /// A communication-layer fault (lost/corrupt message, dead rank,
    /// poisoned world). Carries the rendered `CommError` from `msc-comm`,
    /// which owns the typed representation.
    Comm(String),
}

impl fmt::Display for MscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MscError::Undefined { kind, name } => write!(f, "undefined {kind}: `{name}`"),
            MscError::Duplicate { kind, name } => write!(f, "duplicate {kind}: `{name}`"),
            MscError::HaloTooSmall {
                tensor,
                dim,
                halo,
                required,
            } => write!(
                f,
                "halo of tensor `{tensor}` is {halo} in dim {dim}, but the stencil reaches {required}"
            ),
            MscError::TimeWindowTooSmall {
                tensor,
                window,
                required,
            } => write!(
                f,
                "time window of tensor `{tensor}` is {window}, but the stencil depends on {required} timesteps"
            ),
            MscError::IllegalSchedule(msg) => write!(f, "illegal schedule: {msg}"),
            MscError::UnsupportedExpr(msg) => write!(f, "unsupported expression: {msg}"),
            MscError::DimMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            MscError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MscError::Comm(msg) => write!(f, "communication failure: {msg}"),
        }
    }
}

impl std::error::Error for MscError {}

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, MscError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_name() {
        let e = MscError::Undefined {
            kind: "tensor",
            name: "B".into(),
        };
        assert!(e.to_string().contains("tensor"));
        assert!(e.to_string().contains("`B`"));
    }

    #[test]
    fn halo_error_reports_requirement() {
        let e = MscError::HaloTooSmall {
            tensor: "B".into(),
            dim: 2,
            halo: 1,
            required: 4,
        };
        let s = e.to_string();
        assert!(s.contains("dim 2"));
        assert!(s.contains("reaches 4"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<MscError>();
    }
}
