//! Textual frontend for the MSC DSL: a hand-written lexer and
//! recursive-descent parser for `.msc` files. The paper embeds MSC in
//! C++ (Listing 1); this repository embeds it in Rust *and* provides a
//! standalone surface syntax so stencils can be compiled from plain text
//! by the `mscc` driver:
//!
//! ```text
//! stencil 3d7pt {
//!     grid B: f64[256, 256, 256] halo 1 window 3;
//!     kernel S = 0.4*B[0,0,0] + 0.1*B[-1,0,0] + 0.1*B[1,0,0]
//!              + 0.1*B[0,-1,0] + 0.1*B[0,1,0]
//!              + 0.1*B[0,0,-1] + 0.1*B[0,0,1];
//!     combine res[t] = 0.6*S[t-1] + 0.4*S[t-2];
//!     schedule { tile 8 8 32; reorder xo yo zo xi yi zi; parallel xo 64; spm zo; }
//!     mpi 4 4 4;
//!     run 10;
//!     target sunway;
//! }
//! ```

use crate::dsl::StencilProgram;
use crate::dtype::DType;
use crate::error::{MscError, Result};
use crate::expr::Expr;
use crate::kernel::Kernel;
use crate::schedule::{BufferScope, Target};
use crate::stencil::{Stencil, TimeTerm};
use crate::tensor::SpNode;

/// A parsed `.msc` file: the validated program plus the requested
/// code-generation target (if any).
#[derive(Debug, Clone)]
pub struct ParsedProgram {
    pub program: StencilProgram,
    pub target: Option<Target>,
}

/// Parse an `.msc` source string.
pub fn parse(source: &str) -> Result<ParsedProgram> {
    Parser::new(source)?.program(true)
}

/// Parse without halo/time-window sufficiency validation. Structural and
/// syntax errors still fail; semantically unsound programs (too-narrow
/// halo, too-shallow window) parse successfully so `msc-lint` can report
/// them as structured diagnostics instead of one opaque build error.
pub fn parse_unchecked(source: &str) -> Result<ParsedProgram> {
    Parser::new(source)?.program(false)
}

/// Render a validated program back to `.msc` surface syntax (the inverse
/// of [`parse`], up to schedule-primitive ordering). Useful for saving
/// builder-constructed or auto-scheduled programs as files.
pub fn to_msc_source(program: &StencilProgram, target: Option<Target>) -> String {
    let mut s = String::new();
    s += &format!("stencil {} {{\n", program.name);
    let g = &program.grid;
    s += &format!(
        "    grid {}: {}[{}] halo {} window {};\n",
        g.name,
        g.dtype,
        g.shape
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        g.halo[0],
        g.time_window
    );
    for k in &program.stencil.kernels {
        let taps = k.expr.to_taps().expect("printable kernels are linear");
        let terms: Vec<String> = taps
            .iter()
            .map(|t| {
                let offs = t
                    .offset
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{:?}*{}[{}]", t.coeff, k.input, offs)
            })
            .collect();
        s += &format!("    kernel {} = {};\n", k.name, terms.join(" + "));
    }
    // The combine grammar carries signs as separators, so emit absolute
    // weights with explicit +/- joiners.
    let mut combo = String::new();
    for (i, t) in program.stencil.terms.iter().enumerate() {
        if i == 0 {
            if t.weight < 0.0 {
                combo += "-";
            }
        } else if t.weight < 0.0 {
            combo += " - ";
        } else {
            combo += " + ";
        }
        combo += &format!("{:?}*{}[t-{}]", t.weight.abs(), t.kernel, t.dt);
    }
    s += &format!("    combine res[t] = {combo};\n");

    let sched = &program.stencil.kernels[0].schedule;
    if !sched.tile_factors.is_empty() || sched.parallel.is_some() {
        s += "    schedule {";
        if !sched.tile_factors.is_empty() {
            s += &format!(
                " tile {};",
                sched
                    .tile_factors
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        if !sched.loop_order.is_empty() {
            s += &format!(" reorder {};", sched.loop_order.join(" "));
        }
        if let Some((axis, n)) = &sched.parallel {
            s += &format!(" parallel {axis} {n};");
        }
        if let Some(ca) = sched.compute_at.first() {
            s += &format!(" spm {};", ca.axis);
        }
        if sched.double_buffer {
            s += " stream;";
        }
        if sched.time_tile > 1 {
            s += &format!(" tile_time {};", sched.time_tile);
        }
        s += " }\n";
    }
    if let Some(mpi) = &program.mpi_grid {
        s += &format!(
            "    mpi {};\n",
            mpi.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    s += &format!("    run {};\n", program.timesteps);
    if let Some(t) = target {
        s += &format!("    target {};\n", t.as_str());
    }
    s += "}\n";
    s
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Int(i64),
    Sym(char),
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Num(v) => write!(f, "number {v}"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Sym(c) => write!(f, "`{c}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                toks.push((Tok::Ident(bytes[start..i].iter().collect()), line));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && matches!(bytes.get(i - 1), Some('e') | Some('E'))))
                {
                    if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                        is_float = true;
                    }
                    i += 1;
                }
                // Benchmark names like `3d7pt` start with digits: if a
                // plain integer runs straight into letters, re-lex the
                // whole run as an identifier.
                if !is_float
                    && i < bytes.len()
                    && (bytes[i].is_ascii_alphabetic() || bytes[i] == '_')
                {
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_')
                    {
                        i += 1;
                    }
                    toks.push((Tok::Ident(bytes[start..i].iter().collect()), line));
                    continue;
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| {
                        MscError::InvalidConfig(format!("line {line}: bad number `{text}`"))
                    })?;
                    toks.push((Tok::Num(v), line));
                } else {
                    let v = text.parse::<i64>().map_err(|_| {
                        MscError::InvalidConfig(format!("line {line}: bad integer `{text}`"))
                    })?;
                    toks.push((Tok::Int(v), line));
                }
            }
            '{' | '}' | '[' | ']' | '(' | ')' | ':' | ';' | ',' | '=' | '+' | '-' | '*' => {
                toks.push((Tok::Sym(c), line));
                i += 1;
            }
            other => {
                return Err(MscError::InvalidConfig(format!(
                    "line {line}: unexpected character `{other}`"
                )))
            }
        }
    }
    toks.push((Tok::Eof, line));
    Ok(toks)
}

// --------------------------------------------------------------- parser

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

#[derive(Debug, Default)]
struct ScheduleSpec {
    tile: Vec<usize>,
    reorder: Vec<String>,
    parallel: Option<(String, usize)>,
    spm_axis: Option<String>,
    stream: bool,
    time_tile: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos].1
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> MscError {
        MscError::InvalidConfig(format!("line {}: {msg}, found {}", self.line(), self.peek()))
    }

    fn expect_sym(&mut self, c: char) -> Result<()> {
        match self.next() {
            Tok::Sym(s) if s == c => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(&format!("expected `{c}`")))
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected keyword `{kw}`")))
        }
    }

    fn expect_uint(&mut self) -> Result<usize> {
        match self.next() {
            Tok::Int(v) if v >= 0 => Ok(v as usize),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a non-negative integer"))
            }
        }
    }

    fn expect_int(&mut self) -> Result<i64> {
        let neg = matches!(self.peek(), Tok::Sym('-'));
        if neg {
            self.next();
        }
        match self.next() {
            Tok::Int(v) => Ok(if neg { -v } else { v }),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected an integer"))
            }
        }
    }

    // program := "stencil" IDENT "{" item* "}"
    fn program(&mut self, strict: bool) -> Result<ParsedProgram> {
        self.expect_keyword("stencil")?;
        let name = self.expect_ident()?;
        self.expect_sym('{')?;

        let mut grid: Option<SpNode> = None;
        let mut kernels: Vec<Kernel> = Vec::new();
        let mut terms: Vec<TimeTerm> = Vec::new();
        let mut schedule = ScheduleSpec::default();
        let mut mpi: Option<Vec<usize>> = None;
        let mut timesteps = 1usize;
        let mut target: Option<Target> = None;

        loop {
            match self.peek().clone() {
                Tok::Sym('}') => {
                    self.next();
                    break;
                }
                Tok::Ident(kw) => match kw.as_str() {
                    "grid" => grid = Some(self.grid_item()?),
                    "kernel" => kernels.push(self.kernel_item(grid.as_ref())?),
                    "combine" => terms = self.combine_item()?,
                    "schedule" => schedule = self.schedule_item()?,
                    "mpi" => mpi = Some(self.int_list_item("mpi")?),
                    "run" => {
                        self.expect_keyword("run")?;
                        timesteps = self.expect_uint()?;
                        self.expect_sym(';')?;
                    }
                    "target" => {
                        self.expect_keyword("target")?;
                        let t = self.expect_ident()?;
                        target = Some(match t.as_str() {
                            "sunway" => Target::SunwayCG,
                            "matrix" => Target::Matrix,
                            "cpu" => Target::Cpu,
                            other => {
                                return Err(MscError::InvalidConfig(format!(
                                    "unknown target `{other}` (expected sunway/matrix/cpu)"
                                )))
                            }
                        });
                        self.expect_sym(';')?;
                    }
                    _ => return Err(self.err("expected a program item")),
                },
                _ => return Err(self.err("expected a program item or `}`")),
            }
        }

        // Assemble and validate through the same path as the builder API.
        let grid = grid.ok_or_else(|| {
            MscError::InvalidConfig(format!("stencil `{name}` declares no grid"))
        })?;
        if kernels.is_empty() {
            return Err(MscError::InvalidConfig(format!(
                "stencil `{name}` declares no kernels"
            )));
        }
        // Apply the schedule to every kernel.
        for k in &mut kernels {
            let input = k.input.clone();
            let ndim = k.ndim;
            let s = k.sched();
            if !schedule.tile.is_empty() {
                s.tile(&schedule.tile);
            }
            if !schedule.reorder.is_empty() {
                let names: Vec<&str> = schedule.reorder.iter().map(String::as_str).collect();
                s.reorder(&names);
            }
            if let Some((axis, n)) = &schedule.parallel {
                s.parallel(axis, *n);
            }
            if let Some(axis) = &schedule.spm_axis {
                // Default DMA point: the innermost outer (tile) axis.
                let axis = if axis.is_empty() {
                    match ndim {
                        2 => "yo".to_string(),
                        3 => "zo".to_string(),
                        _ => "xo".to_string(),
                    }
                } else {
                    axis.clone()
                };
                s.cache_read(&input, "buffer_read", BufferScope::Global)
                    .cache_write("buffer_write", BufferScope::Global)
                    .compute_at("buffer_read", &axis)
                    .compute_at("buffer_write", &axis);
            }
            if schedule.stream {
                s.stream();
            }
            if schedule.time_tile > 1 {
                s.tile_time(schedule.time_tile);
            }
        }
        if terms.is_empty() {
            terms = vec![TimeTerm {
                dt: 1,
                weight: 1.0,
                kernel: kernels[0].name.clone(),
            }];
        }
        let stencil = Stencil::new(&name, kernels, terms)?;
        let mut builder = StencilProgram::builder(&name).grid(grid).timesteps(timesteps);
        for k in stencil.kernels.clone() {
            builder = builder.kernel(k);
        }
        builder = builder.combine(
            &stencil
                .terms
                .iter()
                .map(|t| (t.dt, t.weight, t.kernel.as_str()))
                .collect::<Vec<_>>(),
        );
        if let Some(m) = mpi {
            builder = builder.mpi_grid(&m);
        }
        let program = if strict {
            builder.build()?
        } else {
            builder.build_unchecked()?
        };
        Ok(ParsedProgram { program, target })
    }

    // grid := "grid" IDENT ":" type "[" INT,* "]" "halo" INT "window" INT ";"
    fn grid_item(&mut self) -> Result<SpNode> {
        self.expect_keyword("grid")?;
        let name = self.expect_ident()?;
        self.expect_sym(':')?;
        let ty = self.expect_ident()?;
        let dtype = match ty.as_str() {
            "f32" => DType::F32,
            "f64" => DType::F64,
            "i32" => DType::I32,
            other => {
                return Err(MscError::InvalidConfig(format!(
                    "unknown element type `{other}`"
                )))
            }
        };
        self.expect_sym('[')?;
        let mut shape = vec![self.expect_uint()?];
        while matches!(self.peek(), Tok::Sym(',')) {
            self.next();
            shape.push(self.expect_uint()?);
        }
        self.expect_sym(']')?;
        self.expect_keyword("halo")?;
        let halo = self.expect_uint()?;
        self.expect_keyword("window")?;
        let window = self.expect_uint()?;
        self.expect_sym(';')?;
        SpNode::new(&name, dtype, &shape, halo, window)
    }

    // kernel := "kernel" IDENT "=" expr ";"
    fn kernel_item(&mut self, grid: Option<&SpNode>) -> Result<Kernel> {
        self.expect_keyword("kernel")?;
        let name = self.expect_ident()?;
        self.expect_sym('=')?;
        let expr = self.expr()?;
        self.expect_sym(';')?;
        let ndim = grid
            .map(|g| g.ndim())
            .or_else(|| expr.accesses().first().map(|a| a.offsets.len()))
            .ok_or_else(|| MscError::InvalidConfig("kernel before grid declaration".into()))?;
        Kernel::new(&name, ndim, expr)
    }

    // expr := term (("+" | "-") term)*
    fn expr(&mut self) -> Result<Expr> {
        let mut e = self.term()?;
        loop {
            match self.peek() {
                Tok::Sym('+') => {
                    self.next();
                    e = e + self.term()?;
                }
                Tok::Sym('-') => {
                    self.next();
                    e = e - self.term()?;
                }
                _ => return Ok(e),
            }
        }
    }

    // term := factor ("*" factor)*
    fn term(&mut self) -> Result<Expr> {
        let mut e = self.factor()?;
        while matches!(self.peek(), Tok::Sym('*')) {
            self.next();
            e = e * self.factor()?;
        }
        Ok(e)
    }

    // factor := NUMBER | INT | IDENT "[" off,* "]" | "(" expr ")" | "-" factor
    fn factor(&mut self) -> Result<Expr> {
        match self.next() {
            Tok::Num(v) => Ok(Expr::c(v)),
            Tok::Int(v) => Ok(Expr::c(v as f64)),
            Tok::Sym('-') => Ok(-self.factor()?),
            Tok::Sym('(') => {
                let e = self.expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Tok::Ident(tensor) => {
                self.expect_sym('[')?;
                let mut offs = vec![self.expect_int()?];
                while matches!(self.peek(), Tok::Sym(',')) {
                    self.next();
                    offs.push(self.expect_int()?);
                }
                self.expect_sym(']')?;
                Ok(Expr::at(&tensor, &offs))
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a factor"))
            }
        }
    }

    // combine := "combine" IDENT "[" "t" "]" "=" cterm (("+"|"-") cterm)* ";"
    fn combine_item(&mut self) -> Result<Vec<TimeTerm>> {
        self.expect_keyword("combine")?;
        let _res = self.expect_ident()?;
        self.expect_sym('[')?;
        self.expect_keyword("t")?;
        self.expect_sym(']')?;
        self.expect_sym('=')?;
        let mut terms = Vec::new();
        let mut sign = 1.0;
        // Optional leading sign on the first term.
        if matches!(self.peek(), Tok::Sym('-')) {
            self.next();
            sign = -1.0;
        }
        loop {
            // cterm := (NUMBER "*")? IDENT "[" "t" "-" INT "]"
            let weight = match self.peek().clone() {
                Tok::Num(v) => {
                    self.next();
                    self.expect_sym('*')?;
                    v
                }
                Tok::Int(v) => {
                    self.next();
                    self.expect_sym('*')?;
                    v as f64
                }
                _ => 1.0,
            };
            let kernel = self.expect_ident()?;
            self.expect_sym('[')?;
            self.expect_keyword("t")?;
            self.expect_sym('-')?;
            let dt = self.expect_uint()?;
            self.expect_sym(']')?;
            terms.push(TimeTerm {
                dt,
                weight: sign * weight,
                kernel,
            });
            match self.peek() {
                Tok::Sym('+') => {
                    self.next();
                    sign = 1.0;
                }
                Tok::Sym('-') => {
                    self.next();
                    sign = -1.0;
                }
                Tok::Sym(';') => {
                    self.next();
                    return Ok(terms);
                }
                _ => return Err(self.err("expected `+`, `-`, or `;`")),
            }
        }
    }

    // schedule := "schedule" "{" sitem* "}"
    fn schedule_item(&mut self) -> Result<ScheduleSpec> {
        self.expect_keyword("schedule")?;
        self.expect_sym('{')?;
        let mut spec = ScheduleSpec::default();
        loop {
            match self.peek().clone() {
                Tok::Sym('}') => {
                    self.next();
                    return Ok(spec);
                }
                Tok::Ident(kw) => {
                    self.next();
                    match kw.as_str() {
                        "tile" => {
                            while let Tok::Int(_) = self.peek() {
                                spec.tile.push(self.expect_uint()?);
                            }
                            self.expect_sym(';')?;
                        }
                        "reorder" => {
                            while let Tok::Ident(_) = self.peek() {
                                spec.reorder.push(self.expect_ident()?);
                            }
                            self.expect_sym(';')?;
                        }
                        "parallel" => {
                            let axis = self.expect_ident()?;
                            let n = self.expect_uint()?;
                            spec.parallel = Some((axis, n));
                            self.expect_sym(';')?;
                        }
                        "stream" => {
                            spec.stream = true;
                            self.expect_sym(';')?;
                        }
                        "tile_time" => {
                            spec.time_tile = self.expect_uint()?;
                            self.expect_sym(';')?;
                        }
                        "spm" => {
                            let axis = if let Tok::Ident(_) = self.peek() {
                                self.expect_ident()?
                            } else {
                                // Default DMA point: the innermost outer axis.
                                String::new()
                            };
                            spec.spm_axis = Some(axis);
                            self.expect_sym(';')?;
                        }
                        _ => {
                            return Err(
                                self.err("expected tile/reorder/parallel/spm/stream/tile_time")
                            )
                        }
                    }
                }
                _ => return Err(self.err("expected a schedule item or `}`")),
            }
        }
    }

    fn int_list_item(&mut self, kw: &str) -> Result<Vec<usize>> {
        self.expect_keyword(kw)?;
        let mut v = Vec::new();
        while let Tok::Int(_) = self.peek() {
            v.push(self.expect_uint()?);
        }
        self.expect_sym(';')?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING1: &str = r#"
        // The paper's Listing 1 in surface syntax.
        stencil 3d7pt {
            grid B: f64[64, 64, 64] halo 1 window 3;
            kernel S = 0.4*B[0,0,0] + 0.1*B[-1,0,0] + 0.1*B[1,0,0]
                     + 0.1*B[0,-1,0] + 0.1*B[0,1,0]
                     + 0.1*B[0,0,-1] + 0.1*B[0,0,1];
            combine res[t] = 0.6*S[t-1] + 0.4*S[t-2];
            schedule { tile 8 8 32; reorder xo yo zo xi yi zi; parallel xo 64; spm zo; }
            mpi 4 4 4;
            run 10;
            target sunway;
        }
    "#;

    #[test]
    fn parses_listing1() {
        let parsed = parse(LISTING1).unwrap();
        let p = &parsed.program;
        assert_eq!(p.name, "3d7pt");
        assert_eq!(p.grid.shape, vec![64, 64, 64]);
        assert_eq!(p.stencil.time_window(), 3);
        assert_eq!(p.stencil.kernels[0].points(), 7);
        assert_eq!(p.mpi_grid, Some(vec![4, 4, 4]));
        assert_eq!(p.timesteps, 10);
        assert_eq!(parsed.target, Some(Target::SunwayCG));
        let sched = &p.stencil.kernels[0].schedule;
        assert_eq!(sched.tile_factors, vec![8, 8, 32]);
        assert_eq!(sched.n_threads(), 64);
        assert!(sched.uses_spm());
        assert_eq!(sched.compute_at[0].axis, "zo");
    }

    #[test]
    fn parsed_kernel_has_unit_coefficient_sum() {
        let parsed = parse(LISTING1).unwrap();
        let op = parsed.program.stencil.kernels[0].to_op().unwrap();
        assert!((op.coeff_sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wave_equation_with_two_kernels() {
        let src = r#"
            stencil wave {
                grid B: f64[32, 32] halo 1 window 3;
                kernel lap = 1.6*B[0,0] + 0.1*B[-1,0] + 0.1*B[1,0]
                           + 0.1*B[0,-1] + 0.1*B[0,1];
                kernel id = 1.0*B[0,0];
                combine u[t] = 1.0*lap[t-1] - 1.0*id[t-2];
                run 5;
            }
        "#;
        let parsed = parse(src).unwrap();
        assert_eq!(parsed.program.stencil.kernels.len(), 2);
        assert_eq!(parsed.program.stencil.terms[1].weight, -1.0);
        assert!(parsed.target.is_none());
    }

    #[test]
    fn negative_weights_and_parens() {
        let src = r#"
            stencil s {
                grid B: f32[16, 16] halo 2 window 2;
                kernel k = 2.0 * (B[0,0] - 0.5*B[-2,0]) + (-0.25)*B[2,0];
                run 1;
            }
        "#;
        let parsed = parse(src).unwrap();
        let taps = parsed.program.stencil.kernels[0].to_op().unwrap();
        assert_eq!(taps.points(), 3);
        let t = taps.taps.iter().find(|t| t.offset == vec![2, 0]).unwrap();
        assert!((t.coeff + 0.25).abs() < 1e-12);
        let t = taps.taps.iter().find(|t| t.offset == vec![-2, 0]).unwrap();
        assert!((t.coeff + 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_combine_is_t_minus_1() {
        let src = r#"
            stencil s {
                grid B: f64[8, 8] halo 1 window 2;
                kernel k = 0.5*B[0,0] + 0.5*B[1,0];
            }
        "#;
        let p = parse(src).unwrap().program;
        assert_eq!(p.stencil.terms.len(), 1);
        assert_eq!(p.stencil.terms[0].dt, 1);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let src = "stencil s {\n  grid B f64[8] halo 1 window 2;\n}";
        let e = parse(src).unwrap_err().to_string();
        assert!(e.contains("line 2"), "{e}");
    }

    #[test]
    fn rejects_missing_grid() {
        let src = "stencil s { kernel k = 1.0*B[0]; run 1; }";
        // kernel-before-grid infers ndim from the access; build then
        // fails on the missing grid.
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_unknown_target_and_type() {
        let bad_target = r#"
            stencil s { grid B: f64[8] halo 1 window 2;
                kernel k = 1.0*B[0]; target gpu; }
        "#;
        assert!(parse(bad_target).is_err());
        let bad_type = "stencil s { grid B: f16[8] halo 1 window 2; }";
        assert!(parse(bad_type).is_err());
    }

    #[test]
    fn rejects_halo_smaller_than_reach() {
        let src = r#"
            stencil s {
                grid B: f64[16, 16] halo 1 window 2;
                kernel k = 0.5*B[0,0] + 0.5*B[2,0];
            }
        "#;
        assert!(matches!(parse(src), Err(MscError::HaloTooSmall { .. })));
    }

    #[test]
    fn comments_and_whitespace_are_ignored()  {
        let src = "// header\nstencil s { // inline\n grid B: f64[8] halo 1 window 2;\n kernel k = 1.0*B[0]; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parsed_program_executes_like_builder_program() {
        // The surface syntax and the builder API must produce identical
        // programs.
        let parsed = parse(LISTING1).unwrap().program;
        let built = crate::catalog::benchmark(crate::catalog::BenchmarkId::S3d7ptStar);
        let k = built.kernel();
        // Same shape class: 7 taps, reach 1.
        assert_eq!(parsed.stencil.kernels[0].points(), k.points());
        assert_eq!(parsed.stencil.reach(), vec![1, 1, 1]);
    }


    #[test]
    fn pretty_printer_round_trips() {
        // parse -> print -> parse must preserve semantics exactly.
        let a = parse(LISTING1).unwrap();
        let text = to_msc_source(&a.program, a.target);
        let b = parse(&text).unwrap();
        assert_eq!(a.program.grid, b.program.grid);
        assert_eq!(a.program.timesteps, b.program.timesteps);
        assert_eq!(a.program.mpi_grid, b.program.mpi_grid);
        assert_eq!(a.target, b.target);
        // Kernels agree tap-for-tap.
        let ta = a.program.stencil.kernels[0].to_op().unwrap();
        let tb = b.program.stencil.kernels[0].to_op().unwrap();
        assert_eq!(ta.taps, tb.taps);
        // Schedules agree.
        assert_eq!(
            a.program.stencil.kernels[0].schedule,
            b.program.stencil.kernels[0].schedule
        );
        // Temporal combination agrees.
        assert_eq!(a.program.stencil.terms, b.program.stencil.terms);
    }


    #[test]
    fn pretty_printer_handles_negative_weights() {
        let src = r#"
            stencil wave {
                grid B: f64[16, 16] halo 1 window 3;
                kernel p = 1.6*B[0,0] + 0.1*B[-1,0] + 0.1*B[1,0]
                         + 0.1*B[0,-1] + 0.1*B[0,1];
                kernel id = 1.0*B[0,0];
                combine u[t] = -1.0*id[t-2] + 1.0*p[t-1];
                run 2;
            }
        "#;
        let a = parse(src).unwrap();
        let text = to_msc_source(&a.program, None);
        let b = parse(&text).unwrap();
        assert_eq!(a.program.stencil.terms, b.program.stencil.terms);
    }

    #[test]
    fn pretty_printer_emits_extension_primitives() {
        let src = r#"
            stencil s {
                grid B: f64[64, 64] halo 1 window 2;
                kernel k = 0.5*B[0,0] + 0.5*B[1,0];
                schedule { tile 8 64; reorder xo yo xi yi; parallel xo 8; spm yo; stream; tile_time 3; }
                run 2;
            }
        "#;
        let parsed = parse(src).unwrap();
        let text = to_msc_source(&parsed.program, None);
        assert!(text.contains("stream;"));
        assert!(text.contains("tile_time 3;"));
        let again = parse(&text).unwrap();
        assert_eq!(
            parsed.program.stencil.kernels[0].schedule,
            again.program.stencil.kernels[0].schedule
        );
    }

    #[test]
    fn scientific_notation_coefficients() {
        let src = r#"
            stencil s { grid B: f64[8] halo 1 window 2;
                kernel k = 2.5e-1*B[0] + 7.5e-1*B[1]; }
        "#;
        let p = parse(src).unwrap().program;
        let op = p.stencil.kernels[0].to_op().unwrap();
        assert!((op.coeff_sum() - 1.0).abs() < 1e-12);
    }
}
