//! Static analysis of kernels and stencils: per-point memory traffic and
//! arithmetic (the quantities behind Table 4 and the roofline model of
//! Figure 9).

use crate::dtype::DType;
use crate::error::Result;
use crate::footprint::Footprint;
use crate::kernel::Kernel;
use crate::stencil::Stencil;

/// Per-point statistics of a single kernel sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelStats {
    /// Distinct grid points read per output point.
    pub points: usize,
    /// Bytes read per output point (no reuse assumed — the Table 4
    /// convention).
    pub read_bytes: usize,
    /// Bytes written per output point.
    pub write_bytes: usize,
    /// Adds + subs in the expression.
    pub adds: usize,
    /// Multiplies in the expression.
    pub muls: usize,
}

impl KernelStats {
    /// Analyze a kernel for a given element type. Reads are deduped by
    /// inferred `(tensor, time, offset)` via the [`Footprint`] pass, so a
    /// grid point referenced through two syntactic paths counts once.
    pub fn of(kernel: &Kernel, dtype: DType) -> KernelStats {
        let e = &kernel.expr;
        let points = Footprint::of_kernel(kernel).distinct_points();
        KernelStats {
            points,
            read_bytes: points * dtype.size_bytes(),
            write_bytes: dtype.size_bytes(),
            adds: e.count_adds(),
            muls: e.count_muls(),
        }
    }

    /// Total arithmetic ops (`+ - ×`) per point.
    pub fn ops(&self) -> usize {
        self.adds + self.muls
    }

    /// *Naive* operational intensity: flops over cold-cache traffic
    /// (every read from memory). This is what places the benchmarks far
    /// left on the roofline.
    pub fn naive_intensity(&self) -> f64 {
        self.ops() as f64 / (self.read_bytes + self.write_bytes) as f64
    }

    /// Operational intensity with perfect on-chip reuse: each point is
    /// loaded once and stored once per sweep, so DRAM traffic is
    /// `2 × sizeof(elem)` regardless of the stencil order. This is what
    /// SPM blocking on Sunway approaches (paper §5.2.1: "each data point
    /// reused about 13 times").
    pub fn reuse_intensity(&self, dtype: DType) -> f64 {
        self.ops() as f64 / (2 * dtype.size_bytes()) as f64
    }

    /// Average number of times each loaded point is reused when the tile
    /// (plus halo) is staged on chip: equals the stencil point count
    /// asymptotically, reported ≈13 for 3d13pt in the paper.
    pub fn reuse_factor(&self) -> f64 {
        self.points as f64
    }
}

/// Statistics of a full temporal stencil step (all time terms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilStats {
    /// Per-point stats summed over all temporal terms.
    pub points: usize,
    pub read_bytes: usize,
    pub write_bytes: usize,
    pub adds: usize,
    pub muls: usize,
    /// Number of temporal dependencies.
    pub time_deps: usize,
}

impl StencilStats {
    /// Analyze a stencil: each time term performs its kernel sweep over
    /// its input state, plus `terms-1` adds and `terms` weight multiplies
    /// to combine them. Reads are deduped by absolute `(tensor,
    /// dt + time_back, offset)` across terms — two terms (or two kernels)
    /// touching the same point of the same state load it once.
    pub fn of(stencil: &Stencil, dtype: DType) -> Result<StencilStats> {
        let fp = Footprint::of_stencil(stencil)?;
        let points = fp.distinct_points();
        let read = points * dtype.size_bytes();
        let mut adds = 0;
        let mut muls = 0;
        for term in &stencil.terms {
            let k = stencil.kernel(&term.kernel)?;
            let ks = KernelStats::of(k, dtype);
            adds += ks.adds;
            muls += ks.muls;
        }
        let nterms = stencil.terms.len();
        adds += nterms.saturating_sub(1);
        muls += nterms;
        Ok(StencilStats {
            points,
            read_bytes: read,
            write_bytes: dtype.size_bytes(),
            adds,
            muls,
            time_deps: stencil.time_deps(),
        })
    }

    pub fn ops(&self) -> f64 {
        (self.adds + self.muls) as f64
    }

    /// DRAM-level operational intensity assuming on-chip reuse within each
    /// sweep: one load per live input state plus one store.
    pub fn reuse_intensity(&self, dtype: DType) -> f64 {
        let traffic = (self.time_deps + 1) * dtype.size_bytes();
        self.ops() / traffic as f64
    }

    /// Flops per grid point per timestep.
    pub fn flops_per_point(&self) -> f64 {
        self.ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{all_benchmarks, benchmark, BenchmarkId};

    #[test]
    fn kernel_stats_3d7pt() {
        let k = benchmark(BenchmarkId::S3d7ptStar).kernel();
        let s = KernelStats::of(&k, DType::F64);
        assert_eq!(s.points, 7);
        assert_eq!(s.read_bytes, 56);
        assert_eq!(s.write_bytes, 8);
        assert_eq!(s.ops(), 13); // 7 muls + 6 adds — matches Table 4
    }

    #[test]
    fn fp32_halves_traffic() {
        let k = benchmark(BenchmarkId::S3d7ptStar).kernel();
        let s64 = KernelStats::of(&k, DType::F64);
        let s32 = KernelStats::of(&k, DType::F32);
        assert_eq!(s32.read_bytes * 2, s64.read_bytes);
        assert_eq!(s32.ops(), s64.ops());
    }

    #[test]
    fn table4_read_bytes_for_all_benchmarks() {
        for b in all_benchmarks() {
            let s = KernelStats::of(&b.kernel(), DType::F64);
            assert_eq!(s.read_bytes, b.paper.read_bytes, "{}", b.name);
            assert_eq!(s.write_bytes, b.paper.write_bytes, "{}", b.name);
        }
    }

    #[test]
    fn naive_intensity_is_below_one_for_low_order() {
        let k = benchmark(BenchmarkId::S3d7ptStar).kernel();
        let s = KernelStats::of(&k, DType::F64);
        assert!(s.naive_intensity() < 1.0);
    }

    #[test]
    fn reuse_intensity_scales_with_order() {
        let lo = KernelStats::of(&benchmark(BenchmarkId::S3d7ptStar).kernel(), DType::F64);
        let hi = KernelStats::of(&benchmark(BenchmarkId::S2d169ptBox).kernel(), DType::F64);
        assert!(hi.reuse_intensity(DType::F64) > 10.0 * lo.reuse_intensity(DType::F64));
    }

    #[test]
    fn stencil_stats_double_kernel_traffic() {
        let b = benchmark(BenchmarkId::S3d7ptStar);
        let p = b.program(&[32, 32, 32], DType::F64, 2).unwrap();
        let ss = StencilStats::of(&p.stencil, DType::F64).unwrap();
        assert_eq!(ss.points, 14); // 7 per term, 2 terms
        assert_eq!(ss.read_bytes, 112);
        assert_eq!(ss.time_deps, 2);
        // ops: 2*(13) + 1 combine add + 2 weight muls = 29
        assert_eq!(ss.ops(), 29.0);
    }

    #[test]
    fn same_state_reads_across_terms_are_not_double_counted() {
        // Two distinct kernels at the same dt sharing two grid points:
        // the shared points load once per step, not once per term.
        use crate::expr::Expr;
        use crate::stencil::TimeTerm;
        let k1 = Kernel::new("a", 1, Expr::at("B", &[-1]) + Expr::at("B", &[0])).unwrap();
        let k2 = Kernel::new("b", 1, Expr::at("B", &[0]) + Expr::at("B", &[1])).unwrap();
        let st = Stencil::new(
            "overlap",
            vec![k1, k2],
            vec![
                TimeTerm { dt: 1, weight: 0.5, kernel: "a".into() },
                TimeTerm { dt: 1, weight: 0.5, kernel: "b".into() },
            ],
        )
        .unwrap();
        let ss = StencilStats::of(&st, DType::F64).unwrap();
        assert_eq!(ss.points, 3); // {-1, 0, 1}, previously 4
        assert_eq!(ss.read_bytes, 24);
        // Arithmetic is still per-term: 2 adds + 1 combine add + 2 weight muls.
        assert_eq!(ss.ops(), 5.0);
    }

    #[test]
    fn duplicate_syntactic_reads_in_one_kernel_count_once() {
        use crate::expr::Expr;
        let k = Kernel::new(
            "dup",
            1,
            Expr::at("B", &[1]) + 2.0 * Expr::at("B", &[1]) + Expr::at("B", &[0]),
        )
        .unwrap();
        let s = KernelStats::of(&k, DType::F64);
        assert_eq!(s.points, 2);
        assert_eq!(s.read_bytes, 16);
    }

    #[test]
    fn high_order_2d_is_compute_heavy_under_reuse() {
        // The mechanism behind "2d169pt is compute-bound on Sunway"
        // (Fig. 9a): with SPM reuse its DRAM intensity is huge.
        let b = benchmark(BenchmarkId::S2d169ptBox);
        let p = b.program(&[64, 64], DType::F64, 2).unwrap();
        let ss = StencilStats::of(&p.stencil, DType::F64).unwrap();
        assert!(ss.reuse_intensity(DType::F64) > 20.0);
    }
}
