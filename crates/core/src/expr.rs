//! Expression IR (paper Table 2): value assignment, unary/binary math
//! operators, external function calls, and index-calculation expressions.
//!
//! Expressions are plain trees. A stencil kernel body is a single
//! expression over *relative* tensor accesses such as `B[k-1, j, i]`;
//! the surrounding loop nest is represented separately by
//! [`crate::axis::Axis`] and the schedule.

use crate::error::{MscError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// Binary operators available in kernel expressions (`OperatorExpr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

impl BinOp {
    /// C source spelling; `Min`/`Max` lower to `fmin`/`fmax` calls.
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "fmin",
            BinOp::Max => "fmax",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Abs,
    Sqrt,
}

/// A single relative access into a tensor: `tensor[i0+o0, i1+o1, ...]`
/// optionally reaching `time_back` timesteps into the past.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Access {
    pub tensor: String,
    /// Spatial offsets, one per grid dimension, outermost first.
    pub offsets: Vec<i64>,
    /// How many timesteps back this access reads (0 = current input state).
    pub time_back: usize,
}

/// One tap of a compiled linear stencil: coefficient times a relative
/// access. The executor fast path iterates taps directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Tap {
    pub offset: Vec<i64>,
    pub coeff: f64,
}

/// A coefficient in a variable-coefficient stencil: a constant, or a
/// scaled read of a coefficient tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum VarCoeff {
    Const(f64),
    Tensor {
        name: String,
        offset: Vec<i64>,
        scale: f64,
    },
}

/// One tap of a variable-coefficient stencil:
/// `coeff(x) * grid[x + offset]`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarTap {
    pub offset: Vec<i64>,
    pub coeff: VarCoeff,
}

/// Expression tree node (paper: `AssignExpr` is represented by the kernel
/// itself writing its output tensor; the remaining forms are below).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Floating-point literal.
    Const(f64),
    /// Integer literal.
    ConstI(i64),
    /// Reference to a scalar DSL variable (e.g. a coefficient).
    Var(String),
    /// Relative tensor access (`IndexExpr` folded into the access).
    Access(Access),
    /// Unary operator.
    Unary(UnOp, Box<Expr>),
    /// Binary operator.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// External function call (`CallFuncExpr`).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Build a relative access expression.
    pub fn at(tensor: &str, offsets: &[i64]) -> Expr {
        Expr::Access(Access {
            tensor: tensor.to_string(),
            offsets: offsets.to_vec(),
            time_back: 0,
        })
    }

    /// Relative access reading `time_back` steps into the past.
    pub fn at_time(tensor: &str, offsets: &[i64], time_back: usize) -> Expr {
        Expr::Access(Access {
            tensor: tensor.to_string(),
            offsets: offsets.to_vec(),
            time_back,
        })
    }

    /// Floating constant.
    pub fn c(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// Count additive operations (`+`, `-`) in the tree.
    pub fn count_adds(&self) -> usize {
        self.fold(0, &mut |acc, e| {
            acc + match e {
                Expr::Binary(BinOp::Add | BinOp::Sub, _, _) => 1,
                _ => 0,
            }
        })
    }

    /// Count multiplicative operations (`*`) in the tree. Divisions are
    /// counted separately by [`Expr::count_divs`].
    pub fn count_muls(&self) -> usize {
        self.fold(0, &mut |acc, e| {
            acc + match e {
                Expr::Binary(BinOp::Mul, _, _) => 1,
                _ => 0,
            }
        })
    }

    /// Count divisions.
    pub fn count_divs(&self) -> usize {
        self.fold(0, &mut |acc, e| {
            acc + match e {
                Expr::Binary(BinOp::Div, _, _) => 1,
                _ => 0,
            }
        })
    }

    /// Total arithmetic operations (`+ - ×`), the metric of the paper's
    /// Table 4 "Ops(+-×)" column.
    pub fn count_ops(&self) -> usize {
        self.count_adds() + self.count_muls()
    }

    /// Collect every distinct tensor access in the tree, in canonical
    /// (sorted) order.
    pub fn accesses(&self) -> Vec<Access> {
        let mut set = std::collections::BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::Access(a) = e {
                set.insert(a.clone());
            }
        });
        set.into_iter().collect()
    }

    /// Number of distinct points read (across all tensors/time offsets).
    pub fn num_points(&self) -> usize {
        self.accesses().len()
    }

    /// Maximum absolute spatial offset per dimension — the reach of the
    /// stencil, used to validate halo widths.
    pub fn reach(&self, ndim: usize) -> Vec<usize> {
        let mut reach = vec![0usize; ndim];
        for a in self.accesses() {
            for (d, &o) in a.offsets.iter().enumerate() {
                if d < ndim {
                    reach[d] = reach[d].max(o.unsigned_abs() as usize);
                }
            }
        }
        reach
    }

    /// Evaluate the expression with `lookup` resolving tensor accesses and
    /// `vars` resolving scalar variables. Used by the naive serial
    /// reference executor.
    pub fn eval(
        &self,
        lookup: &mut dyn FnMut(&Access) -> f64,
        vars: &BTreeMap<String, f64>,
    ) -> Result<f64> {
        Ok(match self {
            Expr::Const(v) => *v,
            Expr::ConstI(v) => *v as f64,
            Expr::Var(name) => *vars.get(name).ok_or_else(|| MscError::Undefined {
                kind: "variable",
                name: name.clone(),
            })?,
            Expr::Access(a) => lookup(a),
            Expr::Unary(op, a) => {
                let v = a.eval(lookup, vars)?;
                match op {
                    UnOp::Neg => -v,
                    UnOp::Abs => v.abs(),
                    UnOp::Sqrt => v.sqrt(),
                }
            }
            Expr::Binary(op, a, b) => {
                let x = a.eval(lookup, vars)?;
                let y = b.eval(lookup, vars)?;
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                }
            }
            Expr::Call(name, args) => {
                let vals: Result<Vec<f64>> =
                    args.iter().map(|e| e.eval(lookup, vars)).collect();
                let vals = vals?;
                match (name.as_str(), vals.as_slice()) {
                    ("exp", [x]) => x.exp(),
                    ("sin", [x]) => x.sin(),
                    ("cos", [x]) => x.cos(),
                    ("pow", [x, y]) => x.powf(*y),
                    _ => {
                        return Err(MscError::UnsupportedExpr(format!(
                            "unknown external function `{name}` with {} args",
                            vals.len()
                        )))
                    }
                }
            }
        })
    }

    /// Attempt to flatten the expression into a linear combination of
    /// accesses of a *single* tensor at a *single* time offset:
    /// `sum_i coeff_i * T[x + o_i]`. This is the executor/codegen fast
    /// path; returns `Err` for non-linear or multi-tensor expressions.
    pub fn to_taps(&self) -> Result<Vec<Tap>> {
        let mut taps: BTreeMap<Vec<i64>, f64> = BTreeMap::new();
        let mut tensor: Option<(String, usize)> = None;
        self.linearize(1.0, &mut taps, &mut tensor)?;
        Ok(taps
            .into_iter()
            .map(|(offset, coeff)| Tap { offset, coeff })
            .collect())
    }

    fn linearize(
        &self,
        scale: f64,
        taps: &mut BTreeMap<Vec<i64>, f64>,
        tensor: &mut Option<(String, usize)>,
    ) -> Result<()> {
        match self {
            Expr::Access(a) => {
                match tensor {
                    Some((name, tb)) => {
                        if *name != a.tensor || *tb != a.time_back {
                            return Err(MscError::UnsupportedExpr(
                                "linear form requires a single tensor and time offset".into(),
                            ));
                        }
                    }
                    None => *tensor = Some((a.tensor.clone(), a.time_back)),
                }
                *taps.entry(a.offsets.clone()).or_insert(0.0) += scale;
                Ok(())
            }
            Expr::Binary(BinOp::Add, a, b) => {
                a.linearize(scale, taps, tensor)?;
                b.linearize(scale, taps, tensor)
            }
            Expr::Binary(BinOp::Sub, a, b) => {
                a.linearize(scale, taps, tensor)?;
                b.linearize(-scale, taps, tensor)
            }
            Expr::Binary(BinOp::Mul, a, b) => {
                if let Some(c) = a.as_const() {
                    b.linearize(scale * c, taps, tensor)
                } else if let Some(c) = b.as_const() {
                    a.linearize(scale * c, taps, tensor)
                } else {
                    Err(MscError::UnsupportedExpr(
                        "non-constant multiplication in linear stencil".into(),
                    ))
                }
            }
            Expr::Unary(UnOp::Neg, a) => a.linearize(-scale, taps, tensor),
            Expr::Const(c) if *c == 0.0 => Ok(()),
            other => Err(MscError::UnsupportedExpr(format!(
                "cannot linearize node: {other}"
            ))),
        }
    }

    /// Flatten into a *variable-coefficient* linear form over accesses of
    /// `grid`: `Σ_i coeff_i(x) · grid[x + off_i]`, where each coefficient
    /// is either a constant or `scale · C[x + o]` for a coefficient
    /// tensor `C` (the WRF/POP2 kernel form of the paper's §5.6).
    pub fn to_var_taps(&self, grid: &str) -> Result<Vec<VarTap>> {
        let mut taps = Vec::new();
        self.linearize_var(1.0, None, grid, &mut taps)?;
        Ok(taps)
    }

    fn linearize_var(
        &self,
        scale: f64,
        coeff: Option<&Access>,
        grid: &str,
        taps: &mut Vec<VarTap>,
    ) -> Result<()> {
        match self {
            Expr::Access(a) if a.tensor == grid => {
                taps.push(VarTap {
                    offset: a.offsets.clone(),
                    coeff: match coeff {
                        None => VarCoeff::Const(scale),
                        Some(c) => VarCoeff::Tensor {
                            name: c.tensor.clone(),
                            offset: c.offsets.clone(),
                            scale,
                        },
                    },
                });
                Ok(())
            }
            Expr::Access(a) => Err(MscError::UnsupportedExpr(format!(
                "coefficient tensor `{}` must multiply a `{grid}` access",
                a.tensor
            ))),
            Expr::Binary(BinOp::Add, a, b) => {
                a.linearize_var(scale, coeff, grid, taps)?;
                b.linearize_var(scale, coeff, grid, taps)
            }
            Expr::Binary(BinOp::Sub, a, b) => {
                a.linearize_var(scale, coeff, grid, taps)?;
                b.linearize_var(-scale, coeff, grid, taps)
            }
            Expr::Unary(UnOp::Neg, a) => a.linearize_var(-scale, coeff, grid, taps),
            Expr::Binary(BinOp::Mul, a, b) => {
                // Constant factor on either side.
                if let Some(c) = a.as_const() {
                    return b.linearize_var(scale * c, coeff, grid, taps);
                }
                if let Some(c) = b.as_const() {
                    return a.linearize_var(scale * c, coeff, grid, taps);
                }
                // Coefficient-tensor factor: an access to a non-grid
                // tensor multiplying a grid subtree.
                let as_coeff = |e: &Expr| match e {
                    Expr::Access(a) if a.tensor != grid => Some(a.clone()),
                    _ => None,
                };
                if coeff.is_none() {
                    if let Some(c) = as_coeff(a) {
                        return b.linearize_var(scale, Some(&c), grid, taps);
                    }
                    if let Some(c) = as_coeff(b) {
                        return a.linearize_var(scale, Some(&c), grid, taps);
                    }
                }
                Err(MscError::UnsupportedExpr(
                    "product of two non-constant factors in variable-coefficient form".into(),
                ))
            }
            Expr::Const(c) if *c == 0.0 => Ok(()),
            other => Err(MscError::UnsupportedExpr(format!(
                "cannot linearize node in variable-coefficient form: {other}"
            ))),
        }
    }

    /// Evaluate the expression if it is a compile-time constant
    /// (constants, integer literals, negation, constant arithmetic).
    pub fn as_const(&self) -> Option<f64> {
        match self {
            Expr::Const(v) => Some(*v),
            Expr::ConstI(v) => Some(*v as f64),
            Expr::Unary(UnOp::Neg, a) => a.as_const().map(|v| -v),
            Expr::Binary(op, a, b) => {
                let (x, y) = (a.as_const()?, b.as_const()?);
                Some(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                })
            }
            _ => None,
        }
    }

    /// Render the expression as C source, with `idx` the names of the loop
    /// index variables (outermost first) and `indexer` mapping an access to
    /// a C lvalue string.
    pub fn to_c(&self, indexer: &dyn Fn(&Access) -> String) -> String {
        match self {
            Expr::Const(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Expr::ConstI(v) => format!("{v}"),
            Expr::Var(name) => name.clone(),
            Expr::Access(a) => indexer(a),
            Expr::Unary(op, a) => match op {
                UnOp::Neg => format!("(-{})", a.to_c(indexer)),
                UnOp::Abs => format!("fabs({})", a.to_c(indexer)),
                UnOp::Sqrt => format!("sqrt({})", a.to_c(indexer)),
            },
            Expr::Binary(op, a, b) => match op {
                BinOp::Min | BinOp::Max => format!(
                    "{}({}, {})",
                    op.c_symbol(),
                    a.to_c(indexer),
                    b.to_c(indexer)
                ),
                _ => format!(
                    "({} {} {})",
                    a.to_c(indexer),
                    op.c_symbol(),
                    b.to_c(indexer)
                ),
            },
            Expr::Call(name, args) => {
                let args: Vec<String> = args.iter().map(|e| e.to_c(indexer)).collect();
                format!("{}({})", name, args.join(", "))
            }
        }
    }

    fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary(_, a) => a.visit(f),
            Expr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            _ => {}
        }
    }

    fn fold<T>(&self, init: T, f: &mut dyn FnMut(T, &Expr) -> T) -> T {
        let mut acc = f(init, self);
        match self {
            Expr::Unary(_, a) => acc = a.fold(acc, f),
            Expr::Binary(_, a, b) => {
                acc = a.fold(acc, f);
                acc = b.fold(acc, f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    acc = a.fold(acc, f);
                }
            }
            _ => {}
        }
        acc
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.to_c(&|a| {
            let offs: Vec<String> = a
                .offsets
                .iter()
                .map(|o| match o.cmp(&0) {
                    std::cmp::Ordering::Equal => "".to_string(),
                    std::cmp::Ordering::Greater => format!("+{o}"),
                    std::cmp::Ordering::Less => format!("{o}"),
                })
                .collect();
            let idx_names = ["k", "j", "i"];
            let start = 3usize.saturating_sub(a.offsets.len());
            let parts: Vec<String> = offs
                .iter()
                .enumerate()
                .map(|(d, o)| format!("{}{}", idx_names.get(start + d).unwrap_or(&"i"), o))
                .collect();
            if a.time_back > 0 {
                format!("{}[t-{}][{}]", a.tensor, a.time_back, parts.join(","))
            } else {
                format!("{}[{}]", a.tensor, parts.join(","))
            }
        });
        f.write_str(&s)
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul<Expr> for f64 {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(Expr::Const(self)), Box::new(rhs))
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lap1d() -> Expr {
        // 0.5*B[i-1] - 1.0*B[i] + 0.5*B[i+1]
        0.5 * Expr::at("B", &[-1]) - 1.0 * Expr::at("B", &[0]) + 0.5 * Expr::at("B", &[1])
    }

    #[test]
    fn op_counts() {
        let e = lap1d();
        assert_eq!(e.count_muls(), 3);
        assert_eq!(e.count_adds(), 2);
        assert_eq!(e.count_ops(), 5);
    }

    #[test]
    fn access_collection_is_sorted_and_deduped() {
        let e = lap1d() + 2.0 * Expr::at("B", &[1]);
        let acc = e.accesses();
        assert_eq!(acc.len(), 3);
        assert_eq!(acc[0].offsets, vec![-1]);
        assert_eq!(acc[2].offsets, vec![1]);
    }

    #[test]
    fn reach_takes_max_abs_offset() {
        let e = Expr::at("B", &[-3, 0, 1]) + Expr::at("B", &[2, -1, 0]);
        assert_eq!(e.reach(3), vec![3, 1, 1]);
    }

    #[test]
    fn eval_simple() {
        let e = lap1d();
        let mut lookup = |a: &Access| match a.offsets[0] {
            -1 => 1.0,
            0 => 2.0,
            1 => 3.0,
            _ => unreachable!(),
        };
        let v = e.eval(&mut lookup, &BTreeMap::new()).unwrap();
        assert!((v - (0.5 - 2.0 + 1.5)).abs() < 1e-15);
    }

    #[test]
    fn eval_vars_and_calls() {
        let e = Expr::Call("pow".into(), vec![Expr::Var("a".into()), Expr::c(2.0)]);
        let mut vars = BTreeMap::new();
        vars.insert("a".to_string(), 3.0);
        let v = e.eval(&mut |_| 0.0, &vars).unwrap();
        assert_eq!(v, 9.0);
    }

    #[test]
    fn eval_unknown_var_errors() {
        let e = Expr::Var("missing".into());
        assert!(e.eval(&mut |_| 0.0, &BTreeMap::new()).is_err());
    }

    #[test]
    fn taps_merge_duplicate_offsets() {
        let e = 0.25 * Expr::at("B", &[1]) + 0.25 * Expr::at("B", &[1]);
        let taps = e.to_taps().unwrap();
        assert_eq!(taps.len(), 1);
        assert!((taps[0].coeff - 0.5).abs() < 1e-15);
    }

    #[test]
    fn taps_handle_sub_and_neg() {
        let e = -(Expr::at("B", &[0])) - 2.0 * Expr::at("B", &[1]);
        let taps = e.to_taps().unwrap();
        assert_eq!(taps.len(), 2);
        let t0 = taps.iter().find(|t| t.offset == vec![0]).unwrap();
        let t1 = taps.iter().find(|t| t.offset == vec![1]).unwrap();
        assert_eq!(t0.coeff, -1.0);
        assert_eq!(t1.coeff, -2.0);
    }

    #[test]
    fn taps_reject_multi_tensor() {
        let e = Expr::at("A", &[0]) + Expr::at("B", &[0]);
        assert!(e.to_taps().is_err());
    }

    #[test]
    fn taps_reject_nonlinear() {
        let e = Expr::at("B", &[0]) * Expr::at("B", &[1]);
        assert!(e.to_taps().is_err());
    }

    #[test]
    fn taps_linear_matches_eval() {
        let e = lap1d();
        let taps = e.to_taps().unwrap();
        let grid = |o: i64| (o + 10) as f64 * 1.5;
        let via_taps: f64 = taps.iter().map(|t| t.coeff * grid(t.offset[0])).sum();
        let mut lookup = |a: &Access| grid(a.offsets[0]);
        let via_eval = e.eval(&mut lookup, &BTreeMap::new()).unwrap();
        assert!((via_taps - via_eval).abs() < 1e-12);
    }

    #[test]
    fn var_taps_extract_coefficient_tensors() {
        // C[0]*B[-1] + 2.0*C[0]*B[1] + 0.5*B[0]
        let e = Expr::at("C", &[0]) * Expr::at("B", &[-1])
            + 2.0 * (Expr::at("C", &[0]) * Expr::at("B", &[1]))
            + 0.5 * Expr::at("B", &[0]);
        let taps = e.to_var_taps("B").unwrap();
        assert_eq!(taps.len(), 3);
        assert_eq!(
            taps[0].coeff,
            VarCoeff::Tensor {
                name: "C".into(),
                offset: vec![0],
                scale: 1.0
            }
        );
        assert_eq!(
            taps[1].coeff,
            VarCoeff::Tensor {
                name: "C".into(),
                offset: vec![0],
                scale: 2.0
            }
        );
        assert_eq!(taps[2].coeff, VarCoeff::Const(0.5));
    }

    #[test]
    fn var_taps_handle_distribution_over_sums() {
        // C[0,0] * (B[-1,0] - B[1,0])
        let e = Expr::at("C", &[0, 0]) * (Expr::at("B", &[-1, 0]) - Expr::at("B", &[1, 0]));
        let taps = e.to_var_taps("B").unwrap();
        assert_eq!(taps.len(), 2);
        match &taps[1].coeff {
            VarCoeff::Tensor { scale, .. } => assert_eq!(*scale, -1.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn var_taps_reject_bilinear_products() {
        let e = Expr::at("B", &[0]) * Expr::at("B", &[1]);
        assert!(e.to_var_taps("B").is_err());
        // Coefficient times coefficient times grid is also rejected.
        let e = Expr::at("C", &[0]) * (Expr::at("D", &[0]) * Expr::at("B", &[0]));
        assert!(e.to_var_taps("B").is_err());
    }

    #[test]
    fn var_taps_reject_bare_coefficient_terms() {
        let e = Expr::at("C", &[0]) + Expr::at("B", &[0]);
        assert!(e.to_var_taps("B").is_err());
    }

    #[test]
    fn c_rendering() {
        let e = 2.0 * Expr::at("B", &[0, 1]);
        let c = e.to_c(&|a| format!("B[{}][{}]", a.offsets[0], a.offsets[1]));
        assert_eq!(c, "(2.0 * B[0][1])");
    }

    #[test]
    fn display_shows_relative_indices() {
        let e = Expr::at("B", &[-1, 0, 2]);
        assert_eq!(e.to_string(), "B[k-1,j,i+2]");
    }

    #[test]
    fn display_shows_time_offsets() {
        let e = Expr::at_time("B", &[0, 0], 2);
        assert!(e.to_string().contains("t-2"));
    }
}
