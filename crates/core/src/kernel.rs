//! `Kernel` IR node: one basic spatial stencil sweep (e.g. a 3D Laplacian
//! operator), composed of tensor accesses, nested loops, and an expression
//! (paper Table 2). Kernels carry their own [`Schedule`].

use crate::error::{MscError, Result};
use crate::expr::{Expr, Tap};
use crate::schedule::Schedule;

/// A basic stencil kernel: `out(x) = expr(in(x + offsets...))`.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    pub name: String,
    /// Name of the input grid tensor the expression reads.
    pub input: String,
    /// Number of spatial dimensions.
    pub ndim: usize,
    /// The update expression over relative accesses.
    pub expr: Expr,
    /// Optimization primitives applied to this kernel.
    pub schedule: Schedule,
}

impl Kernel {
    /// Define a kernel from an arbitrary expression. The input tensor name
    /// is inferred from the expression's accesses (all accesses must hit
    /// one tensor).
    pub fn new(name: &str, ndim: usize, expr: Expr) -> Result<Kernel> {
        let accesses = expr.accesses();
        let input = accesses
            .first()
            .map(|a| a.tensor.clone())
            .ok_or_else(|| MscError::UnsupportedExpr("kernel reads no tensor".into()))?;
        for a in &accesses {
            if a.offsets.len() != ndim {
                return Err(MscError::DimMismatch {
                    expected: ndim,
                    got: a.offsets.len(),
                });
            }
        }
        Ok(Kernel {
            name: name.to_string(),
            input,
            ndim,
            expr,
            schedule: Schedule::default(),
        })
    }

    /// Star-shaped stencil of the given radius: the centre point plus
    /// `2*ndim*radius` points along the axes. `coeffs[0]` weights the
    /// centre; `coeffs[d]` weights the points at axis distance `d`
    /// (`coeffs.len() == radius + 1`).
    pub fn star(name: &str, ndim: usize, radius: usize, coeffs: &[f64]) -> Result<Kernel> {
        if coeffs.len() != radius + 1 {
            return Err(MscError::InvalidConfig(format!(
                "star kernel `{name}` needs {} coefficients, got {}",
                radius + 1,
                coeffs.len()
            )));
        }
        let input = "B";
        let mut expr = coeffs[0] * Expr::at(input, &vec![0i64; ndim]);
        for dim in 0..ndim {
            for d in 1..=radius as i64 {
                for sign in [-1i64, 1] {
                    let mut off = vec![0i64; ndim];
                    off[dim] = sign * d;
                    expr = expr + coeffs[d as usize] * Expr::at(input, &off);
                }
            }
        }
        Kernel::new(name, ndim, expr)
    }

    /// Star stencil with normalized coefficients (centre weight
    /// `center_w`, the rest sharing `1 - center_w` equally) — numerically
    /// stable under iteration (weighted-Jacobi style).
    pub fn star_normalized(name: &str, ndim: usize, radius: usize) -> Kernel {
        let center_w = 0.5;
        let others = 2 * ndim * radius;
        let w = (1.0 - center_w) / others as f64;
        let coeffs: Vec<f64> = std::iter::once(center_w)
            .chain(std::iter::repeat_n(w, radius))
            .collect();
        Kernel::star(name, ndim, radius, &coeffs).expect("normalized star is well-formed")
    }

    /// Box-shaped stencil: all `(2*radius+1)^ndim` points of the
    /// hyper-rectangle. The centre has weight `center_w`; every other
    /// point shares `1 - center_w` equally, so iteration stays stable.
    pub fn boxed(name: &str, ndim: usize, radius: usize, center_w: f64) -> Result<Kernel> {
        if ndim == 0 || ndim > 3 {
            return Err(MscError::InvalidConfig(format!(
                "box kernel `{name}` must be 1D/2D/3D"
            )));
        }
        let side = 2 * radius as i64 + 1;
        let points = (side as usize).pow(ndim as u32);
        let w = (1.0 - center_w) / (points - 1).max(1) as f64;
        let input = "B";
        let mut expr: Option<Expr> = None;
        let mut off = vec![-(radius as i64); ndim];
        loop {
            let coeff = if off.iter().all(|&o| o == 0) {
                center_w
            } else {
                w
            };
            let term = coeff * Expr::at(input, &off);
            expr = Some(match expr {
                Some(e) => e + term,
                None => term,
            });
            // Odometer increment over the box.
            let mut d = ndim;
            loop {
                if d == 0 {
                    return Kernel::new(name, ndim, expr.unwrap());
                }
                d -= 1;
                off[d] += 1;
                if off[d] <= radius as i64 {
                    break;
                }
                off[d] = -(radius as i64);
            }
        }
    }

    /// Number of distinct grid points the kernel reads.
    pub fn points(&self) -> usize {
        self.expr.num_points()
    }

    /// Per-dimension reach (max |offset|).
    pub fn reach(&self) -> Vec<usize> {
        self.expr.reach(self.ndim)
    }

    /// Compile to the linear fast-path form.
    pub fn to_op(&self) -> Result<StencilOp> {
        let taps = self.expr.to_taps()?;
        Ok(StencilOp {
            ndim: self.ndim,
            radius: self.reach(),
            taps,
        })
    }

    /// Mutable access to the schedule, mirroring the paper's
    /// `S_3d7pt.tile(...)` call style.
    pub fn sched(&mut self) -> &mut Schedule {
        &mut self.schedule
    }
}

/// Compiled linear stencil: an explicit tap list the executor and code
/// generator iterate directly (this is what MSC's tensor IR buys over
/// subscript-expression evaluation, §5.5).
#[derive(Debug, Clone, PartialEq)]
pub struct StencilOp {
    pub ndim: usize,
    pub radius: Vec<usize>,
    pub taps: Vec<Tap>,
}

impl StencilOp {
    /// Number of taps (stencil points).
    pub fn points(&self) -> usize {
        self.taps.len()
    }

    /// Sum of coefficients — 1.0 for averaging stencils, useful for
    /// stability checks.
    pub fn coeff_sum(&self) -> f64 {
        self.taps.iter().map(|t| t.coeff).sum()
    }

    /// Arithmetic per point: one multiply per tap plus `taps-1` adds.
    pub fn flops_per_point(&self) -> usize {
        2 * self.taps.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_point_counts_match_paper_benchmarks() {
        // (ndim, radius) -> points, per Table 4.
        assert_eq!(Kernel::star_normalized("s", 2, 2).points(), 9); // 2d9pt_star
        assert_eq!(Kernel::star_normalized("s", 3, 1).points(), 7); // 3d7pt_star
        assert_eq!(Kernel::star_normalized("s", 3, 2).points(), 13); // 3d13pt_star
        assert_eq!(Kernel::star_normalized("s", 3, 4).points(), 25); // 3d25pt_star
        assert_eq!(Kernel::star_normalized("s", 3, 5).points(), 31); // 3d31pt_star
    }

    #[test]
    fn box_point_counts_match_paper_benchmarks() {
        assert_eq!(Kernel::boxed("b", 2, 1, 0.5).unwrap().points(), 9); // 2d9pt_box
        assert_eq!(Kernel::boxed("b", 2, 5, 0.5).unwrap().points(), 121); // 2d121pt_box
        assert_eq!(Kernel::boxed("b", 2, 6, 0.5).unwrap().points(), 169); // 2d169pt_box
    }

    #[test]
    fn reach_equals_radius() {
        let k = Kernel::star_normalized("s", 3, 4);
        assert_eq!(k.reach(), vec![4, 4, 4]);
        let b = Kernel::boxed("b", 2, 6, 0.5).unwrap();
        assert_eq!(b.reach(), vec![6, 6]);
    }

    #[test]
    fn normalized_kernels_have_unit_coeff_sum() {
        for k in [
            Kernel::star_normalized("s", 2, 2),
            Kernel::star_normalized("s", 3, 5),
            Kernel::boxed("b", 2, 5, 0.5).unwrap(),
        ] {
            let op = k.to_op().unwrap();
            assert!((op.coeff_sum() - 1.0).abs() < 1e-12, "{}", op.coeff_sum());
        }
    }

    #[test]
    fn op_taps_equal_points() {
        let k = Kernel::boxed("b", 3, 1, 0.4).unwrap();
        let op = k.to_op().unwrap();
        assert_eq!(op.points(), 27);
        assert_eq!(op.flops_per_point(), 53);
    }

    #[test]
    fn star_rejects_wrong_coeff_count() {
        assert!(Kernel::star("s", 3, 2, &[1.0]).is_err());
    }

    #[test]
    fn kernel_infers_input_tensor() {
        let k = Kernel::star_normalized("s", 3, 1);
        assert_eq!(k.input, "B");
    }

    #[test]
    fn kernel_rejects_mismatched_access_dims() {
        let e = Expr::at("B", &[0, 0]) + Expr::at("B", &[0, 0, 0]);
        assert!(Kernel::new("bad", 2, e).is_err());
    }

    #[test]
    fn kernel_with_no_access_is_rejected() {
        assert!(Kernel::new("bad", 2, Expr::c(1.0)).is_err());
    }
}
