//! Scalar data types supported by the DSL (paper §4.2: `i32`, `f32`, `f64`).

use std::fmt;

/// Scalar element type of a tensor or variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit signed integer.
    I32,
    /// 32-bit IEEE-754 float (single precision).
    F32,
    /// 64-bit IEEE-754 float (double precision).
    F64,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::I32 | DType::F32 => 4,
            DType::F64 => 8,
        }
    }

    /// The C type name used by the AOT code generator.
    pub const fn c_name(self) -> &'static str {
        match self {
            DType::I32 => "int32_t",
            DType::F32 => "float",
            DType::F64 => "double",
        }
    }

    /// Whether the type is a floating-point type.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }

    /// The correctness bound of the paper (§5.1): relative errors of the
    /// generated codes against serial references must stay below this.
    pub const fn paper_error_bound(self) -> f64 {
        match self {
            DType::F32 => 1e-5,
            DType::F64 => 1e-10,
            // Integer stencils must be bit exact.
            DType::I32 => 0.0,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::I32 => "i32",
            DType::F32 => "f32",
            DType::F64 => "f64",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_c_abi() {
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F64.size_bytes(), 8);
    }

    #[test]
    fn c_names() {
        assert_eq!(DType::F64.c_name(), "double");
        assert_eq!(DType::F32.c_name(), "float");
        assert_eq!(DType::I32.c_name(), "int32_t");
    }

    #[test]
    fn float_classification() {
        assert!(DType::F32.is_float());
        assert!(DType::F64.is_float());
        assert!(!DType::I32.is_float());
    }

    #[test]
    fn display_is_lowercase_shorthand() {
        assert_eq!(DType::F64.to_string(), "f64");
        assert_eq!(DType::I32.to_string(), "i32");
    }

    #[test]
    fn error_bounds_follow_paper() {
        assert_eq!(DType::F32.paper_error_bound(), 1e-5);
        assert_eq!(DType::F64.paper_error_bound(), 1e-10);
    }
}
