//! The user-facing DSL: a builder mirroring the paper's Listing 1.
//!
//! ```text
//! DefTensor3D_TimeWin(B, time_window_size, halo_width, f64, 256, 256, 256);
//! Kernel S_3d7pt((k,j,i), c0*B[k,j,i] + ...);
//! Stencil st((i,j), Res[t] << S_3d7pt[t-1] + S_3d7pt[t-2]);
//! DefShapeMPI3D(shape_mpi, 4, 4, 4)
//! st.run(1, 10);
//! ```
//!
//! becomes:
//!
//! ```
//! use msc_core::prelude::*;
//! let program = StencilProgram::builder("3d7pt")
//!     .grid_3d("B", DType::F64, [256, 256, 256], 1, 3)
//!     .kernel(Kernel::star("S_3d7pt", 3, 1, &[0.4, 0.1]).unwrap())
//!     .combine(&[(1, 0.6, "S_3d7pt"), (2, 0.4, "S_3d7pt")])
//!     .mpi_grid(&[4, 4, 4])
//!     .timesteps(10)
//!     .build()
//!     .unwrap();
//! assert_eq!(program.mpi_grid, Some(vec![4, 4, 4]));
//! ```

use crate::dtype::DType;
use crate::error::{MscError, Result};
use crate::kernel::Kernel;
use crate::stencil::{Stencil, TimeTerm};
use crate::tensor::SpNode;

/// A complete, validated stencil program: grid + temporal stencil +
/// large-scale execution parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilProgram {
    pub name: String,
    /// The input/output grid (an `SpNode` with halo and time window).
    pub grid: SpNode,
    /// The temporal stencil over kernels.
    pub stencil: Stencil,
    /// MPI process grid for large-scale runs (`DefShapeMPI2D/3D`).
    pub mpi_grid: Option<Vec<usize>>,
    /// Number of timesteps `st.run(...)` iterates.
    pub timesteps: usize,
}

impl StencilProgram {
    /// Start building a program.
    pub fn builder(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_string(),
            grid: None,
            kernels: Vec::new(),
            terms: Vec::new(),
            mpi_grid: None,
            timesteps: 1,
        }
    }

    /// Total memory footprint of the grid allocation in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.grid.alloc_bytes()
    }
}

/// Builder for [`StencilProgram`]; mirrors the paper's Listing 1 calls.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    grid: Option<SpNode>,
    kernels: Vec<Kernel>,
    terms: Vec<TimeTerm>,
    mpi_grid: Option<Vec<usize>>,
    timesteps: usize,
}

impl ProgramBuilder {
    /// `DefTensor2D_TimeWin(B, win, halo, dt, M, N)`.
    pub fn grid_2d(
        mut self,
        name: &str,
        dtype: DType,
        shape: [usize; 2],
        halo: usize,
        time_window: usize,
    ) -> Self {
        self.grid = SpNode::new(name, dtype, &shape, halo, time_window).ok();
        self
    }

    /// `DefTensor3D_TimeWin(B, win, halo, dt, M, N, P)`.
    pub fn grid_3d(
        mut self,
        name: &str,
        dtype: DType,
        shape: [usize; 3],
        halo: usize,
        time_window: usize,
    ) -> Self {
        self.grid = SpNode::new(name, dtype, &shape, halo, time_window).ok();
        self
    }

    /// Grid of arbitrary dimensionality.
    pub fn grid(mut self, node: SpNode) -> Self {
        self.grid = Some(node);
        self
    }

    /// Register a kernel (`Kernel S_3d7pt(...)`).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernels.push(kernel);
        self
    }

    /// `Res[t] << w1*K1[t-dt1] + w2*K2[t-dt2] + ...`, given as
    /// `(dt, weight, kernel_name)` triples.
    pub fn combine(mut self, terms: &[(usize, f64, &str)]) -> Self {
        self.terms = terms
            .iter()
            .map(|&(dt, weight, kernel)| TimeTerm {
                dt,
                weight,
                kernel: kernel.to_string(),
            })
            .collect();
        self
    }

    /// `DefShapeMPI2D/3D(shape, ...)`.
    pub fn mpi_grid(mut self, shape: &[usize]) -> Self {
        self.mpi_grid = Some(shape.to_vec());
        self
    }

    /// `st.run(1, n)`.
    pub fn timesteps(mut self, n: usize) -> Self {
        self.timesteps = n;
        self
    }

    /// Validate everything and produce the program. Checks:
    /// grid present; kernels present; stencil well-formed; halo wide
    /// enough for the stencil's reach; time window wide enough for the
    /// temporal dependencies; MPI grid dimensionality matches.
    pub fn build(self) -> Result<StencilProgram> {
        self.assemble(true)
    }

    /// Assemble with only structural validation (grid and kernels present,
    /// stencil well-formed, dimensionalities agree). Halo sufficiency and
    /// time-window depth are **not** checked, so a program with a
    /// too-narrow halo or too-shallow window can be constructed and then
    /// diagnosed by `msc-lint` with structured lint codes instead of a
    /// hard build error. Execution entry points re-run the lint gate, so
    /// an unchecked program cannot silently reach the runtime.
    pub fn build_unchecked(self) -> Result<StencilProgram> {
        self.assemble(false)
    }

    fn assemble(self, strict: bool) -> Result<StencilProgram> {
        let grid = self.grid.ok_or(MscError::InvalidConfig(
            "program has no grid tensor (call grid_2d/grid_3d)".into(),
        ))?;
        let terms = if self.terms.is_empty() {
            // Default: single dependency on t-1 through the sole kernel.
            let k = self.kernels.first().ok_or(MscError::InvalidConfig(
                "program defines no kernels".into(),
            ))?;
            vec![TimeTerm {
                dt: 1,
                weight: 1.0,
                kernel: k.name.clone(),
            }]
        } else {
            self.terms
        };
        let stencil = Stencil::new(&self.name, self.kernels, terms)?;
        if stencil.ndim() != grid.ndim() {
            return Err(MscError::DimMismatch {
                expected: grid.ndim(),
                got: stencil.ndim(),
            });
        }
        if strict {
            grid.check_reach(&stencil.reach())?;
            if grid.time_window < stencil.time_window() {
                return Err(MscError::TimeWindowTooSmall {
                    tensor: grid.name.clone(),
                    window: grid.time_window,
                    required: stencil.time_window(),
                });
            }
        }
        if let Some(mpi) = &self.mpi_grid {
            if mpi.len() != grid.ndim() {
                return Err(MscError::DimMismatch {
                    expected: grid.ndim(),
                    got: mpi.len(),
                });
            }
            if mpi.contains(&0) {
                return Err(MscError::InvalidConfig(
                    "MPI grid has a zero dimension".into(),
                ));
            }
        }
        if self.timesteps == 0 {
            return Err(MscError::InvalidConfig(
                "program must run at least one timestep".into(),
            ));
        }
        Ok(StencilProgram {
            name: self.name,
            grid,
            stencil,
            mpi_grid: self.mpi_grid,
            timesteps: self.timesteps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ProgramBuilder {
        StencilProgram::builder("3d7pt")
            .grid_3d("B", DType::F64, [64, 64, 64], 1, 3)
            .kernel(Kernel::star_normalized("S", 3, 1))
            .combine(&[(1, 0.6, "S"), (2, 0.4, "S")])
            .timesteps(10)
    }

    #[test]
    fn listing1_style_program_builds() {
        let p = base().mpi_grid(&[4, 4, 4]).build().unwrap();
        assert_eq!(p.stencil.time_window(), 3);
        assert_eq!(p.grid.padded_shape(), vec![66, 66, 66]);
        assert_eq!(p.timesteps, 10);
    }

    #[test]
    fn missing_grid_rejected() {
        let r = StencilProgram::builder("x")
            .kernel(Kernel::star_normalized("S", 3, 1))
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn missing_kernels_rejected() {
        let r = StencilProgram::builder("x")
            .grid_3d("B", DType::F64, [8, 8, 8], 1, 2)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn halo_too_small_rejected() {
        let r = StencilProgram::builder("x")
            .grid_3d("B", DType::F64, [64, 64, 64], 1, 3)
            .kernel(Kernel::star_normalized("S", 3, 2)) // reach 2, halo 1
            .combine(&[(1, 1.0, "S")])
            .build();
        assert!(matches!(r, Err(MscError::HaloTooSmall { .. })));
    }

    #[test]
    fn window_too_small_rejected() {
        let r = StencilProgram::builder("x")
            .grid_3d("B", DType::F64, [64, 64, 64], 1, 2) // window 2
            .kernel(Kernel::star_normalized("S", 3, 1))
            .combine(&[(1, 0.5, "S"), (2, 0.5, "S")]) // needs 3
            .build();
        assert!(matches!(r, Err(MscError::TimeWindowTooSmall { .. })));
    }

    #[test]
    fn mpi_grid_dim_mismatch_rejected() {
        let r = base().mpi_grid(&[4, 4]).build();
        assert!(matches!(r, Err(MscError::DimMismatch { .. })));
    }

    #[test]
    fn default_term_is_single_t_minus_1() {
        let p = StencilProgram::builder("x")
            .grid_3d("B", DType::F64, [8, 8, 8], 1, 2)
            .kernel(Kernel::star_normalized("S", 3, 1))
            .build()
            .unwrap();
        assert_eq!(p.stencil.terms.len(), 1);
        assert_eq!(p.stencil.terms[0].dt, 1);
    }

    #[test]
    fn zero_timesteps_rejected() {
        assert!(base().timesteps(0).build().is_err());
    }

    #[test]
    fn build_unchecked_admits_narrow_halo_and_shallow_window() {
        let p = StencilProgram::builder("x")
            .grid_3d("B", DType::F64, [64, 64, 64], 1, 2) // halo 1, window 2
            .kernel(Kernel::star_normalized("S", 3, 2)) // reach 2
            .combine(&[(1, 0.5, "S"), (2, 0.5, "S")]) // needs window 3
            .build_unchecked()
            .unwrap();
        assert_eq!(p.grid.halo, vec![1, 1, 1]);
        assert_eq!(p.grid.time_window, 2);
    }

    #[test]
    fn build_unchecked_still_rejects_structural_errors() {
        let r = StencilProgram::builder("x")
            .grid_3d("B", DType::F64, [8, 8, 8], 1, 2)
            .build_unchecked();
        assert!(r.is_err()); // no kernels
        let r = StencilProgram::builder("x")
            .grid_3d("B", DType::F64, [64, 64, 64], 1, 3)
            .kernel(Kernel::star_normalized("S", 3, 1))
            .mpi_grid(&[4, 4])
            .build_unchecked();
        assert!(matches!(r, Err(MscError::DimMismatch { .. })));
    }

    #[test]
    fn footprint_matches_alloc() {
        let p = base().build().unwrap();
        assert_eq!(p.footprint_bytes(), 66 * 66 * 66 * 3 * 8);
    }
}
