//! # msc-core — the MSC stencil DSL and intermediate representation
//!
//! This crate implements the paper's primary contribution: a stencil DSL
//! that expresses stencil computation in **both spatial and temporal
//! dimensions**, a single-level IR embedded in the program tree, and the
//! schedule primitives (`tile`, `reorder`, `parallel`, `cache_read`,
//! `cache_write`, `compute_at`) that rewrite the IR ahead of code
//! generation.
//!
//! The layering follows the paper (§3, Figure 3):
//!
//! * **Frontend** — [`dsl`] and the IR types in [`expr`], [`axis`],
//!   [`tensor`], [`kernel`], [`stencil`]. A [`kernel::Kernel`] is one
//!   spatial sweep (e.g. a 3D Laplacian); a [`stencil::Stencil`] combines
//!   kernels evaluated at several previous timesteps
//!   (`Res[t] << S[t-1] + S[t-2]`).
//! * **Schedules** — [`schedule`] holds the optimization primitives and
//!   lowers a scheduled kernel to a loop nest / execution plan shared by
//!   the code generator (`msc-codegen`), the functional executor
//!   (`msc-exec`), and the timing simulator (`msc-sim`).
//! * **Catalog & analysis** — [`catalog`] generates every benchmark of the
//!   paper's Table 4 (and arbitrary-radius star/box stencils);
//!   [`analysis`] derives per-point memory traffic and flop counts.
//!
//! ```
//! use msc_core::prelude::*;
//!
//! // 3d7pt star stencil on a 64^3 grid with two time dependencies,
//! // mirroring Listing 1 of the paper.
//! let program = StencilProgram::builder("3d7pt")
//!     .grid_3d("B", DType::F64, [64, 64, 64], 1, 3)
//!     .kernel(Kernel::star("S_3d7pt", 3, 1, &[0.4, 0.1]).unwrap())
//!     .combine(&[(1, 0.6, "S_3d7pt"), (2, 0.4, "S_3d7pt")])
//!     .build()
//!     .unwrap();
//! assert_eq!(program.stencil.time_window(), 3);
//! ```

pub mod analysis;
pub mod axis;
pub mod catalog;
pub mod dsl;
pub mod dtype;
pub mod error;
pub mod expr;
pub mod footprint;
pub mod kernel;
pub mod parse;
pub mod schedule;
pub mod stencil;
pub mod tensor;

pub mod prelude {
    //! Convenience re-exports for DSL users.
    pub use crate::analysis::{KernelStats, StencilStats};
    pub use crate::axis::Axis;
    pub use crate::catalog::{all_benchmarks, Benchmark, BenchmarkId};
    pub use crate::dsl::{ProgramBuilder, StencilProgram};
    pub use crate::dtype::DType;
    pub use crate::error::MscError;
    pub use crate::expr::{Expr, Tap, VarCoeff, VarTap};
    pub use crate::footprint::{Footprint, SlotFootprint};
    pub use crate::kernel::{Kernel, StencilOp};
    pub use crate::parse::{parse, parse_unchecked, ParsedProgram};
    pub use crate::schedule::{ExecPlan, Schedule};
    pub use crate::stencil::{Stencil, TimeTerm};
    pub use crate::tensor::{SpNode, TeNode, TensorDecl};
}

pub use prelude::*;
