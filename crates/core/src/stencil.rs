//! `Stencil` IR node: a stencil with **multiple time dependencies**,
//! composed of kernels applied to the grid state at several previous
//! timesteps (paper §4.2):
//!
//! ```text
//! Stencil st((i,j), Res[t] << S_3d7pt[t-1] + S_3d7pt[t-2]);
//! ```
//!
//! is modelled as `Res[t] = Σ_d weight_d · K_d(U[t - dt_d])`.

use crate::error::{MscError, Result};
use crate::kernel::Kernel;

/// One temporal term: apply `kernel` to the state `dt` steps back,
/// scaled by `weight`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeTerm {
    /// Temporal dependency distance, ≥ 1.
    pub dt: usize,
    /// Scale applied to the kernel output.
    pub weight: f64,
    /// Name of the kernel (resolved against [`Stencil::kernels`]).
    pub kernel: String,
}

/// A stencil computation along the time dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Stencil {
    pub name: String,
    /// The kernels this stencil may reference.
    pub kernels: Vec<Kernel>,
    /// Temporal combination, ordered by `dt`.
    pub terms: Vec<TimeTerm>,
}

impl Stencil {
    /// Build and validate a stencil. Terms must reference declared kernels,
    /// have `dt ≥ 1`, and all kernels must agree on dimensionality.
    pub fn new(name: &str, kernels: Vec<Kernel>, mut terms: Vec<TimeTerm>) -> Result<Stencil> {
        if kernels.is_empty() {
            return Err(MscError::InvalidConfig(format!(
                "stencil `{name}` declares no kernels"
            )));
        }
        if terms.is_empty() {
            return Err(MscError::InvalidConfig(format!(
                "stencil `{name}` has no time terms"
            )));
        }
        let ndim = kernels[0].ndim;
        for k in &kernels {
            if k.ndim != ndim {
                return Err(MscError::DimMismatch {
                    expected: ndim,
                    got: k.ndim,
                });
            }
        }
        for t in &terms {
            if t.dt == 0 {
                return Err(MscError::InvalidConfig(format!(
                    "stencil `{name}`: time term must depend on a previous step (dt >= 1)"
                )));
            }
            if !kernels.iter().any(|k| k.name == t.kernel) {
                return Err(MscError::Undefined {
                    kind: "kernel",
                    name: t.kernel.clone(),
                });
            }
        }
        terms.sort_by_key(|t| t.dt);
        Ok(Stencil {
            name: name.to_string(),
            kernels,
            terms,
        })
    }

    /// Convenience constructor for the common case of one kernel applied
    /// at several past timesteps.
    pub fn from_kernel(name: &str, kernel: Kernel, weighted_deps: &[(usize, f64)]) -> Result<Stencil> {
        let kname = kernel.name.clone();
        let terms = weighted_deps
            .iter()
            .map(|&(dt, weight)| TimeTerm {
                dt,
                weight,
                kernel: kname.clone(),
            })
            .collect();
        Stencil::new(name, vec![kernel], terms)
    }

    /// Spatial dimensionality.
    pub fn ndim(&self) -> usize {
        self.kernels[0].ndim
    }

    /// Number of distinct temporal dependencies (paper Table 4
    /// "Time Dep." column).
    pub fn time_deps(&self) -> usize {
        let mut dts: Vec<usize> = self.terms.iter().map(|t| t.dt).collect();
        dts.dedup();
        dts.len()
    }

    /// Maximum dependency distance.
    pub fn max_dt(&self) -> usize {
        self.terms.iter().map(|t| t.dt).max().unwrap_or(1)
    }

    /// Required sliding-time-window width: the stencil at time `t` needs
    /// states `t-1 .. t-max_dt` plus the output slot (paper Figure 5: two
    /// dependencies → window of three).
    pub fn time_window(&self) -> usize {
        self.max_dt() + 1
    }

    /// Look up a kernel by name.
    pub fn kernel(&self, name: &str) -> Result<&Kernel> {
        self.kernels
            .iter()
            .find(|k| k.name == name)
            .ok_or_else(|| MscError::Undefined {
                kind: "kernel",
                name: name.to_string(),
            })
    }

    /// Per-dimension reach over all kernels (for halo sizing).
    pub fn reach(&self) -> Vec<usize> {
        let ndim = self.ndim();
        let mut reach = vec![0usize; ndim];
        for k in &self.kernels {
            for (d, r) in k.reach().into_iter().enumerate() {
                reach[d] = reach[d].max(r);
            }
        }
        reach
    }

    /// Sum over terms of `weight · Σ kernel coeffs` — 1.0 keeps iterates
    /// bounded for averaging kernels.
    pub fn stability_sum(&self) -> Result<f64> {
        let mut s = 0.0;
        for t in &self.terms {
            let op = self.kernel(&t.kernel)?.to_op()?;
            s += t.weight * op.coeff_sum();
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_dep() -> Stencil {
        Stencil::from_kernel(
            "st",
            Kernel::star_normalized("S", 3, 1),
            &[(1, 0.6), (2, 0.4)],
        )
        .unwrap()
    }

    #[test]
    fn window_is_max_dt_plus_one() {
        let st = two_dep();
        assert_eq!(st.max_dt(), 2);
        assert_eq!(st.time_window(), 3);
        assert_eq!(st.time_deps(), 2);
    }

    #[test]
    fn terms_are_sorted_by_dt() {
        let st = Stencil::from_kernel(
            "st",
            Kernel::star_normalized("S", 2, 1),
            &[(3, 0.1), (1, 0.9)],
        )
        .unwrap();
        assert_eq!(st.terms[0].dt, 1);
        assert_eq!(st.terms[1].dt, 3);
    }

    #[test]
    fn rejects_dt_zero() {
        let r = Stencil::from_kernel("st", Kernel::star_normalized("S", 2, 1), &[(0, 1.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_unknown_kernel() {
        let k = Kernel::star_normalized("S", 2, 1);
        let r = Stencil::new(
            "st",
            vec![k],
            vec![TimeTerm {
                dt: 1,
                weight: 1.0,
                kernel: "missing".into(),
            }],
        );
        assert!(matches!(r, Err(MscError::Undefined { .. })));
    }

    #[test]
    fn rejects_empty() {
        assert!(Stencil::new("st", vec![], vec![]).is_err());
        let k = Kernel::star_normalized("S", 2, 1);
        assert!(Stencil::new("st", vec![k], vec![]).is_err());
    }

    #[test]
    fn rejects_mixed_dims() {
        let k2 = Kernel::star_normalized("A", 2, 1);
        let k3 = Kernel::star_normalized("B3", 3, 1);
        let r = Stencil::new(
            "st",
            vec![k2, k3],
            vec![TimeTerm {
                dt: 1,
                weight: 1.0,
                kernel: "A".into(),
            }],
        );
        assert!(matches!(r, Err(MscError::DimMismatch { .. })));
    }

    #[test]
    fn stability_of_convex_combination() {
        let st = two_dep();
        assert!((st.stability_sum().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reach_is_max_over_kernels() {
        let k1 = Kernel::star_normalized("A", 2, 1);
        let k2 = Kernel::star_normalized("B2", 2, 3);
        let st = Stencil::new(
            "st",
            vec![k1, k2],
            vec![
                TimeTerm {
                    dt: 1,
                    weight: 0.5,
                    kernel: "A".into(),
                },
                TimeTerm {
                    dt: 2,
                    weight: 0.5,
                    kernel: "B2".into(),
                },
            ],
        )
        .unwrap();
        assert_eq!(st.reach(), vec![3, 3]);
    }
}
