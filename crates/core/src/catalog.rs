//! Benchmark catalog: the eight stencils of the paper's Table 4, plus
//! generators for arbitrary star/box stencils.

use crate::dsl::StencilProgram;
use crate::dtype::DType;
use crate::error::Result;
use crate::kernel::Kernel;

/// Stencil shape class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Points along the axes only.
    Star,
    /// The full hyper-rectangle.
    Box,
}

/// The eight benchmarks of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    S2d9ptStar,
    S2d9ptBox,
    S2d121ptBox,
    S2d169ptBox,
    S3d7ptStar,
    S3d13ptStar,
    S3d25ptStar,
    S3d31ptStar,
}

/// The paper's Table 4 row for a benchmark (fp64 figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table4Row {
    pub read_bytes: usize,
    pub write_bytes: usize,
    /// "Ops(+-x)" as printed in the paper. See [`Benchmark::ir_ops`] for
    /// the count our IR derives (one multiply per tap, taps−1 adds); the
    /// paper's kernels use algebraic factorings we don't replicate
    /// coefficient-for-coefficient, so both are reported by the Table 4
    /// harness.
    pub ops: usize,
    pub time_deps: usize,
}

/// A catalogued stencil benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    pub id: BenchmarkId,
    pub name: &'static str,
    pub ndim: usize,
    pub radius: usize,
    pub shape: Shape,
    pub paper: Table4Row,
}

impl BenchmarkId {
    pub fn all() -> [BenchmarkId; 8] {
        use BenchmarkId::*;
        [
            S2d9ptStar,
            S2d9ptBox,
            S2d121ptBox,
            S2d169ptBox,
            S3d7ptStar,
            S3d13ptStar,
            S3d25ptStar,
            S3d31ptStar,
        ]
    }

    /// Look up by the paper's benchmark name (e.g. `"3d7pt_star"`).
    pub fn by_name(name: &str) -> Option<BenchmarkId> {
        BenchmarkId::all()
            .into_iter()
            .find(|id| benchmark(*id).name == name)
    }
}

/// Fetch the catalog entry of a benchmark.
pub fn benchmark(id: BenchmarkId) -> Benchmark {
    use BenchmarkId::*;
    // read/write bytes are fp64: points * 8 read, 8 written (Table 4).
    let (name, ndim, radius, shape, ops) = match id {
        S2d9ptStar => ("2d9pt_star", 2, 2, Shape::Star, 17),
        S2d9ptBox => ("2d9pt_box", 2, 1, Shape::Box, 17),
        S2d121ptBox => ("2d121pt_box", 2, 5, Shape::Box, 231),
        S2d169ptBox => ("2d169pt_box", 2, 6, Shape::Box, 325),
        S3d7ptStar => ("3d7pt_star", 3, 1, Shape::Star, 13),
        S3d13ptStar => ("3d13pt_star", 3, 2, Shape::Star, 17),
        S3d25ptStar => ("3d25pt_star", 3, 4, Shape::Star, 41),
        S3d31ptStar => ("3d31pt_star", 3, 5, Shape::Star, 50),
    };
    let points = points_of(ndim, radius, shape);
    Benchmark {
        id,
        name,
        ndim,
        radius,
        shape,
        paper: Table4Row {
            read_bytes: points * 8,
            write_bytes: 8,
            ops,
            time_deps: 2,
        },
    }
}

/// Number of points of a star/box stencil.
pub fn points_of(ndim: usize, radius: usize, shape: Shape) -> usize {
    match shape {
        Shape::Star => 1 + 2 * ndim * radius,
        Shape::Box => (2 * radius + 1).pow(ndim as u32),
    }
}

impl Benchmark {
    /// Number of stencil points.
    pub fn points(&self) -> usize {
        points_of(self.ndim, self.radius, self.shape)
    }

    /// Build the spatial kernel with stable normalized coefficients.
    pub fn kernel(&self) -> Kernel {
        match self.shape {
            Shape::Star => Kernel::star_normalized(self.name, self.ndim, self.radius),
            Shape::Box => {
                Kernel::boxed(self.name, self.ndim, self.radius, 0.5).expect("catalog box kernel")
            }
        }
    }

    /// Ops the IR actually performs per point: one multiply per tap plus
    /// `points-1` adds.
    pub fn ir_ops(&self) -> usize {
        2 * self.points() - 1
    }

    /// The paper's single-processor grid (Table 5): 4096² for 2D
    /// (matching the 3D point count), 256³ for 3D.
    pub fn default_grid(&self) -> Vec<usize> {
        match self.ndim {
            2 => vec![4096, 4096],
            _ => vec![256, 256, 256],
        }
    }

    /// A scaled-down grid for fast functional tests (same aspect ratio).
    pub fn test_grid(&self) -> Vec<usize> {
        match self.ndim {
            2 => vec![64, 64],
            _ => vec![24, 24, 24],
        }
    }

    /// Build the full two-time-dependency program of the paper
    /// (`Res[t] << 0.6*K[t-1] + 0.4*K[t-2]`) on the given grid.
    pub fn program(&self, grid: &[usize], dtype: DType, timesteps: usize) -> Result<StencilProgram> {
        let mut b = StencilProgram::builder(self.name).kernel(self.kernel()).combine(&[
            (1, 0.6, self.name),
            (2, 0.4, self.name),
        ]);
        b = match grid.len() {
            2 => b.grid_2d("B", dtype, [grid[0], grid[1]], self.radius, 3),
            _ => b.grid_3d("B", dtype, [grid[0], grid[1], grid[2]], self.radius, 3),
        };
        b.timesteps(timesteps).build()
    }
}

/// All eight catalog entries, in Table 4 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    BenchmarkId::all().into_iter().map(benchmark).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_read_write_bytes_match_paper() {
        let expect: [(&str, usize, usize); 8] = [
            ("2d9pt_star", 72, 8),
            ("2d9pt_box", 72, 8),
            ("2d121pt_box", 968, 8),
            ("2d169pt_box", 1352, 8),
            ("3d7pt_star", 56, 8),
            ("3d13pt_star", 104, 8),
            ("3d25pt_star", 200, 8),
            ("3d31pt_star", 248, 8),
        ];
        for ((name, read, write), b) in expect.iter().zip(all_benchmarks()) {
            assert_eq!(b.name, *name);
            assert_eq!(b.paper.read_bytes, *read, "{name} read bytes");
            assert_eq!(b.paper.write_bytes, *write, "{name} write bytes");
            assert_eq!(b.paper.time_deps, 2, "{name} time deps");
        }
    }

    #[test]
    fn kernel_points_match_names() {
        for b in all_benchmarks() {
            let n: usize = b
                .name
                .split(|c: char| !c.is_ascii_digit())
                .filter(|s| !s.is_empty())
                .nth(1)
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(b.points(), n, "{}", b.name);
            assert_eq!(b.kernel().points(), n, "{}", b.name);
        }
    }

    #[test]
    fn read_bytes_derivable_from_ir() {
        for b in all_benchmarks() {
            assert_eq!(b.kernel().points() * 8, b.paper.read_bytes, "{}", b.name);
        }
    }

    #[test]
    fn programs_build_on_default_and_test_grids() {
        for b in all_benchmarks() {
            b.program(&b.default_grid(), DType::F64, 10)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            b.program(&b.test_grid(), DType::F32, 4)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            BenchmarkId::by_name("3d13pt_star"),
            Some(BenchmarkId::S3d13ptStar)
        );
        assert_eq!(BenchmarkId::by_name("nope"), None);
    }

    #[test]
    fn two_d_grids_match_3d_point_count() {
        // Paper §5.2: 4096^2 == 256^3.
        assert_eq!(4096usize * 4096, 256usize * 256 * 256);
    }

    #[test]
    fn ir_ops_are_2p_minus_1() {
        let b = benchmark(BenchmarkId::S3d7ptStar);
        assert_eq!(b.ir_ops(), 13); // here the paper's count coincides
        let b = benchmark(BenchmarkId::S2d121ptBox);
        assert_eq!(b.ir_ops(), 241); // paper prints 231 (factored form)
    }
}
