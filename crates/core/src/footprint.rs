//! Footprint inference: the static access-set analysis behind the lint
//! pipeline (`msc-lint`) and the traffic statistics in [`crate::analysis`].
//!
//! Walking a kernel's expression tree yields, for every *slot* — a
//! `(tensor, time)` pair — the per-axis min/max offset box and the set of
//! distinct offsets read. This replaces the point-count-only view the
//! analysis layer used to hold: the box is asymmetric (`lo..hi` per
//! axis, both inclusive), so halo sufficiency, SPM buffer sizing and
//! decomposition limits can all be *proved* from the IR rather than
//! re-derived ad hoc. Devito and the xDSL stencil stack derive the same
//! object ("access footprint") to validate halo and parallelization
//! legality; this is our single-level-IR equivalent.
//!
//! Two granularities share the representation:
//!
//! * [`Footprint::of_kernel`] keys slots by `time_back` *within* one
//!   kernel sweep (0 = the sweep's input state).
//! * [`Footprint::of_stencil`] keys slots by the **absolute** temporal
//!   distance `term.dt + access.time_back` from the output state, so
//!   reads of the same grid point through two syntactic paths (two
//!   terms, two kernels) land in one slot and are counted once.

use crate::error::Result;
use crate::expr::Expr;
use crate::kernel::Kernel;
use crate::stencil::Stencil;
use std::collections::{BTreeMap, BTreeSet};

/// The inferred access set of one `(tensor, time)` slot: an inclusive
/// per-axis offset interval plus the exact set of distinct offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotFootprint {
    pub tensor: String,
    /// Timesteps back from the state the footprint is relative to
    /// (kernel level: `time_back`; stencil level: `dt + time_back`).
    pub time: usize,
    /// Per-axis minimum offset (inclusive), outermost dimension first.
    pub lo: Vec<i64>,
    /// Per-axis maximum offset (inclusive).
    pub hi: Vec<i64>,
    /// Every distinct offset vector read from this slot.
    pub offsets: BTreeSet<Vec<i64>>,
}

impl SlotFootprint {
    fn new(tensor: &str, time: usize, first: &[i64]) -> SlotFootprint {
        SlotFootprint {
            tensor: tensor.to_string(),
            time,
            lo: first.to_vec(),
            hi: first.to_vec(),
            offsets: BTreeSet::from([first.to_vec()]),
        }
    }

    fn include(&mut self, off: &[i64]) {
        for (d, &o) in off.iter().enumerate() {
            self.lo[d] = self.lo[d].min(o);
            self.hi[d] = self.hi[d].max(o);
        }
        self.offsets.insert(off.to_vec());
    }

    /// Distinct points read from this slot.
    pub fn points(&self) -> usize {
        self.offsets.len()
    }

    /// Per-axis extent of the bounding box (`hi - lo + 1`).
    pub fn extent(&self) -> Vec<usize> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| (h - l + 1) as usize)
            .collect()
    }

    /// Symmetric halo width needed per axis: the larger of how far the
    /// box reaches below zero and above zero.
    pub fn required_halo(&self) -> Vec<usize> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| ((-l).max(0).max(h.max(0))) as usize)
            .collect()
    }
}

/// The full inferred footprint of a kernel or stencil: one
/// [`SlotFootprint`] per `(tensor, time)` slot, in canonical order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    pub ndim: usize,
    slots: BTreeMap<(String, usize), SlotFootprint>,
}

impl Footprint {
    fn empty(ndim: usize) -> Footprint {
        Footprint {
            ndim,
            slots: BTreeMap::new(),
        }
    }

    fn record(&mut self, tensor: &str, time: usize, off: &[i64]) {
        self.slots
            .entry((tensor.to_string(), time))
            .and_modify(|s| s.include(off))
            .or_insert_with(|| SlotFootprint::new(tensor, time, off));
    }

    /// Infer the footprint of an expression, keyed by `time_back`.
    pub fn of_expr(expr: &Expr, ndim: usize) -> Footprint {
        let mut fp = Footprint::empty(ndim);
        for a in expr.accesses() {
            fp.record(&a.tensor, a.time_back, &a.offsets);
        }
        fp
    }

    /// Infer the footprint of one kernel sweep.
    pub fn of_kernel(kernel: &Kernel) -> Footprint {
        Footprint::of_expr(&kernel.expr, kernel.ndim)
    }

    /// Infer the footprint of a full temporal stencil step, keyed by the
    /// absolute temporal distance `term.dt + access.time_back` from the
    /// output state. Reads of the same `(tensor, time, offset)` through
    /// different terms or kernels are merged — this is the dedupe the
    /// analysis layer relies on.
    pub fn of_stencil(stencil: &Stencil) -> Result<Footprint> {
        let mut fp = Footprint::empty(stencil.ndim());
        for term in &stencil.terms {
            let k = stencil.kernel(&term.kernel)?;
            for a in k.expr.accesses() {
                fp.record(&a.tensor, term.dt + a.time_back, &a.offsets);
            }
        }
        Ok(fp)
    }

    /// Iterate the slots in canonical `(tensor, time)` order.
    pub fn slots(&self) -> impl Iterator<Item = &SlotFootprint> {
        self.slots.values()
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Look up one slot.
    pub fn slot(&self, tensor: &str, time: usize) -> Option<&SlotFootprint> {
        self.slots.get(&(tensor.to_string(), time))
    }

    /// Total distinct `(tensor, time, offset)` points read.
    pub fn distinct_points(&self) -> usize {
        self.slots.values().map(|s| s.points()).sum()
    }

    /// Symmetric per-axis halo requirement over all slots.
    pub fn required_halo(&self) -> Vec<usize> {
        let mut halo = vec![0usize; self.ndim];
        for s in self.slots.values() {
            for (d, r) in s.required_halo().into_iter().enumerate() {
                halo[d] = halo[d].max(r);
            }
        }
        halo
    }

    /// Per-axis minimum offset over all slots (most negative reach).
    /// Unlike [`Footprint::required_halo`] this is the true extreme of
    /// the read set — a one-sided kernel reports a positive `lo`.
    pub fn lo(&self) -> Vec<i64> {
        let mut lo: Option<Vec<i64>> = None;
        for s in self.slots.values() {
            let acc = lo.get_or_insert_with(|| s.lo.clone());
            for (d, &l) in s.lo.iter().enumerate() {
                acc[d] = acc[d].min(l);
            }
        }
        lo.unwrap_or_else(|| vec![0; self.ndim])
    }

    /// Per-axis maximum offset over all slots (true extreme, like
    /// [`Footprint::lo`]).
    pub fn hi(&self) -> Vec<i64> {
        let mut hi: Option<Vec<i64>> = None;
        for s in self.slots.values() {
            let acc = hi.get_or_insert_with(|| s.hi.clone());
            for (d, &h) in s.hi.iter().enumerate() {
                acc[d] = acc[d].max(h);
            }
        }
        hi.unwrap_or_else(|| vec![0; self.ndim])
    }

    /// Deepest temporal reach (0 for an empty footprint). At stencil
    /// level this is the absolute `max(dt + time_back)`.
    pub fn max_time(&self) -> usize {
        self.slots.keys().map(|(_, t)| *t).max().unwrap_or(0)
    }

    /// Sliding-window depth a stencil-level footprint requires: every
    /// read state plus the output slot.
    pub fn required_window(&self) -> usize {
        self.max_time() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::TimeTerm;

    fn asym() -> Expr {
        // B[-3,0] + B[1,2] + B[0,0]: lo (-3,0) hi (1,2).
        Expr::at("B", &[-3, 0]) + Expr::at("B", &[1, 2]) + Expr::at("B", &[0, 0])
    }

    #[test]
    fn expr_box_is_asymmetric() {
        let fp = Footprint::of_expr(&asym(), 2);
        let s = fp.slot("B", 0).unwrap();
        assert_eq!(s.lo, vec![-3, 0]);
        assert_eq!(s.hi, vec![1, 2]);
        assert_eq!(s.extent(), vec![5, 3]);
        assert_eq!(s.points(), 3);
        assert_eq!(fp.required_halo(), vec![3, 2]);
    }

    #[test]
    fn duplicate_syntactic_paths_count_once() {
        let e = Expr::at("B", &[1]) + 2.0 * Expr::at("B", &[1]) + Expr::at("B", &[0]);
        let fp = Footprint::of_expr(&e, 1);
        assert_eq!(fp.distinct_points(), 2);
    }

    #[test]
    fn time_levels_get_separate_slots() {
        let e = Expr::at_time("B", &[0], 0) + Expr::at_time("B", &[0], 1);
        let fp = Footprint::of_expr(&e, 1);
        assert_eq!(fp.num_slots(), 2);
        assert_eq!(fp.max_time(), 1);
    }

    #[test]
    fn kernel_footprint_matches_reach() {
        let k = Kernel::star_normalized("s", 3, 2);
        let fp = Footprint::of_kernel(&k);
        assert_eq!(fp.required_halo(), k.reach());
        assert_eq!(fp.distinct_points(), k.points());
    }

    #[test]
    fn stencil_slots_keyed_by_absolute_dt() {
        let st = Stencil::from_kernel(
            "st",
            Kernel::star_normalized("S", 2, 1),
            &[(1, 0.6), (2, 0.4)],
        )
        .unwrap();
        let fp = Footprint::of_stencil(&st).unwrap();
        assert_eq!(fp.num_slots(), 2);
        assert_eq!(fp.slot("B", 1).unwrap().points(), 5);
        assert_eq!(fp.slot("B", 2).unwrap().points(), 5);
        assert_eq!(fp.distinct_points(), 10);
        assert_eq!(fp.required_window(), 3);
    }

    #[test]
    fn same_dt_terms_merge_overlapping_reads() {
        // Two kernels both reading B[t-1]: their shared points dedupe.
        let k1 = Kernel::new("a", 1, Expr::at("B", &[0]) + Expr::at("B", &[1])).unwrap();
        let k2 = Kernel::new("b", 1, Expr::at("B", &[1]) + Expr::at("B", &[2])).unwrap();
        let st = Stencil::new(
            "st",
            vec![k1, k2],
            vec![
                TimeTerm {
                    dt: 1,
                    weight: 0.5,
                    kernel: "a".into(),
                },
                TimeTerm {
                    dt: 1,
                    weight: 0.5,
                    kernel: "b".into(),
                },
            ],
        )
        .unwrap();
        let fp = Footprint::of_stencil(&st).unwrap();
        assert_eq!(fp.distinct_points(), 3); // {0,1,2}, not 4
        assert_eq!(fp.slot("B", 1).unwrap().hi, vec![2]);
    }

    #[test]
    fn time_back_deepens_the_stencil_window() {
        // A kernel reading its input state one extra step back pushes the
        // absolute reach beyond max_dt.
        let k = Kernel::new(
            "a",
            1,
            Expr::at("B", &[0]) + Expr::at_time("B", &[0], 1),
        )
        .unwrap();
        let st = Stencil::from_kernel("st", k, &[(1, 1.0)]).unwrap();
        let fp = Footprint::of_stencil(&st).unwrap();
        assert_eq!(fp.max_time(), 2);
        assert_eq!(fp.required_window(), 3);
    }

    #[test]
    fn empty_offsets_have_zero_halo() {
        let e = Expr::at("B", &[0, 0, 0]);
        let fp = Footprint::of_expr(&e, 3);
        assert_eq!(fp.required_halo(), vec![0, 0, 0]);
        assert_eq!(fp.lo(), vec![0, 0, 0]);
        assert_eq!(fp.hi(), vec![0, 0, 0]);
    }
}
