//! # msc-codegen — ahead-of-time C code generation
//!
//! MSC compiles stencil programs to standard C plus build scripts
//! (paper §3: Sunway offers no JIT, so the backend is strictly AOT). The
//! generator walks the same lowered [`msc_core::ExecPlan`] the executor
//! and simulator consume, so the emitted C cannot diverge semantically
//! from what the rest of the system measures.
//!
//! Targets:
//! * [`cpu`] — portable OpenMP C (the Matrix / Xeon path). This output is
//!   genuinely compilable: the test suite builds it with the host `cc`
//!   and checks its checksum against the functional executor.
//! * [`sunway`] — athread master/slave pair with SPM buffers and
//!   `dma_get`/`dma_put` staging (paper Figure 4(d)/(e)).
//! * [`mpi`] — the large-scale variant: domain decomposition plus
//!   asynchronous pack/isend/irecv/unpack halo exchange around the
//!   kernel (paper §4.4).
//! * [`makefile`] — per-target build scripts.
//!
//! [`loc`] accounts generated and DSL lines of code (Table 6).

pub mod cpu;
pub mod ir_to_c;
pub mod loc;
pub mod makefile;
pub mod mpi;
pub mod package;
pub mod sunway;
pub mod varcoeff_c;

pub use loc::{dsl_loc, LocReport};
pub use package::CodePackage;

use msc_core::error::Result;
use msc_core::prelude::*;
use msc_core::schedule::Target;

/// Generate the full source package of a program for a target — the
/// library entry point (paper Listing 1: `compile_to_source_code`).
pub fn compile_to_source(program: &StencilProgram, target: Target) -> Result<CodePackage> {
    // The lint gate: footprint/halo, window, race and capacity defects
    // refuse codegen instead of becoming wrong generated C.
    msc_lint::check_deny(program, Some(target))?;
    let mut pkg = CodePackage::new(&program.name, target);
    match target {
        Target::SunwayCG => {
            let (master, slave) = sunway::generate(program)?;
            pkg.add_file("master.c", master);
            pkg.add_file("slave.c", slave);
        }
        Target::Matrix | Target::Cpu => {
            pkg.add_file("main.c", cpu::generate(program, target)?);
        }
    }
    if program.mpi_grid.is_some() {
        pkg.add_file("mpi_main.c", mpi::generate(program, target)?);
    }
    pkg.add_file("Makefile", makefile::generate(program, target));
    Ok(pkg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_core::catalog::{benchmark, BenchmarkId};

    #[test]
    fn package_contains_target_files() {
        let b = benchmark(BenchmarkId::S3d7ptStar);
        let mut p = b.program(&[32, 32, 32], DType::F64, 4).unwrap();
        p.mpi_grid = Some(vec![2, 2, 2]);

        let sun = compile_to_source(&p, Target::SunwayCG).unwrap();
        assert!(sun.file("master.c").is_some());
        assert!(sun.file("slave.c").is_some());
        assert!(sun.file("Makefile").is_some());
        assert!(sun.file("mpi_main.c").is_some());

        let cpu = compile_to_source(&p, Target::Cpu).unwrap();
        assert!(cpu.file("main.c").is_some());
    }
}
