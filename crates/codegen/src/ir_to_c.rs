//! Shared IR→C helpers: layout constants, tap rendering, and the kernel
//! update expression (MSC's tensor IR emits *direct* linear indexing,
//! the design point the paper credits for beating Halide-AOT on
//! high-order stencils, §5.5).


use msc_core::error::Result;
use msc_core::prelude::*;

/// Padded layout of the program's grid: shapes, strides, window.
#[derive(Debug, Clone)]
pub struct Layout {
    pub ndim: usize,
    pub shape: Vec<usize>,
    pub halo: Vec<usize>,
    pub padded: Vec<usize>,
    pub strides: Vec<usize>,
    pub window: usize,
    pub elem_c: &'static str,
}

impl Layout {
    pub fn of(program: &StencilProgram) -> Layout {
        let g = &program.grid;
        let padded: Vec<usize> = g.padded_shape();
        let mut strides = vec![1usize; padded.len()];
        for d in (0..padded.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * padded[d + 1];
        }
        Layout {
            ndim: g.ndim(),
            shape: g.shape.clone(),
            halo: g.halo.clone(),
            padded,
            strides,
            window: program.stencil.time_window(),
            elem_c: g.dtype.c_name(),
        }
    }

    /// Total padded elements of one state buffer.
    pub fn padded_len(&self) -> usize {
        self.padded.iter().product()
    }

    /// `#define` block with the layout constants.
    #[allow(clippy::needless_range_loop)] // dimension loop indexes several parallel arrays
    pub fn defines(&self) -> String {
        let mut s = String::new();
        let names = ["X", "Y", "Z"];
        for d in 0..self.ndim {
            s += &format!("#define N{} {}\n", names[d], self.shape[d]);
            s += &format!("#define H{} {}\n", names[d], self.halo[d]);
            s += &format!("#define P{} {}\n", names[d], self.padded[d]);
            s += &format!("#define S{} {}\n", names[d], self.strides[d]);
        }
        s += &format!("#define WINDOW {}\n", self.window);
        s += &format!("#define PADDED_LEN {}\n", self.padded_len());
        s
    }

    /// C expression for the linear index of interior point
    /// `(x, y, z)` (variables named by dimension).
    pub fn idx_expr(&self) -> String {
        let vars = ["x", "y", "z"];
        let parts: Vec<String> = (0..self.ndim)
            .map(|d| format!("({} + H{}) * S{}", vars[d], ["X", "Y", "Z"][d], ["X", "Y", "Z"][d]))
            .collect();
        parts.join(" + ")
    }
}

/// Render one temporal term's weighted tap sum over input `in_name`
/// at linear index variable `idx`.
pub fn term_expr(
    layout: &Layout,
    kernel: &Kernel,
    weight: f64,
    in_name: &str,
) -> Result<String> {
    let op = kernel.to_op()?;
    let taps: Vec<String> = op
        .taps
        .iter()
        .map(|t| {
            let lin: i64 = t
                .offset
                .iter()
                .zip(&layout.strides)
                .map(|(&o, &s)| o * s as i64)
                .sum();
            let ix = match lin.cmp(&0) {
                std::cmp::Ordering::Equal => "idx".to_string(),
                std::cmp::Ordering::Greater => format!("idx + {lin}"),
                std::cmp::Ordering::Less => format!("idx - {}", -lin),
            };
            format!("{:.17e} * {in_name}[{ix}]", t.coeff)
        })
        .collect();
    // One tap per line: reads like hand-written stencil code and keeps
    // generated-LoC accounting honest (Table 6).
    Ok(format!("{:.17e} * ({})", weight, taps.join("\n        + ")))
}

/// Render the full update statement `out[idx] = Σ term_exprs;`.
pub fn update_stmt(program: &StencilProgram, layout: &Layout) -> Result<String> {
    let mut terms = Vec::new();
    for t in &program.stencil.terms {
        let k = program.stencil.kernel(&t.kernel)?;
        // Inputs are named by temporal distance: `in1` = state t-1, etc.
        terms.push(term_expr(layout, k, t.weight, &format!("in{}", t.dt))?);
    }
    Ok(format!("out[idx] = {};", terms.join("\n                + ")))
}

/// Emit the nested tile loops of the plan around `body` (which may use
/// the interior coordinates `x`, `y`, `z` and must compute `idx` itself).
/// Returns (code, names of the loop variables outermost-first).
pub fn tile_loops(
    plan: &msc_core::schedule::ExecPlan,
    layout: &Layout,
    body: &str,
    parallel_pragma: Option<&str>,
    indent: usize,
) -> String {
    let dims = ["X", "Y", "Z"];
    let vars = ["x", "y", "z"];
    let mut code = String::new();
    let mut depth = indent;
    let pad = |d: usize| "    ".repeat(d);

    for (i, lv) in plan.order.iter().enumerate() {
        let d = lv.dim;
        if !lv.inner {
            if i == 0 {
                if let Some(p) = parallel_pragma {
                    code += &format!("{}{}\n", pad(depth), p);
                }
            }
            code += &format!(
                "{}for (int {}o = 0; {}o < {}; {}o++) {{\n",
                pad(depth),
                vars[d],
                vars[d],
                plan.tiles_along(d),
                vars[d]
            );
        } else {
            let tile = plan.tile[d];
            code += &format!(
                "{}int {v}_end = ({v}o + 1) * {t} < N{D} ? {t} : N{D} - {v}o * {t};\n",
                pad(depth),
                v = vars[d],
                t = tile,
                D = dims[d]
            );
            code += &format!(
                "{}for (int {v}i = 0; {v}i < {v}_end; {v}i++) {{\n",
                pad(depth),
                v = vars[d]
            );
            code += &format!(
                "{}int {v} = {v}o * {t} + {v}i;\n",
                pad(depth + 1),
                v = vars[d],
                t = tile
            );
        }
        depth += 1;
    }
    // When the plan is untiled, order contains only inner loops with the
    // whole grid as the tile: declare the plain coordinate loops.
    if plan.order.iter().all(|l| l.inner) && plan.num_tiles() == 1 {
        code.clear();
        depth = indent;
        if let Some(p) = parallel_pragma {
            code += &format!("{}{}\n", pad(depth), p);
        }
        for lv in &plan.order {
            let d = lv.dim;
            code += &format!(
                "{}for (int {v} = 0; {v} < N{D}; {v}++) {{\n",
                pad(depth),
                v = vars[d],
                D = dims[d]
            );
            depth += 1;
        }
    }

    code += &format!("{}long idx = {};\n", pad(depth), layout.idx_expr());
    for line in body.lines() {
        code += &format!("{}{}\n", pad(depth), line);
    }
    let n_loops = depth - indent;
    for d in (0..n_loops).rev() {
        code += &format!("{}}}\n", "    ".repeat(indent + d));
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_core::catalog::{benchmark, BenchmarkId};
    use msc_core::schedule::{ExecPlan, Schedule};

    fn program() -> StencilProgram {
        benchmark(BenchmarkId::S3d7ptStar)
            .program(&[16, 16, 16], DType::F64, 2)
            .unwrap()
    }

    #[test]
    fn layout_constants() {
        let p = program();
        let l = Layout::of(&p);
        assert_eq!(l.padded, vec![18, 18, 18]);
        assert_eq!(l.strides, vec![324, 18, 1]);
        assert_eq!(l.window, 3);
        let d = l.defines();
        assert!(d.contains("#define NX 16"));
        assert!(d.contains("#define SX 324"));
        assert!(d.contains("#define WINDOW 3"));
    }

    #[test]
    fn update_statement_references_both_terms() {
        let p = program();
        let l = Layout::of(&p);
        let s = update_stmt(&p, &l).unwrap();
        assert!(s.contains("in1[idx"));
        assert!(s.contains("in2[idx"));
        assert!(s.starts_with("out[idx] ="));
        // 7 taps per term.
        assert_eq!(s.matches("in1[").count(), 7);
    }

    #[test]
    fn term_expr_uses_direct_linear_offsets() {
        let p = program();
        let l = Layout::of(&p);
        let k = p.stencil.kernel("3d7pt_star").unwrap();
        let e = term_expr(&l, k, 1.0, "in1").unwrap();
        // Taps at z±1 (stride 324) and at ±1.
        assert!(e.contains("in1[idx + 324]"));
        assert!(e.contains("in1[idx - 324]"));
        assert!(e.contains("in1[idx + 1]"));
    }

    #[test]
    fn tile_loops_emit_clamped_inner_bounds() {
        let p = program();
        let l = Layout::of(&p);
        let mut s = Schedule::default();
        s.tile(&[8, 8, 8]).parallel("xo", 4);
        let plan = ExecPlan::lower(&s, 3, &[16, 16, 16]).unwrap();
        let code = tile_loops(&plan, &l, "/*body*/", Some("#pragma omp parallel for"), 1);
        assert!(code.contains("#pragma omp parallel for"));
        assert!(code.contains("for (int xo = 0; xo < 2; xo++)"));
        assert!(code.contains("x_end"));
        assert_eq!(code.matches('{').count(), code.matches('}').count());
    }

    #[test]
    fn untiled_plan_emits_plain_loops() {
        let p = program();
        let l = Layout::of(&p);
        let plan = ExecPlan::lower(&Schedule::default(), 3, &[16, 16, 16]).unwrap();
        let code = tile_loops(&plan, &l, "/*body*/", None, 0);
        assert!(code.contains("for (int x = 0; x < NX; x++)"));
        assert!(!code.contains("xo"));
        assert_eq!(code.matches('{').count(), code.matches('}').count());
    }
}
