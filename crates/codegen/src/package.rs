//! A generated source package: named files plus helpers to write them to
//! disk (the output of `compile_to_source_code`, paper Listing 1).

use msc_core::schedule::Target;
use std::io::Write;
use std::path::Path;

/// A set of generated source files for one program/target.
#[derive(Debug, Clone)]
pub struct CodePackage {
    pub program: String,
    pub target: Target,
    files: Vec<(String, String)>,
}

impl CodePackage {
    pub fn new(program: &str, target: Target) -> CodePackage {
        CodePackage {
            program: program.to_string(),
            target,
            files: Vec::new(),
        }
    }

    pub fn add_file(&mut self, name: &str, contents: String) {
        self.files.push((name.to_string(), contents));
    }

    /// Look up a file by name.
    pub fn file(&self, name: &str) -> Option<&str> {
        self.files
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_str())
    }

    /// All file names.
    pub fn file_names(&self) -> Vec<&str> {
        self.files.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Total generated lines of code over all files (Table 6's "manually
    /// optimized code" comparison side).
    pub fn total_loc(&self) -> usize {
        self.files
            .iter()
            .map(|(_, c)| crate::loc::count_loc(c))
            .sum()
    }

    /// Write every file into `dir` (created if missing).
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (name, contents) in &self.files {
            let mut f = std::fs::File::create(dir.join(name))?;
            f.write_all(contents.as_bytes())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_lookup_and_names() {
        let mut p = CodePackage::new("x", Target::Cpu);
        p.add_file("main.c", "int main(void){return 0;}\n".into());
        assert!(p.file("main.c").is_some());
        assert!(p.file("nope.c").is_none());
        assert_eq!(p.file_names(), vec!["main.c"]);
    }

    #[test]
    fn write_to_disk() {
        let dir = std::env::temp_dir().join("msc_codegen_test_pkg");
        let _ = std::fs::remove_dir_all(&dir);
        let mut p = CodePackage::new("x", Target::Cpu);
        p.add_file("a.c", "// a\n".into());
        p.add_file("Makefile", "all:\n".into());
        p.write_to(&dir).unwrap();
        assert!(dir.join("a.c").exists());
        assert!(dir.join("Makefile").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
