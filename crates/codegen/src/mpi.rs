//! MPI variant: wraps the single-node kernel with domain decomposition
//! and the asynchronous halo exchange of the communication library
//! (paper §4.4) — pack, `MPI_Isend`/`MPI_Irecv`, `MPI_Waitall`, unpack,
//! dimension-ordered so box-stencil corners propagate.


use crate::ir_to_c::Layout;
use msc_core::error::Result;
use msc_core::prelude::*;
use msc_core::schedule::Target;

/// Emit the sub-grid geometry and pack/unpack helpers of the generated
/// MPI driver: face extents, region odometer copies, buffer allocation,
/// and deterministic input loading.
#[allow(clippy::needless_range_loop)] // dimension loops index several parallel arrays
fn face_helpers(layout: &Layout, elem: &str) -> String {
    let ndim = layout.ndim;
    let dims = ["X", "Y", "Z"];
    let mut c = String::new();

    // Local (per-rank) geometry. The kernel object linked next to this
    // driver must be generated for the sub-grid shape.
    for d in 0..ndim {
        c += &format!("#define L{0} (N{0} / PROCS{0})\n", dims[d]);
        c += &format!("#define PL{0} (L{0} + 2 * H{0})\n", dims[d]);
    }
    c += &format!(
        "static const long LDIM[{ndim}] = {{ {} }};\n",
        (0..ndim).map(|d| format!("L{}", dims[d])).collect::<Vec<_>>().join(", ")
    );
    c += &format!(
        "static const long LHALO[{ndim}] = {{ {} }};\n",
        (0..ndim).map(|d| format!("H{}", dims[d])).collect::<Vec<_>>().join(", ")
    );
    c += &format!(
        "static const long LPAD[{ndim}] = {{ {} }};\n",
        (0..ndim).map(|d| format!("PL{}", dims[d])).collect::<Vec<_>>().join(", ")
    );
    c += &format!("static long LSTRIDE[{ndim}];\nstatic long LPAD_LEN;\n\n");

    c += &format!(
        "static void init_geometry(void) {{\n\
         \x20   LSTRIDE[{last}] = 1;\n\
         \x20   for (int d = {last}; d > 0; d--) LSTRIDE[d - 1] = LSTRIDE[d] * LPAD[d];\n\
         \x20   LPAD_LEN = LSTRIDE[0] * LPAD[0];\n\
         }}\n\n",
        last = ndim - 1
    );

    // Face geometry: dims already exchanged span the full padded range
    // (corner propagation), later dims span the interior.
    c += &format!(
        "static void face_region(int d, int dir, int send, long start[{ndim}], long ext[{ndim}]) {{\n\
         \x20   for (int dd = 0; dd < {ndim}; dd++) {{\n\
         \x20       if (dd < d) {{ start[dd] = 0; ext[dd] = LPAD[dd]; }}\n\
         \x20       else        {{ start[dd] = LHALO[dd]; ext[dd] = LDIM[dd]; }}\n\
         \x20   }}\n\
         \x20   ext[d] = LHALO[d];\n\
         \x20   if (send) start[d] = dir ? LDIM[d] : LHALO[d];\n\
         \x20   else      start[d] = dir ? LHALO[d] + LDIM[d] : 0;\n\
         }}\n\n"
    );

    c += &format!(
        "static long face_count(int d) {{\n\
         \x20   long start[{ndim}], ext[{ndim}], n = 1;\n\
         \x20   face_region(d, 0, 1, start, ext);\n\
         \x20   for (int dd = 0; dd < {ndim}; dd++) n *= ext[dd];\n\
         \x20   return n;\n\
         }}\n\n"
    );

    // Row-wise odometer copy, shared by pack (dir_out=1) and unpack.
    c += &format!(
        "static long copy_region({elem}* g, const long start[{ndim}], const long ext[{ndim}], {elem}* buf, int pack) {{\n\
         \x20   long c[{ndim}] = {{ 0 }};\n\
         \x20   long off = 0;\n\
         \x20   long row = ext[{last}];\n\
         \x20   for (;;) {{\n\
         \x20       long lin = 0;\n\
         \x20       for (int dd = 0; dd < {ndim}; dd++) lin += (start[dd] + c[dd]) * LSTRIDE[dd];\n\
         \x20       if (pack) for (long i = 0; i < row; i++) buf[off + i] = g[lin + i];\n\
         \x20       else      for (long i = 0; i < row; i++) g[lin + i] = buf[off + i];\n\
         \x20       off += row;\n\
         \x20       int d = {ndim} - 1;\n\
         \x20       for (;;) {{\n\
         \x20           if (d == 0) return off;\n\
         \x20           d--;\n\
         \x20           if (++c[d] < ext[d]) break;\n\
         \x20           c[d] = 0;\n\
         \x20       }}\n\
         \x20   }}\n\
         }}\n\n",
        last = ndim - 1
    );

    c += &format!(
        "static long pack_face({elem}* g, int d, int dir, {elem}* buf) {{\n\
         \x20   long start[{ndim}], ext[{ndim}];\n\
         \x20   face_region(d, dir, 1, start, ext);\n\
         \x20   return copy_region(g, start, ext, buf, 1);\n\
         }}\n\n\
         static void unpack_face({elem}* g, int d, int dir, {elem}* buf) {{\n\
         \x20   long start[{ndim}], ext[{ndim}];\n\
         \x20   face_region(d, dir, 0, start, ext);\n\
         \x20   copy_region(g, start, ext, buf, 0);\n\
         }}\n\n"
    );

    c += &format!(
        "static void alloc_buffers(void) {{\n\
         \x20   init_geometry();\n\
         \x20   for (int s = 0; s < WINDOW; s++)\n\
         \x20       state[s] = ({elem}*)malloc(sizeof({elem}) * LPAD_LEN);\n\
         \x20   for (int d = 0; d < {ndim}; d++)\n\
         \x20       for (int dir = 0; dir < 2; dir++) {{\n\
         \x20           send_buf[2*d + dir] = ({elem}*)malloc(sizeof({elem}) * face_count(d));\n\
         \x20           recv_buf[2*d + dir] = ({elem}*)malloc(sizeof({elem}) * face_count(d));\n\
         \x20       }}\n\
         }}\n\n\
         /* Deterministic input, standing in for /data/rand.data; a path\n\
         \x20  argument overrides it with binary doubles. */\n\
         static void load_input(const char* path) {{\n\
         \x20   if (path) {{\n\
         \x20       FILE* f = fopen(path, \"rb\");\n\
         \x20       if (f) {{\n\
         \x20           for (int s = 0; s < WINDOW; s++)\n\
         \x20               if (fread(state[s], sizeof({elem}), LPAD_LEN, f) != (size_t)LPAD_LEN) break;\n\
         \x20           fclose(f);\n\
         \x20           return;\n\
         \x20       }}\n\
         \x20   }}\n\
         \x20   for (int s = 0; s < WINDOW; s++)\n\
         \x20       for (long i = 0; i < LPAD_LEN; i++) {{\n\
         \x20           unsigned int x = (unsigned int)((unsigned long)i * 2654435761u + 12345u);\n\
         \x20           state[s][i] = ({elem})((double)x / 4294967296.0);\n\
         \x20       }}\n\
         }}\n\n"
    );
    c
}

/// Generate the MPI main translation unit. The kernel itself is the
/// target's single-node `msc_step` (linked from `main.c`/`slave.c`).
pub fn generate(program: &StencilProgram, target: Target) -> Result<String> {
    let layout = Layout::of(program);
    let elem = layout.elem_c;
    let mpi = program
        .mpi_grid
        .clone()
        .unwrap_or_else(|| vec![1; layout.ndim]);
    let ndim = layout.ndim;
    let dims = ["X", "Y", "Z"];
    let max_dt = program.stencil.max_dt();
    let mpi_ty = if elem == "float" { "MPI_FLOAT" } else { "MPI_DOUBLE" };

    let mut c = String::new();
    c += &format!(
        "/* Generated by MSC (MPI driver, target `{}`) — stencil `{}`. */\n",
        target.as_str(),
        program.name
    );
    c += "#include <mpi.h>\n#include <stdio.h>\n#include <stdlib.h>\n#include <string.h>\n\n";
    c += &layout.defines();
    c += &format!("#define STEPS {}\n#define MAXDT {}\n", program.timesteps, max_dt);
    for d in 0..ndim {
        c += &format!("#define PROCS{} {}\n", dims[d], mpi[d]);
    }
    c += &format!(
        "#define N_PROCS {}\n\n",
        mpi.iter().product::<usize>()
    );
    c += &format!("extern void msc_step(const {elem}* in[MAXDT], {elem}* out);\n\n");
    c += &format!("static {elem}* state[WINDOW];\n");
    c += &format!("static {elem}* send_buf[{}];\nstatic {elem}* recv_buf[{}];\n\n", 2 * ndim, 2 * ndim);

    // Neighbour computation from the Cartesian communicator.
    c += "static MPI_Comm cart;\nstatic int my_rank;\nstatic int nbr[";
    c += &format!("{}][2];\n\n", ndim);

    // Face geometry helpers: the inner-halo (send) and outer-halo (recv)
    // regions of each dimension, dimension-ordered so corners propagate
    // (same scheme as the msc-comm library).
    c += &face_helpers(&layout, elem);

    c += "static void setup_cart(void) {\n";
    c += &format!(
        "    int dims[{ndim}] = {{ {} }};\n",
        (0..ndim)
            .map(|d| format!("PROCS{}", dims[d]))
            .collect::<Vec<_>>()
            .join(", ")
    );
    c += &format!("    int periods[{ndim}] = {{ 0 }};\n");
    c += &format!("    MPI_Cart_create(MPI_COMM_WORLD, {ndim}, dims, periods, 0, &cart);\n");
    c += "    MPI_Comm_rank(cart, &my_rank);\n";
    c += &format!("    for (int d = 0; d < {ndim}; d++)\n");
    c += "        MPI_Cart_shift(cart, d, 1, &nbr[d][0], &nbr[d][1]);\n";
    c += "}\n\n";

    // Halo exchange: dimension-ordered, asynchronous per dimension.
    c += &format!("static void halo_exchange({elem}* g) {{\n");
    c += &format!("    for (int d = 0; d < {ndim}; d++) {{\n");
    c += "        MPI_Request reqs[4];\n";
    c += "        int nreq = 0;\n";
    c += "        for (int dir = 0; dir < 2; dir++) {\n";
    c += "            if (nbr[d][dir] == MPI_PROC_NULL) continue;\n";
    c += "            long count = pack_face(g, d, dir, send_buf[2*d + dir]);\n";
    c += &format!(
        "            MPI_Isend(send_buf[2*d + dir], count, {mpi_ty}, nbr[d][dir], 100*d + dir, cart, &reqs[nreq++]);\n"
    );
    c += &format!(
        "            MPI_Irecv(recv_buf[2*d + dir], face_count(d), {mpi_ty}, nbr[d][dir], 100*d + (1 - dir), cart, &reqs[nreq++]);\n"
    );
    c += "        }\n";
    c += "        MPI_Waitall(nreq, reqs, MPI_STATUSES_IGNORE);\n";
    c += "        for (int dir = 0; dir < 2; dir++)\n";
    c += "            if (nbr[d][dir] != MPI_PROC_NULL) unpack_face(g, d, dir, recv_buf[2*d + dir]);\n";
    c += "    }\n";
    c += "}\n\n";

    c += "int main(int argc, char** argv) {\n";
    c += "    MPI_Init(&argc, &argv);\n";
    c += "    setup_cart();\n";
    c += "    alloc_buffers();\n";
    c += "    load_input(argv[1]);\n";
    c += "    double t0 = MPI_Wtime();\n";
    c += "    for (int s = 0; s < STEPS; s++) {\n";
    c += "        int t = MAXDT + s;\n";
    c += &format!("        const {elem}* in[MAXDT];\n");
    for dt in 1..=max_dt {
        c += &format!("        in[{}] = state[(t - {dt}) % WINDOW];\n", dt - 1);
    }
    c += "        msc_step(in, state[t % WINDOW]);\n";
    c += "        if (s + 1 < STEPS) halo_exchange(state[t % WINDOW]);\n";
    c += "    }\n";
    c += "    double t1 = MPI_Wtime();\n";
    c += "    if (my_rank == 0) printf(\"elapsed_s %.6f\\n\", t1 - t0);\n";
    c += "    MPI_Finalize();\n";
    c += "    return 0;\n";
    c += "}\n";
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_core::catalog::{benchmark, BenchmarkId};

    fn gen() -> String {
        let b = benchmark(BenchmarkId::S3d7ptStar);
        let mut p = b.program(&[256, 256, 256], DType::F64, 10).unwrap();
        p.mpi_grid = Some(vec![4, 4, 4]);
        generate(&p, Target::SunwayCG).unwrap()
    }

    #[test]
    fn uses_async_mpi_primitives() {
        let c = gen();
        assert!(c.contains("MPI_Isend"));
        assert!(c.contains("MPI_Irecv"));
        assert!(c.contains("MPI_Waitall"));
        assert!(c.contains("MPI_Cart_create"));
    }

    #[test]
    fn process_grid_constants_match_program() {
        let c = gen();
        assert!(c.contains("#define PROCSX 4"));
        assert!(c.contains("#define N_PROCS 64"));
    }

    #[test]
    fn exchange_is_interleaved_with_compute() {
        // The exchange happens after each step's compute and is skipped
        // on the final step.
        let c = gen();
        assert!(c.contains("if (s + 1 < STEPS) halo_exchange"));
    }

    #[test]
    fn braces_balanced() {
        let c = gen();
        assert_eq!(c.matches('{').count(), c.matches('}').count());
    }

    #[test]
    fn every_referenced_helper_is_defined() {
        let c = gen();
        for helper in [
            "pack_face",
            "unpack_face",
            "face_count",
            "alloc_buffers",
            "load_input",
            "copy_region",
            "face_region",
        ] {
            assert!(
                c.contains(&format!("static long {helper}("))
                    || c.contains(&format!("static void {helper}(")),
                "helper `{helper}` referenced but not generated"
            );
        }
    }

    #[test]
    fn local_geometry_divides_global_by_process_grid() {
        let c = gen();
        assert!(c.contains("#define LX (NX / PROCSX)"));
        assert!(c.contains("#define PLX (LX + 2 * HX)"));
    }

    #[test]
    fn generated_mpi_driver_compiles_with_mpi_stubs() {
        // Compile the generated driver against a minimal MPI stub header
        // and a stub kernel — proves it is self-contained, valid C.
        let Ok(out) = std::process::Command::new("cc").arg("--version").output() else {
            return;
        };
        if !out.status.success() {
            return;
        }
        let c = gen();
        let dir = std::env::temp_dir().join("msc_mpi_compile_check");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("mpi_main.c"), &c).unwrap();
        std::fs::write(
            dir.join("mpi.h"),
            r#"
#ifndef MSC_MPI_STUB
#define MSC_MPI_STUB
typedef int MPI_Comm, MPI_Request, MPI_Datatype;
#define MPI_COMM_WORLD 0
#define MPI_PROC_NULL (-1)
#define MPI_DOUBLE 0
#define MPI_FLOAT 1
#define MPI_STATUSES_IGNORE ((void*)0)
static int MPI_Init(int* a, char*** b) { (void)a; (void)b; return 0; }
static int MPI_Finalize(void) { return 0; }
static int MPI_Cart_create(MPI_Comm c, int n, int* d, int* p, int r, MPI_Comm* o) { (void)c;(void)n;(void)d;(void)p;(void)r;*o=0; return 0; }
static int MPI_Comm_rank(MPI_Comm c, int* r) { (void)c; *r = 0; return 0; }
static int MPI_Cart_shift(MPI_Comm c, int d, int s, int* lo, int* hi) { (void)c;(void)d;(void)s;*lo=MPI_PROC_NULL;*hi=MPI_PROC_NULL; return 0; }
static int MPI_Isend(void* b, long n, MPI_Datatype t, int d, int tg, MPI_Comm c, MPI_Request* r) { (void)b;(void)n;(void)t;(void)d;(void)tg;(void)c;*r=0; return 0; }
static int MPI_Irecv(void* b, long n, MPI_Datatype t, int s, int tg, MPI_Comm c, MPI_Request* r) { (void)b;(void)n;(void)t;(void)s;(void)tg;(void)c;*r=0; return 0; }
static int MPI_Waitall(int n, MPI_Request* r, void* st) { (void)n;(void)r;(void)st; return 0; }
static double MPI_Wtime(void) { return 0.0; }
#endif
"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("kernel_stub.c"),
            "void msc_step(const double* in[2], double* out) { (void)in; (void)out; }\n",
        )
        .unwrap();
        let exe = dir.join("driver");
        let out = std::process::Command::new("cc")
            .args(["-O1", "-std=c99", "-I"])
            .arg(&dir)
            .arg("-o")
            .arg(&exe)
            .arg(dir.join("mpi_main.c"))
            .arg(dir.join("kernel_stub.c"))
            .output()
            .expect("cc invocation");
        assert!(
            out.status.success(),
            "generated MPI driver failed to compile:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
