//! Lines-of-code accounting (paper §5.2.3, Table 6): MSC DSL programs vs
//! manually optimized OpenACC (Sunway) and OpenMP (Matrix) codes.

use msc_core::catalog::Benchmark;
use msc_core::schedule::Target;

/// Count non-empty, non-comment-only lines — the LoC convention used for
/// both DSL and generated/manual code.
pub fn count_loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter(|l| !l.starts_with("//") && !l.starts_with("/*") && !l.starts_with('*'))
        .filter(|l| !l.starts_with('#') || l.starts_with("#pragma") || l.starts_with("#include"))
        .count()
}

/// Estimated MSC DSL lines for a benchmark on a target, following the
/// structure of Listing 1/2: fixed scaffolding (variable/tensor/stencil/
/// run/compile statements), the kernel expression (one line per ~8 taps,
/// like the paper's wrapped kernel definitions), and one line per
/// schedule primitive (Sunway needs the SPM/DMA primitives on top of
/// tile/reorder/parallel).
pub fn dsl_loc(bench: &Benchmark, target: Target) -> usize {
    let scaffolding = 23;
    let kernel_lines = bench.points().div_ceil(8);
    let primitives = if target.needs_spm() { 7 } else { 3 };
    scaffolding + kernel_lines + primitives
}

/// The paper's Table 6 manual-code baselines, `(openacc_sunway,
/// openmp_matrix)` per benchmark name.
pub fn paper_manual_loc(name: &str) -> Option<(usize, usize)> {
    Some(match name {
        "2d9pt_star" => (45, 95),
        "2d9pt_box" => (45, 95),
        "2d121pt_box" => (55, 207),
        "2d169pt_box" => (57, 255),
        "3d7pt_star" => (45, 101),
        "3d13pt_star" => (51, 98),
        "3d25pt_star" => (65, 102),
        "3d31pt_star" => (72, 103),
        _ => return None,
    })
}

/// The paper's Table 6 MSC columns, `(msc_sunway, msc_matrix)`.
pub fn paper_msc_loc(name: &str) -> Option<(usize, usize)> {
    Some(match name {
        "2d9pt_star" => (33, 27),
        "2d9pt_box" => (32, 26),
        "2d121pt_box" => (50, 44),
        "2d169pt_box" => (54, 48),
        "3d7pt_star" => (36, 28),
        "3d13pt_star" => (33, 27),
        "3d25pt_star" => (35, 29),
        "3d31pt_star" => (37, 31),
        _ => return None,
    })
}

/// One row of our regenerated Table 6.
#[derive(Debug, Clone)]
pub struct LocReport {
    pub name: &'static str,
    pub msc_sunway: usize,
    pub manual_sunway: usize,
    pub msc_matrix: usize,
    pub manual_matrix: usize,
}

impl LocReport {
    pub fn of(bench: &Benchmark) -> LocReport {
        let (acc, omp) = paper_manual_loc(bench.name).expect("catalog benchmark");
        LocReport {
            name: bench.name,
            msc_sunway: dsl_loc(bench, Target::SunwayCG),
            manual_sunway: acc,
            msc_matrix: dsl_loc(bench, Target::Matrix),
            manual_matrix: omp,
        }
    }

    /// LoC reduction fraction on a platform.
    pub fn reduction_sunway(&self) -> f64 {
        1.0 - self.msc_sunway as f64 / self.manual_sunway as f64
    }

    pub fn reduction_matrix(&self) -> f64 {
        1.0 - self.msc_matrix as f64 / self.manual_matrix as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_core::catalog::all_benchmarks;

    #[test]
    fn count_loc_skips_blank_and_comment_lines() {
        let src = "int a;\n\n// comment\n/* block */\nint b;\n#pragma omp x\n";
        assert_eq!(count_loc(src), 3);
    }

    #[test]
    fn dsl_loc_tracks_paper_within_a_few_lines() {
        for b in all_benchmarks() {
            let (paper_sun, paper_mat) = paper_msc_loc(b.name).unwrap();
            let ours_sun = dsl_loc(&b, Target::SunwayCG);
            let ours_mat = dsl_loc(&b, Target::Matrix);
            assert!(
                (ours_sun as i64 - paper_sun as i64).abs() <= 6,
                "{}: sunway {ours_sun} vs paper {paper_sun}",
                b.name
            );
            assert!(
                (ours_mat as i64 - paper_mat as i64).abs() <= 6,
                "{}: matrix {ours_mat} vs paper {paper_mat}",
                b.name
            );
        }
    }

    #[test]
    fn average_reductions_match_paper_bands() {
        // Paper: 27% average reduction on Sunway, 74% on Matrix.
        let rows: Vec<LocReport> = all_benchmarks().iter().map(LocReport::of).collect();
        let avg_sun: f64 =
            rows.iter().map(LocReport::reduction_sunway).sum::<f64>() / rows.len() as f64;
        let avg_mat: f64 =
            rows.iter().map(LocReport::reduction_matrix).sum::<f64>() / rows.len() as f64;
        assert!((0.15..=0.40).contains(&avg_sun), "sunway reduction {avg_sun}");
        assert!((0.60..=0.85).contains(&avg_mat), "matrix reduction {avg_mat}");
    }

    #[test]
    fn msc_is_always_shorter_than_manual() {
        for b in all_benchmarks() {
            let r = LocReport::of(&b);
            assert!(r.msc_sunway < r.manual_sunway, "{}", b.name);
            assert!(r.msc_matrix < r.manual_matrix, "{}", b.name);
        }
    }
}
