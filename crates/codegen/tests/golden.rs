//! Golden-file regression tests: the generated C for a fixed program must
//! not drift silently. Regenerate the fixtures with
//! `UPDATE_GOLDEN=1 cargo test -p msc-codegen --test golden`.

use msc_codegen::compile_to_source;
use msc_core::catalog::{benchmark, BenchmarkId};
use msc_core::prelude::*;
use msc_core::schedule::Target;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check(name: &str, contents: &str) {
    let path = golden_dir().join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, contents).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {name}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        golden, contents,
        "generated `{name}` drifted from the golden file; \
         run UPDATE_GOLDEN=1 cargo test -p msc-codegen --test golden if intentional"
    );
}

fn fixed_program() -> StencilProgram {
    let b = benchmark(BenchmarkId::S3d7ptStar);
    let mut p = b.program(&[64, 64, 64], DType::F64, 8).unwrap();
    p.mpi_grid = Some(vec![2, 2, 2]);
    p
}

#[test]
fn golden_cpu_main() {
    let pkg = compile_to_source(&fixed_program(), Target::Cpu).unwrap();
    check("cpu_main.c", pkg.file("main.c").unwrap());
}

#[test]
fn golden_sunway_master_and_slave() {
    let pkg = compile_to_source(&fixed_program(), Target::SunwayCG).unwrap();
    check("sunway_master.c", pkg.file("master.c").unwrap());
    check("sunway_slave.c", pkg.file("slave.c").unwrap());
}

#[test]
fn golden_mpi_driver() {
    let pkg = compile_to_source(&fixed_program(), Target::SunwayCG).unwrap();
    check("mpi_main.c", pkg.file("mpi_main.c").unwrap());
}

#[test]
fn golden_makefiles() {
    let sun = compile_to_source(&fixed_program(), Target::SunwayCG).unwrap();
    check("Makefile.sunway", sun.file("Makefile").unwrap());
    let cpu = compile_to_source(&fixed_program(), Target::Cpu).unwrap();
    check("Makefile.cpu", cpu.file("Makefile").unwrap());
}
