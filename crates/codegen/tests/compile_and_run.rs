//! End-to-end codegen verification: the generated CPU C is compiled with
//! the host compiler, executed, and its interior checksum compared with
//! the functional executor running the very same program — the strongest
//! form of the paper's correctness methodology (§5.1).

use msc_codegen::compile_to_source;
use msc_core::catalog::{benchmark, BenchmarkId};
use msc_core::prelude::*;
use msc_core::schedule::Target;
use msc_exec::driver::{run_program, Executor};
use msc_exec::Grid;
use std::process::Command;

/// The deterministic input generator mirrored in the generated C
/// (`msc_input`).
fn msc_input(lin: u64) -> f64 {
    let x = lin.wrapping_mul(2654435761).wrapping_add(12345) as u32;
    x as f64 / 4294967296.0
}

fn host_cc() -> Option<&'static str> {
    for cc in ["cc", "gcc", "clang"] {
        if Command::new(cc).arg("--version").output().is_ok() {
            return Some(match cc {
                "cc" => "cc",
                "gcc" => "gcc",
                _ => "clang",
            });
        }
    }
    None
}

fn run_case(id: BenchmarkId, grid: &[usize], steps: usize) {
    let Some(cc) = host_cc() else {
        eprintln!("no host C compiler; skipping");
        return;
    };
    let b = benchmark(id);
    let program = b.program(grid, DType::F64, steps).unwrap();
    let pkg = compile_to_source(&program, Target::Cpu).unwrap();
    let dir = std::env::temp_dir().join(format!("msc_e2e_{}", b.name));
    let _ = std::fs::remove_dir_all(&dir);
    pkg.write_to(&dir).unwrap();

    // Build (without OpenMP to keep the host dependency minimal; the
    // pragma is inert without -fopenmp).
    let exe = dir.join("prog");
    let out = Command::new(cc)
        .args(["-O2", "-std=c99", "-o"])
        .arg(&exe)
        .arg(dir.join("main.c"))
        .arg("-lm")
        .output()
        .expect("compiler invocation failed");
    assert!(
        out.status.success(),
        "cc failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run = Command::new(&exe).output().expect("generated binary failed");
    assert!(run.status.success());
    let c_sum: f64 = String::from_utf8_lossy(&run.stdout)
        .trim()
        .parse()
        .expect("checksum parse");

    // Functional executor from the identical initial state.
    let mut init: Grid<f64> = Grid::zeros(&program.grid.shape, &program.grid.halo);
    for (lin, v) in init.as_mut_slice().iter_mut().enumerate() {
        *v = msc_input(lin as u64);
    }
    let (result, _) = run_program(&program, &Executor::Reference, &init).unwrap();
    let rust_sum = result.interior_sum();

    let rel = (c_sum - rust_sum).abs() / rust_sum.abs().max(1.0);
    assert!(
        rel < 1e-12,
        "{}: C checksum {c_sum} vs executor {rust_sum} (rel {rel})",
        b.name
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generated_c_matches_executor_3d7pt() {
    run_case(BenchmarkId::S3d7ptStar, &[16, 16, 16], 4);
}

#[test]
fn generated_c_matches_executor_2d9pt_box() {
    run_case(BenchmarkId::S2d9ptBox, &[24, 24], 5);
}

#[test]
fn generated_c_matches_executor_high_order_2d121pt() {
    run_case(BenchmarkId::S2d121ptBox, &[32, 32], 3);
}

#[test]
fn generated_c_matches_executor_3d25pt() {
    run_case(BenchmarkId::S3d25ptStar, &[16, 16, 16], 3);
}

#[test]
fn generated_c_compiles_and_agrees_with_openmp_enabled() {
    // The same checksum must hold when the pragmas are live: OpenMP
    // parallelism may not change results (the tiles are disjoint).
    let Some(cc) = host_cc() else {
        return;
    };
    // Probe OpenMP support.
    let dir = std::env::temp_dir().join("msc_e2e_omp");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("probe.c"),
        "#include <omp.h>\nint main(void){return omp_get_max_threads() > 0 ? 0 : 1;}\n",
    )
    .unwrap();
    let probe = Command::new(cc)
        .args(["-fopenmp", "-o"])
        .arg(dir.join("probe"))
        .arg(dir.join("probe.c"))
        .output()
        .expect("cc probe");
    if !probe.status.success() {
        eprintln!("host compiler lacks OpenMP; skipping");
        return;
    }

    let b = benchmark(BenchmarkId::S3d13ptStar);
    let program = b.program(&[20, 20, 20], DType::F64, 4).unwrap();
    let pkg = compile_to_source(&program, Target::Cpu).unwrap();
    pkg.write_to(&dir).unwrap();
    let mut sums = Vec::new();
    for flags in [vec!["-O2", "-std=c99"], vec!["-O2", "-std=c99", "-fopenmp"]] {
        let exe = dir.join(format!("prog{}", flags.len()));
        let out = Command::new(cc)
            .args(&flags)
            .arg("-o")
            .arg(&exe)
            .arg(dir.join("main.c"))
            .arg("-lm")
            .output()
            .expect("cc");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let run = Command::new(&exe).output().expect("run");
        let sum: f64 = String::from_utf8_lossy(&run.stdout).trim().parse().unwrap();
        sums.push(sum);
    }
    let rel = (sums[0] - sums[1]).abs() / sums[0].abs().max(1.0);
    assert!(rel < 1e-12, "serial {} vs openmp {}", sums[0], sums[1]);
    let _ = std::fs::remove_dir_all(&dir);
}
