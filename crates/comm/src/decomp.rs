//! Cartesian domain decomposition (paper §4.4, Figure 6): the global grid
//! is divided evenly over an MPI process grid; every sub-tensor carries a
//! halo and is dissected into the outer halo region (received), the inner
//! halo regions (sent), and the inner region.

use crate::region::Region;
use msc_core::error::{MscError, Result};

/// Cartesian decomposition of a global grid over a process grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CartDecomp {
    /// Global grid extents.
    pub global: Vec<usize>,
    /// Processes per dimension.
    pub procs: Vec<usize>,
    /// Halo width per dimension (the stencil reach).
    pub reach: Vec<usize>,
    /// Per-dimension periodicity: `true` wraps the domain (torus).
    pub periodic: Vec<bool>,
}

impl CartDecomp {
    /// Build and validate: the grid must divide evenly (the paper's
    /// Tables 7/8 configurations all do) and each sub-extent must be at
    /// least the halo width.
    pub fn new(global: &[usize], procs: &[usize], reach: &[usize]) -> Result<CartDecomp> {
        if global.len() != procs.len() || global.len() != reach.len() {
            return Err(MscError::DimMismatch {
                expected: global.len(),
                got: procs.len().min(reach.len()),
            });
        }
        for (d, ((&g, &p), &r)) in global.iter().zip(procs).zip(reach).enumerate() {
            if p == 0 {
                return Err(MscError::InvalidConfig(format!("zero procs in dim {d}")));
            }
            if g % p != 0 {
                return Err(MscError::InvalidConfig(format!(
                    "global extent {g} not divisible by {p} procs in dim {d}"
                )));
            }
            if g / p < r {
                return Err(MscError::InvalidConfig(format!(
                    "sub-extent {} smaller than halo {r} in dim {d}",
                    g / p
                )));
            }
        }
        Ok(CartDecomp {
            global: global.to_vec(),
            procs: procs.to_vec(),
            reach: reach.to_vec(),
            periodic: vec![false; global.len()],
        })
    }

    /// Make the given dimensions periodic (torus topology): boundary
    /// ranks exchange with the opposite side, and single-process
    /// dimensions wrap onto themselves.
    pub fn with_periodicity(mut self, periodic: &[bool]) -> Result<CartDecomp> {
        if periodic.len() != self.ndim() {
            return Err(MscError::DimMismatch {
                expected: self.ndim(),
                got: periodic.len(),
            });
        }
        self.periodic = periodic.to_vec();
        Ok(self)
    }

    pub fn ndim(&self) -> usize {
        self.global.len()
    }

    /// Total ranks.
    pub fn n_ranks(&self) -> usize {
        self.procs.iter().product()
    }

    /// Per-rank sub-grid extents.
    pub fn sub_extent(&self) -> Vec<usize> {
        self.global
            .iter()
            .zip(&self.procs)
            .map(|(&g, &p)| g / p)
            .collect()
    }

    /// Cartesian coordinates of a rank (row-major, dim 0 slowest).
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        let mut rem = rank;
        let mut coords = vec![0usize; self.ndim()];
        for d in (0..self.ndim()).rev() {
            coords[d] = rem % self.procs[d];
            rem /= self.procs[d];
        }
        coords
    }

    /// Rank of Cartesian coordinates.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        coords
            .iter()
            .zip(&self.procs)
            .fold(0usize, |acc, (&c, &p)| acc * p + c)
    }

    /// Global origin (interior coordinates) of a rank's sub-grid.
    pub fn origin_of(&self, rank: usize) -> Vec<usize> {
        let sub = self.sub_extent();
        self.coords_of(rank)
            .iter()
            .zip(&sub)
            .map(|(&c, &s)| c * s)
            .collect()
    }

    /// Neighbour rank along `dim` in direction `dir` (±1); `None` at the
    /// (non-periodic) domain boundary.
    pub fn neighbor(&self, rank: usize, dim: usize, dir: i64) -> Option<usize> {
        let mut coords = self.coords_of(rank);
        let p = self.procs[dim] as i64;
        let c = coords[dim] as i64 + dir;
        let c = if self.periodic[dim] {
            (c % p + p) % p
        } else if c < 0 || c >= p {
            return None;
        } else {
            c
        };
        coords[dim] = c as usize;
        Some(self.rank_of(&coords))
    }

    /// Number of face neighbours of a rank.
    pub fn n_neighbors(&self, rank: usize) -> usize {
        (0..self.ndim())
            .flat_map(|d| [(d, -1), (d, 1)])
            .filter(|&(d, dir)| self.neighbor(rank, d, dir).is_some())
            .count()
    }

    /// Extent of dimension `dd` for an exchange of dimension `dim` under
    /// dimension-ordered exchange: dims already exchanged (`dd < dim`)
    /// span the full padded range so corner data propagates (required for
    /// box stencils); later dims span the interior only.
    fn exch_span(&self, dim: usize, dd: usize) -> (usize, usize) {
        let sub = self.sub_extent();
        let h = self.reach[dd];
        if dd < dim {
            (0, sub[dd] + 2 * h)
        } else {
            (h, sub[dd])
        }
    }

    /// Inner halo region (data to *send*) for the face of `dim` in
    /// direction `dir`, in local padded coordinates.
    pub fn send_region(&self, dim: usize, dir: i64) -> Region {
        let sub = self.sub_extent();
        let h = self.reach[dim];
        let mut start = vec![0usize; self.ndim()];
        let mut extent = vec![0usize; self.ndim()];
        for dd in 0..self.ndim() {
            let (s, e) = self.exch_span(dim, dd);
            start[dd] = s;
            extent[dd] = e;
        }
        if dir > 0 {
            start[dim] = self.reach[dim] + sub[dim] - h;
        } else {
            start[dim] = self.reach[dim];
        }
        extent[dim] = h;
        Region::new(start, extent)
    }

    /// Outer halo region (data to *receive*) for the face of `dim` in
    /// direction `dir`, in local padded coordinates.
    pub fn recv_region(&self, dim: usize, dir: i64) -> Region {
        let sub = self.sub_extent();
        let h = self.reach[dim];
        let mut start = vec![0usize; self.ndim()];
        let mut extent = vec![0usize; self.ndim()];
        for dd in 0..self.ndim() {
            let (s, e) = self.exch_span(dim, dd);
            start[dd] = s;
            extent[dd] = e;
        }
        if dir > 0 {
            start[dim] = self.reach[dim] + sub[dim];
        } else {
            start[dim] = 0;
        }
        extent[dim] = h;
        Region::new(start, extent)
    }

    /// Buddy rank for diskless checkpoint replication: each rank ships
    /// its window snapshots to its ring successor, so the `n_ranks`
    /// copies form a single cycle — losing any one rank leaves both its
    /// own subdomain (held by its buddy) and the snapshot it held for
    /// its predecessor recoverable from survivors. Independent of the
    /// Cartesian topology on purpose: face neighbours tend to share
    /// hardware (paper §4.4 maps them to adjacent processes), which is
    /// exactly the correlated-failure domain a buddy must sit outside.
    pub fn buddy_of(&self, rank: usize) -> usize {
        (rank + 1) % self.n_ranks()
    }

    /// Bytes a rank sends per exchange round per live state, for an
    /// element of `elem_bytes` (feeds the network model and the tuner).
    pub fn send_bytes_per_rank(&self, rank: usize, elem_bytes: usize) -> usize {
        (0..self.ndim())
            .flat_map(|d| [(d, -1i64), (d, 1)])
            .filter(|&(d, dir)| self.neighbor(rank, d, dir).is_some())
            .map(|(d, dir)| self.send_region(d, dir).len() * elem_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d2x2() -> CartDecomp {
        // The paper's Figure 6: 8x8 grid, 2x2 MPI grid.
        CartDecomp::new(&[8, 8], &[2, 2], &[1, 1]).unwrap()
    }

    #[test]
    fn figure6_subtensors() {
        let d = d2x2();
        assert_eq!(d.n_ranks(), 4);
        assert_eq!(d.sub_extent(), vec![4, 4]);
        assert_eq!(d.origin_of(0), vec![0, 0]);
        assert_eq!(d.origin_of(3), vec![4, 4]);
    }

    #[test]
    fn coords_roundtrip() {
        let d = CartDecomp::new(&[64, 64, 64], &[4, 2, 8], &[1, 1, 1]).unwrap();
        for rank in 0..d.n_ranks() {
            assert_eq!(d.rank_of(&d.coords_of(rank)), rank);
        }
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let d = d2x2();
        // Rank 0 = coords (0,0): neighbours only in + directions.
        assert_eq!(d.neighbor(0, 0, -1), None);
        assert_eq!(d.neighbor(0, 0, 1), Some(2));
        assert_eq!(d.neighbor(0, 1, 1), Some(1));
        assert_eq!(d.n_neighbors(0), 2);
        // Middle rank of a 3x3 grid has 4 neighbours.
        let d3 = CartDecomp::new(&[9, 9], &[3, 3], &[1, 1]).unwrap();
        assert_eq!(d3.n_neighbors(4), 4);
    }

    #[test]
    fn send_recv_regions_are_mirrors() {
        // What rank A sends in dim d, dir +1 must be shaped like what its
        // +1 neighbour receives in dim d, dir -1.
        let d = CartDecomp::new(&[12, 8], &[2, 2], &[2, 1]).unwrap();
        for dim in 0..2 {
            for dir in [-1i64, 1] {
                let s = d.send_region(dim, dir);
                let r = d.recv_region(dim, -dir);
                assert_eq!(s.extent, r.extent, "dim {dim} dir {dir}");
            }
        }
    }

    #[test]
    fn send_region_is_interior_recv_is_halo() {
        let d = d2x2();
        let s = d.send_region(0, 1);
        // Last interior row: padded coord 4 (halo 1 + sub 4 - 1).
        assert_eq!(s.start[0], 4);
        assert_eq!(s.extent[0], 1);
        let r = d.recv_region(0, 1);
        assert_eq!(r.start[0], 5); // outer halo row
    }

    #[test]
    fn dimension_ordered_exchange_covers_corners() {
        // Exchanging dim 1 after dim 0: the dim-1 faces span the full
        // padded dim-0 range, carrying corner data.
        let d = d2x2();
        let s = d.send_region(1, 1);
        assert_eq!(s.start[0], 0);
        assert_eq!(s.extent[0], 6); // full padded range of dim 0
        assert_eq!(s.extent[1], 1);
    }

    #[test]
    fn validation_errors() {
        assert!(CartDecomp::new(&[10, 10], &[3, 1], &[1, 1]).is_err()); // indivisible
        assert!(CartDecomp::new(&[8, 8], &[8, 1], &[2, 2]).is_err()); // sub < halo
        assert!(CartDecomp::new(&[8, 8], &[0, 1], &[1, 1]).is_err());
        assert!(CartDecomp::new(&[8, 8], &[2], &[1, 1]).is_err());
    }

    #[test]
    fn buddy_ring_is_a_single_cycle() {
        let d = CartDecomp::new(&[64, 64, 64], &[2, 2, 2], &[1, 1, 1]).unwrap();
        let n = d.n_ranks();
        let mut seen = vec![false; n];
        let mut rank = 0usize;
        for _ in 0..n {
            assert!(!seen[rank], "buddy chain revisited rank {rank} early");
            seen[rank] = true;
            rank = d.buddy_of(rank);
        }
        assert_eq!(rank, 0, "buddy chain must close into one cycle");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn send_bytes_count_faces() {
        let d = d2x2();
        // Rank 0: two faces; dim-0 face = 1x4 interior elems, dim-1 face
        // = 6x1 padded-x elems.
        assert_eq!(d.send_bytes_per_rank(0, 8), (4 + 6) * 8);
    }
}
