//! Rectangular regions of a padded grid, with pack/unpack into flat
//! message buffers (the paper's §4.4: "packs the data of the inner halo
//! region in the send buffer ... unpacks the data to update the outer
//! halo region").

use msc_exec::{Grid, Scalar};

/// A box of padded-grid coordinates: `start[d] .. start[d] + extent[d]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    pub start: Vec<usize>,
    pub extent: Vec<usize>,
}

impl Region {
    pub fn new(start: Vec<usize>, extent: Vec<usize>) -> Region {
        assert_eq!(start.len(), extent.len());
        Region { start, extent }
    }

    pub fn ndim(&self) -> usize {
        self.start.len()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.extent.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit the linear index of the first element of each contiguous row
    /// of the region, together with the row length.
    fn for_each_row(&self, strides: &[usize], mut f: impl FnMut(usize, usize)) {
        let ndim = self.ndim();
        let row_len = self.extent[ndim - 1];
        if self.is_empty() {
            return;
        }
        let mut c = vec![0usize; ndim];
        loop {
            let lin: usize = (0..ndim)
                .map(|d| (self.start[d] + c[d]) * strides[d])
                .sum();
            f(lin, row_len);
            let mut d = ndim - 1;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                c[d] += 1;
                if c[d] < self.extent[d] {
                    break;
                }
                c[d] = 0;
            }
        }
    }

    /// Copy the region out of `grid` into a flat buffer.
    pub fn pack<T: Scalar>(&self, grid: &Grid<T>) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        let data = grid.as_slice();
        self.for_each_row(&grid.strides.clone(), |lin, row| {
            out.extend_from_slice(&data[lin..lin + row]);
        });
        out
    }

    /// Copy a flat buffer into the region of `grid`. Panics if the buffer
    /// length does not match the region size.
    pub fn unpack<T: Scalar>(&self, grid: &mut Grid<T>, buf: &[T]) {
        assert_eq!(buf.len(), self.len(), "unpack size mismatch");
        let strides = grid.strides.clone();
        let data = grid.as_mut_slice();
        let mut off = 0usize;
        self.for_each_row(&strides, |lin, row| {
            data[lin..lin + row].copy_from_slice(&buf[off..off + row]);
            off += row;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_grid() -> Grid<f64> {
        let mut g: Grid<f64> = Grid::zeros(&[4, 4], &[1, 1]);
        for (i, v) in g.as_mut_slice().iter_mut().enumerate() {
            *v = i as f64;
        }
        g
    }

    #[test]
    fn pack_extracts_rows() {
        let g = seq_grid(); // padded 6x6
        let r = Region::new(vec![1, 1], vec![2, 3]);
        let p = r.pack(&g);
        assert_eq!(p, vec![7.0, 8.0, 9.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let g = seq_grid();
        let r = Region::new(vec![2, 0], vec![3, 2]);
        let p = r.pack(&g);
        let mut g2: Grid<f64> = Grid::zeros(&[4, 4], &[1, 1]);
        r.unpack(&mut g2, &p);
        assert_eq!(r.pack(&g2), p);
        // Outside the region stays zero.
        assert_eq!(g2.as_slice()[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "unpack size mismatch")]
    fn unpack_checks_length() {
        let mut g = seq_grid();
        Region::new(vec![0, 0], vec![2, 2]).unpack(&mut g, &[1.0]);
    }

    #[test]
    fn empty_region() {
        let r = Region::new(vec![0, 0], vec![0, 3]);
        assert!(r.is_empty());
        assert_eq!(r.pack(&seq_grid()), Vec::<f64>::new());
    }

    #[test]
    fn region_3d_pack_count() {
        let g: Grid<f64> = Grid::zeros(&[4, 4, 4], &[1, 1, 1]);
        let r = Region::new(vec![1, 2, 3], vec![2, 3, 2]);
        assert_eq!(r.pack(&g).len(), 12);
    }
}
