//! The message-passing runtime: ranks are OS threads, messages travel
//! over channels, and `isend`/`irecv` follow MPI's non-blocking
//! semantics. Delivery between a pair of ranks is matched by `(src, tag)`
//! with out-of-order buffering, like MPI's unexpected-message queue.
//!
//! On top of the raw channels sits a **reliability protocol** sized for
//! the chaos runtime (see [`crate::fault`]): every data frame carries a
//! per-`(src → dst)` sequence number and a payload checksum; receivers
//! acknowledge and deduplicate frames, and a receive that stalls sends
//! bounded, backed-off retransmit requests back to the source. Injected
//! drops, duplicates, reorderings, and bit flips therefore heal
//! transparently, while genuine failures surface as typed
//! [`CommError`] values instead of panics or deadlocks.

use crate::error::CommError;
use crate::fault::{splitmix, FaultAction, FaultPlan};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use msc_trace::{Counter, CounterSet, FlightKind, Hist, HistSet};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Payload element that can cross the wire: hashable for checksums and
/// bit-flippable for corruption injection. Implemented for the float
/// types the stencil executors move and the integer types tests use.
pub trait Wire: Clone + Send + 'static {
    /// Stable bit pattern feeding the frame checksum.
    fn wire_bits(&self) -> u64;
    /// Flip one bit (modulo the type's width) — corruption injection.
    fn flip_bit(&mut self, bit: u32);
}

macro_rules! wire_int {
    ($($t:ty),+) => {$(
        impl Wire for $t {
            fn wire_bits(&self) -> u64 {
                *self as u64
            }
            fn flip_bit(&mut self, bit: u32) {
                *self ^= (1 as $t) << (bit % <$t>::BITS);
            }
        }
    )+};
}
wire_int!(u32, u64, usize, i32, i64);

impl Wire for f64 {
    fn wire_bits(&self) -> u64 {
        self.to_bits()
    }
    fn flip_bit(&mut self, bit: u32) {
        *self = f64::from_bits(self.to_bits() ^ (1u64 << (bit % 64)));
    }
}

impl Wire for f32 {
    fn wire_bits(&self) -> u64 {
        self.to_bits() as u64
    }
    fn flip_bit(&mut self, bit: u32) {
        *self = f32::from_bits(self.to_bits() ^ (1u32 << (bit % 32)));
    }
}

fn checksum<T: Wire>(tag: u64, seq: u64, payload: &[T]) -> u64 {
    let mut h = splitmix(tag ^ seq.rotate_left(17));
    for v in payload {
        h = splitmix(h ^ v.wire_bits());
    }
    splitmix(h ^ payload.len() as u64)
}

/// Frame body: data, a delivery acknowledgement, a retransmit request
/// ("send me everything of yours I have not acknowledged"), or an
/// explicit liveness beacon (membership worlds only; never stashed,
/// never acked — its arrival *is* its meaning).
#[derive(Debug, Clone)]
enum Body<T> {
    Data(Vec<T>),
    Ack,
    Resend,
    Heartbeat,
}

/// A point-to-point frame. `seq` numbers the `(src → dst)` data stream;
/// for `Ack` frames it names the acknowledged sequence number. `src` is
/// the sender's *logical* rank; `epoch` is the membership epoch the
/// frame was sent under — receivers drop frames from older epochs (they
/// describe a timeline that a recovery rolled back) and buffer frames
/// from newer ones until they catch up.
#[derive(Debug, Clone)]
struct Frame<T> {
    src: usize,
    epoch: u64,
    tag: u64,
    seq: u64,
    attempt: u32,
    checksum: u64,
    body: Body<T>,
}

/// A posted receive: resolved by [`RankCtx::wait`] and friends.
#[derive(Debug)]
pub struct RecvRequest {
    src: usize,
    tag: u64,
}

impl RecvRequest {
    pub fn src(&self) -> usize {
        self.src
    }
    pub fn tag(&self) -> u64 {
        self.tag
    }
}

/// Tunables of the reliability protocol.
#[derive(Debug, Clone)]
pub struct ReliabilityConfig {
    /// Initial receive poll before the first retransmit request.
    pub poll: Duration,
    /// Poll growth factor per retry (bounded backoff).
    pub backoff: f64,
    /// Ceiling on the backed-off poll interval.
    pub poll_cap: Duration,
    /// Retransmit requests before a wait gives up with
    /// [`CommError::Timeout`].
    pub max_attempts: u32,
    /// Hard deadline for waits when the reliability protocol is off —
    /// converts the old "deadlock forever on a lost message" failure
    /// mode into a diagnosable timeout.
    pub plain_deadline: Duration,
}

impl Default for ReliabilityConfig {
    fn default() -> ReliabilityConfig {
        ReliabilityConfig {
            poll: Duration::from_millis(4),
            backoff: 1.7,
            poll_cap: Duration::from_millis(200),
            max_attempts: 40,
            plain_deadline: Duration::from_secs(60),
        }
    }
}

/// Liveness-detection tunables for membership worlds. Liveness
/// piggybacks on every received frame; when a rank has nothing to send
/// it emits explicit heartbeat beacons instead.
#[derive(Debug, Clone)]
pub struct HeartbeatConfig {
    /// Beacon interval while otherwise idle.
    pub every: Duration,
    /// Silence threshold past which a peer becomes a suspect. Suspicion
    /// is promoted to death only if the peer's thread has actually
    /// exited, so a slow-but-alive rank is never falsely buried.
    pub detect: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> HeartbeatConfig {
        HeartbeatConfig {
            every: Duration::from_millis(50),
            detect: Duration::from_millis(200),
        }
    }
}

impl HeartbeatConfig {
    /// Flag-validated constructor for `--heartbeat-ms`: a zero interval
    /// is a configuration error, never a panic. Detection defaults to
    /// 4x the beacon interval.
    pub fn from_millis(every_ms: u64) -> Result<HeartbeatConfig, String> {
        if every_ms == 0 {
            return Err("heartbeat interval must be at least 1 ms".into());
        }
        Ok(HeartbeatConfig {
            every: Duration::from_millis(every_ms),
            detect: Duration::from_millis(every_ms.saturating_mul(4)),
        })
    }

    /// Validate hand-built configs (driver entry points call this so a
    /// bad `RunOptions` surfaces as a typed error).
    pub fn validate(&self) -> Result<(), String> {
        if self.every.is_zero() {
            return Err("heartbeat interval must be nonzero".into());
        }
        if self.detect < self.every {
            return Err(format!(
                "detection timeout {:?} is shorter than the heartbeat interval {:?}",
                self.detect, self.every
            ));
        }
        Ok(())
    }
}

/// How a recovered rank's state is reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// The dead rank's buddy holds its window snapshot for this
    /// generation and every survivor holds its own — diskless rollback.
    Buddy { gen: u64 },
    /// No generation is globally stable in memory, but a complete disk
    /// checkpoint exists: the spare loads the dead rank's slice from it.
    Disk { gen: u64 },
    /// Nothing survived anywhere: re-derive generation 0 from the seeded
    /// initial grid (always available, always bit-exact).
    Initial,
}

impl RecoverySource {
    /// The generation every rank rolls back to.
    pub fn gen(&self) -> u64 {
        match self {
            RecoverySource::Buddy { gen } | RecoverySource::Disk { gen } => *gen,
            RecoverySource::Initial => 0,
        }
    }
}

/// One recovery event: which logical rank died, which physical spare
/// slot adopted it, and where its state comes from. `epoch` is the
/// membership epoch the event opened.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    pub epoch: u64,
    pub logical: usize,
    pub spare: usize,
    pub source: RecoverySource,
}

/// Outcome of reporting a failure to the membership layer.
#[derive(Debug, Clone)]
pub enum FailureOutcome {
    /// A spare was assigned; the record says how everyone rolls back.
    Recovered(FailureRecord),
    /// The epoch already advanced past the reporter's view — some rank
    /// beat it to the report. Re-sync via [`Membership::latest_failure`].
    Stale,
    /// No spare left: the run cannot heal online and the original error
    /// propagates (the disk-restart loop is the outer fallback).
    Unrecoverable,
}

/// Shared membership state for a world with hot spares: the logical →
/// physical rank assignment, the spare pool, which checkpoint
/// generations are where, and the recovery log. One instance is shared
/// by every rank thread of a resilient run.
///
/// The epoch counter is the cheap read path — ranks poll it from their
/// wait loops with a single atomic load; the mutex guards the rest and
/// is only taken on checkpoint generations and actual failures.
pub struct Membership {
    n_logical: usize,
    epoch: AtomicU64,
    finished: AtomicBool,
    unrecoverable: AtomicBool,
    /// Logical rank -> physical slot, readable without the lock.
    assign: Vec<AtomicUsize>,
    state: Mutex<MemberState>,
}

struct MemberState {
    /// Unassigned physical spare slots (LIFO).
    spares: Vec<usize>,
    /// Per logical rank: checkpoint generations it holds in memory.
    local_gens: Vec<BTreeSet<u64>>,
    /// Per logical rank: generations of *its* snapshot held by its buddy.
    buddy_gens: Vec<BTreeSet<u64>>,
    /// Recovery log; `failures.len()` is the current epoch.
    failures: Vec<FailureRecord>,
    /// Logical ranks done with their steps in the current epoch.
    done: HashSet<usize>,
    recoveries: u64,
}

/// Generations remembered per rank before pruning; anything this deep
/// in the past can no longer be the newest globally-stable generation.
pub(crate) const KEEP_GENS: usize = 4;

impl Membership {
    /// A membership over `n_logical` compute ranks plus `spares` extra
    /// physical slots (numbered `n_logical..n_logical + spares`).
    pub fn new(n_logical: usize, spares: usize) -> Membership {
        Membership {
            n_logical,
            epoch: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            unrecoverable: AtomicBool::new(false),
            assign: (0..n_logical).map(AtomicUsize::new).collect(),
            state: Mutex::new(MemberState {
                spares: (n_logical..n_logical + spares).rev().collect(),
                local_gens: vec![BTreeSet::new(); n_logical],
                buddy_gens: vec![BTreeSet::new(); n_logical],
                failures: Vec::new(),
                done: HashSet::new(),
                recoveries: 0,
            }),
        }
    }

    pub fn n_logical(&self) -> usize {
        self.n_logical
    }

    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Physical slot currently carrying a logical rank.
    pub fn phys_of(&self, logical: usize) -> usize {
        self.assign[logical].load(Ordering::Acquire)
    }

    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    pub fn is_unrecoverable(&self) -> bool {
        self.unrecoverable.load(Ordering::Acquire)
    }

    /// Successful online recoveries so far (distinct from disk restarts).
    pub fn recoveries(&self) -> u64 {
        self.state.lock().unwrap().recoveries
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemberState> {
        // A poisoned membership mutex means a rank panicked mid-update;
        // the bookkeeping is still internally consistent (every update
        // is a single insert/push), so recover the guard.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record that `logical` holds its own window snapshot for `gen`.
    pub fn note_local(&self, logical: usize, gen: u64) {
        let mut st = self.lock();
        let set = &mut st.local_gens[logical];
        set.insert(gen);
        while set.len() > KEEP_GENS {
            let oldest = *set.iter().next().unwrap();
            set.remove(&oldest);
        }
    }

    /// Record that `logical`'s buddy holds `logical`'s snapshot for `gen`.
    pub fn note_buddy(&self, logical: usize, gen: u64) {
        let mut st = self.lock();
        let set = &mut st.buddy_gens[logical];
        set.insert(gen);
        while set.len() > KEEP_GENS {
            let oldest = *set.iter().next().unwrap();
            set.remove(&oldest);
        }
    }

    /// Report a dead logical rank. The first reporter (under the lock)
    /// assigns a spare, picks the rollback source, and opens a new
    /// epoch; concurrent reporters observe [`FailureOutcome::Stale`] and
    /// re-sync from the latest record. `disk_gen` is the newest complete
    /// disk checkpoint, if the run keeps one.
    pub fn report_failure(
        &self,
        logical: usize,
        reporter_epoch: u64,
        disk_gen: Option<u64>,
    ) -> FailureOutcome {
        let mut st = self.lock();
        let current = st.failures.len() as u64;
        if current > reporter_epoch {
            return FailureOutcome::Stale;
        }
        let Some(spare) = st.spares.pop() else {
            self.unrecoverable.store(true, Ordering::Release);
            return FailureOutcome::Unrecoverable;
        };
        // Newest generation that heals disklessly: the dead rank's buddy
        // must hold its snapshot and every survivor must hold its own.
        let n = self.n_logical;
        let stable = st.buddy_gens[logical]
            .iter()
            .rev()
            .find(|&&g| {
                (0..n)
                    .filter(|&r| r != logical)
                    .all(|r| st.local_gens[r].contains(&g))
            })
            .copied();
        let source = match (stable, disk_gen) {
            (Some(gen), _) => RecoverySource::Buddy { gen },
            (None, Some(gen)) => RecoverySource::Disk { gen },
            (None, None) => RecoverySource::Initial,
        };
        // The dead thread's holdings are gone: its own snapshots, and
        // the buddy copies it kept for its predecessor.
        st.local_gens[logical].clear();
        let pred = (logical + n - 1) % n;
        if pred != logical {
            st.buddy_gens[pred].clear();
        }
        let record = FailureRecord {
            epoch: current + 1,
            logical,
            spare,
            source,
        };
        st.failures.push(record.clone());
        st.recoveries += 1;
        // Everyone re-reports completion under the new epoch.
        st.done.clear();
        self.assign[logical].store(spare, Ordering::Release);
        // Publish the epoch last: by the time a poller sees it, the
        // assignment and the record are already in place.
        self.epoch.store(current + 1, Ordering::Release);
        FailureOutcome::Recovered(record)
    }

    /// The most recent recovery event, if any.
    pub fn latest_failure(&self) -> Option<FailureRecord> {
        self.lock().failures.last().cloned()
    }

    /// The adoption duty assigned to a physical spare slot, if any.
    pub fn duty_of(&self, slot: usize) -> Option<FailureRecord> {
        self.lock()
            .failures
            .iter()
            .rev()
            .find(|r| r.spare == slot)
            .cloned()
    }

    /// A logical rank finished its final step under `epoch`. When every
    /// logical rank has, the world is finished and spares stand down.
    pub fn report_done(&self, logical: usize, epoch: u64) {
        let mut st = self.lock();
        if st.failures.len() as u64 != epoch {
            return; // stale: the rank will re-enter compute and re-report
        }
        st.done.insert(logical);
        if st.done.len() == self.n_logical {
            self.finished.store(true, Ordering::Release);
        }
    }
}

/// World construction options: a chaos plan, protocol tunables, and —
/// for resilient runs — the shared membership layer.
#[derive(Debug, Clone, Default)]
pub struct WorldConfig {
    /// Seeded fault injector applied to every data frame.
    pub fault: Option<Arc<FaultPlan>>,
    pub reliability: ReliabilityConfig,
    /// Force the ack/retransmit protocol on (`Some(true)`) or off
    /// (`Some(false)`); by default it is on exactly when a fault plan is
    /// present, so fault-free runs pay no ack traffic.
    pub reliable: Option<bool>,
    /// Hot-spare membership: present iff the run can heal dead ranks
    /// online. `None` keeps the runtime byte-for-byte on its old paths.
    pub membership: Option<Arc<Membership>>,
    /// Liveness beacons + detection timeout (membership worlds only).
    pub heartbeat: Option<HeartbeatConfig>,
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Membership")
            .field("n_logical", &self.n_logical)
            .field("epoch", &self.epoch())
            .field("finished", &self.is_finished())
            .finish()
    }
}

/// Shared world state: how many ranks have left the communication fabric
/// (finished, errored, or panicked). [`RankCtx::finalize`] polls it so
/// finished ranks keep servicing retransmit requests until everyone is
/// done, and departure is also counted on drop so a dead rank never
/// wedges its peers.
struct WorldShared {
    departed: AtomicUsize,
    /// Per physical slot: false once that thread has left the fabric.
    /// The membership layer's suspicion check reads this so silence from
    /// a slow-but-alive rank is never promoted to death.
    alive: Vec<AtomicBool>,
}

/// Per-rank endpoint handed to each rank's closure. In membership
/// worlds `rank` is the *logical* rank (rewritten when a spare adopts a
/// dead rank's subdomain) and `slot` the fixed physical thread index;
/// everywhere else they coincide.
pub struct RankCtx<T> {
    pub rank: usize,
    pub n_ranks: usize,
    /// Physical slot of this thread (== initial `rank`).
    slot: usize,
    senders: Arc<Vec<Sender<Frame<T>>>>,
    inbox: Receiver<Frame<T>>,
    /// Unexpected-message queue: data frames that arrived before their
    /// matching irecv was waited on.
    stash: Vec<Frame<T>>,
    /// Next sequence number per destination stream.
    next_seq: Vec<u64>,
    /// Delivered sequence numbers per source (duplicate suppression).
    delivered: Vec<HashSet<u64>>,
    /// Sent-but-unacknowledged data frames per destination — the
    /// retransmit buffer (pruned as acks drain in).
    unacked: Vec<Vec<Frame<T>>>,
    /// Frames the injector is holding back, released after later sends.
    delayed: Vec<(usize, Frame<T>)>,
    fault: Option<Arc<FaultPlan>>,
    cfg: ReliabilityConfig,
    reliable: bool,
    /// Halo-exchange rounds entered (drives kill injection).
    exchanges: u64,
    shared: Arc<WorldShared>,
    departed_marked: bool,
    /// Membership epoch this rank currently operates under.
    epoch: u64,
    /// Frames from a newer epoch than ours, replayed by `enter_epoch`.
    future: Vec<Frame<T>>,
    /// Last time anything (data, ack, heartbeat) arrived per logical src.
    last_heard: Vec<Instant>,
    /// Last time we broadcast heartbeat beacons.
    last_beat: Instant,
    membership: Option<Arc<Membership>>,
    hb: Option<HeartbeatConfig>,
    /// Last recoverable control fault this endpoint originated (kill,
    /// suspect, epoch change). Intermediate layers flatten errors into
    /// strings; the driver reads the typed event back via `take_fault`.
    fault_note: Option<CommError>,
    /// Messages sent (diagnostics). Counts first transmissions of data
    /// frames only — acks, retransmissions, and control traffic are
    /// protocol overhead, not messages.
    pub sent_msgs: u64,
    /// Per-rank trace counters (halo messages/bytes and anything callers
    /// bump). Always accumulated — cheap local adds — and folded into
    /// [`crate::distributed::CommStats`] at gather time, so stats survive
    /// even when global tracing is disabled.
    pub counters: CounterSet,
    /// Per-rank latency histograms (halo wait, retransmit recovery
    /// delay), accumulated like [`RankCtx::counters`] and merged into
    /// `CommStats` at gather time.
    pub hists: HistSet,
}

impl<T> RankCtx<T> {
    /// Fixed physical thread index (== the spawn-time rank; unchanged by
    /// [`RankCtx::adopt`]).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Take the last typed control fault (kill, suspect, epoch change)
    /// this endpoint originated. Drivers call it after an operation
    /// errored to decide between online recovery and a full restart.
    pub fn take_fault(&mut self) -> Option<CommError> {
        self.fault_note.take()
    }

    fn note_control_fault(&mut self, e: &CommError) {
        self.fault_note = Some(e.clone());
    }

    fn mark_departed(&mut self) {
        if !self.departed_marked {
            self.departed_marked = true;
            // Alive goes false before the departed count rises (and well
            // before the channel endpoint drops with this struct), so a
            // peer that sees a dead endpoint finds the flag down too.
            self.shared.alive[self.slot].store(false, Ordering::Release);
            self.shared.departed.fetch_add(1, Ordering::AcqRel);
        }
    }
}

impl<T> Drop for RankCtx<T> {
    fn drop(&mut self) {
        // A rank that exits (or unwinds) without calling `finalize`
        // still counts as departed, so peers polling in `finalize`
        // cannot wait for it forever.
        self.mark_departed();
    }
}

impl<T: Wire> RankCtx<T> {
    /// Non-blocking send: enqueue and return immediately (the paper's
    /// `MPI_isend`; channel buffering plays the role of the eager
    /// protocol). A hung-up destination is a typed
    /// [`CommError::RankDead`], not a panic.
    pub fn isend(&mut self, dst: usize, tag: u64, payload: Vec<T>) -> Result<(), CommError> {
        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        let frame = Frame {
            src: self.rank,
            epoch: self.epoch,
            tag,
            seq,
            attempt: 0,
            checksum: checksum(tag, seq, &payload),
            body: Body::Data(payload),
        };
        if self.reliable {
            self.unacked[dst].push(frame.clone());
        }
        msc_trace::flight(FlightKind::Send, self.rank as u32, dst as u32, tag, seq);
        msc_trace::flow_send(
            "halo_send",
            msc_trace::message_id(self.rank as u32, dst as u32, tag as u32, seq as u32),
        );
        // Frames the injector delayed are released *after* this newer
        // frame, which is exactly the reordering being simulated.
        let held = std::mem::take(&mut self.delayed);
        if let Err(e) = self.transmit(dst, frame) {
            return Err(self.promote_dead(e));
        }
        for (d, f) in held {
            let _ = self.raw_send(d, f);
        }
        self.sent_msgs += 1;
        Ok(())
    }

    /// Non-blocking receive: record interest in `(src, tag)` (the paper's
    /// `MPI_irecv`). Completion happens in [`RankCtx::wait`].
    pub fn irecv(&mut self, src: usize, tag: u64) -> RecvRequest {
        RecvRequest { src, tag }
    }

    /// Bump the exchange-round counter and apply any configured kill —
    /// drivers call this once per halo-exchange round. In membership
    /// worlds it is also an epoch checkpoint: a recovery opened since
    /// our last look surfaces here before any face is posted.
    pub fn begin_exchange(&mut self) -> Result<(), CommError> {
        self.poll_epoch()?;
        self.exchanges += 1;
        if let Some(plan) = &self.fault {
            if plan.should_kill(self.rank, self.exchanges) {
                msc_trace::flight(
                    FlightKind::Kill,
                    self.rank as u32,
                    self.rank as u32,
                    0,
                    self.exchanges,
                );
                let _ = msc_trace::dump_on_error("killed");
                let e = CommError::Killed {
                    rank: self.rank,
                    exchange: self.exchanges,
                };
                self.note_control_fault(&e);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Surface a pending membership epoch change as a typed control
    /// signal. A single atomic load; a no-op outside membership worlds.
    fn poll_epoch(&mut self) -> Result<(), CommError> {
        if let Some(m) = &self.membership {
            let e = m.epoch();
            if e > self.epoch {
                let err = CommError::EpochChange { epoch: e };
                self.note_control_fault(&err);
                return Err(err);
            }
        }
        Ok(())
    }

    /// Cross into a new membership epoch: drop every trace of the rolled
    /// back timeline (stash, retransmit buffers, injector-held frames,
    /// sequence numbers, dedup sets) and replay any frames that arrived
    /// early from peers already in the new epoch. Replayed computation
    /// regenerates identical traffic, so a fresh numbering is safe — the
    /// epoch tag on every frame screens out stragglers from the past.
    pub fn enter_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.stash.clear();
        self.delayed.clear();
        for buf in &mut self.unacked {
            buf.clear();
        }
        for set in &mut self.delivered {
            set.clear();
        }
        for seq in &mut self.next_seq {
            *seq = 0;
        }
        let now = Instant::now();
        for t in &mut self.last_heard {
            *t = now; // fresh grace period for everyone
        }
        let early = std::mem::take(&mut self.future);
        for frame in early {
            // Screening in process_frame re-buffers anything from an
            // even newer epoch and drops anything older.
            let _ = self.process_frame(frame);
        }
    }

    /// A spare adopts a dead rank's logical identity. Subsequent sends,
    /// receives, and trace records act as `logical`.
    pub fn adopt(&mut self, logical: usize) {
        self.rank = logical;
        msc_trace::set_current_rank(logical as u32);
    }

    /// Current membership epoch this rank operates under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Broadcast liveness beacons if the heartbeat interval elapsed.
    /// Only logical ranks beat (nobody monitors idle spares), and only
    /// in membership worlds — everywhere else this is free.
    fn maybe_heartbeat(&mut self) {
        let (Some(m), Some(hb)) = (&self.membership, &self.hb) else {
            return;
        };
        let n_logical = m.n_logical();
        if self.rank >= n_logical || self.last_beat.elapsed() < hb.every {
            return;
        }
        self.last_beat = Instant::now();
        for dst in 0..n_logical {
            if dst == self.rank {
                continue;
            }
            let beat = Frame {
                src: self.rank,
                epoch: self.epoch,
                tag: 0,
                seq: 0,
                attempt: 0,
                checksum: 0,
                body: Body::Heartbeat,
            };
            // A dead destination is the detector's business, not ours.
            let _ = self.raw_send(dst, beat);
            self.counters.bump(Counter::HeartbeatsSent, 1);
            msc_trace::record(Counter::HeartbeatsSent, 1);
        }
    }

    /// Suspicion check for a source we are stalled on: silence past the
    /// detection timeout *and* a departed thread make it a suspect. A
    /// slow-but-alive rank never qualifies — its silence falls through
    /// to the ordinary timeout machinery.
    fn check_suspect(&mut self, src: usize) -> Option<CommError> {
        let m = self.membership.as_ref()?;
        let detect = self.hb.as_ref()?.detect;
        if src >= m.n_logical() || src == self.rank {
            return None;
        }
        let silence = self.last_heard[src].elapsed();
        if silence < detect {
            return None;
        }
        let phys = m.phys_of(src);
        if self.shared.alive[phys].load(Ordering::Acquire) {
            return None;
        }
        Some(self.note_suspect(src, silence))
    }

    /// Record a suspect event: detection latency into the log2 histogram,
    /// a flight-recorder entry, and the typed control error.
    fn note_suspect(&mut self, src: usize, silence: Duration) -> CommError {
        let ns = silence.as_nanos() as u64;
        self.hists.add(Hist::DetectLatencyNanos, ns);
        msc_trace::record_hist(Hist::DetectLatencyNanos, ns);
        msc_trace::flight(
            FlightKind::Recover,
            src as u32,
            self.rank as u32,
            0,
            self.epoch,
        );
        let e = CommError::RankSuspect {
            rank: src,
            silent_ms: silence.as_millis() as u64,
        };
        self.note_control_fault(&e);
        e
    }

    /// Sweep every logical peer through the suspicion check — the
    /// standby-loop counterpart of the per-wait checks, used by finished
    /// ranks and idle spares that have no posted receives to stall on.
    /// (An idle spare hears from nobody, so its silence clocks run from
    /// spawn; the `alive` flag keeps that from ever flagging a live rank.)
    pub fn poll_suspects(&mut self) -> Option<CommError> {
        let n = match &self.membership {
            Some(m) => m.n_logical(),
            None => return None,
        };
        for src in 0..n {
            if let Some(e) = self.check_suspect(src) {
                return Some(e);
            }
        }
        None
    }

    /// In membership worlds a dead endpoint is a recoverable suspect,
    /// not a fatal [`CommError::RankDead`].
    fn promote_dead(&mut self, e: CommError) -> CommError {
        let Some(m) = &self.membership else { return e };
        match e {
            CommError::RankDead { rank } if rank < m.n_logical() && rank != self.rank => {
                let silence = self.last_heard[rank].elapsed();
                self.note_suspect(rank, silence)
            }
            other => other,
        }
    }

    /// Service the fabric for `dur` without expecting any payload: drain
    /// inbound frames (acks, retransmit requests, late buddy snapshots),
    /// keep heartbeating, and surface epoch changes. Finished ranks park
    /// here until the whole world completes — parking in a condvar
    /// instead would starve replaying neighbors of retransmissions.
    pub fn service_for(&mut self, dur: Duration) -> Result<(), CommError> {
        let deadline = Instant::now() + dur;
        loop {
            self.poll_epoch()?;
            self.maybe_heartbeat();
            match self.inbox.recv_timeout(Duration::from_millis(1)) {
                Ok(frame) => {
                    let _ = self.process_frame(frame);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Ok(()),
            }
            if Instant::now() >= deadline {
                return Ok(());
            }
        }
    }

    /// Block until the matching message arrives; unrelated messages are
    /// stashed for later requests. Under the reliability protocol a
    /// stalled wait requests retransmission with bounded backoff; without
    /// it, a generous hard deadline turns a lost message into
    /// [`CommError::Timeout`] instead of a deadlock.
    pub fn wait(&mut self, req: RecvRequest) -> Result<Vec<T>, CommError> {
        let deadline = self.cfg.plain_deadline;
        self.wait_deadline(req, deadline)
    }

    /// Like [`RankCtx::wait`] with an explicit overall deadline.
    pub fn wait_timeout(
        &mut self,
        req: RecvRequest,
        deadline: Duration,
    ) -> Result<Vec<T>, CommError> {
        self.wait_deadline(req, deadline)
    }

    /// Poll for completion without blocking: drains every frame already
    /// in the inbox, then checks the stash. `Ok(None)` means "not yet".
    pub fn try_wait(&mut self, req: &RecvRequest) -> Result<Option<Vec<T>>, CommError> {
        while let Ok(frame) = self.inbox.try_recv() {
            self.process_frame(frame)?;
        }
        Ok(self.take_stashed(req.src, req.tag))
    }

    /// Wait on several requests, returning payloads in request order.
    pub fn wait_all(&mut self, reqs: Vec<RecvRequest>) -> Result<Vec<Vec<T>>, CommError> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Complete whichever pending request's message arrives first,
    /// `swap_remove`-ing it from `reqs` and returning its former index
    /// with the payload. Callers holding per-request state in a parallel
    /// vector mirror the `swap_remove` to stay aligned. Unlike
    /// [`RankCtx::wait_all`], nothing stalls on the slowest first
    /// request while later messages sit in the inbox.
    pub fn wait_any(&mut self, reqs: &mut Vec<RecvRequest>) -> Result<(usize, Vec<T>), CommError> {
        assert!(!reqs.is_empty(), "wait_any needs at least one request");
        let _span = msc_trace::span("recv_wait");
        let start = Instant::now();
        let mut poll = self.cfg.poll;
        let mut attempts = 0u32;
        let mut resends = 0usize;
        loop {
            self.poll_epoch()?;
            if let Some(pos) = self
                .stash
                .iter()
                .position(|m| reqs.iter().any(|r| r.src == m.src && r.tag == m.tag))
            {
                let m = self.stash.swap_remove(pos);
                let idx = reqs
                    .iter()
                    .position(|r| r.src == m.src && r.tag == m.tag)
                    .unwrap();
                reqs.swap_remove(idx);
                let Body::Data(payload) = m.body else {
                    unreachable!("stash holds data")
                };
                self.note_wait_done(start, resends);
                return Ok((idx, payload));
            }
            self.flush_delayed();
            let step = self.poll_step(poll, self.cfg.plain_deadline, start);
            match self.inbox.recv_timeout(step) {
                Ok(frame) => self.process_frame(frame)?,
                Err(RecvTimeoutError::Timeout) => {
                    self.maybe_heartbeat();
                    let srcs: HashSet<usize> = reqs.iter().map(|r| r.src).collect();
                    for &src in &srcs {
                        if let Some(e) = self.check_suspect(src) {
                            return Err(e);
                        }
                    }
                    let first = &reqs[0];
                    if self.reliable {
                        attempts += 1;
                        self.counters.bump(Counter::TimeoutCount, 1);
                        msc_trace::record(Counter::TimeoutCount, 1);
                        if attempts > self.cfg.max_attempts {
                            return Err(self.note_timeout(first.src, first.tag, resends));
                        }
                        // Nudge every stalled source; a dead one is a
                        // hard error (nobody will ever retransmit).
                        let first_tag = first.tag;
                        for src in srcs {
                            msc_trace::flight(
                                FlightKind::ResendRequest,
                                self.rank as u32,
                                src as u32,
                                first_tag,
                                0,
                            );
                            let nudge = Frame {
                                src: self.rank,
                                epoch: self.epoch,
                                tag: 0,
                                seq: 0,
                                attempt: 0,
                                checksum: 0,
                                body: Body::Resend,
                            };
                            if let Err(e) = self.raw_send(src, nudge) {
                                return Err(self.promote_dead(e));
                            }
                            resends += 1;
                        }
                        poll = Duration::from_secs_f64(
                            (poll.as_secs_f64() * self.cfg.backoff)
                                .min(self.cfg.poll_cap.as_secs_f64()),
                        );
                    } else if start.elapsed() >= self.cfg.plain_deadline {
                        self.counters.bump(Counter::TimeoutCount, 1);
                        msc_trace::record(Counter::TimeoutCount, 1);
                        return Err(self.note_timeout(first.src, first.tag, 0));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let e = self.note_rank_dead(reqs[0].src);
                    return Err(self.promote_dead(e));
                }
            }
        }
    }

    /// Receive-poll interval: the protocol's own cadence, capped so
    /// heartbeat and detection deadlines are honored in membership
    /// worlds (a 250 ms plain-mode doze would miss a 100 ms detect).
    fn poll_step(&self, poll: Duration, deadline: Duration, start: Instant) -> Duration {
        let mut step = if self.reliable {
            poll
        } else {
            deadline
                .saturating_sub(start.elapsed())
                .min(Duration::from_millis(250))
        };
        if let Some(hb) = &self.hb {
            step = step
                .min(hb.every.min(hb.detect) / 2)
                .max(Duration::from_millis(1));
        }
        step
    }

    /// Successful wait bookkeeping: halo-wait histogram sample, plus the
    /// recovery-delay histogram when retransmits were needed.
    fn note_wait_done(&mut self, start: Instant, resends: usize) {
        let waited = start.elapsed().as_nanos() as u64;
        self.hists.add(Hist::HaloWaitNanos, waited);
        msc_trace::record_hist(Hist::HaloWaitNanos, waited);
        if resends > 0 {
            self.hists.add(Hist::RetransmitDelayNanos, waited);
            msc_trace::record_hist(Hist::RetransmitDelayNanos, waited);
        }
    }

    /// Build the hard timeout error, leaving a flight record and dumping
    /// the recorder: the failing (src, tag) pair's last moments ship with
    /// the error.
    fn note_timeout(&mut self, src: usize, tag: u64, pending: usize) -> CommError {
        msc_trace::flight(FlightKind::Timeout, src as u32, self.rank as u32, tag, 0);
        let _ = msc_trace::dump_on_error("timeout");
        CommError::Timeout {
            src,
            tag,
            pending,
            stash_depth: self.stash.len(),
        }
    }

    fn note_rank_dead(&mut self, rank: usize) -> CommError {
        msc_trace::flight(FlightKind::Error, rank as u32, self.rank as u32, 0, 0);
        let _ = msc_trace::dump_on_error("rank_dead");
        CommError::RankDead { rank }
    }

    fn wait_deadline(&mut self, req: RecvRequest, deadline: Duration) -> Result<Vec<T>, CommError> {
        let _span = msc_trace::span("recv_wait");
        if let Some(payload) = self.take_stashed(req.src, req.tag) {
            return Ok(payload);
        }
        let start = Instant::now();
        let mut poll = self.cfg.poll;
        let mut attempts = 0u32;
        let mut resends = 0usize;
        loop {
            self.poll_epoch()?;
            self.flush_delayed();
            let step = self.poll_step(poll, deadline, start);
            match self.inbox.recv_timeout(step) {
                Ok(frame) => {
                    self.process_frame(frame)?;
                    if let Some(payload) = self.take_stashed(req.src, req.tag) {
                        self.note_wait_done(start, resends);
                        return Ok(payload);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.maybe_heartbeat();
                    if let Some(e) = self.check_suspect(req.src) {
                        return Err(e);
                    }
                    let timed_out = if self.reliable {
                        attempts += 1;
                        attempts > self.cfg.max_attempts
                    } else {
                        start.elapsed() >= deadline
                    };
                    self.counters.bump(Counter::TimeoutCount, 1);
                    msc_trace::record(Counter::TimeoutCount, 1);
                    if timed_out {
                        return Err(self.note_timeout(req.src, req.tag, resends));
                    }
                    if self.reliable {
                        // Receiver-driven recovery: ask the source to
                        // retransmit everything it still owes us. A dead
                        // source is a hard error.
                        msc_trace::flight(
                            FlightKind::ResendRequest,
                            self.rank as u32,
                            req.src as u32,
                            req.tag,
                            0,
                        );
                        let nudge = Frame {
                            src: self.rank,
                            epoch: self.epoch,
                            tag: 0,
                            seq: 0,
                            attempt: 0,
                            checksum: 0,
                            body: Body::Resend,
                        };
                        if let Err(e) = self.raw_send(req.src, nudge) {
                            return Err(self.promote_dead(e));
                        }
                        resends += 1;
                        poll = Duration::from_secs_f64(
                            (poll.as_secs_f64() * self.cfg.backoff)
                                .min(self.cfg.poll_cap.as_secs_f64()),
                        );
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let e = self.note_rank_dead(req.src);
                    return Err(self.promote_dead(e));
                }
            }
        }
    }

    fn take_stashed(&mut self, src: usize, tag: u64) -> Option<Vec<T>> {
        let pos = self
            .stash
            .iter()
            .position(|m| m.src == src && m.tag == tag)?;
        let m = self.stash.swap_remove(pos);
        let Body::Data(payload) = m.body else {
            unreachable!("stash holds data")
        };
        Some(payload)
    }

    /// Handle one inbound frame: bookkeeping for acks and retransmit
    /// requests, checksum + duplicate screening for data. Membership
    /// epochs screen first — a frame from the rolled-back past is
    /// dropped, one from a future epoch buffered for `enter_epoch` —
    /// and every on-epoch arrival refreshes the sender's liveness.
    fn process_frame(&mut self, frame: Frame<T>) -> Result<(), CommError> {
        if frame.epoch < self.epoch {
            return Ok(()); // stale timeline; recovery replay resends
        }
        if frame.epoch > self.epoch {
            self.future.push(frame);
            return Ok(());
        }
        if frame.src < self.last_heard.len() {
            self.last_heard[frame.src] = Instant::now();
        }
        match frame.body {
            Body::Heartbeat => Ok(()),
            Body::Ack => {
                msc_trace::flight(
                    FlightKind::Ack,
                    frame.src as u32,
                    self.rank as u32,
                    frame.tag,
                    frame.seq,
                );
                self.unacked[frame.src].retain(|f| f.seq != frame.seq);
                Ok(())
            }
            Body::Resend => {
                let requester = frame.src;
                let mut pending: Vec<Frame<T>> = self.unacked[requester]
                    .iter_mut()
                    .map(|f| {
                        f.attempt += 1;
                        f.clone()
                    })
                    .collect();
                for f in pending.drain(..) {
                    self.counters.bump(Counter::RetransmitCount, 1);
                    msc_trace::record(Counter::RetransmitCount, 1);
                    msc_trace::flight(
                        FlightKind::Retransmit,
                        self.rank as u32,
                        requester as u32,
                        f.tag,
                        f.seq,
                    );
                    // The requester may have died since asking; that is
                    // its problem, not ours.
                    let _ = self.transmit(requester, f);
                }
                Ok(())
            }
            Body::Data(ref payload) => {
                if frame.checksum != checksum(frame.tag, frame.seq, payload) {
                    msc_trace::flight(
                        FlightKind::Corrupt,
                        frame.src as u32,
                        self.rank as u32,
                        frame.tag,
                        frame.seq,
                    );
                    if self.reliable {
                        // Damaged in flight: drop it and nudge the source
                        // for a clean copy (best effort — our own poll
                        // timeout re-requests if this nudge is lost).
                        let _ = self.raw_send(
                            frame.src,
                            Frame {
                                src: self.rank,
                                epoch: self.epoch,
                                tag: 0,
                                seq: 0,
                                attempt: 0,
                                checksum: 0,
                                body: Body::Resend,
                            },
                        );
                        return Ok(());
                    }
                    let _ = msc_trace::dump_on_error("corrupt");
                    return Err(CommError::Corrupt {
                        src: frame.src,
                        tag: frame.tag,
                    });
                }
                if self.reliable {
                    // Acknowledge receipt so the sender can prune its
                    // retransmit buffer (best effort: an exited sender
                    // no longer cares).
                    let _ = self.raw_send(
                        frame.src,
                        Frame {
                            src: self.rank,
                            epoch: self.epoch,
                            tag: frame.tag,
                            seq: frame.seq,
                            attempt: 0,
                            checksum: 0,
                            body: Body::Ack,
                        },
                    );
                }
                // Idempotent delivery: duplicates (injected or from
                // over-eager retransmission) are dropped here.
                if !self.delivered[frame.src].insert(frame.seq) {
                    return Ok(());
                }
                msc_trace::flight(
                    FlightKind::Deliver,
                    frame.src as u32,
                    self.rank as u32,
                    frame.tag,
                    frame.seq,
                );
                msc_trace::flow_recv(
                    "halo_recv",
                    msc_trace::message_id(
                        frame.src as u32,
                        self.rank as u32,
                        frame.tag as u32,
                        frame.seq as u32,
                    ),
                );
                self.stash.push(frame);
                Ok(())
            }
        }
    }

    /// Send through the fault injector (data frames only).
    fn transmit(&mut self, dst: usize, frame: Frame<T>) -> Result<(), CommError> {
        let action = match (&self.fault, &frame.body) {
            (Some(plan), Body::Data(_)) => {
                plan.decide(self.rank, dst, frame.tag, frame.seq, frame.attempt)
            }
            _ => FaultAction::Deliver,
        };
        let (tag, seq) = (frame.tag, frame.seq);
        match action {
            FaultAction::Deliver => self.raw_send(dst, frame),
            FaultAction::Drop => {
                self.note_fault(dst, tag, seq);
                Ok(())
            }
            FaultAction::Delay => {
                self.note_fault(dst, tag, seq);
                self.delayed.push((dst, frame));
                Ok(())
            }
            FaultAction::Duplicate => {
                self.note_fault(dst, tag, seq);
                self.raw_send(dst, frame.clone())?;
                self.raw_send(dst, frame)
            }
            FaultAction::Corrupt { elem, bit } => {
                self.note_fault(dst, tag, seq);
                let mut f = frame;
                if let Body::Data(p) = &mut f.body {
                    if !p.is_empty() {
                        let i = (elem % p.len() as u64) as usize;
                        p[i].flip_bit(bit);
                    }
                }
                // Checksum still covers the original payload, so the
                // receiver detects the damage and re-requests.
                self.raw_send(dst, f)
            }
        }
    }

    fn note_fault(&mut self, dst: usize, tag: u64, seq: u64) {
        self.counters.bump(Counter::FaultsInjected, 1);
        msc_trace::record(Counter::FaultsInjected, 1);
        msc_trace::flight(
            FlightKind::FaultInjected,
            self.rank as u32,
            dst as u32,
            tag,
            seq,
        );
    }

    fn raw_send(&self, dst: usize, frame: Frame<T>) -> Result<(), CommError> {
        // `dst` is a logical rank; membership maps it to whichever
        // physical slot currently carries it (a spare after adoption).
        let phys = match &self.membership {
            Some(m) if dst < m.n_logical() => m.phys_of(dst),
            _ => dst,
        };
        self.senders[phys]
            .send(frame)
            .map_err(|_| CommError::RankDead { rank: dst })
    }

    fn flush_delayed(&mut self) {
        for (dst, frame) in std::mem::take(&mut self.delayed) {
            let _ = self.raw_send(dst, frame);
        }
    }

    /// Cooperative teardown: release any injector-held frames, then keep
    /// servicing acks and retransmit requests until every rank has
    /// departed (finished, errored, or died). Ranks that block on late
    /// halo messages can therefore still be served by peers that already
    /// finished computing. Call it as the last communication act of a
    /// rank body; ranks that skip it (or die) are counted out on drop.
    pub fn finalize(&mut self) {
        self.flush_delayed();
        self.mark_departed();
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.shared.departed.load(Ordering::Acquire) < self.n_ranks
            && Instant::now() < deadline
        {
            match self.inbox.recv_timeout(Duration::from_millis(1)) {
                Ok(frame) => {
                    let _ = self.process_frame(frame);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
}

/// A world of `n` ranks. Spawns one thread per rank and joins them.
pub struct World;

impl World {
    /// Run `f(ctx)` on every rank concurrently; returns the per-rank
    /// results in rank order. Panics in any rank propagate — a thin
    /// wrapper over [`World::try_run`] for tests and infallible callers.
    pub fn run<T, R, F>(n_ranks: usize, f: F) -> Vec<R>
    where
        T: Wire,
        R: Send,
        F: Fn(RankCtx<T>) -> R + Sync,
    {
        match Self::try_run(n_ranks, f) {
            Ok(results) => results,
            Err(e) => panic!("rank thread panicked: {e}"),
        }
    }

    /// Like [`World::run`], but a panicking rank poisons the world as a
    /// typed [`CommError::WorldPoisoned`] naming the failing rank,
    /// instead of nuking every rank's result with a joined panic.
    pub fn try_run<T, R, F>(n_ranks: usize, f: F) -> Result<Vec<R>, CommError>
    where
        T: Wire,
        R: Send,
        F: Fn(RankCtx<T>) -> R + Sync,
    {
        Self::try_run_with(n_ranks, WorldConfig::default(), f)
    }

    /// Full-control entry point: chaos plan + reliability tunables.
    pub fn try_run_with<T, R, F>(
        n_ranks: usize,
        cfg: WorldConfig,
        f: F,
    ) -> Result<Vec<R>, CommError>
    where
        T: Wire,
        R: Send,
        F: Fn(RankCtx<T>) -> R + Sync,
    {
        assert!(n_ranks > 0, "world needs at least one rank");
        let reliable = cfg.reliable.unwrap_or(cfg.fault.is_some());
        let mut senders = Vec::with_capacity(n_ranks);
        let mut receivers = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let shared = Arc::new(WorldShared {
            departed: AtomicUsize::new(0),
            alive: (0..n_ranks).map(|_| AtomicBool::new(true)).collect(),
        });

        let mut results: HashMap<usize, R> = HashMap::new();
        let mut poisoned: Option<(usize, String)> = None;
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (rank, inbox) in receivers.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let shared = Arc::clone(&shared);
                let fault = cfg.fault.clone();
                let reliability = cfg.reliability.clone();
                let membership = cfg.membership.clone();
                let heartbeat = cfg.heartbeat.clone();
                let f = &f;
                // Rank threads inherit the launching thread's telemetry
                // hub so a sessioned run keeps all ranks in one session.
                let hub = msc_trace::current_hub();
                handles.push(scope.spawn(move |_| {
                    let _hub_guard = msc_trace::install_thread_hub(hub);
                    // Tag this thread's spans, flows, and flight records
                    // with the rank id so cross-rank traces stitch.
                    msc_trace::set_current_rank(rank as u32);
                    let _span = msc_trace::span("rank");
                    let now = Instant::now();
                    let ctx = RankCtx {
                        rank,
                        n_ranks,
                        slot: rank,
                        senders,
                        inbox,
                        stash: Vec::new(),
                        next_seq: vec![0; n_ranks],
                        delivered: vec![HashSet::new(); n_ranks],
                        unacked: vec![Vec::new(); n_ranks],
                        delayed: Vec::new(),
                        fault,
                        cfg: reliability,
                        reliable,
                        exchanges: 0,
                        shared,
                        departed_marked: false,
                        epoch: 0,
                        future: Vec::new(),
                        last_heard: vec![now; n_ranks],
                        last_beat: now,
                        membership,
                        hb: heartbeat,
                        fault_note: None,
                        sent_msgs: 0,
                        counters: CounterSet::new(),
                        hists: HistSet::new(),
                    };
                    let out = catch_unwind(AssertUnwindSafe(|| f(ctx)));
                    (rank, out)
                }));
            }
            for h in handles {
                match h.join() {
                    Ok((rank, Ok(r))) => {
                        results.insert(rank, r);
                    }
                    Ok((rank, Err(payload))) => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        match &poisoned {
                            Some((r, _)) if *r <= rank => {}
                            _ => poisoned = Some((rank, message)),
                        }
                    }
                    // The closure catches its own panics, so an outer
                    // join failure should be unreachable; treat it as
                    // poison rather than crashing the caller.
                    Err(_) => {
                        if poisoned.is_none() {
                            poisoned = Some((usize::MAX, "rank join failed".into()));
                        }
                    }
                }
            }
        })
        .expect("scope itself never fails: rank panics are caught per-thread");
        if let Some((rank, message)) = poisoned {
            return Err(CommError::WorldPoisoned { rank, message });
        }
        let mut out = Vec::with_capacity(n_ranks);
        for r in 0..n_ranks {
            match results.remove(&r) {
                Some(v) => out.push(v),
                None => {
                    return Err(CommError::WorldPoisoned {
                        rank: r,
                        message: "rank produced no result".into(),
                    })
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        // Each rank sends its rank id to the next; sums must match.
        let results: Vec<usize> = World::run(4, |mut ctx: RankCtx<usize>| {
            let next = (ctx.rank + 1) % ctx.n_ranks;
            let prev = (ctx.rank + ctx.n_ranks - 1) % ctx.n_ranks;
            ctx.isend(next, 7, vec![ctx.rank]).unwrap();
            let req = ctx.irecv(prev, 7);
            ctx.wait(req).unwrap()[0]
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let results: Vec<f64> = World::run(2, |mut ctx: RankCtx<f64>| {
            if ctx.rank == 0 {
                // Send tag 2 first, then tag 1.
                ctx.isend(1, 2, vec![2.0]).unwrap();
                ctx.isend(1, 1, vec![1.0]).unwrap();
                0.0
            } else {
                // Receive tag 1 first: tag 2 must be stashed, not lost.
                let r1 = ctx.irecv(0, 1);
                let v1 = ctx.wait(r1).unwrap()[0];
                let r2 = ctx.irecv(0, 2);
                let v2 = ctx.wait(r2).unwrap()[0];
                v1 * 10.0 + v2
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn wait_all_preserves_request_order() {
        let results: Vec<Vec<i64>> = World::run(3, |mut ctx: RankCtx<i64>| {
            if ctx.rank == 0 {
                let reqs = vec![ctx.irecv(2, 0), ctx.irecv(1, 0)];
                ctx.wait_all(reqs).unwrap().into_iter().flatten().collect()
            } else {
                ctx.isend(0, 0, vec![ctx.rank as i64]).unwrap();
                vec![]
            }
        });
        assert_eq!(results[0], vec![2, 1]);
    }

    #[test]
    fn wait_any_completes_in_arrival_order() {
        // Rank 1 delays its message; wait_any must hand back rank 2's
        // payload first instead of stalling on the first posted request.
        let results: Vec<Vec<i64>> = World::run(3, |mut ctx: RankCtx<i64>| {
            if ctx.rank == 0 {
                let mut reqs = vec![ctx.irecv(1, 0), ctx.irecv(2, 0)];
                let mut arrivals = Vec::new();
                while !reqs.is_empty() {
                    let (_, payload) = ctx.wait_any(&mut reqs).unwrap();
                    arrivals.push(payload[0]);
                }
                arrivals
            } else {
                if ctx.rank == 1 {
                    std::thread::sleep(Duration::from_millis(80));
                }
                ctx.isend(0, 0, vec![ctx.rank as i64 * 10]).unwrap();
                vec![]
            }
        });
        assert_eq!(results[0], vec![20, 10]);
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let results: Vec<u64> = World::run(2, |mut ctx: RankCtx<u64>| {
            if ctx.rank == 0 {
                std::thread::sleep(Duration::from_millis(30));
                ctx.isend(1, 5, vec![99]).unwrap();
                0
            } else {
                let req = ctx.irecv(0, 5);
                let mut polls = 0u64;
                loop {
                    if let Some(v) = ctx.try_wait(&req).unwrap() {
                        assert!(polls > 0, "first poll should find nothing");
                        return v[0];
                    }
                    polls += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });
        assert_eq!(results[1], 99);
    }

    #[test]
    fn all_to_all() {
        let n = 5;
        let sums: Vec<usize> = World::run(n, move |mut ctx: RankCtx<usize>| {
            for dst in 0..ctx.n_ranks {
                if dst != ctx.rank {
                    ctx.isend(dst, 0, vec![ctx.rank * 100]).unwrap();
                }
            }
            let mut sum = 0;
            for src in 0..ctx.n_ranks {
                if src != ctx.rank {
                    let req = ctx.irecv(src, 0);
                    sum += ctx.wait(req).unwrap()[0];
                }
            }
            sum
        });
        for (rank, s) in sums.iter().enumerate() {
            let expect: usize = (0..n).filter(|&r| r != rank).map(|r| r * 100).sum();
            assert_eq!(*s, expect);
        }
    }

    #[test]
    fn single_rank_world() {
        let r: Vec<u32> = World::run(1, |ctx: RankCtx<f32>| ctx.rank as u32);
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn try_run_reports_poisoned_rank() {
        let err = World::try_run(3, |ctx: RankCtx<f64>| {
            if ctx.rank == 1 {
                panic!("deliberate test panic in rank 1");
            }
            ctx.rank
        })
        .unwrap_err();
        match err {
            CommError::WorldPoisoned { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("deliberate test panic"), "{message}");
            }
            other => panic!("expected WorldPoisoned, got {other:?}"),
        }
    }

    #[test]
    fn send_to_exited_rank_is_rank_dead() {
        let results: Vec<Option<CommError>> = World::run(2, |mut ctx: RankCtx<f64>| {
            if ctx.rank == 1 {
                return None; // exit immediately; endpoint drops
            }
            std::thread::sleep(Duration::from_millis(60));
            ctx.isend(1, 0, vec![1.0]).err()
        });
        assert_eq!(results[0], Some(CommError::RankDead { rank: 1 }));
    }

    #[test]
    fn reliable_wait_survives_heavy_drop() {
        let mut plan = FaultPlan::new(77);
        plan.drop_p = 0.5;
        let cfg = WorldConfig {
            fault: Some(Arc::new(plan)),
            reliability: ReliabilityConfig {
                poll: Duration::from_millis(2),
                max_attempts: 60,
                ..Default::default()
            },
            reliable: None,
            membership: None,
            heartbeat: None,
        };
        let results: Vec<(usize, u64)> = World::try_run_with(4, cfg, |mut ctx: RankCtx<usize>| {
            for dst in 0..ctx.n_ranks {
                if dst != ctx.rank {
                    for tag in 0..8u64 {
                        ctx.isend(dst, tag, vec![ctx.rank * 1000 + tag as usize])
                            .unwrap();
                    }
                }
            }
            let mut sum = 0usize;
            for src in 0..ctx.n_ranks {
                if src != ctx.rank {
                    for tag in 0..8u64 {
                        let req = ctx.irecv(src, tag);
                        sum += ctx.wait(req).unwrap()[0];
                    }
                }
            }
            let retransmits = ctx.counters.get(Counter::RetransmitCount)
                + ctx.counters.get(Counter::FaultsInjected);
            ctx.finalize();
            (sum, retransmits)
        })
        .unwrap();
        for (rank, (sum, _)) in results.iter().enumerate() {
            let want: usize = (0..4)
                .filter(|&s| s != rank)
                .flat_map(|s| (0..8).map(move |t| s * 1000 + t))
                .sum();
            assert_eq!(*sum, want, "rank {rank}");
        }
        // With drop_p = 0.5 over 96 data frames, faults must have fired
        // somewhere and recovery must have retransmitted.
        let total: u64 = results.iter().map(|(_, r)| r).sum();
        assert!(total > 0, "no faults or retransmits recorded");
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let mut plan = FaultPlan::new(5);
        plan.dup_p = 1.0; // every data frame sent twice
        let cfg = WorldConfig {
            fault: Some(Arc::new(plan)),
            ..Default::default()
        };
        let results: Vec<usize> = World::try_run_with(3, cfg, |mut ctx: RankCtx<usize>| {
            for dst in 0..ctx.n_ranks {
                if dst != ctx.rank {
                    ctx.isend(dst, 0, vec![ctx.rank + 1]).unwrap();
                }
            }
            let mut sum = 0;
            for src in 0..ctx.n_ranks {
                if src != ctx.rank {
                    let req = ctx.irecv(src, 0);
                    sum += ctx.wait(req).unwrap()[0];
                }
            }
            // A second receive of the duplicated payload must NOT be
            // available: the duplicate was suppressed on arrival.
            for src in 0..ctx.n_ranks {
                if src != ctx.rank {
                    let req = ctx.irecv(src, 0);
                    assert!(ctx.try_wait(&req).unwrap().is_none(), "duplicate leaked");
                }
            }
            ctx.finalize();
            sum
        })
        .unwrap();
        for (rank, s) in results.iter().enumerate() {
            let want: usize = (0..3).filter(|&r| r != rank).map(|r| r + 1).sum();
            assert_eq!(*s, want);
        }
    }

    #[test]
    fn corrupt_frame_without_reliability_is_typed_error() {
        let mut plan = FaultPlan::new(3);
        plan.corrupt_p = 1.0;
        let cfg = WorldConfig {
            fault: Some(Arc::new(plan)),
            reliable: Some(false), // detection without recovery
            ..Default::default()
        };
        let results: Vec<Option<CommError>> =
            World::try_run_with(2, cfg, |mut ctx: RankCtx<f64>| {
                if ctx.rank == 0 {
                    ctx.isend(1, 9, vec![1.0, 2.0, 3.0]).unwrap();
                    None
                } else {
                    let req = ctx.irecv(0, 9);
                    ctx.wait_timeout(req, Duration::from_secs(5)).err()
                }
            })
            .unwrap();
        assert_eq!(results[1], Some(CommError::Corrupt { src: 0, tag: 9 }));
    }

    #[test]
    fn timeout_error_names_the_pending_pair() {
        let cfg = WorldConfig {
            reliable: Some(true),
            reliability: ReliabilityConfig {
                poll: Duration::from_millis(1),
                max_attempts: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let results: Vec<Option<CommError>> =
            World::try_run_with(2, cfg, |mut ctx: RankCtx<f64>| {
                if ctx.rank == 0 {
                    // Send something on a *different* tag so the stash is
                    // non-empty, then stay alive servicing the fabric.
                    ctx.isend(1, 11, vec![4.0]).unwrap();
                    ctx.finalize();
                    None
                } else {
                    let req = ctx.irecv(0, 99); // never sent
                    let err = ctx.wait(req).err();
                    ctx.finalize();
                    err
                }
            })
            .unwrap();
        match results[1].as_ref().unwrap() {
            CommError::Timeout {
                src,
                tag,
                pending,
                stash_depth,
            } => {
                assert_eq!(*src, 0);
                assert_eq!(*tag, 99);
                assert!(*pending > 0, "should have requested retransmits");
                assert_eq!(*stash_depth, 1, "tag-11 message should be stashed");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn membership_selects_buddy_then_disk_then_initial() {
        // 3 logical ranks, 1 spare. Buddy of rank 1 is rank 2.
        let m = Membership::new(3, 1);
        // Generation 4 is globally stable: survivors 0 and 2 hold their
        // own snapshots, and rank 1's buddy holds rank 1's.
        for r in 0..3 {
            m.note_local(r, 2);
            m.note_local(r, 4);
        }
        m.note_buddy(1, 2);
        m.note_buddy(1, 4);
        // Generation 6 exists only at rank 0 — not stable.
        m.note_local(0, 6);
        match m.report_failure(1, 0, Some(2)) {
            FailureOutcome::Recovered(rec) => {
                assert_eq!(rec.epoch, 1);
                assert_eq!(rec.logical, 1);
                assert_eq!(rec.spare, 3);
                assert_eq!(rec.source, RecoverySource::Buddy { gen: 4 });
            }
            other => panic!("expected Recovered, got {other:?}"),
        }
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.phys_of(1), 3);
        assert_eq!(m.recoveries(), 1);

        // No buddy copies for rank 0 -> disk fallback, then initial.
        let m2 = Membership::new(3, 2);
        match m2.report_failure(0, 0, Some(2)) {
            FailureOutcome::Recovered(rec) => {
                assert_eq!(rec.source, RecoverySource::Disk { gen: 2 })
            }
            other => panic!("expected Recovered, got {other:?}"),
        }
        match m2.report_failure(1, 1, None) {
            FailureOutcome::Recovered(rec) => {
                assert_eq!(rec.source, RecoverySource::Initial);
                assert_eq!(rec.source.gen(), 0);
            }
            other => panic!("expected Recovered, got {other:?}"),
        }
    }

    #[test]
    fn membership_concurrent_report_is_stale_and_exhaustion_unrecoverable() {
        let m = Membership::new(2, 1);
        assert!(matches!(
            m.report_failure(0, 0, None),
            FailureOutcome::Recovered(_)
        ));
        // A second reporter still at epoch 0 lost the race.
        assert!(matches!(
            m.report_failure(0, 0, None),
            FailureOutcome::Stale
        ));
        // A genuinely new failure with the spare pool empty cannot heal.
        assert!(matches!(
            m.report_failure(1, 1, None),
            FailureOutcome::Unrecoverable
        ));
        assert!(m.is_unrecoverable());
    }

    #[test]
    fn membership_done_barrier_resets_on_failure() {
        let m = Membership::new(2, 1);
        m.report_done(0, 0);
        assert!(!m.is_finished());
        // Failure clears the done set: rank 0 must recompute from the
        // rollback generation before the world can finish.
        m.report_failure(1, 0, None);
        m.report_done(1, 1);
        assert!(!m.is_finished());
        m.report_done(0, 1);
        assert!(m.is_finished());
        // Stale-epoch reports are ignored.
        let m2 = Membership::new(1, 1);
        m2.report_failure(0, 0, None);
        m2.report_done(0, 0);
        assert!(!m2.is_finished());
    }

    #[test]
    fn heartbeat_silence_promotes_dead_peer_to_suspect() {
        let membership = Arc::new(Membership::new(2, 0));
        let cfg = WorldConfig {
            membership: Some(Arc::clone(&membership)),
            heartbeat: Some(HeartbeatConfig {
                every: Duration::from_millis(5),
                detect: Duration::from_millis(40),
            }),
            ..Default::default()
        };
        let results: Vec<Option<CommError>> =
            World::try_run_with(2, cfg, |mut ctx: RankCtx<f64>| {
                if ctx.rank == 1 {
                    return None; // dies silently; endpoint drops
                }
                let req = ctx.irecv(1, 0);
                ctx.wait(req).err()
            })
            .unwrap();
        match results[0].as_ref().unwrap() {
            CommError::RankSuspect { rank, silent_ms } => {
                assert_eq!(*rank, 1);
                assert!(
                    *silent_ms >= 40,
                    "detected before the timeout: {silent_ms} ms"
                );
            }
            other => panic!("expected RankSuspect, got {other:?}"),
        }
    }

    #[test]
    fn epoch_change_surfaces_in_wait_and_spare_learns_its_duty() {
        let membership = Arc::new(Membership::new(3, 1));
        let cfg = WorldConfig {
            membership: Some(Arc::clone(&membership)),
            ..Default::default()
        };
        let m = Arc::clone(&membership);
        let results: Vec<i64> = World::try_run_with(4, cfg, move |mut ctx: RankCtx<f64>| {
            match ctx.rank {
                0 => {
                    // Blocked on rank 1, which never sends: the epoch
                    // bump must interrupt the wait as a typed signal.
                    let req = ctx.irecv(1, 7);
                    match ctx.wait(req) {
                        Err(CommError::EpochChange { epoch }) => {
                            ctx.enter_epoch(epoch);
                            epoch as i64
                        }
                        other => panic!("expected EpochChange, got {other:?}"),
                    }
                }
                1 => {
                    std::thread::sleep(Duration::from_millis(10));
                    // Simulate a detector's report: logical 1 is dead.
                    match m.report_failure(1, 0, None) {
                        FailureOutcome::Recovered(rec) => rec.spare as i64,
                        other => panic!("expected Recovered, got {other:?}"),
                    }
                }
                2 => 0,
                _ => {
                    // The spare polls for its adoption duty.
                    loop {
                        if let Some(duty) = m.duty_of(ctx.slot) {
                            return duty.logical as i64;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        })
        .unwrap();
        assert_eq!(results[0], 1, "rank 0 saw epoch 1");
        assert_eq!(results[1], 3, "spare slot 3 was assigned");
        assert_eq!(results[3], 1, "spare adopted logical rank 1");
    }

    #[test]
    fn kill_plan_fires_via_begin_exchange() {
        let plan = Arc::new(FaultPlan::new(0).with_kill(1, 2));
        let cfg = WorldConfig {
            fault: Some(plan),
            ..Default::default()
        };
        let results: Vec<Result<u64, CommError>> =
            World::try_run_with(2, cfg, |mut ctx: RankCtx<f64>| {
                for _ in 0..4 {
                    ctx.begin_exchange()?;
                }
                ctx.finalize();
                Ok(ctx.sent_msgs)
            })
            .unwrap();
        assert!(results[0].is_ok());
        assert_eq!(
            results[1],
            Err(CommError::Killed {
                rank: 1,
                exchange: 2
            })
        );
    }
}
