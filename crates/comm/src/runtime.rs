//! The message-passing runtime: ranks are OS threads, messages travel
//! over channels, and `isend`/`irecv` follow MPI's non-blocking
//! semantics. Delivery between a pair of ranks is matched by `(src, tag)`
//! with out-of-order buffering, like MPI's unexpected-message queue.

use crossbeam::channel::{unbounded, Receiver, Sender};
use msc_trace::CounterSet;
use std::collections::HashMap;
use std::sync::Arc;

/// A point-to-point message.
#[derive(Debug, Clone)]
pub struct Message<T> {
    pub src: usize,
    pub tag: u64,
    pub payload: Vec<T>,
}

/// A posted receive: resolved by [`RankCtx::wait`].
#[derive(Debug)]
pub struct RecvRequest {
    src: usize,
    tag: u64,
}

/// Per-rank endpoint handed to each rank's closure.
pub struct RankCtx<T> {
    pub rank: usize,
    pub n_ranks: usize,
    senders: Arc<Vec<Sender<Message<T>>>>,
    inbox: Receiver<Message<T>>,
    /// Unexpected-message queue: messages that arrived before their
    /// matching irecv was waited on.
    stash: Vec<Message<T>>,
    /// Messages sent (diagnostics).
    pub sent_msgs: u64,
    /// Per-rank trace counters (halo messages/bytes and anything callers
    /// bump). Always accumulated — cheap local adds — and folded into
    /// [`crate::distributed::CommStats`] at gather time, so stats survive
    /// even when global tracing is disabled.
    pub counters: CounterSet,
}

impl<T: Send + Clone + 'static> RankCtx<T> {
    /// Non-blocking send: enqueue and return immediately (the paper's
    /// `MPI_isend`; channel buffering plays the role of the eager
    /// protocol).
    pub fn isend(&mut self, dst: usize, tag: u64, payload: Vec<T>) {
        self.senders[dst]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .expect("destination rank hung up");
        self.sent_msgs += 1;
    }

    /// Non-blocking receive: record interest in `(src, tag)` (the paper's
    /// `MPI_irecv`). Completion happens in [`RankCtx::wait`].
    pub fn irecv(&mut self, src: usize, tag: u64) -> RecvRequest {
        RecvRequest { src, tag }
    }

    /// Block until the matching message arrives; unrelated messages are
    /// stashed for later requests.
    pub fn wait(&mut self, req: RecvRequest) -> Vec<T> {
        let _span = msc_trace::span("recv_wait");
        if let Some(pos) = self
            .stash
            .iter()
            .position(|m| m.src == req.src && m.tag == req.tag)
        {
            return self.stash.swap_remove(pos).payload;
        }
        loop {
            let msg = self.inbox.recv().expect("world shut down mid-wait");
            if msg.src == req.src && msg.tag == req.tag {
                return msg.payload;
            }
            self.stash.push(msg);
        }
    }

    /// Wait on several requests, returning payloads in request order.
    pub fn wait_all(&mut self, reqs: Vec<RecvRequest>) -> Vec<Vec<T>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }
}

/// A world of `n` ranks. Spawns one thread per rank and joins them.
pub struct World;

impl World {
    /// Run `f(ctx)` on every rank concurrently; returns the per-rank
    /// results in rank order. Panics in any rank propagate.
    pub fn run<T, R, F>(n_ranks: usize, f: F) -> Vec<R>
    where
        T: Send + Clone + 'static,
        R: Send,
        F: Fn(RankCtx<T>) -> R + Sync,
    {
        assert!(n_ranks > 0, "world needs at least one rank");
        let mut senders = Vec::with_capacity(n_ranks);
        let mut receivers = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);

        let mut results: HashMap<usize, R> = HashMap::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (rank, inbox) in receivers.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let f = &f;
                handles.push(scope.spawn(move |_| {
                    let _span = msc_trace::span("rank");
                    let ctx = RankCtx {
                        rank,
                        n_ranks,
                        senders,
                        inbox,
                        stash: Vec::new(),
                        sent_msgs: 0,
                        counters: CounterSet::new(),
                    };
                    (rank, f(ctx))
                }));
            }
            for h in handles {
                let (rank, r) = h.join().expect("rank thread panicked");
                results.insert(rank, r);
            }
        })
        .expect("world scope failed");
        (0..n_ranks)
            .map(|r| results.remove(&r).expect("missing rank result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        // Each rank sends its rank id to the next; sums must match.
        let results: Vec<usize> = World::run(4, |mut ctx: RankCtx<usize>| {
            let next = (ctx.rank + 1) % ctx.n_ranks;
            let prev = (ctx.rank + ctx.n_ranks - 1) % ctx.n_ranks;
            ctx.isend(next, 7, vec![ctx.rank]);
            let req = ctx.irecv(prev, 7);
            ctx.wait(req)[0]
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let results: Vec<f64> = World::run(2, |mut ctx: RankCtx<f64>| {
            if ctx.rank == 0 {
                // Send tag 2 first, then tag 1.
                ctx.isend(1, 2, vec![2.0]);
                ctx.isend(1, 1, vec![1.0]);
                0.0
            } else {
                // Receive tag 1 first: tag 2 must be stashed, not lost.
                let r1 = ctx.irecv(0, 1);
                let v1 = ctx.wait(r1)[0];
                let r2 = ctx.irecv(0, 2);
                let v2 = ctx.wait(r2)[0];
                v1 * 10.0 + v2
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn wait_all_preserves_request_order() {
        let results: Vec<Vec<i64>> = World::run(3, |mut ctx: RankCtx<i64>| {
            if ctx.rank == 0 {
                let reqs = vec![ctx.irecv(2, 0), ctx.irecv(1, 0)];
                ctx.wait_all(reqs).into_iter().flatten().collect()
            } else {
                ctx.isend(0, 0, vec![ctx.rank as i64]);
                vec![]
            }
        });
        assert_eq!(results[0], vec![2, 1]);
    }

    #[test]
    fn all_to_all() {
        let n = 5;
        let sums: Vec<usize> = World::run(n, move |mut ctx: RankCtx<usize>| {
            for dst in 0..ctx.n_ranks {
                if dst != ctx.rank {
                    ctx.isend(dst, 0, vec![ctx.rank * 100]);
                }
            }
            let mut sum = 0;
            for src in 0..ctx.n_ranks {
                if src != ctx.rank {
                    let req = ctx.irecv(src, 0);
                    sum += ctx.wait(req)[0];
                }
            }
            sum
        });
        for (rank, s) in sums.iter().enumerate() {
            let expect: usize = (0..n).filter(|&r| r != rank).map(|r| r * 100).sum();
            assert_eq!(*s, expect);
        }
    }

    #[test]
    fn single_rank_world() {
        let r: Vec<u32> = World::run(1, |ctx: RankCtx<f32>| ctx.rank as u32);
        assert_eq!(r, vec![0]);
    }
}
