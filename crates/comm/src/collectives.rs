//! Collective operations over the message-passing runtime: barrier,
//! broadcast, and allreduce. Convergence-driven large-scale solvers
//! (paper §1: iterate "until convergence") need a global residual
//! reduction every step — these primitives provide it with the same
//! message-only discipline as the halo exchange, and like the halo
//! exchange they surface communication faults as typed [`CommError`]
//! values rather than panicking.

use crate::error::CommError;
use crate::runtime::{RankCtx, Wire};
use msc_exec::Scalar;

/// Reduction operators for [`allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Tag space reserved for collectives (distinct from halo-exchange tags,
/// which use the low byte for direction/dimension under a slot prefix).
const COLLECTIVE_TAG_BASE: u64 = 1 << 32;

/// Recursive-doubling allreduce over one `f64` value per rank. Every rank
/// returns the reduction of all ranks' contributions. `round` must be
/// identical across ranks and distinct between concurrent collectives
/// (use the timestep number).
pub fn allreduce<T: Scalar + Wire>(
    ctx: &mut RankCtx<T>,
    value: f64,
    op: ReduceOp,
    round: u64,
) -> Result<f64, CommError> {
    let n = ctx.n_ranks;
    let mut acc = value;
    // Recursive doubling handles power-of-two rank counts directly; for
    // the general case, fold the ragged tail into the power-of-two core
    // first and broadcast back afterwards.
    let p2 = n.next_power_of_two() / if n.is_power_of_two() { 1 } else { 2 };
    let tag = |phase: u64| COLLECTIVE_TAG_BASE | (round << 8) | phase;

    if ctx.rank >= p2 {
        // Tail rank: contribute to a partner in the core, then receive
        // the final result.
        let partner = ctx.rank - p2;
        ctx.isend(partner, tag(0), vec![T::from_f64(acc)])?;
        let req = ctx.irecv(partner, tag(64));
        return Ok(ctx.wait(req)?[0].to_f64());
    }
    if ctx.rank + p2 < n {
        let req = ctx.irecv(ctx.rank + p2, tag(0));
        acc = op.apply(acc, ctx.wait(req)?[0].to_f64());
    }

    let mut stride = 1usize;
    let mut phase = 1u64;
    while stride < p2 {
        let partner = ctx.rank ^ stride;
        ctx.isend(partner, tag(phase), vec![T::from_f64(acc)])?;
        let req = ctx.irecv(partner, tag(phase));
        acc = op.apply(acc, ctx.wait(req)?[0].to_f64());
        stride <<= 1;
        phase += 1;
    }

    if ctx.rank + p2 < n {
        ctx.isend(ctx.rank + p2, tag(64), vec![T::from_f64(acc)])?;
    }
    Ok(acc)
}

/// Barrier: complete when every rank has entered (an allreduce of zeros).
pub fn barrier<T: Scalar + Wire>(ctx: &mut RankCtx<T>, round: u64) -> Result<(), CommError> {
    allreduce(ctx, 0.0, ReduceOp::Sum, round)?;
    Ok(())
}

/// Broadcast `value` from rank 0 to all ranks.
pub fn broadcast<T: Scalar + Wire>(
    ctx: &mut RankCtx<T>,
    value: f64,
    round: u64,
) -> Result<f64, CommError> {
    let tag = COLLECTIVE_TAG_BASE | (round << 8) | 128;
    if ctx.rank == 0 {
        for dst in 1..ctx.n_ranks {
            ctx.isend(dst, tag, vec![T::from_f64(value)])?;
        }
        Ok(value)
    } else {
        let req = ctx.irecv(0, tag);
        Ok(ctx.wait(req)?[0].to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::World;

    fn run_allreduce(n: usize, op: ReduceOp) -> Vec<f64> {
        World::run(n, move |mut ctx: RankCtx<f64>| {
            let v = (ctx.rank + 1) as f64;
            allreduce(&mut ctx, v, op, 7).unwrap()
        })
    }

    #[test]
    fn allreduce_sum_power_of_two() {
        let r = run_allreduce(8, ReduceOp::Sum);
        assert!(r.iter().all(|&v| v == 36.0), "{r:?}");
    }

    #[test]
    fn allreduce_sum_ragged_counts() {
        for n in [1usize, 3, 5, 6, 7, 12] {
            let expect = (n * (n + 1) / 2) as f64;
            let r = run_allreduce(n, ReduceOp::Sum);
            assert!(r.iter().all(|&v| v == expect), "n={n}: {r:?}");
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let r = run_allreduce(6, ReduceOp::Max);
        assert!(r.iter().all(|&v| v == 6.0));
        let r = run_allreduce(6, ReduceOp::Min);
        assert!(r.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn consecutive_rounds_do_not_collide() {
        let r: Vec<(f64, f64)> = World::run(4, |mut ctx: RankCtx<f64>| {
            let me = ctx.rank as f64;
            let a = allreduce(&mut ctx, me, ReduceOp::Sum, 0).unwrap();
            let b = allreduce(&mut ctx, 1.0, ReduceOp::Sum, 1).unwrap();
            (a, b)
        });
        for (a, b) in r {
            assert_eq!(a, 6.0);
            assert_eq!(b, 4.0);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let r: Vec<f64> = World::run(5, |mut ctx: RankCtx<f64>| {
            let v = if ctx.rank == 0 { 42.5 } else { -1.0 };
            broadcast(&mut ctx, v, 3).unwrap()
        });
        assert!(r.iter().all(|&v| v == 42.5));
    }

    #[test]
    fn barrier_completes() {
        // All ranks pass the barrier; nothing to assert beyond
        // termination and message accounting.
        let msgs: Vec<u64> = World::run(4, |mut ctx: RankCtx<f64>| {
            barrier(&mut ctx, 9).unwrap();
            ctx.sent_msgs
        });
        assert!(msgs.iter().all(|&m| m >= 2));
    }
}
