//! Typed communication errors. The runtime used to panic on every
//! anomaly (`expect("destination rank hung up")`, `expect("world shut
//! down mid-wait")`); at scale, transient faults are the norm, so they
//! surface as values a driver can react to — retry, restart from a
//! checkpoint, or report with enough context to debug.

use msc_core::error::MscError;
use std::fmt;

/// A fault observed by the message-passing runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A posted receive never completed: the pending `(src, tag)` pair,
    /// how many retransmit requests were sent before giving up, and how
    /// many unrelated messages sat in the unexpected-message stash.
    Timeout {
        src: usize,
        tag: u64,
        pending: usize,
        stash_depth: usize,
    },
    /// A peer's endpoint is gone — its thread exited or panicked, so the
    /// send (or a retransmit request) had nowhere to go.
    RankDead { rank: usize },
    /// A payload arrived whose checksum does not match (only reachable
    /// with the reliability protocol disabled; under it, corrupt frames
    /// are dropped and retransmitted transparently).
    Corrupt { src: usize, tag: u64 },
    /// The chaos plan killed this rank at the given exchange round.
    Killed { rank: usize, exchange: u64 },
    /// A rank's closure panicked; the world's results are unusable.
    WorldPoisoned { rank: usize, message: String },
    /// The membership layer declared a peer dead: it went silent past the
    /// detection timeout (or its endpoint hung up) *and* its thread has
    /// actually exited. Unlike [`CommError::RankDead`] this is a
    /// recoverable control signal — the distributed driver reacts by
    /// promoting a hot spare instead of failing the run.
    RankSuspect { rank: usize, silent_ms: u64 },
    /// The membership epoch advanced while this rank was mid-operation:
    /// another rank died and a recovery is in progress. The driver rolls
    /// this rank back to the agreed generation and resumes; this variant
    /// never escapes a resilient run.
    EpochChange { epoch: u64 },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout {
                src,
                tag,
                pending,
                stash_depth,
            } => write!(
                f,
                "receive timed out waiting for (src {src}, tag {tag}) after {pending} retransmit \
                 request(s); {stash_depth} unrelated message(s) stashed"
            ),
            CommError::RankDead { rank } => write!(f, "rank {rank} is dead (endpoint hung up)"),
            CommError::Corrupt { src, tag } => {
                write!(f, "corrupt payload from (src {src}, tag {tag}): checksum mismatch")
            }
            CommError::Killed { rank, exchange } => {
                write!(f, "chaos plan killed rank {rank} at exchange {exchange}")
            }
            CommError::WorldPoisoned { rank, message } => {
                write!(f, "world poisoned: rank {rank} panicked: {message}")
            }
            CommError::RankSuspect { rank, silent_ms } => {
                write!(f, "rank {rank} suspected dead after {silent_ms} ms of silence")
            }
            CommError::EpochChange { epoch } => {
                write!(f, "membership epoch advanced to {epoch} (online recovery in progress)")
            }
        }
    }
}

impl std::error::Error for CommError {}

impl From<CommError> for MscError {
    fn from(e: CommError) -> MscError {
        MscError::Comm(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_display_names_pending_pair() {
        let e = CommError::Timeout {
            src: 3,
            tag: 0x207,
            pending: 5,
            stash_depth: 2,
        };
        let s = e.to_string();
        assert!(s.contains("src 3"), "{s}");
        assert!(s.contains(&format!("tag {}", 0x207)), "{s}");
        assert!(s.contains("5 retransmit"), "{s}");
    }

    #[test]
    fn converts_into_msc_error() {
        let e: MscError = CommError::RankDead { rank: 7 }.into();
        assert!(e.to_string().contains("rank 7"));
        assert!(e.to_string().contains("communication failure"));
    }
}
