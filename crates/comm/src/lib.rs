//! # msc-comm — the MSC communication library
//!
//! The paper's communication library (§4.4) has three parts: domain
//! decomposition, asynchronous halo exchange, and performance
//! auto-tuning (the tuner lives in `msc-tune`). This crate implements the
//! first two against a *real message-passing runtime*: ranks are OS
//! threads, `isend`/`irecv` are non-blocking operations over channels,
//! and the halo data genuinely travels between rank-local grids. Nothing
//! is shared — every access a rank makes to remote data must have been
//! received through a message, exactly as in MPI.
//!
//! * [`region`] — rectangular sub-regions of a padded grid (pack/unpack);
//! * [`decomp`] — Cartesian domain decomposition: sub-grids, neighbour
//!   ranks, inner (send) and outer (receive) halo regions, with
//!   dimension-ordered exchange so box-stencil corners propagate;
//! * [`runtime`] — the message-passing world: `isend`, `irecv`,
//!   `wait`, tags, out-of-order delivery buffering, plus the
//!   ack/retransmit reliability protocol and typed [`CommError`]s;
//! * [`halo`] — the halo-exchange operation built from the above;
//! * [`fault`] — deterministic seed-driven chaos injection (drops,
//!   duplicates, reordering, bit corruption, rank kills);
//! * [`checkpoint`] — periodic window-ring snapshots the resilient
//!   driver restarts from after a rank failure;
//! * [`distributed`] — a full multi-rank stencil driver used to validate
//!   that large-scale execution is bit-identical to single-node runs,
//!   even under injected faults.

pub mod backend;
pub mod checkpoint;
pub mod collectives;
pub mod decomp;
pub mod distributed;
pub mod error;
pub mod fault;
pub mod halo;
pub mod region;
pub mod runtime;

pub use backend::{FullNeighborExchange, HaloBackend};
pub use checkpoint::{ring_to_wire, wire_to_ring, BuddySnapshots, CheckpointStore};
pub use collectives::{allreduce, barrier, broadcast, ReduceOp};
pub use decomp::CartDecomp;
pub use distributed::{
    build_decomp, run_distributed, run_distributed_bc, run_distributed_exec,
    run_distributed_opts, run_distributed_resilient, run_distributed_until_converged,
    run_distributed_with, CommStats, RunOptions,
};
pub use error::CommError;
pub use fault::{FaultAction, FaultPlan, KillSpec};
pub use halo::HaloExchange;
pub use region::Region;
pub use runtime::{
    FailureOutcome, FailureRecord, HeartbeatConfig, Membership, RankCtx, RecoverySource,
    RecvRequest, ReliabilityConfig, Wire, World, WorldConfig,
};
