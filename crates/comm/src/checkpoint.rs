//! Checkpoint/restart for the distributed time loop.
//!
//! Every `K` steps each rank snapshots its window of sub-grids into a
//! checkpoint directory using the `MSCGRID1` format from
//! [`msc_exec::io`]. A checkpoint of step `s` is a set of per-rank,
//! per-window-slot grid files plus one completion **marker** per rank;
//! step `s` is restartable only when all `n_ranks` markers exist, so a
//! rank that dies mid-write can never produce a half checkpoint that a
//! restart would trust. Grid files are written to a temporary name and
//! atomically renamed before the marker appears.
//!
//! Layout inside the directory:
//!
//! ```text
//! ckpt_s<step>_r<rank>_w<slot>.grid   one MSCGRID1 file per window slot
//! ckpt_s<step>_r<rank>.ok            marker: this rank's step-s files are complete
//! ```

use msc_core::error::{MscError, Result};
use msc_exec::grid::{Grid, Scalar};
use msc_exec::io;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// A directory of step-stamped grid snapshots shared by all ranks of a
/// world (they write disjoint files, so no locking is needed).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    n_ranks: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory for a world of
    /// `n_ranks` ranks.
    pub fn new(dir: &Path, n_ranks: usize) -> Result<CheckpointStore> {
        std::fs::create_dir_all(dir).map_err(|e| {
            MscError::InvalidConfig(format!(
                "cannot create checkpoint dir {}: {e}",
                dir.display()
            ))
        })?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            n_ranks,
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn grid_path(&self, step: u64, rank: usize, slot: usize) -> PathBuf {
        self.dir.join(format!("ckpt_s{step}_r{rank}_w{slot}.grid"))
    }

    fn marker_path(&self, step: u64, rank: usize) -> PathBuf {
        self.dir.join(format!("ckpt_s{step}_r{rank}.ok"))
    }

    /// Snapshot one rank's window of grids for step `step` (the number
    /// of fully completed timesteps). Returns the bytes written. The
    /// marker is written last, after every grid file is in place.
    pub fn save_rank<T: Scalar>(
        &self,
        step: u64,
        rank: usize,
        window: &[Grid<T>],
    ) -> Result<u64> {
        let mut bytes = 0u64;
        for (slot, grid) in window.iter().enumerate() {
            let final_path = self.grid_path(step, rank, slot);
            let tmp_path = final_path.with_extension("grid.tmp");
            io::save(grid, &tmp_path)?;
            bytes += std::fs::metadata(&tmp_path).map(|m| m.len()).unwrap_or(0);
            std::fs::rename(&tmp_path, &final_path).map_err(|e| {
                MscError::InvalidConfig(format!(
                    "cannot publish checkpoint {}: {e}",
                    final_path.display()
                ))
            })?;
        }
        std::fs::write(self.marker_path(step, rank), format!("{}\n", window.len())).map_err(
            |e| MscError::InvalidConfig(format!("cannot write checkpoint marker: {e}")),
        )?;
        Ok(bytes)
    }

    /// Load one rank's window back from the checkpoint of step `step`.
    pub fn load_rank<T: Scalar>(
        &self,
        step: u64,
        rank: usize,
        n_slots: usize,
    ) -> Result<Vec<Grid<T>>> {
        (0..n_slots)
            .map(|slot| io::load(&self.grid_path(step, rank, slot)))
            .collect()
    }

    /// The most recent step for which *every* rank's marker exists —
    /// the step a restart may resume from. `None` if no complete
    /// checkpoint has been taken yet.
    pub fn latest_complete(&self) -> Option<u64> {
        let entries = std::fs::read_dir(&self.dir).ok()?;
        let mut ranks_seen: HashMap<u64, usize> = HashMap::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            // Parse `ckpt_s<step>_r<rank>.ok`.
            let Some(rest) = name.strip_prefix("ckpt_s") else { continue };
            let Some(rest) = rest.strip_suffix(".ok") else { continue };
            let Some((step_str, _rank_str)) = rest.split_once("_r") else { continue };
            if let Ok(step) = step_str.parse::<u64>() {
                *ranks_seen.entry(step).or_insert(0) += 1;
            }
        }
        ranks_seen
            .into_iter()
            .filter(|&(_, n)| n >= self.n_ranks)
            .map(|(step, _)| step)
            .max()
    }

    /// Delete every checkpoint file in the store (used by tests and by
    /// drivers that finished cleanly and no longer need restart data).
    pub fn clear(&self) -> Result<()> {
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    if name.starts_with("ckpt_s") {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str, n_ranks: usize) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("msc_ckpt_{name}"));
        let store = CheckpointStore::new(&dir, n_ranks).unwrap();
        store.clear().unwrap();
        store
    }

    #[test]
    fn roundtrip_one_rank() {
        let store = tmp_store("roundtrip", 1);
        let window: Vec<Grid<f64>> = vec![
            Grid::random(&[6, 6], &[1, 1], 1),
            Grid::random(&[6, 6], &[1, 1], 2),
        ];
        let bytes = store.save_rank(10, 0, &window).unwrap();
        assert!(bytes > 0);
        assert_eq!(store.latest_complete(), Some(10));
        let back: Vec<Grid<f64>> = store.load_rank(10, 0, 2).unwrap();
        assert_eq!(back, window);
        store.clear().unwrap();
    }

    #[test]
    fn incomplete_checkpoint_is_invisible() {
        // Two ranks expected, only one wrote: the step must not be
        // offered for restart.
        let store = tmp_store("incomplete", 2);
        let window: Vec<Grid<f64>> = vec![Grid::random(&[4, 4], &[1, 1], 3)];
        store.save_rank(5, 0, &window).unwrap();
        assert_eq!(store.latest_complete(), None);
        store.save_rank(5, 1, &window).unwrap();
        assert_eq!(store.latest_complete(), Some(5));
        store.clear().unwrap();
    }

    #[test]
    fn latest_wins_over_older() {
        let store = tmp_store("latest", 1);
        let window: Vec<Grid<f32>> = vec![Grid::random(&[4], &[1], 9)];
        store.save_rank(4, 0, &window).unwrap();
        store.save_rank(8, 0, &window).unwrap();
        assert_eq!(store.latest_complete(), Some(8));
        store.clear().unwrap();
        assert_eq!(store.latest_complete(), None);
    }
}
