//! Checkpoint/restart for the distributed time loop.
//!
//! Every `K` steps each rank snapshots its window of sub-grids into a
//! checkpoint directory using the `MSCGRID1` format from
//! [`msc_exec::io`]. A checkpoint of step `s` is a set of per-rank,
//! per-window-slot grid files plus one completion **marker** per rank;
//! step `s` is restartable only when all `n_ranks` markers exist, so a
//! rank that dies mid-write can never produce a half checkpoint that a
//! restart would trust. Grid files are written to a temporary name and
//! atomically renamed before the marker appears.
//!
//! Layout inside the directory:
//!
//! ```text
//! ckpt_s<step>_r<rank>_w<slot>.grid   one MSCGRID1 file per window slot
//! ckpt_s<step>_r<rank>.ok            marker: this rank's step-s files are complete
//! ```

use msc_core::error::{MscError, Result};
use msc_exec::grid::{Grid, Scalar};
use msc_exec::io;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::{Path, PathBuf};

/// A directory of step-stamped grid snapshots shared by all ranks of a
/// world (they write disjoint files, so no locking is needed).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    n_ranks: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory for a world of
    /// `n_ranks` ranks.
    pub fn new(dir: &Path, n_ranks: usize) -> Result<CheckpointStore> {
        std::fs::create_dir_all(dir).map_err(|e| {
            MscError::InvalidConfig(format!(
                "cannot create checkpoint dir {}: {e}",
                dir.display()
            ))
        })?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            n_ranks,
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn grid_path(&self, step: u64, rank: usize, slot: usize) -> PathBuf {
        self.dir.join(format!("ckpt_s{step}_r{rank}_w{slot}.grid"))
    }

    fn marker_path(&self, step: u64, rank: usize) -> PathBuf {
        self.dir.join(format!("ckpt_s{step}_r{rank}.ok"))
    }

    /// Snapshot one rank's window of grids for step `step` (the number
    /// of fully completed timesteps). Returns the bytes written. The
    /// marker is written last, after every grid file is in place.
    pub fn save_rank<T: Scalar>(
        &self,
        step: u64,
        rank: usize,
        window: &[Grid<T>],
    ) -> Result<u64> {
        let mut bytes = 0u64;
        for (slot, grid) in window.iter().enumerate() {
            let final_path = self.grid_path(step, rank, slot);
            let tmp_path = final_path.with_extension("grid.tmp");
            io::save(grid, &tmp_path)?;
            // An unreadable just-written file is an IO failure, not a
            // zero-byte checkpoint: swallowing it here used to silently
            // falsify the CheckpointBytes counter.
            bytes += std::fs::metadata(&tmp_path)
                .map(|m| m.len())
                .map_err(|e| {
                    MscError::InvalidConfig(format!(
                        "cannot stat checkpoint {}: {e}",
                        tmp_path.display()
                    ))
                })?;
            std::fs::rename(&tmp_path, &final_path).map_err(|e| {
                MscError::InvalidConfig(format!(
                    "cannot publish checkpoint {}: {e}",
                    final_path.display()
                ))
            })?;
        }
        std::fs::write(self.marker_path(step, rank), format!("{}\n", window.len())).map_err(
            |e| MscError::InvalidConfig(format!("cannot write checkpoint marker: {e}")),
        )?;
        Ok(bytes)
    }

    /// Load one rank's window back from the checkpoint of step `step`.
    pub fn load_rank<T: Scalar>(
        &self,
        step: u64,
        rank: usize,
        n_slots: usize,
    ) -> Result<Vec<Grid<T>>> {
        (0..n_slots)
            .map(|slot| io::load(&self.grid_path(step, rank, slot)))
            .collect()
    }

    /// The most recent step for which *every* rank's marker exists —
    /// the step a restart may resume from. `None` if no complete
    /// checkpoint has been taken yet.
    pub fn latest_complete(&self) -> Option<u64> {
        let entries = std::fs::read_dir(&self.dir).ok()?;
        let mut ranks_seen: HashMap<u64, usize> = HashMap::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            // Parse `ckpt_s<step>_r<rank>.ok`.
            let Some(rest) = name.strip_prefix("ckpt_s") else { continue };
            let Some(rest) = rest.strip_suffix(".ok") else { continue };
            let Some((step_str, _rank_str)) = rest.split_once("_r") else { continue };
            if let Ok(step) = step_str.parse::<u64>() {
                *ranks_seen.entry(step).or_insert(0) += 1;
            }
        }
        ranks_seen
            .into_iter()
            .filter(|&(_, n)| n >= self.n_ranks)
            .map(|(step, _)| step)
            .max()
    }

    /// Every step for which all `n_ranks` markers exist, ascending.
    fn complete_steps(&self) -> Vec<u64> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut ranks_seen: HashMap<u64, usize> = HashMap::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix("ckpt_s") else { continue };
            let Some(rest) = rest.strip_suffix(".ok") else { continue };
            let Some((step_str, _)) = rest.split_once("_r") else { continue };
            if let Ok(step) = step_str.parse::<u64>() {
                *ranks_seen.entry(step).or_insert(0) += 1;
            }
        }
        let mut steps: Vec<u64> = ranks_seen
            .into_iter()
            .filter(|&(_, n)| n >= self.n_ranks)
            .map(|(step, _)| step)
            .collect();
        steps.sort_unstable();
        steps
    }

    /// Garbage-collect old generations: keep the newest `keep` complete
    /// checkpoints and delete everything older — complete generations
    /// past the retention window, abandoned incomplete generations, and
    /// half-written `.grid.tmp` leftovers from crashed writers. Safe to
    /// call concurrently from every rank (deleting an already-deleted
    /// file is not an error), and never touches generations newer than
    /// the newest complete one, which may still be mid-write. Returns
    /// the number of files removed.
    pub fn gc(&self, keep: usize) -> usize {
        let complete = self.complete_steps();
        let Some(&newest) = complete.last() else {
            return 0;
        };
        let kept: BTreeSet<u64> = complete.iter().rev().take(keep.max(1)).copied().collect();
        let cutoff = *kept.iter().next().unwrap();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0usize;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix("ckpt_s") else { continue };
            let step: u64 = match rest
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|s| s.parse().ok())
            {
                Some(s) => s,
                None => continue,
            };
            let is_tmp = name.ends_with(".grid.tmp");
            // A tmp file at or below the newest complete generation is a
            // crashed writer's leftover: every published file of those
            // generations was atomically renamed away from its tmp name.
            let prune = if is_tmp { step <= newest } else { step < cutoff };
            if prune && std::fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Delete every checkpoint file in the store (used by tests and by
    /// drivers that finished cleanly and no longer need restart data).
    pub fn clear(&self) -> Result<()> {
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    if name.starts_with("ckpt_s") {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(())
    }
}

/// Diskless buddy checkpointing: each rank's in-memory store of window
/// snapshots, kept beside the disk [`CheckpointStore`]. `own` holds this
/// rank's cloned ring per generation (its rollback state after a peer
/// dies); `held` holds the serialized ring its *predecessor* replicated
/// to it over the reliable channel layer (the content of the same
/// `MSCGRID1` window snapshot the disk store writes, as a flat lattice
/// payload — shape is implied by the decomposition, which gives every
/// rank an identical sub-extent). When the predecessor dies, the held
/// payload is pushed to the adopting spare; disk remains the fallback
/// when the buddy copy is lost too.
#[derive(Debug)]
pub struct BuddySnapshots<T> {
    own: BTreeMap<u64, Vec<Grid<T>>>,
    held: BTreeMap<u64, Vec<T>>,
    keep: usize,
}

impl<T: Scalar> BuddySnapshots<T> {
    /// A store retaining the newest `keep` generations of each kind.
    pub fn new(keep: usize) -> BuddySnapshots<T> {
        BuddySnapshots {
            own: BTreeMap::new(),
            held: BTreeMap::new(),
            keep: keep.max(1),
        }
    }

    /// Snapshot this rank's own ring for generation `gen`.
    pub fn store_own(&mut self, gen: u64, window: &[Grid<T>]) {
        self.own.insert(gen, window.to_vec());
        while self.own.len() > self.keep {
            self.own.pop_first();
        }
    }

    /// This rank's own ring at `gen`, if still retained.
    pub fn own(&self, gen: u64) -> Option<&[Grid<T>]> {
        self.own.get(&gen).map(Vec::as_slice)
    }

    /// Store the predecessor's serialized ring for generation `gen`.
    pub fn store_held(&mut self, gen: u64, payload: Vec<T>) {
        self.held.insert(gen, payload);
        while self.held.len() > self.keep {
            self.held.pop_first();
        }
    }

    /// The predecessor's serialized ring at `gen`, if still retained.
    pub fn held(&self, gen: u64) -> Option<&[T]> {
        self.held.get(&gen).map(Vec::as_slice)
    }
}

/// Flatten a window ring into one wire payload: the slots' padded
/// lattices, concatenated in slot order. Every rank of a [`super::decomp::CartDecomp`]
/// has the same sub-extent and halo, so the receiver can reconstruct
/// the ring from the payload plus its own local shape.
pub fn ring_to_wire<T: Scalar>(window: &[Grid<T>]) -> Vec<T> {
    let mut out = Vec::with_capacity(window.iter().map(|g| g.as_slice().len()).sum());
    for grid in window {
        out.extend_from_slice(grid.as_slice());
    }
    out
}

/// Rebuild a window ring from a [`ring_to_wire`] payload.
pub fn wire_to_ring<T: Scalar>(
    payload: &[T],
    shape: &[usize],
    halo: &[usize],
    slots: usize,
) -> Result<Vec<Grid<T>>> {
    let mut ring = Vec::with_capacity(slots);
    let mut offset = 0usize;
    for _ in 0..slots {
        let mut grid = Grid::<T>::zeros(shape, halo);
        let len = grid.as_slice().len();
        let Some(chunk) = payload.get(offset..offset + len) else {
            return Err(MscError::InvalidConfig(format!(
                "buddy snapshot payload too short: {} elems for {} slots of {} each",
                payload.len(),
                slots,
                len
            )));
        };
        grid.as_mut_slice().copy_from_slice(chunk);
        offset += len;
        ring.push(grid);
    }
    if offset != payload.len() {
        return Err(MscError::InvalidConfig(format!(
            "buddy snapshot payload too long: {} elems, expected {}",
            payload.len(),
            offset
        )));
    }
    Ok(ring)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str, n_ranks: usize) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("msc_ckpt_{name}"));
        let store = CheckpointStore::new(&dir, n_ranks).unwrap();
        store.clear().unwrap();
        store
    }

    #[test]
    fn roundtrip_one_rank() {
        let store = tmp_store("roundtrip", 1);
        let window: Vec<Grid<f64>> = vec![
            Grid::random(&[6, 6], &[1, 1], 1),
            Grid::random(&[6, 6], &[1, 1], 2),
        ];
        let bytes = store.save_rank(10, 0, &window).unwrap();
        assert!(bytes > 0);
        assert_eq!(store.latest_complete(), Some(10));
        let back: Vec<Grid<f64>> = store.load_rank(10, 0, 2).unwrap();
        assert_eq!(back, window);
        store.clear().unwrap();
    }

    #[test]
    fn incomplete_checkpoint_is_invisible() {
        // Two ranks expected, only one wrote: the step must not be
        // offered for restart.
        let store = tmp_store("incomplete", 2);
        let window: Vec<Grid<f64>> = vec![Grid::random(&[4, 4], &[1, 1], 3)];
        store.save_rank(5, 0, &window).unwrap();
        assert_eq!(store.latest_complete(), None);
        store.save_rank(5, 1, &window).unwrap();
        assert_eq!(store.latest_complete(), Some(5));
        store.clear().unwrap();
    }

    #[test]
    fn latest_wins_over_older() {
        let store = tmp_store("latest", 1);
        let window: Vec<Grid<f32>> = vec![Grid::random(&[4], &[1], 9)];
        store.save_rank(4, 0, &window).unwrap();
        store.save_rank(8, 0, &window).unwrap();
        assert_eq!(store.latest_complete(), Some(8));
        store.clear().unwrap();
        assert_eq!(store.latest_complete(), None);
    }

    #[test]
    fn gc_keeps_newest_k_and_sweeps_partials() {
        let store = tmp_store("gc", 2);
        let window: Vec<Grid<f64>> = vec![Grid::random(&[4, 4], &[1, 1], 7)];
        for step in [2u64, 4, 6, 8] {
            store.save_rank(step, 0, &window).unwrap();
            store.save_rank(step, 1, &window).unwrap();
        }
        // An abandoned incomplete generation (one rank only) below the
        // newest complete step, plus a half-written tmp file from a
        // crashed writer.
        store.save_rank(5, 0, &window).unwrap();
        let stale_tmp = store.dir().join("ckpt_s3_r1_w0.grid.tmp");
        std::fs::write(&stale_tmp, b"partial").unwrap();
        // An in-progress generation newer than anything complete must
        // survive, tmp files included.
        store.save_rank(10, 0, &window).unwrap();
        let live_tmp = store.dir().join("ckpt_s10_r1_w0.grid.tmp");
        std::fs::write(&live_tmp, b"mid-write").unwrap();

        let removed = store.gc(2);
        assert!(removed > 0, "expected files to be pruned");
        // Newest two complete generations retained, older ones gone.
        assert_eq!(store.latest_complete(), Some(8));
        assert!(store.load_rank::<f64>(6, 0, 1).is_ok());
        assert!(store.load_rank::<f64>(4, 0, 1).is_err());
        assert!(store.load_rank::<f64>(2, 0, 1).is_err());
        // Incomplete gen 5 and the stale tmp are swept; in-progress gen
        // 10 (markers and tmp alike) is untouched.
        assert!(store.load_rank::<f64>(5, 0, 1).is_err());
        assert!(!stale_tmp.exists(), "stale tmp file must be swept");
        assert!(live_tmp.exists(), "in-progress tmp file must survive");
        assert!(store.load_rank::<f64>(10, 0, 1).is_ok());
        store.clear().unwrap();
    }

    #[test]
    fn gc_without_complete_generation_is_a_no_op() {
        let store = tmp_store("gc_empty", 2);
        let window: Vec<Grid<f64>> = vec![Grid::random(&[4, 4], &[1, 1], 1)];
        store.save_rank(3, 0, &window).unwrap();
        assert_eq!(store.gc(1), 0);
        assert!(store.load_rank::<f64>(3, 0, 1).is_ok());
        store.clear().unwrap();
    }

    #[test]
    fn save_rank_reports_true_byte_count() {
        let store = tmp_store("bytes", 1);
        let window: Vec<Grid<f64>> = vec![Grid::random(&[6, 6], &[1, 1], 11)];
        let bytes = store.save_rank(1, 0, &window).unwrap();
        let on_disk = std::fs::metadata(store.dir().join("ckpt_s1_r0_w0.grid"))
            .unwrap()
            .len();
        assert_eq!(bytes, on_disk);
        store.clear().unwrap();
    }

    #[test]
    fn buddy_ring_survives_wire_roundtrip_bit_exactly() {
        let window: Vec<Grid<f64>> = vec![
            Grid::random(&[5, 7], &[2, 1], 21),
            Grid::random(&[5, 7], &[2, 1], 22),
        ];
        let wire = ring_to_wire(&window);
        let back = wire_to_ring::<f64>(&wire, &[5, 7], &[2, 1], 2).unwrap();
        assert_eq!(back, window);
        // Truncated and oversized payloads are rejected, not mis-split.
        assert!(wire_to_ring::<f64>(&wire[..wire.len() - 1], &[5, 7], &[2, 1], 2).is_err());
        assert!(wire_to_ring::<f64>(&wire, &[5, 7], &[2, 1], 3).is_err());
    }

    #[test]
    fn buddy_store_prunes_to_keep_window() {
        let mut snaps = BuddySnapshots::<f64>::new(2);
        let ring: Vec<Grid<f64>> = vec![Grid::random(&[4], &[1], 5)];
        for gen in [2u64, 4, 6] {
            snaps.store_own(gen, &ring);
            snaps.store_held(gen, ring_to_wire(&ring));
        }
        assert!(snaps.own(2).is_none(), "oldest own gen must be pruned");
        assert!(snaps.held(2).is_none(), "oldest held gen must be pruned");
        assert!(snaps.own(4).is_some() && snaps.own(6).is_some());
        assert_eq!(snaps.held(6).unwrap(), ring_to_wire(&ring).as_slice());
    }
}
