//! Deterministic, seed-driven fault injection for the message-passing
//! runtime — the chaos half of the fault-tolerance layer.
//!
//! Every data frame is identified by `(src, dst, tag, seq, attempt)`;
//! the plan hashes that identity with its seed to decide the frame's
//! fate. The schedule is therefore a pure function of the seed and the
//! message stream — independent of thread timing — so the same seed
//! reproduces the same faults run after run, and a restarted attempt
//! replays the same drops it survived before.

use std::sync::atomic::{AtomicBool, Ordering};

/// What the injector does to one transmitted data frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass through untouched.
    Deliver,
    /// Silently lose the frame.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Hold the frame back; it is released after a later frame, so the
    /// receiver observes reordering.
    Delay,
    /// Flip one bit of one payload element (the checksum still covers
    /// the original payload, so receivers detect the damage).
    Corrupt { elem: u64, bit: u32 },
}

/// Kill one rank when it enters its `exchange`-th halo exchange
/// (1-based). One-shot: after firing once it never fires again, even
/// across checkpoint restarts of the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    pub rank: usize,
    pub exchange: u64,
}

/// A seeded chaos schedule, shared (via `Arc`) by every rank of a world
/// and across restart attempts.
#[derive(Debug)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability a data frame is dropped.
    pub drop_p: f64,
    /// Probability a data frame is duplicated.
    pub dup_p: f64,
    /// Probability a data frame is delayed past its successors.
    pub delay_p: f64,
    /// Probability one payload bit is flipped.
    pub corrupt_p: f64,
    pub kill: Option<KillSpec>,
    kill_fired: AtomicBool,
}

/// splitmix64 — the mixing function behind fault decisions and payload
/// checksums (public within the crate so the runtime shares it).
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan that injects nothing (probabilities zero, no kill).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            corrupt_p: 0.0,
            kill: None,
            kill_fired: AtomicBool::new(false),
        }
    }

    pub fn with_kill(mut self, rank: usize, exchange: u64) -> FaultPlan {
        self.kill = Some(KillSpec { rank, exchange });
        self
    }

    /// Parse a `seed:spec` string, e.g.
    /// `42:drop=0.05,dup=0.02,delay=0.1,corrupt=0.01,kill=1@3`.
    /// The spec part may be empty (a plan with no faults).
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let (seed_str, spec) = s
            .split_once(':')
            .ok_or_else(|| format!("chaos spec `{s}` must look like `seed:drop=0.05,...`"))?;
        let seed: u64 = seed_str
            .trim()
            .parse()
            .map_err(|_| format!("bad chaos seed `{seed_str}`"))?;
        let mut plan = FaultPlan::new(seed);
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("bad chaos clause `{part}` (expected key=value)"))?;
            let key = key.trim();
            let val = val.trim();
            let parse_p = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability `{v}` outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "drop" => plan.drop_p = parse_p(val)?,
                "dup" => plan.dup_p = parse_p(val)?,
                "delay" | "reorder" => plan.delay_p = parse_p(val)?,
                "corrupt" => plan.corrupt_p = parse_p(val)?,
                "kill" => {
                    let (r, k) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad kill clause `{val}` (expected rank@exchange)"))?;
                    plan.kill = Some(KillSpec {
                        rank: r.parse().map_err(|_| format!("bad kill rank `{r}`"))?,
                        exchange: k.parse().map_err(|_| format!("bad kill exchange `{k}`"))?,
                    });
                }
                other => return Err(format!("unknown chaos clause `{other}`")),
            }
        }
        if plan.drop_p + plan.dup_p + plan.delay_p + plan.corrupt_p > 1.0 {
            return Err("fault probabilities sum past 1.0".into());
        }
        Ok(plan)
    }

    /// Decide the fate of one data frame. Pure in the frame identity:
    /// retransmissions (`attempt > 0`) re-roll, so a frame that was
    /// dropped once is not doomed forever.
    pub fn decide(&self, src: usize, dst: usize, tag: u64, seq: u64, attempt: u32) -> FaultAction {
        if self.drop_p + self.dup_p + self.delay_p + self.corrupt_p == 0.0 {
            return FaultAction::Deliver;
        }
        let id = ((src as u64) << 40) ^ ((dst as u64) << 20) ^ (attempt as u64);
        let mut h = splitmix(self.seed ^ splitmix(id));
        h = splitmix(h ^ tag);
        h = splitmix(h ^ seq);
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut t = self.drop_p;
        if u < t {
            return FaultAction::Drop;
        }
        t += self.dup_p;
        if u < t {
            return FaultAction::Duplicate;
        }
        t += self.delay_p;
        if u < t {
            return FaultAction::Delay;
        }
        t += self.corrupt_p;
        if u < t {
            let h2 = splitmix(h);
            return FaultAction::Corrupt {
                elem: h2 >> 32,
                bit: (h2 & 63) as u32,
            };
        }
        FaultAction::Deliver
    }

    /// True exactly once, for the configured rank, the first time its
    /// exchange counter reaches the kill point.
    pub fn should_kill(&self, rank: usize, exchange: u64) -> bool {
        match self.kill {
            Some(k) if k.rank == rank && exchange >= k.exchange => self
                .kill_fired
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::new(seed);
        p.drop_p = 0.2;
        p.dup_p = 0.1;
        p.delay_p = 0.1;
        p.corrupt_p = 0.05;
        p
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = lossy(42);
        let b = lossy(42);
        for src in 0..4 {
            for dst in 0..4 {
                for seq in 0..64 {
                    assert_eq!(
                        a.decide(src, dst, 7, seq, 0),
                        b.decide(src, dst, 7, seq, 0),
                        "({src},{dst},{seq})"
                    );
                }
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = lossy(1);
        let b = lossy(2);
        let differs = (0..256).any(|seq| a.decide(0, 1, 0, seq, 0) != b.decide(0, 1, 0, seq, 0));
        assert!(differs);
    }

    #[test]
    fn retransmissions_reroll() {
        // With drop_p well below 1, some retransmission attempt of any
        // message must survive — the attempt number feeds the hash.
        let p = lossy(9);
        for seq in 0..32 {
            let delivered = (0..64).any(|attempt| {
                !matches!(p.decide(0, 1, 3, seq, attempt), FaultAction::Drop)
            });
            assert!(delivered, "seq {seq} dropped on every attempt");
        }
    }

    #[test]
    fn fault_rates_roughly_match_probabilities() {
        let p = lossy(1234);
        let n = 20_000;
        let drops = (0..n)
            .filter(|&seq| matches!(p.decide(0, 1, 0, seq, 0), FaultAction::Drop))
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn kill_fires_exactly_once() {
        let p = FaultPlan::new(0).with_kill(2, 3);
        assert!(!p.should_kill(2, 1));
        assert!(!p.should_kill(1, 3)); // wrong rank
        assert!(p.should_kill(2, 3));
        assert!(!p.should_kill(2, 3)); // one-shot
        assert!(!p.should_kill(2, 4)); // stays dead
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("42:drop=0.05,dup=0.02,delay=0.1,corrupt=0.01,kill=1@3").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.drop_p, 0.05);
        assert_eq!(p.dup_p, 0.02);
        assert_eq!(p.delay_p, 0.1);
        assert_eq!(p.corrupt_p, 0.01);
        assert_eq!(p.kill, Some(KillSpec { rank: 1, exchange: 3 }));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("no-colon").is_err());
        assert!(FaultPlan::parse("x:drop=0.1").is_err());
        assert!(FaultPlan::parse("1:drop=1.5").is_err());
        assert!(FaultPlan::parse("1:kill=2").is_err());
        assert!(FaultPlan::parse("1:mystery=0.5").is_err());
        assert!(FaultPlan::parse("1:drop=0.9,dup=0.9").is_err());
    }

    #[test]
    fn empty_spec_is_a_noop_plan() {
        let p = FaultPlan::parse("7:").unwrap();
        assert_eq!(p.decide(0, 1, 0, 0, 0), FaultAction::Deliver);
    }
}
