//! The asynchronous halo exchange (paper §4.4, Figure 6(b)/(c)): pack the
//! inner halo, `isend` to each neighbour, `irecv` from each neighbour,
//! unpack into the outer halo. Dimensions are exchanged in order so that
//! corner values propagate (required for box stencils).

use crate::decomp::CartDecomp;
use crate::error::CommError;
use crate::runtime::{RankCtx, RecvRequest, Wire};
use msc_exec::{Grid, Scalar};
use msc_trace::Counter;

/// Halo-exchange operator bound to a decomposition.
#[derive(Debug, Clone)]
pub struct HaloExchange {
    pub decomp: CartDecomp,
}

impl HaloExchange {
    pub fn new(decomp: CartDecomp) -> HaloExchange {
        HaloExchange { decomp }
    }

    /// Tag for (slot, dim, dir): slots separate exchanges of different
    /// time-window buffers in flight.
    fn tag(slot: usize, dim: usize, dir: i64) -> u64 {
        (slot as u64) << 8 | (dim as u64) << 1 | u64::from(dir > 0)
    }

    /// Exchange the halo of `grid` for this rank. Returns the number of
    /// messages sent; faults that recovery cannot hide surface as
    /// [`CommError`].
    ///
    /// Dimension-ordered: for each dim, both faces are posted
    /// asynchronously and waited before moving to the next dim, because
    /// the next dim's faces include the halo just received.
    pub fn exchange<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &mut Grid<T>,
        slot: usize,
    ) -> Result<usize, CommError> {
        let _span = msc_trace::span("halo_exchange");
        ctx.begin_exchange()?;
        let mut sent = 0;
        for dim in 0..self.decomp.ndim() {
            if self.decomp.reach[dim] == 0 {
                continue;
            }
            let (n, pending) = self.post_dim(ctx, grid, slot, dim)?;
            sent += n;
            self.wait_dim(ctx, grid, dim, pending)?;
        }
        Ok(sent)
    }

    /// Pack and post (isend + irecv) both faces of one dimension.
    /// Reads only the inner halo band of `grid` for dims `>= dim`
    /// (`exch_span` uses the full padded range only for dims `< dim`,
    /// whose halo must already be fresh).
    pub(crate) fn post_dim<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &Grid<T>,
        slot: usize,
        dim: usize,
    ) -> Result<(usize, Vec<(i64, RecvRequest)>), CommError> {
        let mut sent = 0;
        let mut pending = Vec::new();
        for dir in [-1i64, 1] {
            if let Some(nb) = self.decomp.neighbor(ctx.rank, dim, dir) {
                let payload = {
                    let _t = msc_trace::timed_hist(Counter::PackNanos, msc_trace::Hist::PackHistNanos);
                    self.decomp.send_region(dim, dir).pack(grid)
                };
                let bytes = (payload.len() * std::mem::size_of::<T>()) as u64;
                ctx.counters.bump(Counter::HaloMessages, 1);
                ctx.counters.bump(Counter::HaloBytes, bytes);
                msc_trace::record(Counter::HaloMessages, 1);
                msc_trace::record(Counter::HaloBytes, bytes);
                ctx.isend(nb, Self::tag(slot, dim, dir), payload)?;
                sent += 1;
                // The neighbour sends back with the *opposite*
                // direction tag (its face toward us).
                let req = ctx.irecv(nb, Self::tag(slot, dim, -dir));
                pending.push((dir, req));
            }
        }
        Ok((sent, pending))
    }

    /// Complete one dimension's posted faces and unpack into the halo.
    pub(crate) fn wait_dim<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &mut Grid<T>,
        dim: usize,
        pending: Vec<(i64, RecvRequest)>,
    ) -> Result<(), CommError> {
        for (dir, req) in pending {
            let data = ctx.wait(req)?;
            let _t = msc_trace::timed_hist(Counter::UnpackNanos, msc_trace::Hist::UnpackHistNanos);
            self.decomp.recv_region(dim, dir).unpack(grid, &data);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::World;

    /// Build each rank's local grid from a globally-defined function so
    /// exchanges can be verified against ground truth.
    fn local_grid(decomp: &CartDecomp, rank: usize, f: impl Fn(&[i64]) -> f64) -> Grid<f64> {
        let sub = decomp.sub_extent();
        let origin = decomp.origin_of(rank);
        let mut g: Grid<f64> = Grid::zeros(&sub, &decomp.reach);
        // Fill the padded buffer from global coordinates (halo included).
        let padded = g.padded.clone();
        let mut idx = vec![0usize; padded.len()];
        loop {
            let gc: Vec<i64> = idx
                .iter()
                .enumerate()
                .map(|(d, &i)| origin[d] as i64 + i as i64 - decomp.reach[d] as i64)
                .collect();
            let lin: usize = idx.iter().zip(&g.strides).map(|(&i, &s)| i * s).sum();
            g.as_mut_slice()[lin] = f(&gc);
            let mut d = padded.len();
            loop {
                if d == 0 {
                    return g;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < padded[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    fn global_value(gc: &[i64]) -> f64 {
        gc.iter().fold(1.0, |acc, &c| acc * 31.0 + c as f64)
    }

    /// After scrambling the interior-adjacent halo and exchanging, every
    /// halo cell whose global coordinate lies inside the global domain
    /// must hold the neighbour's value.
    fn check_exchange(global: &[usize], procs: &[usize], reach: &[usize]) {
        let decomp = CartDecomp::new(global, procs, reach).unwrap();
        let ex = HaloExchange::new(decomp.clone());
        let grids: Vec<Grid<f64>> = World::run(decomp.n_ranks(), |mut ctx| {
            let mut g = local_grid(&decomp, ctx.rank, |gc| {
                // Interior gets the true value; everything else poison.
                let inside = gc
                    .iter()
                    .enumerate()
                    .all(|(d, &c)| {
                        let o = decomp.origin_of(ctx.rank)[d] as i64;
                        c >= o && c < o + decomp.sub_extent()[d] as i64
                    });
                if inside {
                    global_value(gc)
                } else {
                    f64::NAN
                }
            });
            ex.exchange(&mut ctx, &mut g, 0).unwrap();
            g
        });
        // Verify: every padded cell that maps inside the global domain
        // now holds the true global value.
        for (rank, g) in grids.iter().enumerate() {
            let origin = decomp.origin_of(rank);
            let padded = g.padded.clone();
            let mut idx = vec![0usize; padded.len()];
            loop {
                let gc: Vec<i64> = idx
                    .iter()
                    .enumerate()
                    .map(|(d, &i)| origin[d] as i64 + i as i64 - reach[d] as i64)
                    .collect();
                let inside_global = gc
                    .iter()
                    .zip(global)
                    .all(|(&c, &gl)| c >= 0 && c < gl as i64);
                if inside_global {
                    let lin: usize = idx.iter().zip(&g.strides).map(|(&i, &s)| i * s).sum();
                    let v = g.as_slice()[lin];
                    assert!(
                        (v - global_value(&gc)).abs() < 1e-9,
                        "rank {rank} at {gc:?}: got {v}"
                    );
                }
                let mut d = padded.len();
                let mut done = true;
                loop {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < padded[d] {
                        done = false;
                        break;
                    }
                    idx[d] = 0;
                }
                if done {
                    break;
                }
            }
        }
    }

    #[test]
    fn exchange_2d_figure6() {
        check_exchange(&[8, 8], &[2, 2], &[1, 1]);
    }

    #[test]
    fn exchange_2d_wide_halo() {
        // Corners matter with reach 2 (box stencils).
        check_exchange(&[12, 12], &[2, 2], &[2, 2]);
    }

    #[test]
    fn exchange_3d() {
        check_exchange(&[8, 8, 8], &[2, 2, 2], &[1, 1, 1]);
    }

    #[test]
    fn exchange_asymmetric_procs() {
        check_exchange(&[16, 8], &[4, 1], &[2, 2]);
    }

    #[test]
    fn message_count_matches_neighbor_count() {
        let decomp = CartDecomp::new(&[8, 8], &[2, 2], &[1, 1]).unwrap();
        let ex = HaloExchange::new(decomp.clone());
        let counts: Vec<usize> = World::run(4, |mut ctx| {
            let mut g: Grid<f64> = Grid::zeros(&decomp.sub_extent(), &decomp.reach);
            ex.exchange(&mut ctx, &mut g, 0).unwrap()
        });
        for (rank, &c) in counts.iter().enumerate() {
            assert_eq!(c, decomp.n_neighbors(rank), "rank {rank}");
        }
    }
}
