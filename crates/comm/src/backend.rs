//! Pluggable halo-exchange backends (paper Table 1, "Pluggable library";
//! §4.4: "users can easily plug in their own halo-exchanging libraries
//! (e.g., GCL in STELLA) and seamlessly integrate with code generation").
//!
//! A backend is anything that can publish a rank's fresh state to its
//! neighbours. Two implementations ship:
//!
//! * [`crate::halo::HaloExchange`] — MSC's default: dimension-ordered,
//!   asynchronous, face-only messages (corners propagate through the
//!   ordering);
//! * [`FullNeighborExchange`] — GCL-style: one phase exchanging with all
//!   `3^d − 1` neighbours, including explicit edge/corner messages.
//!
//! Both are verified bit-identical against single-node execution.

use crate::decomp::CartDecomp;
use crate::error::CommError;
use crate::halo::HaloExchange;
use crate::region::Region;
use crate::runtime::{RankCtx, RecvRequest, Wire};
use msc_exec::{Grid, Scalar};
use msc_trace::Counter;

/// In-flight state of a split-phase halo exchange, between
/// [`HaloBackend::exchange_begin`] and [`HaloBackend::exchange_finish`].
/// Opaque to callers; each backend stores what its finish phase needs.
pub struct PendingExchange {
    sent: usize,
    inner: PendingInner,
}

enum PendingInner {
    /// Backend has no split-phase support; finish runs the full exchange.
    NotStarted,
    /// Everything already posted *and* completed in the begin phase (or
    /// there was nothing to exchange).
    Done,
    /// Dimension-ordered: one dimension posted, the rest still to run.
    DimOrdered {
        dim: usize,
        reqs: Vec<(i64, RecvRequest)>,
    },
    /// GCL-style: every neighbour posted, all waits still to run.
    FullNeighbor {
        reqs: Vec<(Vec<i64>, RecvRequest)>,
    },
}

impl PendingExchange {
    /// `true` if the begin phase actually posted messages, i.e. finish
    /// will only wait/unpack (and possibly post later dimensions).
    pub fn started(&self) -> bool {
        !matches!(self.inner, PendingInner::NotStarted)
    }
}

/// A halo-exchange strategy: publish the halo of `grid` for this rank.
/// Returns the number of messages sent; unrecoverable faults (timeout,
/// dead peer, chaos kill) surface as [`CommError`].
pub trait HaloBackend: Sync {
    fn name(&self) -> &'static str;
    fn exchange<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &mut Grid<T>,
        slot: usize,
    ) -> Result<usize, CommError>;
    fn decomp(&self) -> &CartDecomp;

    /// Initiate the exchange: pack what can be packed without waiting and
    /// post the isend/irecv pairs, reading **only** the inner halo band
    /// of `grid` — the caller may keep computing interior cells (those at
    /// least `reach` away from every face) while the messages are in
    /// flight. Counts the chaos exchange round exactly once; the matching
    /// [`HaloBackend::exchange_finish`] must not count another.
    ///
    /// The default implementation posts nothing and defers the whole
    /// exchange to `exchange_finish`.
    fn exchange_begin<T: Scalar + Wire>(
        &self,
        _ctx: &mut RankCtx<T>,
        _grid: &Grid<T>,
        _slot: usize,
    ) -> Result<PendingExchange, CommError> {
        Ok(PendingExchange {
            sent: 0,
            inner: PendingInner::NotStarted,
        })
    }

    /// Complete an exchange started by [`HaloBackend::exchange_begin`]:
    /// wait for the posted messages, unpack into the halo, and run any
    /// remaining ordered phases. Returns the total number of messages
    /// sent across both phases.
    fn exchange_finish<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &mut Grid<T>,
        slot: usize,
        pending: PendingExchange,
    ) -> Result<usize, CommError> {
        match pending.inner {
            PendingInner::NotStarted => self.exchange(ctx, grid, slot),
            PendingInner::Done => Ok(pending.sent),
            // The defaults never build these; a backend that overrides
            // `exchange_begin` must override `exchange_finish` too.
            _ => unreachable!("backend overrode exchange_begin but not exchange_finish"),
        }
    }
}

impl HaloBackend for HaloExchange {
    fn name(&self) -> &'static str {
        "dimension-ordered-async"
    }

    fn exchange<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &mut Grid<T>,
        slot: usize,
    ) -> Result<usize, CommError> {
        HaloExchange::exchange(self, ctx, grid, slot)
    }

    fn decomp(&self) -> &CartDecomp {
        &self.decomp
    }

    /// Post the **first** exchanged dimension only. Its send regions read
    /// the pure inner halo band, which boundary tiles have already
    /// written; later dimensions' packs read halo cells received in
    /// earlier phases (`exch_span` widens dims `< dim` to the padded
    /// range), so they cannot be posted before their predecessors
    /// complete and stay in the finish phase.
    fn exchange_begin<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &Grid<T>,
        slot: usize,
    ) -> Result<PendingExchange, CommError> {
        let _span = msc_trace::span("halo_exchange");
        ctx.begin_exchange()?;
        let Some(dim) = (0..self.decomp.ndim()).find(|&d| self.decomp.reach[d] > 0) else {
            return Ok(PendingExchange {
                sent: 0,
                inner: PendingInner::Done,
            });
        };
        let (sent, reqs) = self.post_dim(ctx, grid, slot, dim)?;
        Ok(PendingExchange {
            sent,
            inner: PendingInner::DimOrdered { dim, reqs },
        })
    }

    fn exchange_finish<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &mut Grid<T>,
        slot: usize,
        pending: PendingExchange,
    ) -> Result<usize, CommError> {
        let PendingInner::DimOrdered { dim, reqs } = pending.inner else {
            return match pending.inner {
                PendingInner::NotStarted => self.exchange(ctx, grid, slot),
                _ => Ok(pending.sent),
            };
        };
        let _span = msc_trace::span("halo_exchange");
        let mut sent = pending.sent;
        self.wait_dim(ctx, grid, dim, reqs)?;
        for d in dim + 1..self.decomp.ndim() {
            if self.decomp.reach[d] == 0 {
                continue;
            }
            let (n, p) = self.post_dim(ctx, grid, slot, d)?;
            sent += n;
            self.wait_dim(ctx, grid, d, p)?;
        }
        Ok(sent)
    }
}

/// GCL-style exchange: every one of the `3^d − 1` neighbour offsets gets
/// its own message carrying exactly the face/edge/corner block it needs —
/// a single communication phase instead of `d` ordered ones.
#[derive(Debug, Clone)]
pub struct FullNeighborExchange {
    pub decomp: CartDecomp,
}

impl FullNeighborExchange {
    pub fn new(decomp: CartDecomp) -> FullNeighborExchange {
        FullNeighborExchange { decomp }
    }

    /// All non-zero offset vectors in {-1,0,1}^d.
    fn offsets(ndim: usize) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let mut v = vec![-1i64; ndim];
        loop {
            if v.iter().any(|&x| x != 0) {
                out.push(v.clone());
            }
            let mut d = ndim;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                v[d] += 1;
                if v[d] <= 1 {
                    break;
                }
                v[d] = -1;
            }
        }
    }

    /// Neighbour rank at a multi-dimensional offset, respecting
    /// per-dimension periodicity.
    fn neighbor_at(&self, rank: usize, v: &[i64]) -> Option<usize> {
        let mut coords = self.decomp.coords_of(rank);
        for (d, &o) in v.iter().enumerate() {
            if o == 0 {
                continue;
            }
            let p = self.decomp.procs[d] as i64;
            let c = coords[d] as i64 + o;
            let c = if self.decomp.periodic[d] {
                (c % p + p) % p
            } else if c < 0 || c >= p {
                return None;
            } else {
                c
            };
            coords[d] = c as usize;
        }
        Some(self.decomp.rank_of(&coords))
    }

    /// Interior block to *send* toward offset `v`.
    fn send_block(&self, v: &[i64]) -> Region {
        let sub = self.decomp.sub_extent();
        let r = &self.decomp.reach;
        let (start, extent): (Vec<usize>, Vec<usize>) = v
            .iter()
            .enumerate()
            .map(|(d, &o)| match o {
                0 => (r[d], sub[d]),
                1 => (r[d] + sub[d] - r[d], r[d]),
                _ => (r[d], r[d]),
            })
            .unzip();
        Region::new(start, extent)
    }

    /// Halo block that *receives* data arriving from offset `v`.
    fn recv_block(&self, v: &[i64]) -> Region {
        let sub = self.decomp.sub_extent();
        let r = &self.decomp.reach;
        let (start, extent): (Vec<usize>, Vec<usize>) = v
            .iter()
            .enumerate()
            .map(|(d, &o)| match o {
                0 => (r[d], sub[d]),
                1 => (r[d] + sub[d], r[d]),
                _ => (0, r[d]),
            })
            .unzip();
        Region::new(start, extent)
    }

    /// Tag for (slot, offset index).
    fn tag(slot: usize, v_idx: usize) -> u64 {
        (slot as u64) << 8 | v_idx as u64
    }
}

impl HaloBackend for FullNeighborExchange {
    fn name(&self) -> &'static str {
        "full-neighbor-gcl"
    }

    fn exchange<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &mut Grid<T>,
        slot: usize,
    ) -> Result<usize, CommError> {
        let pending = HaloBackend::exchange_begin(self, ctx, grid, slot)?;
        HaloBackend::exchange_finish(self, ctx, grid, slot, pending)
    }

    fn decomp(&self) -> &CartDecomp {
        &self.decomp
    }

    /// Single-phase protocol: every send block reads the pure interior
    /// (never a halo cell), so *all* `3^d − 1` messages can be posted up
    /// front and the whole communication overlaps interior compute.
    fn exchange_begin<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &Grid<T>,
        slot: usize,
    ) -> Result<PendingExchange, CommError> {
        let _span = msc_trace::span("halo_exchange");
        ctx.begin_exchange()?;
        let ndim = self.decomp.ndim();
        let offsets = Self::offsets(ndim);
        let mut sent = 0;
        let mut reqs = Vec::new();
        // Phase 1: post everything.
        for (i, v) in offsets.iter().enumerate() {
            if let Some(nb) = self.neighbor_at(ctx.rank, v) {
                let payload = {
                    let _t = msc_trace::timed_hist(Counter::PackNanos, msc_trace::Hist::PackHistNanos);
                    self.send_block(v).pack(grid)
                };
                let bytes = (payload.len() * std::mem::size_of::<T>()) as u64;
                ctx.counters.bump(Counter::HaloMessages, 1);
                ctx.counters.bump(Counter::HaloBytes, bytes);
                msc_trace::record(Counter::HaloMessages, 1);
                msc_trace::record(Counter::HaloBytes, bytes);
                ctx.isend(nb, Self::tag(slot, i), payload)?;
                sent += 1;
                // The matching inbound message comes from the neighbour's
                // *opposite* offset.
                let neg: Vec<i64> = v.iter().map(|&o| -o).collect();
                let neg_idx = offsets.iter().position(|o| o == &neg).expect("mirror");
                let req = ctx.irecv(nb, Self::tag(slot, neg_idx));
                reqs.push((v.clone(), req));
            }
        }
        Ok(PendingExchange {
            sent,
            inner: PendingInner::FullNeighbor { reqs },
        })
    }

    fn exchange_finish<T: Scalar + Wire>(
        &self,
        ctx: &mut RankCtx<T>,
        grid: &mut Grid<T>,
        slot: usize,
        pending: PendingExchange,
    ) -> Result<usize, CommError> {
        let PendingInner::FullNeighbor { reqs } = pending.inner else {
            return match pending.inner {
                PendingInner::NotStarted => HaloBackend::exchange(self, ctx, grid, slot),
                _ => Ok(pending.sent),
            };
        };
        let _span = msc_trace::span("halo_exchange");
        // Phase 2: complete and unpack.
        for (v, req) in reqs {
            let data = ctx.wait(req)?;
            let _t = msc_trace::timed_hist(Counter::UnpackNanos, msc_trace::Hist::UnpackHistNanos);
            self.recv_block(&v).unpack(grid, &data);
        }
        Ok(pending.sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::World;

    #[test]
    fn offset_enumeration() {
        assert_eq!(FullNeighborExchange::offsets(2).len(), 8);
        assert_eq!(FullNeighborExchange::offsets(3).len(), 26);
    }

    #[test]
    fn corner_blocks_have_corner_shapes() {
        let d = CartDecomp::new(&[8, 8], &[2, 2], &[2, 2]).unwrap();
        let ex = FullNeighborExchange::new(d);
        let corner = ex.send_block(&[1, 1]);
        assert_eq!(corner.extent, vec![2, 2]);
        let face = ex.send_block(&[1, 0]);
        assert_eq!(face.extent, vec![2, 4]);
        let recv_corner = ex.recv_block(&[-1, -1]);
        assert_eq!(recv_corner.start, vec![0, 0]);
    }

    #[test]
    fn full_neighbor_message_count() {
        // Interior rank of a 3x3 grid talks to all 8 neighbours.
        let d = CartDecomp::new(&[9, 9], &[3, 3], &[1, 1]).unwrap();
        let ex = FullNeighborExchange::new(d.clone());
        let sent: Vec<usize> = World::run(9, |mut ctx| {
            let mut g: Grid<f64> = Grid::zeros(&d.sub_extent(), &d.reach);
            HaloBackend::exchange(&ex, &mut ctx, &mut g, 0).unwrap()
        });
        assert_eq!(sent[4], 8); // centre rank
        assert_eq!(sent[0], 3); // corner rank
    }

    #[test]
    fn send_recv_blocks_mirror() {
        let d = CartDecomp::new(&[12, 12, 12], &[2, 2, 2], &[2, 1, 2]).unwrap();
        let ex = FullNeighborExchange::new(d);
        for v in FullNeighborExchange::offsets(3) {
            let neg: Vec<i64> = v.iter().map(|&o| -o).collect();
            assert_eq!(
                ex.send_block(&neg).extent,
                ex.recv_block(&v).extent,
                "offset {v:?}"
            );
        }
    }
}
