//! Full distributed execution: every MPI rank (thread) owns a sub-grid,
//! computes its tiles locally, and exchanges halos through the runtime —
//! the complete large-scale code path MSC generates (paper §4.4).
//!
//! The headline property, tested here and in the integration suite: a
//! distributed run is **bit-identical** to the single-node run of the
//! same program, for any process grid — including runs where a rank is
//! killed mid-flight and healed online by a hot spare.

use crate::checkpoint::{ring_to_wire, wire_to_ring, BuddySnapshots, CheckpointStore};
use crate::decomp::CartDecomp;
use crate::error::CommError;
use crate::fault::FaultPlan;
use crate::halo::HaloExchange;
use crate::region::Region;
use crate::runtime::{
    FailureOutcome, FailureRecord, HeartbeatConfig, Membership, RankCtx, RecoverySource,
    ReliabilityConfig, Wire, World, WorldConfig, KEEP_GENS,
};
use msc_core::error::{MscError, Result};
use msc_core::prelude::*;
use msc_core::schedule::plan::{ExecPlan, TileRange};
use msc_core::schedule::WindowPlan;
use msc_exec::boundary::{self, Boundary};
use msc_exec::{tiled, Grid, Scalar, TieredStencil};
use msc_trace::{Counter, CounterSet, FlightKind, Hist, HistSet, Profile};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-run communication statistics, aggregated over ranks.
///
/// Like [`msc_exec::driver::RunStats`], this is a thin view over the
/// trace counter vocabulary: each rank accumulates a [`CounterSet`]
/// (halo messages/bytes from the exchanger, DMA and tile counters from
/// the executors) and the gather loop merges them all into `counters`.
/// The headline fields stay as plain members for ergonomic access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommStats {
    pub messages: u64,
    pub steps: usize,
    pub ranks: usize,
    /// How many times the run was restarted from a checkpoint (or from
    /// the initial state) after a detected rank failure. Zero for plain
    /// drivers; only [`run_distributed_resilient`] can restart.
    pub restarts: usize,
    /// How many dead ranks were healed *online* — a hot spare adopted
    /// the subdomain from a buddy snapshot while survivors rolled back
    /// in place. Distinct from `restarts`, which tears the whole world
    /// down and replays from disk.
    pub recoveries: usize,
    /// Merged counters across all ranks: halo traffic plus whatever the
    /// per-rank executors recorded (DMA bytes/rows, SPM peak, tiles).
    pub counters: CounterSet,
    /// Merged latency histograms across all ranks (halo wait, retransmit
    /// recovery delay, per-step wall time).
    pub hists: HistSet,
}

impl CommStats {
    pub fn halo_messages(&self) -> u64 {
        self.counters.get(Counter::HaloMessages)
    }
    pub fn halo_bytes(&self) -> u64 {
        self.counters.get(Counter::HaloBytes)
    }
    pub fn dma_get_bytes(&self) -> u64 {
        self.counters.get(Counter::DmaGetBytes)
    }
    pub fn dma_put_bytes(&self) -> u64 {
        self.counters.get(Counter::DmaPutBytes)
    }
    pub fn spm_peak_bytes(&self) -> u64 {
        self.counters.get(Counter::SpmPeakBytes)
    }
    pub fn tiles_executed(&self) -> u64 {
        self.counters.get(Counter::TilesExecuted)
    }
    pub fn retransmits(&self) -> u64 {
        self.counters.get(Counter::RetransmitCount)
    }
    pub fn faults_injected(&self) -> u64 {
        self.counters.get(Counter::FaultsInjected)
    }
    pub fn checkpoint_bytes(&self) -> u64 {
        self.counters.get(Counter::CheckpointBytes)
    }
    pub fn heartbeats_sent(&self) -> u64 {
        self.counters.get(Counter::HeartbeatsSent)
    }
    pub fn buddy_bytes(&self) -> u64 {
        self.counters.get(Counter::BuddyBytes)
    }
    pub fn rank_recoveries(&self) -> u64 {
        self.counters.get(Counter::RankRecoveries)
    }

    /// Wrap into a timeline-free [`Profile`] (counters + histograms)
    /// for reporting.
    pub fn profile(&self, label: impl Into<String>) -> Profile {
        let mut p = Profile::from_counters(label, self.counters);
        p.hists = self.hists;
        p
    }
}

/// Extract the local padded grid of `rank` from the global grid (the
/// global grid's halo is the physical boundary; interior-facing local
/// halos are filled with the neighbouring ranks' data, which equals the
/// global values at initialization).
fn scatter<T: Scalar>(global: &Grid<T>, decomp: &CartDecomp, rank: usize) -> Grid<T> {
    let sub = decomp.sub_extent();
    let origin = decomp.origin_of(rank);
    let mut local: Grid<T> = Grid::zeros(&sub, &decomp.reach);
    // Local padded coordinate i maps to global *padded* coordinate
    // origin + i (both halos have width `reach`).
    let src_region = Region::new(origin.clone(), local.padded.clone());
    let buf = src_region.pack(global);
    let dst_region = Region::new(vec![0; sub.len()], local.padded.clone());
    dst_region.unpack(&mut local, &buf);
    local
}

/// Run `program` over a `procs` Cartesian process grid, starting from the
/// global `init` grid, with Dirichlet boundaries. `make_plan` builds the
/// per-rank execution plan for the sub-grid shape. Returns the gathered
/// global result and stats.
pub fn run_distributed<T: Scalar + Wire>(
    program: &StencilProgram,
    procs: &[usize],
    init: &Grid<T>,
    make_plan: impl Fn(&[usize]) -> Result<ExecPlan> + Sync,
) -> Result<(Grid<T>, CommStats)> {
    run_distributed_bc(program, procs, init, Boundary::Dirichlet, make_plan)
}

/// Like [`run_distributed`] with an explicit boundary condition. Under
/// periodic boundaries the process grid becomes a torus: boundary ranks
/// exchange with the opposite side (single-process dimensions wrap onto
/// themselves through self-messages).
pub fn run_distributed_bc<T: Scalar + Wire>(
    program: &StencilProgram,
    procs: &[usize],
    init: &Grid<T>,
    bc: Boundary,
    make_plan: impl Fn(&[usize]) -> Result<ExecPlan> + Sync,
) -> Result<(Grid<T>, CommStats)> {
    let decomp = build_decomp(program, procs, bc)?;
    let exchanger = HaloExchange::new(decomp);
    run_distributed_with(program, init, bc, &exchanger, make_plan)
}

/// Build and validate the decomposition for a program/process-grid pair.
pub fn build_decomp(program: &StencilProgram, procs: &[usize], bc: Boundary) -> Result<CartDecomp> {
    let reach = program.stencil.reach();
    // The grid's halo must equal the stencil reach for scatter/gather
    // coordinates to line up.
    if program.grid.halo != reach {
        return Err(MscError::InvalidConfig(format!(
            "distributed run requires grid halo {:?} == stencil reach {:?}",
            program.grid.halo, reach
        )));
    }
    let mut decomp = CartDecomp::new(&program.grid.shape, procs, &reach)?;
    if bc == Boundary::Periodic {
        decomp = decomp.with_periodicity(&vec![true; reach.len()])?;
    }
    Ok(decomp)
}

/// Run with a caller-supplied halo-exchange backend (the paper's
/// pluggable-library design: swap MSC's asynchronous exchanger for a
/// GCL-style one without touching the driver).
pub fn run_distributed_with<T: Scalar + Wire, B: crate::backend::HaloBackend>(
    program: &StencilProgram,
    init: &Grid<T>,
    bc: Boundary,
    exchanger: &B,
    make_plan: impl Fn(&[usize]) -> Result<ExecPlan> + Sync,
) -> Result<(Grid<T>, CommStats)> {
    run_distributed_exec(program, init, bc, exchanger, None, make_plan)
}

/// Like [`run_distributed_with`], with each rank staging its tiles
/// through a bounded SPM when `spm_capacity` is given (the full
/// large-scale Sunway code path: DMA-staged tiles + asynchronous halo
/// exchange).
pub fn run_distributed_exec<T: Scalar + Wire, B: crate::backend::HaloBackend>(
    program: &StencilProgram,
    init: &Grid<T>,
    bc: Boundary,
    exchanger: &B,
    spm_capacity: Option<usize>,
    make_plan: impl Fn(&[usize]) -> Result<ExecPlan> + Sync,
) -> Result<(Grid<T>, CommStats)> {
    // Legacy entry point: no chaos, no checkpoints, no restarts.
    let opts = RunOptions {
        max_restarts: 0,
        ..RunOptions::default()
    };
    run_distributed_opts(program, init, bc, exchanger, spm_capacity, &opts, make_plan)
}

/// Fault-tolerance options for [`run_distributed_resilient`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Seeded chaos plan injected into every rank's channel layer; also
    /// switches the runtime's ack/retransmit reliability protocol on.
    pub chaos: Option<Arc<FaultPlan>>,
    /// Reliability-protocol tunables (polls, backoff, retry budget).
    pub reliability: ReliabilityConfig,
    /// Directory for checkpoint snapshots; checkpointing is active only
    /// when this is set *and* `checkpoint_every > 0`.
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot the window ring every K completed steps.
    pub checkpoint_every: usize,
    /// How many times a failed run may be restarted (from the latest
    /// complete checkpoint if one exists, else from the initial state).
    pub max_restarts: usize,
    /// Communication–computation overlap: compute boundary tiles first,
    /// initiate the halo exchange, compute interior tiles while the
    /// messages are in flight, then complete the exchange. Bit-identical
    /// to the sequential schedule (same tile partition, same per-tile
    /// arithmetic); on by default.
    pub overlap: bool,
    /// Execution tier for every rank's tiled compute (`Auto` resolves to
    /// the specialized row kernels where the shape allows, else the
    /// bytecode VM). All tiers are bit-identical, so chaos replays and
    /// checkpoint restarts are tier-agnostic.
    pub tier: msc_exec::ExecTier,
    /// Hot-spare ranks launched idle beside the compute ranks. When the
    /// membership layer declares a compute rank dead, a spare adopts its
    /// subdomain (from the buddy snapshot, the disk checkpoint, or the
    /// initial state) and the run heals online instead of restarting.
    /// Implies the membership + heartbeat machinery.
    pub spare_ranks: usize,
    /// Heartbeat interval and failure-detection timeout. `Some` switches
    /// the membership layer on even without spares (detection without
    /// adoption still falls back to a disk restart); `None` with
    /// `spare_ranks > 0` uses [`HeartbeatConfig::default`]. Validated at
    /// run entry — a bad configuration is a typed error, never a panic.
    pub heartbeat: Option<HeartbeatConfig>,
    /// Complete checkpoint generations retained on disk; after each
    /// snapshot, older generations and abandoned `.grid.tmp` leftovers
    /// are garbage-collected.
    pub checkpoint_keep: usize,
    /// Telemetry hub the run should record into. `None` keeps whatever
    /// hub the calling thread already has installed (usually the
    /// process-wide default) — `Some` scopes every counter, span,
    /// flight-recorder entry, and per-rank sample of this run to the
    /// given session, which is how the sampler observes one run without
    /// cross-talk from concurrent work.
    pub hub: Option<Arc<msc_trace::TelemetryHub>>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            chaos: None,
            reliability: ReliabilityConfig::default(),
            checkpoint_dir: None,
            checkpoint_every: 0,
            max_restarts: 3,
            overlap: true,
            tier: msc_exec::ExecTier::Auto,
            spare_ranks: 0,
            heartbeat: None,
            checkpoint_keep: 2,
            hub: None,
        }
    }
}

/// Partition the plan's tiles into (boundary, interior) for this rank:
/// a tile is **boundary** iff it owns at least one cell of the inner
/// halo band that some neighbour will receive — i.e. for some dim `d`
/// with `reach[d] > 0`, the tile intersects the band of width `reach[d]`
/// against a face that has a neighbour. Corner/edge blocks are covered
/// because a diagonal neighbour only exists where the face neighbours
/// do. The halo exchange may be initiated as soon as the boundary tiles
/// have been computed; interior tiles touch none of the packed cells.
fn split_tiles(
    tiles: &[TileRange],
    decomp: &CartDecomp,
    rank: usize,
) -> (Vec<TileRange>, Vec<TileRange>) {
    let sub = decomp.sub_extent();
    let mut boundary = Vec::new();
    let mut interior = Vec::new();
    for tile in tiles {
        let is_boundary = (0..decomp.ndim()).any(|d| {
            let r = decomp.reach[d];
            r > 0
                && ((decomp.neighbor(rank, d, -1).is_some() && tile.origin[d] < r)
                    || (decomp.neighbor(rank, d, 1).is_some()
                        && tile.origin[d] + tile.extent[d] > sub[d] - r))
        });
        if is_boundary {
            boundary.push(tile.clone());
        } else {
            interior.push(tile.clone());
        }
    }
    (boundary, interior)
}

/// Fault-tolerant distributed run: chaos injection, reliable halo
/// delivery, periodic checkpoints, hot-spare online recovery, and
/// restart-on-failure as the last resort. With default options it
/// behaves exactly like [`run_distributed_bc`].
pub fn run_distributed_resilient<T: Scalar + Wire>(
    program: &StencilProgram,
    procs: &[usize],
    init: &Grid<T>,
    bc: Boundary,
    opts: &RunOptions,
    make_plan: impl Fn(&[usize]) -> Result<ExecPlan> + Sync,
) -> Result<(Grid<T>, CommStats)> {
    // Lint gate (target-independent passes) before any rank spawns.
    msc_lint::check_deny(program, None)?;
    let decomp = build_decomp(program, procs, bc)?;
    let exchanger = HaloExchange::new(decomp);
    run_distributed_opts(program, init, bc, &exchanger, None, opts, make_plan)
}

/// Is this error a communication fault a restart could heal (a killed or
/// dead rank, a timeout, a poisoned world), as opposed to a programming
/// or configuration error that would fail identically again?
fn is_restartable(e: &MscError) -> bool {
    matches!(e, MscError::Comm(_))
}

/// Control-plane tag namespaces, disjoint from halo tags (which use
/// only low bits) and from each other; the checkpoint generation rides
/// in the low bits. `BUDDY` carries the steady-state snapshot ring
/// shift, `ADOPT` the one-shot handoff of a dead rank's snapshot to
/// the spare adopting it.
const BUDDY_TAG: u64 = 1 << 62;
const ADOPT_TAG: u64 = 1 << 61;

/// What one physical slot produced. A slot that dies (chaos kill) or
/// stands by unused (idle spare) retires with its stats; every logical
/// subdomain must be covered by exactly one `Computed` outcome.
enum RankOutcome<T> {
    Computed {
        logical: usize,
        interior: Vec<T>,
        sent: u64,
        counters: CounterSet,
        hists: HistSet,
    },
    Retired {
        sent: u64,
        counters: CounterSet,
        hists: HistSet,
    },
}

/// Immutable per-attempt surroundings of the per-rank step loop,
/// bundled so the compute and recovery helpers stay readable.
struct StepEnv<'a, T: Scalar, B> {
    program: &'a StencilProgram,
    plan: &'a ExecPlan,
    decomp: &'a CartDecomp,
    seeded: &'a Grid<T>,
    compiled: &'a TieredStencil<T>,
    window: &'a WindowPlan,
    exchanger: &'a B,
    opts: &'a RunOptions,
    spm_capacity: Option<usize>,
    store: Option<&'a CheckpointStore>,
    membership: Option<&'a Arc<Membership>>,
    sub: &'a [usize],
    reach: &'a [usize],
}

/// A freshly scattered window ring for `logical`'s subdomain.
fn fresh_ring<T: Scalar + Wire, B>(env: &StepEnv<'_, T, B>, logical: usize) -> Vec<Grid<T>> {
    let local = scatter(env.seeded, env.decomp, logical);
    (0..env.window.window).map(|_| local.clone()).collect()
}

/// How a rank reacts to a failed step loop.
enum Reaction {
    /// We are the rank the chaos plan killed: leave the fabric so the
    /// survivors' detectors fire, and retire this slot.
    Retire,
    /// A peer died and the membership layer healed it: roll our own
    /// state back to the record's generation and recompute.
    Rollback(FailureRecord),
}

/// Classify a step-loop failure using the typed control fault the
/// runtime noted before flattening it into an error string. Anything
/// that is not an online-recoverable event propagates into the
/// restart machinery.
fn plan_recovery<T: Wire>(
    ctx: &mut RankCtx<T>,
    membership: Option<&Arc<Membership>>,
    store: Option<&CheckpointStore>,
    err: MscError,
) -> Result<Reaction> {
    let fault = ctx.take_fault();
    let Some(m) = membership else { return Err(err) };
    match fault {
        Some(CommError::Killed { rank, .. }) if rank == ctx.rank => Ok(Reaction::Retire),
        Some(CommError::EpochChange { .. }) => {
            m.latest_failure().map(Reaction::Rollback).ok_or(err)
        }
        Some(CommError::RankSuspect { rank, .. }) => {
            let disk = store.and_then(|s| s.latest_complete());
            match m.report_failure(rank, ctx.epoch(), disk) {
                FailureOutcome::Recovered(rec) => Ok(Reaction::Rollback(rec)),
                // Someone else reported first: follow their record.
                FailureOutcome::Stale => m.latest_failure().map(Reaction::Rollback).ok_or(err),
                FailureOutcome::Unrecoverable => Err(err),
            }
        }
        _ => Err(err),
    }
}

/// Survivor-side rollback to a recovery record: enter the new epoch,
/// hand the dead rank's buddy snapshot to its adopter if we hold it,
/// and rewind our own ring to the agreed generation.
fn rollback<T: Scalar + Wire, B: crate::backend::HaloBackend>(
    ctx: &mut RankCtx<T>,
    env: &StepEnv<'_, T, B>,
    rec: &FailureRecord,
    snaps: &BuddySnapshots<T>,
) -> Result<(Vec<Grid<T>>, usize)> {
    ctx.enter_epoch(rec.epoch);
    if let RecoverySource::Buddy { gen } = rec.source {
        if ctx.rank == env.decomp.buddy_of(rec.logical) && ctx.rank != rec.logical {
            let payload = snaps.held(gen).ok_or_else(|| {
                MscError::InvalidConfig(format!(
                    "buddy copy of rank {} gen {gen} vanished before handoff",
                    rec.logical
                ))
            })?;
            ctx.isend(rec.logical, ADOPT_TAG | gen, payload.to_vec())?;
        }
    }
    match rec.source {
        RecoverySource::Buddy { gen } => {
            // The membership layer only picks a generation every
            // survivor noted, so our own copy must still be retained.
            let ring = snaps
                .own(gen)
                .ok_or_else(|| {
                    MscError::InvalidConfig(format!(
                        "own snapshot gen {gen} vanished before rollback"
                    ))
                })?
                .to_vec();
            Ok((ring, gen as usize))
        }
        RecoverySource::Disk { gen } => {
            let st = env.store.ok_or_else(|| {
                MscError::InvalidConfig("disk recovery without a checkpoint store".into())
            })?;
            Ok((
                st.load_rank(gen, ctx.rank, env.window.window)?,
                gen as usize,
            ))
        }
        RecoverySource::Initial => Ok((fresh_ring(env, ctx.rank), 0)),
    }
}

/// Spare-side adoption: take over the dead rank's logical identity and
/// obtain its window ring from the recovery source.
fn adopt_state<T: Scalar + Wire, B: crate::backend::HaloBackend>(
    ctx: &mut RankCtx<T>,
    env: &StepEnv<'_, T, B>,
    m: &Membership,
    rec: &FailureRecord,
    snaps: &mut BuddySnapshots<T>,
    counters: &mut CounterSet,
) -> Result<(Vec<Grid<T>>, usize)> {
    ctx.adopt(rec.logical);
    ctx.enter_epoch(rec.epoch);
    counters.bump(Counter::RankRecoveries, 1);
    msc_trace::record(Counter::RankRecoveries, 1);
    msc_trace::note_rank_recovery(rec.logical as u32);
    msc_trace::flight(
        FlightKind::Recover,
        rec.logical as u32,
        ctx.slot() as u32,
        rec.source.gen(),
        rec.epoch,
    );
    match rec.source {
        RecoverySource::Buddy { gen } => {
            let holder = env.decomp.buddy_of(rec.logical);
            let req = ctx.irecv(holder, ADOPT_TAG | gen);
            let payload = ctx.wait(req)?;
            let ring = wire_to_ring(&payload, env.sub, env.reach, env.window.window)?;
            // Seed our own snapshot store so a later failure can rewind
            // this subdomain without re-pulling from the buddy.
            snaps.store_own(gen, &ring);
            m.note_local(rec.logical, gen);
            Ok((ring, gen as usize))
        }
        RecoverySource::Disk { gen } => {
            let st = env.store.ok_or_else(|| {
                MscError::InvalidConfig("disk recovery without a checkpoint store".into())
            })?;
            let ring = st.load_rank(gen, rec.logical, env.window.window)?;
            snaps.store_own(gen, &ring);
            m.note_local(rec.logical, gen);
            Ok((ring, gen as usize))
        }
        RecoverySource::Initial => Ok((fresh_ring(env, rec.logical), 0)),
    }
}

/// An idle hot spare: service the fabric until the world finishes, a
/// failure assigns us a subdomain, or recovery becomes impossible.
/// Returns the adoption duty, or `None` to stand down.
fn spare_standby<T: Wire>(
    ctx: &mut RankCtx<T>,
    m: &Membership,
    store: Option<&CheckpointStore>,
) -> Option<FailureRecord> {
    loop {
        if let Some(rec) = m.duty_of(ctx.slot()) {
            return Some(rec);
        }
        if m.is_finished() || m.is_unrecoverable() {
            return None;
        }
        // Spares watch liveness too: if every compute rank died before
        // anyone could report (or the reporter raced us), the
        // observation must still reach the membership layer. The epoch
        // is read *before* the sweep so a report that landed in between
        // classifies ours as stale instead of opening a second epoch.
        let observed = m.epoch();
        if let Some(CommError::RankSuspect { rank, .. }) = ctx.poll_suspects() {
            let disk = store.and_then(|s| s.latest_complete());
            let _ = m.report_failure(rank, observed, disk);
            let _ = ctx.take_fault();
            continue;
        }
        if ctx.service_for(Duration::from_millis(1)).is_err() {
            // An epoch change just means "look again" for an idle spare.
            let _ = ctx.take_fault();
        }
    }
}

/// Replicate this rank's window ring to its buddy and collect the
/// predecessor's — the diskless checkpoint ring shift, run at every
/// checkpoint generation in membership worlds. Every rank reaches this
/// point at the same step, and the send is non-blocking, so the shift
/// cannot deadlock.
fn buddy_replicate<T: Scalar + Wire, B>(
    ctx: &mut RankCtx<T>,
    env: &StepEnv<'_, T, B>,
    m: &Membership,
    ring: &[Grid<T>],
    snaps: &mut BuddySnapshots<T>,
    gen: u64,
    counters: &mut CounterSet,
) -> Result<()>
where
    B: crate::backend::HaloBackend,
{
    snaps.store_own(gen, ring);
    m.note_local(ctx.rank, gen);
    let buddy = env.decomp.buddy_of(ctx.rank);
    if buddy == ctx.rank {
        return Ok(()); // single-rank worlds have nobody to replicate to
    }
    let wire = ring_to_wire(ring);
    let bytes = (wire.len() * std::mem::size_of::<T>()) as u64;
    ctx.isend(buddy, BUDDY_TAG | gen, wire)?;
    counters.bump(Counter::BuddyBytes, bytes);
    msc_trace::record(Counter::BuddyBytes, bytes);
    let n = m.n_logical();
    let pred = (ctx.rank + n - 1) % n;
    let req = ctx.irecv(pred, BUDDY_TAG | gen);
    let payload = ctx.wait(req)?;
    snaps.store_held(gen, payload);
    m.note_buddy(pred, gen);
    Ok(())
}

/// One attempt of the time loop for one rank, from step `start` to the
/// end: overlapped (or sequential) tile compute, halo exchange, disk
/// checkpoints with retention GC, and buddy replication. Any error is
/// classified by the caller — online recovery where possible, restart
/// otherwise.
fn compute_steps<T: Scalar + Wire, B: crate::backend::HaloBackend>(
    ctx: &mut RankCtx<T>,
    env: &StepEnv<'_, T, B>,
    ring: &mut [Grid<T>],
    start: usize,
    snaps: &mut BuddySnapshots<T>,
    counters: &mut CounterSet,
    hists: &mut HistSet,
) -> Result<()> {
    let opts = env.opts;
    let (program, plan, window, compiled) = (env.program, env.plan, env.window, env.compiled);
    // Boundary/interior split for communication overlap, recomputed per
    // attempt: after adoption this rank's neighbour set changed.
    let tiles = plan.tiles();
    let (boundary_tiles, interior_tiles) = split_tiles(&tiles, env.decomp, ctx.rank);

    for s in start..program.timesteps {
        // Rank-tagged step span (arg = step index) feeding the
        // straggler report, plus the step-wall histogram.
        let _step_span = msc_trace::span_arg(msc_trace::stitch::STEP_SPAN, s as u64);
        let step_t0 = Instant::now();
        let t = compiled.max_dt + s;
        let out_slot = window.output_slot(t);
        let mut out = std::mem::replace(&mut ring[out_slot], Grid::zeros(&[1], &[0]));
        let exchanging = s + 1 < program.timesteps;
        {
            let inputs: Vec<&Grid<T>> = (1..=compiled.max_dt)
                .map(|dt| window.input_slot(t, dt).map(|slot| &ring[slot]))
                .collect::<Result<_>>()?;
            if exchanging && opts.overlap {
                // Overlapped schedule: boundary wave → initiate the
                // exchange → interior wave (concurrent with the
                // messages) → complete. The wait inside
                // `exchange_finish` still lands in the HaloWait
                // histogram via `ctx.wait`.
                match env.spm_capacity {
                    None => {
                        tiled::step_tiles(compiled, plan, &inputs, &mut out, &boundary_tiles);
                        let pending = env.exchanger.exchange_begin(ctx, &out, out_slot)?;
                        let t0 = Instant::now();
                        tiled::step_tiles(compiled, plan, &inputs, &mut out, &interior_tiles);
                        let overlap_ns = t0.elapsed().as_nanos() as u64;
                        counters.bump(Counter::OverlapNanos, overlap_ns);
                        counters.bump(Counter::TilesExecuted, tiles.len() as u64);
                        msc_trace::record(Counter::OverlapNanos, overlap_ns);
                        msc_trace::record(Counter::TilesExecuted, tiles.len() as u64);
                        env.exchanger
                            .exchange_finish(ctx, &mut out, out_slot, pending)?;
                    }
                    Some(cap) => {
                        let mut st = msc_exec::spm::step_tiles(
                            compiled,
                            plan,
                            &inputs,
                            &mut out,
                            cap,
                            &boundary_tiles,
                        )?;
                        let pending = env.exchanger.exchange_begin(ctx, &out, out_slot)?;
                        let t0 = Instant::now();
                        st.merge(&msc_exec::spm::step_tiles(
                            compiled,
                            plan,
                            &inputs,
                            &mut out,
                            cap,
                            &interior_tiles,
                        )?);
                        let overlap_ns = t0.elapsed().as_nanos() as u64;
                        counters.bump(Counter::OverlapNanos, overlap_ns);
                        counters.merge(&st.counters());
                        msc_trace::record(Counter::OverlapNanos, overlap_ns);
                        msc_trace::record_set(&st.counters());
                        env.exchanger
                            .exchange_finish(ctx, &mut out, out_slot, pending)?;
                    }
                }
            } else {
                match env.spm_capacity {
                    None => {
                        let n = tiled::step(compiled, plan, &inputs, &mut out);
                        counters.bump(Counter::TilesExecuted, n as u64);
                    }
                    Some(cap) => {
                        let st = msc_exec::spm::step(compiled, plan, &inputs, &mut out, cap)?;
                        counters.merge(&st.counters());
                    }
                }
                // Publish the new state's halo to the neighbours
                // before anyone (including us) reads it next step.
                if exchanging {
                    env.exchanger.exchange(ctx, &mut out, out_slot)?;
                }
            }
        }
        ring[out_slot] = out;
        let (vm_d, spec_rows) = compiled.take_tier_counters();
        if vm_d > 0 {
            counters.bump(Counter::VmDispatches, vm_d);
            msc_trace::record(Counter::VmDispatches, vm_d);
        }
        if spec_rows > 0 {
            counters.bump(Counter::SpecializedHits, spec_rows);
            msc_trace::record(Counter::SpecializedHits, spec_rows);
        }
        // Snapshot after the step (and its exchange) fully completed,
        // so a restart resumes with halos as fresh as the original run
        // had them. The same cadence drives disk checkpoints and the
        // diskless buddy ring shift.
        let gen_due = opts.checkpoint_every > 0
            && (s + 1) % opts.checkpoint_every == 0
            && s + 1 < program.timesteps;
        if gen_due {
            let gen = (s + 1) as u64;
            if let Some(st) = env.store {
                let t0 = Instant::now();
                let bytes = st.save_rank(gen, ctx.rank, ring)?;
                let nanos = t0.elapsed().as_nanos() as u64;
                counters.bump(Counter::CheckpointBytes, bytes);
                counters.bump(Counter::CheckpointNanos, nanos);
                msc_trace::record(Counter::CheckpointBytes, bytes);
                msc_trace::record(Counter::CheckpointNanos, nanos);
                msc_trace::flight(
                    FlightKind::Checkpoint,
                    ctx.rank as u32,
                    ctx.rank as u32,
                    bytes,
                    gen,
                );
                // Retention: drop generations past the keep window and
                // crashed writers' half-written tmp files. Safe under
                // concurrent callers.
                let _ = st.gc(opts.checkpoint_keep);
            }
            if let Some(m) = env.membership {
                buddy_replicate(ctx, env, m, ring, snaps, gen, counters)?;
            }
        }
        let wall = step_t0.elapsed().as_nanos() as u64;
        hists.add(Hist::StepWallNanos, wall);
        msc_trace::record_hist(Hist::StepWallNanos, wall);
        // Feed the live telemetry plane: the per-rank table (the
        // sampler's stall detector compares these step fronts across
        // ranks) and the session step counter — in a sessioned hub,
        // `steps` counts rank-steps, i.e. aggregate step throughput.
        msc_trace::note_rank_step(ctx.rank as u32, s as u64);
        msc_trace::record(Counter::Steps, 1);
    }
    Ok(())
}

/// The whole lifecycle of one physical slot: spares idle until adoption
/// (or stand-down), compute ranks run the step loop; failures loop
/// through classification → rollback → recompute until the world
/// finishes or the error escapes to the restart machinery.
fn rank_body<T: Scalar + Wire, B: crate::backend::HaloBackend>(
    mut ctx: RankCtx<T>,
    env: &StepEnv<'_, T, B>,
    resume: Option<u64>,
) -> Result<RankOutcome<T>> {
    let slot = ctx.slot();
    let mut counters = CounterSet::new();
    let mut hists = HistSet::new();
    // In-memory snapshot retention mirrors the membership layer's
    // per-rank generation pruning, so a generation it promises is one
    // we still hold.
    let mut snaps: BuddySnapshots<T> = BuddySnapshots::new(KEEP_GENS);

    let mut ring: Vec<Grid<T>>;
    let mut start: usize;
    let is_spare = env.membership.is_some_and(|m| slot >= m.n_logical());
    if is_spare {
        let m = env.membership.expect("spare slots imply membership");
        match spare_standby(&mut ctx, m, env.store) {
            None => {
                ctx.finalize();
                counters.merge(&ctx.counters);
                hists.merge(&ctx.hists);
                return Ok(RankOutcome::Retired {
                    sent: ctx.sent_msgs,
                    counters,
                    hists,
                });
            }
            Some(rec) => {
                let (r, s) = adopt_state(&mut ctx, env, m, &rec, &mut snaps, &mut counters)?;
                ring = r;
                start = s;
            }
        }
    } else {
        ring = fresh_ring(env, ctx.rank);
        start = 0;
        if let (Some(st), Some(step)) = (env.store, resume) {
            // Every rank resumes from the same checkpoint step, decided
            // once per attempt before the world spawned.
            ring = st.load_rank(step, ctx.rank, env.window.window)?;
            start = step as usize;
        }
    }

    loop {
        let err = match compute_steps(
            &mut ctx,
            env,
            &mut ring,
            start,
            &mut snaps,
            &mut counters,
            &mut hists,
        ) {
            Ok(()) => {
                // Membership done-barrier: stand by servicing the fabric
                // (retransmit requests, buddy traffic) until every
                // logical rank finished under the final epoch. A late
                // failure pulls us back into compute — rollback is
                // global, so even finished ranks replay.
                let mut late: Option<MscError> = None;
                if let Some(m) = env.membership {
                    m.report_done(ctx.rank, ctx.epoch());
                    while !m.is_finished() && !m.is_unrecoverable() {
                        if let Some(e) = ctx.poll_suspects() {
                            late = Some(e.into());
                            break;
                        }
                        if let Err(e) = ctx.service_for(Duration::from_millis(1)) {
                            late = Some(e.into());
                            break;
                        }
                    }
                }
                match late {
                    None => {
                        let last = env
                            .window
                            .output_slot(env.compiled.max_dt + env.program.timesteps - 1);
                        let interior =
                            Region::new(env.reach.to_vec(), env.sub.to_vec()).pack(&ring[last]);
                        // Keep servicing the fabric until every rank is
                        // done, then fold protocol counters into the
                        // rank's stats.
                        ctx.finalize();
                        counters.merge(&ctx.counters);
                        hists.merge(&ctx.hists);
                        return Ok(RankOutcome::Computed {
                            logical: ctx.rank,
                            interior,
                            sent: ctx.sent_msgs,
                            counters,
                            hists,
                        });
                    }
                    Some(e) => e,
                }
            }
            Err(e) => e,
        };
        match plan_recovery(&mut ctx, env.membership, env.store, err)? {
            Reaction::Retire => {
                // Deliberately no `finalize`: dropping the endpoint is
                // what lets the survivors' failure detectors fire.
                counters.merge(&ctx.counters);
                hists.merge(&ctx.hists);
                return Ok(RankOutcome::Retired {
                    sent: ctx.sent_msgs,
                    counters,
                    hists,
                });
            }
            Reaction::Rollback(rec) => {
                let (r, s) = rollback(&mut ctx, env, &rec, &snaps)?;
                ring = r;
                start = s;
            }
        }
    }
}

/// The full driver: every public `run_distributed*` entry point funnels
/// here. One attempt spawns the world (compute ranks plus hot spares),
/// runs the time loop with optional SPM staging, chaos injection, and
/// periodic disk + buddy checkpoints; a rank death in a membership
/// world heals online (spare adoption + global rollback), and a failed
/// attempt (typed communication error — never a panic) is retried from
/// the latest complete checkpoint up to `opts.max_restarts` times.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_opts<T: Scalar + Wire, B: crate::backend::HaloBackend>(
    program: &StencilProgram,
    init: &Grid<T>,
    bc: Boundary,
    exchanger: &B,
    spm_capacity: Option<usize>,
    opts: &RunOptions,
    make_plan: impl Fn(&[usize]) -> Result<ExecPlan> + Sync,
) -> Result<(Grid<T>, CommStats)> {
    // Scope the run to its session hub (if any) before the first
    // telemetry call below; rank threads re-install it at spawn.
    let _hub_guard = opts
        .hub
        .as_ref()
        .map(|h| msc_trace::install_thread_hub(Arc::clone(h)));
    let reach = program.stencil.reach();
    let decomp = exchanger.decomp().clone();
    let sub = decomp.sub_extent();
    let plan = make_plan(&sub)?;
    if plan.grid != sub {
        return Err(MscError::InvalidConfig(format!(
            "plan grid {:?} != sub-grid {:?}",
            plan.grid, sub
        )));
    }
    if let Some(hb) = &opts.heartbeat {
        hb.validate().map_err(MscError::InvalidConfig)?;
    }
    let n_logical = decomp.n_ranks();
    // Either knob switches the membership/heartbeat layer on; with both
    // off, every recovery path below is a no-op and the runtime stays
    // byte-for-byte on its plain code paths.
    let resilient = opts.spare_ranks > 0 || opts.heartbeat.is_some();
    let heartbeat = if resilient {
        Some(opts.heartbeat.clone().unwrap_or_default())
    } else {
        None
    };
    let store = match &opts.checkpoint_dir {
        Some(dir) if opts.checkpoint_every > 0 => Some(CheckpointStore::new(dir, n_logical)?),
        _ => None,
    };
    // Seed with wrapped halos so step 0 reads correct periodic images.
    let mut seeded = init.clone();
    boundary::apply(&mut seeded, bc);
    let seeded = &seeded;

    let mut restarts = 0usize;
    let mut recoveries = 0u64;
    loop {
        let resume = store.as_ref().and_then(|s| s.latest_complete());
        // Membership is per attempt: a restart is a new incarnation of
        // the world, with every spare back on the bench.
        let membership = resilient.then(|| Arc::new(Membership::new(n_logical, opts.spare_ranks)));
        let world_cfg = WorldConfig {
            fault: opts.chaos.clone(),
            reliability: opts.reliability.clone(),
            reliable: None,
            membership: membership.clone(),
            heartbeat: heartbeat.clone(),
        };
        let n_phys = n_logical + if resilient { opts.spare_ranks } else { 0 };
        let plan = &plan;
        let store_ref = store.as_ref();
        let membership_ref = membership.as_ref();
        let (sub_ref, reach_ref, decomp_ref) = (&sub, &reach, &decomp);
        let run = World::try_run_with(
            n_phys,
            world_cfg,
            |ctx: RankCtx<T>| -> Result<RankOutcome<T>> {
                // SPM compute relinearizes taps against tile-local
                // layouts and stays on the interpreter; the plain tiled
                // path runs the requested tier.
                let tier = if spm_capacity.is_some() {
                    msc_exec::ExecTier::Interp
                } else {
                    opts.tier
                };
                // Compilation is shape-driven and every rank (spares
                // included) owns an identically-shaped subdomain, so a
                // zero probe compiles the same kernels real data would.
                let probe: Grid<T> = Grid::zeros(sub_ref, reach_ref);
                let compiled = TieredStencil::compile(program, &probe, tier)?;
                let window = WindowPlan::for_max_dt(compiled.max_dt)?;
                // Tracer only — per-rank counter sets stay deterministic.
                msc_trace::record(Counter::VmCompileNanos, compiled.compile_nanos);
                let env = StepEnv {
                    program,
                    plan,
                    decomp: decomp_ref,
                    seeded,
                    compiled: &compiled,
                    window: &window,
                    exchanger,
                    opts,
                    spm_capacity,
                    store: store_ref,
                    membership: membership_ref,
                    sub: sub_ref,
                    reach: reach_ref,
                };
                rank_body(ctx, &env, resume)
            },
        );
        // Count online recoveries whether or not the attempt survived:
        // each is a real adoption event.
        if let Some(m) = &membership {
            recoveries += m.recoveries();
        }

        // Classify the attempt: total success gathers and returns; a
        // communication fault restarts (budget permitting); anything
        // else — a genuine program/configuration error — propagates.
        let failure: MscError = match run {
            Ok(rank_results) => {
                if rank_results.iter().all(|r| r.is_ok()) {
                    let mut global: Grid<T> = seeded.clone();
                    let mut stats = CommStats {
                        messages: 0,
                        steps: program.timesteps,
                        ranks: n_logical,
                        restarts,
                        recoveries: recoveries as usize,
                        counters: CounterSet::new(),
                        hists: HistSet::new(),
                    };
                    let mut covered = vec![false; n_logical];
                    let mut duplicated = false;
                    for res in rank_results {
                        match res? {
                            RankOutcome::Computed {
                                logical,
                                interior,
                                sent,
                                counters,
                                hists,
                            } => {
                                stats.messages += sent;
                                stats.counters.merge(&counters);
                                stats.hists.merge(&hists);
                                if covered[logical] {
                                    duplicated = true;
                                    continue;
                                }
                                covered[logical] = true;
                                let origin = decomp.origin_of(logical);
                                let dst = Region::new(
                                    origin.iter().zip(&reach).map(|(&o, &r)| o + r).collect(),
                                    sub.clone(),
                                );
                                dst.unpack(&mut global, &interior);
                            }
                            RankOutcome::Retired {
                                sent,
                                counters,
                                hists,
                            } => {
                                stats.messages += sent;
                                stats.counters.merge(&counters);
                                stats.hists.merge(&hists);
                            }
                        }
                    }
                    if covered.iter().all(|&c| c) && !duplicated {
                        // Steps and rank count are run-global, not
                        // per-rank sums.
                        stats.counters.set(Counter::Steps, program.timesteps as u64);
                        stats.counters.set(Counter::Ranks, n_logical as u64);
                        boundary::apply(&mut global, bc);
                        return Ok((global, stats));
                    }
                    // A subdomain went uncovered (or covered twice)
                    // despite every slot reporting success — heal by
                    // restarting rather than returning a partial grid.
                    MscError::Comm("logical subdomain left uncovered after online recovery".into())
                } else {
                    // Surface a non-restartable error immediately;
                    // otherwise report the lowest-slot communication
                    // fault.
                    let errs: Vec<&MscError> = rank_results
                        .iter()
                        .filter_map(|r| r.as_ref().err())
                        .collect();
                    if let Some(hard) = errs.iter().find(|e| !is_restartable(e)) {
                        return Err((*hard).clone());
                    }
                    errs[0].clone()
                }
            }
            // A panicking rank poisons the world — typed, and restartable
            // like any other failure.
            Err(poison) => poison.into(),
        };
        if restarts >= opts.max_restarts {
            return Err(failure);
        }
        // Attach the black-box timeline to the restart decision too: the
        // dump shows the fault the restart is healing.
        msc_trace::flight(FlightKind::Restart, 0, 0, 0, restarts as u64 + 1);
        let _ = msc_trace::dump_on_error("restart");
        restarts += 1;
    }
}

/// Distributed iterate-to-convergence: every rank advances its sub-grid,
/// exchanges halos, and the step-to-step RMS update is reduced globally
/// with [`crate::collectives::allreduce`]; all ranks stop together once
/// it falls below `tol`. Returns the gathered state, the step count, and
/// the final residual.
pub fn run_distributed_until_converged<T: Scalar + Wire>(
    program: &StencilProgram,
    procs: &[usize],
    init: &Grid<T>,
    bc: Boundary,
    tol: f64,
    max_steps: usize,
    make_plan: impl Fn(&[usize]) -> Result<ExecPlan> + Sync,
) -> Result<(Grid<T>, usize, f64)> {
    use crate::collectives::{allreduce, ReduceOp};
    if tol <= 0.0 || max_steps == 0 {
        return Err(MscError::InvalidConfig(
            "convergence needs a positive tolerance and at least one step".into(),
        ));
    }
    let decomp = build_decomp(program, procs, bc)?;
    let sub = decomp.sub_extent();
    let plan = make_plan(&sub)?;
    if plan.grid != sub {
        return Err(MscError::InvalidConfig(format!(
            "plan grid {:?} != sub-grid {:?}",
            plan.grid, sub
        )));
    }
    let exchanger = HaloExchange::new(decomp.clone());
    let mut seeded = init.clone();
    boundary::apply(&mut seeded, bc);
    let seeded_ref = &seeded;
    let global_points: f64 = program.grid.shape.iter().product::<usize>() as f64;
    let reach = program.stencil.reach();

    let rank_results: Vec<Result<(Vec<T>, usize, f64)>> = World::try_run(
        decomp.n_ranks(),
        |mut ctx| -> Result<(Vec<T>, usize, f64)> {
            let local_init = scatter(seeded_ref, &decomp, ctx.rank);
            let compiled = TieredStencil::compile(program, &local_init, msc_exec::exec_tier())?;
            let window = WindowPlan::for_max_dt(compiled.max_dt)?;
            let mut ring: Vec<Grid<T>> = (0..window.window).map(|_| local_init.clone()).collect();
            let mut steps = 0;
            let mut rms = f64::INFINITY;

            for s in 0..max_steps {
                let t = compiled.max_dt + s;
                let out_slot = window.output_slot(t);
                let prev_slot = window.input_slot(t, 1)?;
                let prev = ring[prev_slot].clone();
                let mut out = std::mem::replace(&mut ring[out_slot], Grid::zeros(&[1], &[0]));
                {
                    let inputs: Vec<&Grid<T>> = (1..=compiled.max_dt)
                        .map(|dt| window.input_slot(t, dt).map(|slot| &ring[slot]))
                        .collect::<Result<_>>()?;
                    tiled::step(&compiled, &plan, &inputs, &mut out);
                }
                // Local squared update, reduced globally.
                let mut local_sq = 0.0;
                out.for_each_interior(|pos| {
                    let d = out.get(pos).to_f64() - prev.get(pos).to_f64();
                    local_sq += d * d;
                });
                let total = allreduce(&mut ctx, local_sq, ReduceOp::Sum, t as u64)?;
                rms = (total / global_points).sqrt();
                steps = s + 1;
                let done = rms < tol || s + 1 == max_steps;
                if !done {
                    exchanger.exchange(&mut ctx, &mut out, out_slot)?;
                }
                ring[out_slot] = out;
                if done {
                    break;
                }
            }
            let last = window.output_slot(compiled.max_dt + steps - 1);
            let interior = Region::new(decomp.reach.clone(), sub.clone()).pack(&ring[last]);
            ctx.finalize();
            Ok((interior, steps, rms))
        },
    )
    .map_err(MscError::from)?;

    let mut global: Grid<T> = seeded.clone();
    let mut steps = 0;
    let mut rms = f64::INFINITY;
    for (rank, res) in rank_results.into_iter().enumerate() {
        let (interior, s, r) = res?;
        steps = s;
        rms = r;
        let origin = decomp.origin_of(rank);
        let dst = Region::new(
            origin.iter().zip(&reach).map(|(&o, &r)| o + r).collect(),
            sub.clone(),
        );
        dst.unpack(&mut global, &interior);
    }
    boundary::apply(&mut global, bc);
    Ok((global, steps, rms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_core::catalog::{all_benchmarks, benchmark, BenchmarkId};
    use msc_core::schedule::Schedule;
    use msc_exec::driver::{run_program, Executor};

    fn simple_plan(sub: &[usize]) -> Result<ExecPlan> {
        let mut s = Schedule::default();
        let tile: Vec<usize> = sub.iter().map(|&x| (x / 2).max(1)).collect();
        s.tile(&tile);
        s.parallel("xo", 2);
        ExecPlan::lower(&s, sub.len(), sub)
    }

    #[test]
    fn distributed_2d_is_bit_identical_to_single_node() {
        let p = benchmark(BenchmarkId::S2d9ptBox)
            .program(&[16, 16], DType::F64, 5)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 42);
        let (single, _) = run_program(&p, &Executor::Reference, &init).unwrap();
        let (multi, stats) = run_distributed(&p, &[2, 2], &init, simple_plan).unwrap();
        assert_eq!(single.as_slice(), multi.as_slice());
        assert_eq!(stats.ranks, 4);
        assert!(stats.messages > 0);
    }

    #[test]
    fn distributed_3d_is_bit_identical_to_single_node() {
        let p = benchmark(BenchmarkId::S3d7ptStar)
            .program(&[12, 12, 12], DType::F64, 4)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 7);
        let (single, _) = run_program(&p, &Executor::Reference, &init).unwrap();
        let (multi, _) = run_distributed(&p, &[2, 1, 3], &init, simple_plan).unwrap();
        assert_eq!(single.as_slice(), multi.as_slice());
    }

    #[test]
    fn all_benchmarks_distributed_match_reference() {
        for b in all_benchmarks() {
            let grid: Vec<usize> = match b.ndim {
                2 => vec![32, 32],
                _ => vec![16, 16, 16],
            };
            let p = b.program(&grid, DType::F64, 3).unwrap();
            let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 99);
            let (single, _) = run_program(&p, &Executor::Reference, &init).unwrap();
            let procs: Vec<usize> = match b.ndim {
                2 => vec![2, 2],
                _ => vec![2, 2, 1],
            };
            let (multi, _) = run_distributed(&p, &procs, &init, simple_plan).unwrap();
            assert_eq!(single.as_slice(), multi.as_slice(), "{}", b.name);
        }
    }

    #[test]
    fn distributed_spm_execution_is_bit_identical() {
        // The full Sunway path: SPM-staged tiles on every rank + halo
        // exchange, still bitwise equal to the serial single-node run.
        use msc_exec::Boundary;
        let p = benchmark(BenchmarkId::S3d7ptStar)
            .program(&[12, 12, 16], DType::F64, 4)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 44);
        let (single, _) = run_program(&p, &Executor::Reference, &init).unwrap();
        let decomp = build_decomp(&p, &[2, 1, 2], Boundary::Dirichlet).unwrap();
        let backend = HaloExchange::new(decomp);
        let (multi, stats) = run_distributed_exec(
            &p,
            &init,
            Boundary::Dirichlet,
            &backend,
            Some(1 << 20),
            simple_plan,
        )
        .unwrap();
        assert_eq!(single.as_slice(), multi.as_slice());
        // The per-rank SPM executors' DMA traffic must survive the
        // gather: these used to be silently dropped.
        assert!(stats.dma_get_bytes() > 0);
        assert!(stats.dma_put_bytes() > 0);
        assert!(stats.spm_peak_bytes() > 0);
        assert!(stats.tiles_executed() > 0);
    }

    #[test]
    fn comm_stats_unify_halo_and_executor_counters() {
        let p = benchmark(BenchmarkId::S2d9ptBox)
            .program(&[16, 16], DType::F64, 5)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 42);
        let (_, stats) = run_distributed(&p, &[2, 2], &init, simple_plan).unwrap();
        // Only halo traffic flows in run_distributed, so the unified
        // counter must agree with the legacy message count.
        assert_eq!(stats.halo_messages(), stats.messages);
        assert!(stats.halo_bytes() > 0);
        assert!(stats.tiles_executed() > 0);
        assert_eq!(stats.counters.get(msc_trace::Counter::Steps), 5);
        assert_eq!(stats.counters.get(msc_trace::Counter::Ranks), 4);
        // No SPM in this run: DMA counters stay zero.
        assert_eq!(stats.dma_get_bytes(), 0);
        // No membership layer either: the recovery vocabulary is silent.
        assert_eq!(stats.heartbeats_sent(), 0);
        assert_eq!(stats.buddy_bytes(), 0);
        assert_eq!(stats.rank_recoveries(), 0);
        assert_eq!(stats.recoveries, 0);
    }

    #[test]
    fn distributed_spm_overflow_propagates_as_error() {
        use msc_exec::Boundary;
        let p = benchmark(BenchmarkId::S3d7ptStar)
            .program(&[16, 16, 16], DType::F64, 2)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 1);
        let decomp = build_decomp(&p, &[1, 1, 1], Boundary::Dirichlet).unwrap();
        let backend = HaloExchange::new(decomp);
        let r = run_distributed_exec(
            &p,
            &init,
            Boundary::Dirichlet,
            &backend,
            Some(128), // absurdly small SPM
            simple_plan,
        );
        assert!(r.is_err());
    }

    #[test]
    fn distributed_convergence_matches_single_node() {
        use msc_exec::convergence::run_until_converged;
        use msc_exec::Boundary;
        let b = benchmark(BenchmarkId::S2d9ptBox);
        let p = b.program(&[24, 24], DType::F64, 1).unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 3);
        let single = run_until_converged(
            &p,
            &Executor::Reference,
            &init,
            Boundary::Dirichlet,
            1e-5,
            2000,
        )
        .unwrap();
        let (multi, steps, rms) = run_distributed_until_converged(
            &p,
            &[2, 2],
            &init,
            Boundary::Dirichlet,
            1e-5,
            2000,
            simple_plan,
        )
        .unwrap();
        assert!(single.converged);
        assert_eq!(steps, single.steps, "step counts must agree");
        assert!(rms < 1e-5);
        assert_eq!(single.state.as_slice(), multi.as_slice());
    }

    #[test]
    fn distributed_convergence_respects_max_steps() {
        let b = benchmark(BenchmarkId::S2d9ptStar);
        let p = b.program(&[16, 16], DType::F64, 1).unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 5);
        let (_, steps, rms) = run_distributed_until_converged(
            &p,
            &[2, 2],
            &init,
            msc_exec::Boundary::Dirichlet,
            1e-300,
            6,
            simple_plan,
        )
        .unwrap();
        assert_eq!(steps, 6);
        assert!(rms > 0.0);
    }

    #[test]
    fn single_rank_degenerates_to_local_run() {
        let p = benchmark(BenchmarkId::S2d9ptStar)
            .program(&[8, 8], DType::F64, 3)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 3);
        let (single, _) = run_program(&p, &Executor::Reference, &init).unwrap();
        let (multi, stats) = run_distributed(&p, &[1, 1], &init, simple_plan).unwrap();
        assert_eq!(single.as_slice(), multi.as_slice());
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn periodic_distributed_matches_periodic_single_node() {
        use msc_exec::driver::run_program_bc;
        let p = benchmark(BenchmarkId::S2d9ptBox)
            .program(&[12, 18], DType::F64, 4)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 77);
        let (single, _) =
            run_program_bc(&p, &Executor::Reference, &init, Boundary::Periodic).unwrap();
        let (multi, _) =
            run_distributed_bc(&p, &[2, 3], &init, Boundary::Periodic, simple_plan).unwrap();
        assert_eq!(single.as_slice(), multi.as_slice());
    }

    #[test]
    fn periodic_single_process_dimension_wraps_through_self_messages() {
        use msc_exec::driver::run_program_bc;
        let p = benchmark(BenchmarkId::S3d7ptStar)
            .program(&[8, 8, 12], DType::F64, 3)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 9);
        let (single, _) =
            run_program_bc(&p, &Executor::Reference, &init, Boundary::Periodic).unwrap();
        // procs = [1, 1, 2]: dims 0 and 1 wrap onto the same rank.
        let (multi, stats) =
            run_distributed_bc(&p, &[1, 1, 2], &init, Boundary::Periodic, simple_plan).unwrap();
        assert_eq!(single.as_slice(), multi.as_slice());
        assert!(stats.messages > 0);
    }

    #[test]
    fn periodic_averaging_conserves_mass() {
        use msc_exec::driver::run_program_bc;
        // On a torus, a unit-coefficient-sum stencil loses nothing at the
        // boundary: the interior sum is invariant.
        let p = benchmark(BenchmarkId::S2d9ptStar)
            .program(&[16, 16], DType::F64, 10)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 13);
        let before = {
            let mut g = init.clone();
            msc_exec::boundary::apply(&mut g, Boundary::Periodic);
            g.interior_sum()
        };
        let (out, _) = run_program_bc(&p, &Executor::Reference, &init, Boundary::Periodic).unwrap();
        let after = out.interior_sum();
        assert!(
            (before - after).abs() / before.abs() < 1e-12,
            "{before} vs {after}"
        );
    }

    #[test]
    fn gcl_style_backend_is_bit_identical_for_box_stencils() {
        use crate::backend::FullNeighborExchange;
        use msc_exec::Boundary;
        // 2d121pt has reach 5: corners really matter.
        let p = benchmark(BenchmarkId::S2d121ptBox)
            .program(&[30, 40], DType::F64, 4)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 17);
        let (single, _) = run_program(&p, &Executor::Reference, &init).unwrap();
        let decomp = build_decomp(&p, &[2, 2], Boundary::Dirichlet).unwrap();
        let backend = FullNeighborExchange::new(decomp);
        let (multi, stats) =
            run_distributed_with(&p, &init, Boundary::Dirichlet, &backend, simple_plan).unwrap();
        assert_eq!(single.as_slice(), multi.as_slice());
        // 2x2 grid: each rank has 3 neighbours (2 faces + 1 corner), so
        // 4 ranks x 3 msgs x (steps-1) rounds.
        assert_eq!(stats.messages, 4 * 3 * 3);
    }

    #[test]
    fn gcl_style_backend_works_on_periodic_torus() {
        use crate::backend::FullNeighborExchange;
        use msc_exec::driver::run_program_bc;
        use msc_exec::Boundary;
        let p = benchmark(BenchmarkId::S2d9ptBox)
            .program(&[12, 12], DType::F64, 3)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 51);
        let (single, _) =
            run_program_bc(&p, &Executor::Reference, &init, Boundary::Periodic).unwrap();
        let decomp = build_decomp(&p, &[2, 2], Boundary::Periodic).unwrap();
        let backend = FullNeighborExchange::new(decomp);
        let (multi, _) =
            run_distributed_with(&p, &init, Boundary::Periodic, &backend, simple_plan).unwrap();
        assert_eq!(single.as_slice(), multi.as_slice());
    }

    #[test]
    fn backends_agree_with_each_other() {
        use crate::backend::FullNeighborExchange;
        use msc_exec::Boundary;
        let p = benchmark(BenchmarkId::S3d13ptStar)
            .program(&[12, 12, 12], DType::F64, 3)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 8);
        let (a, sa) = run_distributed(&p, &[2, 2, 1], &init, simple_plan).unwrap();
        let decomp = build_decomp(&p, &[2, 2, 1], Boundary::Dirichlet).unwrap();
        let backend = FullNeighborExchange::new(decomp);
        let (b, sb) =
            run_distributed_with(&p, &init, Boundary::Dirichlet, &backend, simple_plan).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        // The GCL-style backend sends more messages (explicit corners).
        assert!(
            sb.messages > sa.messages,
            "{} vs {}",
            sb.messages,
            sa.messages
        );
    }

    #[test]
    fn dirichlet_and_periodic_differ() {
        use msc_exec::driver::run_program_bc;
        let p = benchmark(BenchmarkId::S2d9ptBox)
            .program(&[10, 10], DType::F64, 3)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 21);
        let (a, _) = run_program_bc(&p, &Executor::Reference, &init, Boundary::Dirichlet).unwrap();
        let (b, _) = run_program_bc(&p, &Executor::Reference, &init, Boundary::Periodic).unwrap();
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn mismatched_process_grid_rejected() {
        let p = benchmark(BenchmarkId::S2d9ptStar)
            .program(&[10, 10], DType::F64, 2)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 3);
        assert!(run_distributed(&p, &[3, 1], &init, simple_plan).is_err());
    }

    #[test]
    fn invalid_heartbeat_is_a_typed_error_not_a_panic() {
        let p = benchmark(BenchmarkId::S2d9ptStar)
            .program(&[8, 8], DType::F64, 2)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 3);
        let opts = RunOptions {
            heartbeat: Some(HeartbeatConfig {
                every: Duration::from_millis(50),
                detect: Duration::from_millis(10), // detect < every: nonsense
            }),
            ..RunOptions::default()
        };
        let r =
            run_distributed_resilient(&p, &[2, 2], &init, Boundary::Dirichlet, &opts, simple_plan);
        assert!(matches!(r, Err(MscError::InvalidConfig(_))), "{r:?}");
    }

    #[test]
    fn spare_world_without_failures_is_bit_identical_and_quiet() {
        // Spares idle, heartbeats flow, buddies replicate — none of it
        // may perturb the numerics.
        let p = benchmark(BenchmarkId::S2d9ptBox)
            .program(&[16, 16], DType::F64, 40)
            .unwrap();
        let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 42);
        let (single, _) = run_program(&p, &Executor::Reference, &init).unwrap();
        let opts = RunOptions {
            spare_ranks: 1,
            checkpoint_every: 2,
            // A beacon interval far below the run length, so idle-path
            // heartbeats demonstrably flow even on a fast machine.
            heartbeat: Some(HeartbeatConfig::from_millis(1).unwrap()),
            ..RunOptions::default()
        };
        let (multi, stats) =
            run_distributed_resilient(&p, &[2, 2], &init, Boundary::Dirichlet, &opts, simple_plan)
                .unwrap();
        assert_eq!(single.as_slice(), multi.as_slice());
        assert_eq!(stats.recoveries, 0);
        assert_eq!(stats.restarts, 0);
        assert_eq!(stats.rank_recoveries(), 0);
        // Diskless buddy checkpoints ran even with no checkpoint dir.
        assert!(stats.buddy_bytes() > 0, "buddy replication must run");
        assert!(stats.heartbeats_sent() > 0, "idle heartbeats must flow");
    }
}
