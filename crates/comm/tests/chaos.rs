//! Chaos-suite integration tests: the distributed stencil driver must
//! produce **bit-identical** results under injected communication
//! faults (drops, duplicates, reordering, bit corruption), survive a
//! killed rank by restarting from a checkpoint, and report every fault
//! it healed through the trace counters.
//!
//! All fault schedules are seed-driven and deterministic, so these tests
//! are exact, not statistical.

use msc_comm::{
    build_decomp, run_distributed, run_distributed_opts, run_distributed_resilient,
    FaultPlan, FullNeighborExchange, HaloExchange, ReliabilityConfig, RunOptions,
};
use msc_core::catalog::{benchmark, BenchmarkId};
use msc_core::error::Result;
use msc_core::prelude::*;
use msc_core::schedule::plan::ExecPlan;
use msc_core::schedule::Schedule;
use msc_exec::driver::{run_program, Executor};
use msc_exec::{Boundary, Grid};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn simple_plan(sub: &[usize]) -> Result<ExecPlan> {
    let mut s = Schedule::default();
    let tile: Vec<usize> = sub.iter().map(|&x| (x / 2).max(1)).collect();
    s.tile(&tile);
    s.parallel("xo", 2);
    ExecPlan::lower(&s, sub.len(), sub)
}

/// A lossy-but-recoverable plan: drops, duplicates, reordering, and
/// corruption all at once.
fn lossy_plan(seed: u64) -> Arc<FaultPlan> {
    let mut p = FaultPlan::new(seed);
    p.drop_p = 0.10;
    p.dup_p = 0.05;
    p.delay_p = 0.10;
    p.corrupt_p = 0.05;
    Arc::new(p)
}

/// Faster polls than the defaults so injected drops are re-requested
/// quickly and the suite stays snappy.
fn fast_reliability() -> ReliabilityConfig {
    ReliabilityConfig {
        poll: Duration::from_millis(2),
        max_attempts: 80,
        ..ReliabilityConfig::default()
    }
}

fn chaos_opts(seed: u64) -> RunOptions {
    RunOptions {
        chaos: Some(lossy_plan(seed)),
        reliability: fast_reliability(),
        ..RunOptions::default()
    }
}

fn ckpt_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("msc_chaos_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn chaotic_run_is_bit_identical_to_fault_free() {
    // The headline robustness claim: with drops, duplicates, reordering,
    // AND corruption injected into every rank's channels, the reliable
    // runtime heals everything and the result is bitwise equal to both
    // the fault-free distributed run and the single-node reference.
    let p = benchmark(BenchmarkId::S2d9ptBox)
        .program(&[16, 16], DType::F64, 5)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 42);
    let (single, _) = run_program(&p, &Executor::Reference, &init).unwrap();
    let (plain, _) = run_distributed(&p, &[2, 2], &init, simple_plan).unwrap();
    let (chaotic, stats) = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Dirichlet,
        &chaos_opts(1337),
        simple_plan,
    )
    .unwrap();
    assert_eq!(single.as_slice(), chaotic.as_slice());
    assert_eq!(plain.as_slice(), chaotic.as_slice());
    // The chaos must actually have happened — and been healed.
    assert!(stats.faults_injected() > 0, "no faults injected");
    assert!(stats.retransmits() > 0, "no retransmissions recorded");
    assert_eq!(stats.restarts, 0, "recoverable faults must not restart");
}

#[test]
fn chaotic_gcl_backend_is_bit_identical_too() {
    // Same property through the full-neighbor (GCL-style) backend, whose
    // corner messages exercise different tags and message sizes.
    let p = benchmark(BenchmarkId::S2d9ptBox)
        .program(&[12, 12], DType::F64, 4)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 7);
    let (single, _) = run_program(&p, &Executor::Reference, &init).unwrap();
    let decomp = build_decomp(&p, &[2, 2], Boundary::Dirichlet).unwrap();
    let backend = FullNeighborExchange::new(decomp);
    let (chaotic, stats) = run_distributed_opts(
        &p,
        &init,
        Boundary::Dirichlet,
        &backend,
        None,
        &chaos_opts(2024),
        simple_plan,
    )
    .unwrap();
    assert_eq!(single.as_slice(), chaotic.as_slice());
    assert!(stats.faults_injected() > 0);
}

#[test]
fn same_seed_same_fault_schedule_different_seed_differs() {
    // Determinism of the injector at the system level: two runs with the
    // same seed inject exactly the same number of faults; a different
    // seed gives a different schedule (counted over the same traffic).
    let p = benchmark(BenchmarkId::S2d9ptStar)
        .program(&[12, 12], DType::F64, 5)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 3);
    let run = |seed: u64| {
        let (_, stats) = run_distributed_resilient(
            &p,
            &[2, 2],
            &init,
            Boundary::Dirichlet,
            &chaos_opts(seed),
            simple_plan,
        )
        .unwrap();
        stats.faults_injected()
    };
    let a1 = run(11);
    let a2 = run(11);
    let b = run(12);
    assert_eq!(a1, a2, "same seed must give the same schedule");
    assert!(a1 > 0);
    // First-transmission traffic is identical, so a differing injection
    // count demonstrates a differing schedule. (Equal counts with a
    // different pattern are possible in principle; these seeds differ.)
    assert_ne!(a1, b, "different seeds should differ on this workload");
}

#[test]
fn killed_rank_restarts_from_checkpoint_and_matches_golden() {
    // The full story: checkpoints every 2 steps, chaos kills rank 1 at
    // its 4th halo exchange. The driver restarts from the last complete
    // checkpoint and the final state still matches the fault-free
    // single-node golden run bit for bit.
    let p = benchmark(BenchmarkId::S2d9ptBox)
        .program(&[16, 16], DType::F64, 6)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 99);
    let (golden, _) = run_program(&p, &Executor::Reference, &init).unwrap();

    let dir = ckpt_dir("kill_restart");
    let opts = RunOptions {
        chaos: Some(Arc::new(FaultPlan::new(5).with_kill(1, 4))),
        reliability: fast_reliability(),
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        max_restarts: 2,
        ..RunOptions::default()
    };
    let (out, stats) = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Dirichlet,
        &opts,
        simple_plan,
    )
    .unwrap();
    assert_eq!(golden.as_slice(), out.as_slice());
    assert_eq!(stats.restarts, 1, "the kill must have forced one restart");
    assert!(stats.checkpoint_bytes() > 0, "checkpoints must have been written");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_without_checkpoints_restarts_from_scratch() {
    // No checkpoint directory: the restart replays from the initial
    // state. Still bit-identical — just more recomputation.
    let p = benchmark(BenchmarkId::S2d9ptStar)
        .program(&[12, 12], DType::F64, 4)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 21);
    let (golden, _) = run_program(&p, &Executor::Reference, &init).unwrap();
    let opts = RunOptions {
        chaos: Some(Arc::new(FaultPlan::new(8).with_kill(2, 2))),
        reliability: fast_reliability(),
        ..RunOptions::default()
    };
    let (out, stats) = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Dirichlet,
        &opts,
        simple_plan,
    )
    .unwrap();
    assert_eq!(golden.as_slice(), out.as_slice());
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.checkpoint_bytes(), 0);
}

#[test]
fn kill_with_exhausted_restart_budget_is_a_typed_error() {
    // max_restarts = 0: the kill becomes a typed error carried out of the
    // driver — never a panic. (A one-shot kill with budget >= 1 succeeds;
    // with 0 budget the first failure is final.)
    let p = benchmark(BenchmarkId::S2d9ptStar)
        .program(&[12, 12], DType::F64, 4)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 2);
    let opts = RunOptions {
        chaos: Some(Arc::new(FaultPlan::new(3).with_kill(0, 1))),
        reliability: fast_reliability(),
        max_restarts: 0,
        ..RunOptions::default()
    };
    let err = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Dirichlet,
        &opts,
        simple_plan,
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("communication failure"), "{msg}");
}

#[test]
fn periodic_chaos_run_matches_periodic_single_node() {
    // Torus topology + chaos: wraparound self-messages go through the
    // same injector and reliability protocol.
    use msc_exec::driver::run_program_bc;
    let p = benchmark(BenchmarkId::S2d9ptBox)
        .program(&[12, 12], DType::F64, 3)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 51);
    let (single, _) =
        run_program_bc(&p, &Executor::Reference, &init, Boundary::Periodic).unwrap();
    let (multi, _) = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Periodic,
        &chaos_opts(77),
        simple_plan,
    )
    .unwrap();
    assert_eq!(single.as_slice(), multi.as_slice());
}

#[test]
fn resilient_defaults_degenerate_to_plain_run() {
    // With no chaos and no checkpoints the resilient entry point is the
    // plain driver: same bits, same message count, no protocol overhead.
    let p = benchmark(BenchmarkId::S2d9ptBox)
        .program(&[16, 16], DType::F64, 5)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 42);
    let (plain, plain_stats) = run_distributed(&p, &[2, 2], &init, simple_plan).unwrap();
    let (res, res_stats) = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Dirichlet,
        &RunOptions::default(),
        simple_plan,
    )
    .unwrap();
    assert_eq!(plain.as_slice(), res.as_slice());
    assert_eq!(plain_stats.messages, res_stats.messages);
    assert_eq!(res_stats.faults_injected(), 0);
    assert_eq!(res_stats.retransmits(), 0);
    assert_eq!(res_stats.restarts, 0);
}

#[test]
fn checkpoint_files_use_grid_format_and_resume_step() {
    // The checkpoint store's on-disk artifacts are plain MSCGRID1 files;
    // after a run with --checkpoint-every style options the directory
    // holds complete, loadable snapshots.
    let p = benchmark(BenchmarkId::S2d9ptStar)
        .program(&[12, 12], DType::F64, 5)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 10);
    let dir = ckpt_dir("format");
    let opts = RunOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        ..RunOptions::default()
    };
    run_distributed_resilient(&p, &[2, 2], &init, Boundary::Dirichlet, &opts, simple_plan)
        .unwrap();
    let store = msc_comm::CheckpointStore::new(&dir, 4).unwrap();
    let latest = store.latest_complete().expect("a complete checkpoint");
    assert_eq!(latest, 4, "steps 2 and 4 checkpointed; 4 is latest");
    // Every slot of every rank loads as a well-formed grid.
    for rank in 0..4 {
        let grids: Vec<Grid<f64>> = store.load_rank(latest, rank, 2).unwrap();
        assert_eq!(grids.len(), 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_timeout_dumps_flight_recorder_json() {
    // Observability v2: when the reliability protocol gives up on a
    // message (here: every frame dropped, tiny retry budget), the
    // always-on flight recorder is dumped as JSON naming the failing
    // (src, dst, tag) identity alongside the surrounding send traffic.
    let dir = std::env::temp_dir().join("msc_chaos_flight_timeout");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    msc_trace::set_flight_dump_dir(Some(dir.clone()));

    let p = benchmark(BenchmarkId::S2d9ptStar)
        .program(&[12, 12], DType::F64, 3)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 6);
    let mut plan = FaultPlan::new(9);
    plan.drop_p = 1.0; // nothing ever arrives, resends included
    let opts = RunOptions {
        chaos: Some(Arc::new(plan)),
        reliability: ReliabilityConfig {
            poll: Duration::from_millis(1),
            max_attempts: 4,
            ..ReliabilityConfig::default()
        },
        max_restarts: 0,
        ..RunOptions::default()
    };
    let err = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Dirichlet,
        &opts,
        simple_plan,
    )
    .unwrap_err();
    msc_trace::set_flight_dump_dir(None);
    assert!(err.to_string().contains("communication failure"), "{err}");

    // At least one rank must have written a timeout-slugged dump whose
    // JSON carries the timeout event plus the sends that never landed.
    let dumps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight_") && n.contains("timeout"))
        })
        .collect();
    assert!(!dumps.is_empty(), "no flight dump written to {}", dir.display());
    let body = std::fs::read_to_string(&dumps[0]).unwrap();
    assert!(body.contains("\"reason\": \"timeout\""), "{body}");
    assert!(body.contains("\"kind\": \"timeout\""), "{body}");
    assert!(body.contains("\"kind\": \"send\""), "{body}");
    for field in ["\"src\":", "\"dst\":", "\"tag\":", "\"seq\":"] {
        assert!(body.contains(field), "missing {field} in {body}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spm_staged_chaos_run_is_bit_identical() {
    // Chaos composed with the SPM/DMA execution path: reliability and
    // the staged executor are orthogonal.
    let p = benchmark(BenchmarkId::S3d7ptStar)
        .program(&[12, 12, 16], DType::F64, 4)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 44);
    let (single, _) = run_program(&p, &Executor::Reference, &init).unwrap();
    let decomp = build_decomp(&p, &[2, 1, 2], Boundary::Dirichlet).unwrap();
    let backend = HaloExchange::new(decomp);
    let (multi, stats) = run_distributed_opts(
        &p,
        &init,
        Boundary::Dirichlet,
        &backend,
        Some(1 << 20),
        &chaos_opts(4321),
        simple_plan,
    )
    .unwrap();
    assert_eq!(single.as_slice(), multi.as_slice());
    assert!(stats.faults_injected() > 0);
    assert!(stats.dma_get_bytes() > 0, "SPM path must still run");
}
