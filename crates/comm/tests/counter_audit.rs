//! Counter-accounting audit for the distributed driver: every metric in
//! the gathered [`CommStats`] must be fed by exactly one sink. The
//! executors/exchanger bump a per-rank `CounterSet` (merged at gather)
//! *and* mirror into the process-global trace banks when tracing is
//! enabled — two parallel sinks, and each must see a value exactly once.
//!
//! This file is its own test binary on purpose: the global trace banks
//! are process-wide, so the tracing-enabled assertions below would race
//! any concurrently running test that also records counters.

use msc_comm::{run_distributed_resilient, CommStats, RunOptions};
use msc_core::catalog::{benchmark, BenchmarkId};
use msc_core::error::Result;
use msc_core::prelude::*;
use msc_core::schedule::plan::ExecPlan;
use msc_core::schedule::Schedule;
use msc_exec::{Boundary, Grid};
use msc_trace::Counter;
use std::sync::Mutex;

/// Tests in this binary still run on parallel threads; the trace banks
/// are process-global, so every test takes this lock.
static BANK_LOCK: Mutex<()> = Mutex::new(());

fn plan_halves(sub: &[usize]) -> Result<ExecPlan> {
    let mut s = Schedule::default();
    let tile: Vec<usize> = sub.iter().map(|&x| (x / 2).max(1)).collect();
    s.tile(&tile);
    s.parallel("xo", 2);
    ExecPlan::lower(&s, sub.len(), sub)
}

const RANKS: usize = 2;
const STEPS: usize = 2;

fn run(opts: &RunOptions) -> (Grid<f64>, CommStats) {
    let p = benchmark(BenchmarkId::S2d9ptStar)
        .program(&[8, 8], DType::F64, STEPS)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 77);
    run_distributed_resilient(&p, &[RANKS, 1], &init, Boundary::Dirichlet, opts, plan_halves)
        .unwrap()
}

/// Tiles each rank's plan yields per step: sub-grid [4, 8], tile [2, 4].
const TILES_PER_RANK_PER_STEP: u64 = (4 / 2) * (8 / 4);
const TRUE_TILES: u64 = RANKS as u64 * STEPS as u64 * TILES_PER_RANK_PER_STEP;

#[test]
fn merged_stats_count_each_tile_exactly_once() {
    let _g = BANK_LOCK.lock().unwrap();
    // Overlap on (default) and off must both account every tile once.
    for overlap in [true, false] {
        let opts = RunOptions {
            overlap,
            ..RunOptions::default()
        };
        let (_, stats) = run(&opts);
        assert_eq!(
            stats.tiles_executed(),
            TRUE_TILES,
            "overlap={overlap}: merged RunStats tile counter"
        );
        assert_eq!(stats.counters.get(Counter::Steps), STEPS as u64);
        assert_eq!(stats.counters.get(Counter::Ranks), RANKS as u64);
    }
}

#[test]
fn global_trace_sink_counts_each_tile_exactly_once() {
    let _g = BANK_LOCK.lock().unwrap();
    // The mirror sink: with tracing enabled, the process-global banks
    // must also see each tile exactly once (not once per sink).
    for overlap in [true, false] {
        msc_trace::reset_counters();
        msc_trace::set_enabled(true);
        let opts = RunOptions {
            overlap,
            ..RunOptions::default()
        };
        let (_, stats) = run(&opts);
        msc_trace::set_enabled(false);
        let snap = msc_trace::snapshot();
        assert_eq!(
            snap.get(Counter::TilesExecuted),
            TRUE_TILES,
            "overlap={overlap}: global trace tile counter"
        );
        // Halo traffic mirrors 1:1 as well.
        assert_eq!(
            snap.get(Counter::HaloMessages),
            stats.halo_messages(),
            "overlap={overlap}: global trace halo messages"
        );
        if overlap {
            assert!(snap.get(Counter::OverlapNanos) > 0, "overlap window recorded");
        }
    }
}

#[test]
fn checkpoint_bytes_match_files_on_disk() {
    let _g = BANK_LOCK.lock().unwrap();
    // CheckpointBytes is fed once per save: the merged counter must
    // equal the bytes actually sitting in the checkpoint directory.
    let dir = std::env::temp_dir().join("msc_counter_audit_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = RunOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..RunOptions::default()
    };
    let (_, stats) = run(&opts);
    let disk_bytes: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "grid"))
        .map(|p| std::fs::metadata(p).unwrap().len())
        .sum();
    assert!(disk_bytes > 0, "checkpoints were written");
    assert_eq!(stats.checkpoint_bytes(), disk_bytes);
    assert!(stats.counters.get(Counter::CheckpointNanos) > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
