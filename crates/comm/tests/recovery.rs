//! Online rank-recovery integration tests: a rank killed mid-run must be
//! healed *in place* — heartbeat silence turns into a suspect, a hot
//! spare adopts the dead rank's subdomain from its buddy's diskless
//! snapshot, survivors roll back to the same generation — and the final
//! grid must be **bit-identical** to the fault-free single-node run,
//! with zero world restarts.
//!
//! Fault schedules are seed-driven and deterministic; only the detection
//! *latency* is wall-clock dependent, never the recovered numerics.

use msc_comm::{
    run_distributed_resilient, FaultPlan, HeartbeatConfig, ReliabilityConfig, RunOptions,
};
use msc_core::catalog::{benchmark, BenchmarkId};
use msc_core::error::Result;
use msc_core::prelude::*;
use msc_core::schedule::plan::ExecPlan;
use msc_core::schedule::Schedule;
use msc_exec::driver::{run_program, Executor};
use msc_exec::{Boundary, ExecTier, Grid};
use msc_trace::Hist;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn simple_plan(sub: &[usize]) -> Result<ExecPlan> {
    let mut s = Schedule::default();
    let tile: Vec<usize> = sub.iter().map(|&x| (x / 2).max(1)).collect();
    s.tile(&tile);
    s.parallel("xo", 2);
    ExecPlan::lower(&s, sub.len(), sub)
}

fn fast_reliability() -> ReliabilityConfig {
    ReliabilityConfig {
        poll: Duration::from_millis(2),
        max_attempts: 80,
        ..ReliabilityConfig::default()
    }
}

/// A short detection window so the suite stays snappy; correctness must
/// not depend on the value (only test wall time does).
fn fast_heartbeat() -> HeartbeatConfig {
    HeartbeatConfig::from_millis(5).unwrap()
}

fn ckpt_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("msc_recovery_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kill rank 1 at its 4th exchange in a 2x2 world with one hot spare and
/// diskless buddy checkpoints every 2 steps, under the given execution
/// tier. Returns (result, stats) — callers assert the recovery contract.
fn run_killed_with_spare(tier: ExecTier) -> (Grid<f64>, msc_comm::CommStats, Grid<f64>) {
    let p = benchmark(BenchmarkId::S2d9ptBox)
        .program(&[16, 16], DType::F64, 6)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 99);
    let (golden, _) = run_program(&p, &Executor::Reference, &init).unwrap();
    let opts = RunOptions {
        chaos: Some(Arc::new(FaultPlan::new(5).with_kill(1, 4))),
        reliability: fast_reliability(),
        checkpoint_every: 2, // no checkpoint_dir: purely diskless
        spare_ranks: 1,
        heartbeat: Some(fast_heartbeat()),
        tier,
        ..RunOptions::default()
    };
    let (out, stats) = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Dirichlet,
        &opts,
        simple_plan,
    )
    .unwrap();
    (out, stats, golden)
}

fn assert_online_recovery(out: &Grid<f64>, stats: &msc_comm::CommStats, golden: &Grid<f64>) {
    assert_eq!(
        golden.as_slice(),
        out.as_slice(),
        "recovered grid must be bit-identical to the fault-free run"
    );
    assert_eq!(stats.restarts, 0, "online recovery must not restart the world");
    assert!(stats.recoveries >= 1, "the kill must have been healed online");
    assert!(stats.rank_recoveries() >= 1, "recovery counter must fire");
    assert!(stats.buddy_bytes() > 0, "buddy replication must have run");
    // No heartbeat-count assertion here: a dropped endpoint is promoted
    // to a suspect immediately, so a fast kill can recover before the
    // beacon interval ever elapses. Beacon flow is asserted by the
    // long-running spare_world_without_failures unit test instead.
    assert!(
        stats.hists.get(Hist::DetectLatencyNanos).count() >= 1,
        "detection latency must land in the histogram"
    );
}

#[test]
fn spare_adopts_killed_rank_interp_tier() {
    let (out, stats, golden) = run_killed_with_spare(ExecTier::Interp);
    assert_online_recovery(&out, &stats, &golden);
}

#[test]
fn spare_adopts_killed_rank_vm_tier() {
    let (out, stats, golden) = run_killed_with_spare(ExecTier::Vm);
    assert_online_recovery(&out, &stats, &golden);
}

#[test]
fn spare_adopts_killed_rank_specialized_tier() {
    let (out, stats, golden) = run_killed_with_spare(ExecTier::Specialized);
    assert_online_recovery(&out, &stats, &golden);
}

#[test]
fn kill_before_first_snapshot_recovers_from_initial_state() {
    // The rank dies before any buddy generation exists: the recovery
    // source degrades to the initial state, every rank replays from
    // step 0, and the result is still bit-exact.
    let p = benchmark(BenchmarkId::S2d9ptStar)
        .program(&[12, 12], DType::F64, 4)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 21);
    let (golden, _) = run_program(&p, &Executor::Reference, &init).unwrap();
    let opts = RunOptions {
        chaos: Some(Arc::new(FaultPlan::new(8).with_kill(2, 1))),
        reliability: fast_reliability(),
        spare_ranks: 1,
        heartbeat: Some(fast_heartbeat()),
        ..RunOptions::default()
    };
    let (out, stats) = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Dirichlet,
        &opts,
        simple_plan,
    )
    .unwrap();
    assert_eq!(golden.as_slice(), out.as_slice());
    assert_eq!(stats.restarts, 0);
    assert!(stats.recoveries >= 1);
    assert_eq!(stats.checkpoint_bytes(), 0, "no disk store configured");
}

#[test]
fn heartbeat_without_spares_falls_back_to_disk_restart() {
    // Detection without adoption: the membership layer declares the
    // failure unrecoverable (no spare on the bench) and the driver falls
    // back to the classic checkpoint restart — still bit-exact, and the
    // two counters stay distinct: restarts == 1, recoveries == 0.
    let p = benchmark(BenchmarkId::S2d9ptBox)
        .program(&[16, 16], DType::F64, 6)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 13);
    let (golden, _) = run_program(&p, &Executor::Reference, &init).unwrap();
    let dir = ckpt_dir("no_spare_fallback");
    let opts = RunOptions {
        chaos: Some(Arc::new(FaultPlan::new(5).with_kill(1, 4))),
        reliability: fast_reliability(),
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        max_restarts: 2,
        heartbeat: Some(fast_heartbeat()),
        ..RunOptions::default()
    };
    let (out, stats) = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Dirichlet,
        &opts,
        simple_plan,
    )
    .unwrap();
    assert_eq!(golden.as_slice(), out.as_slice());
    assert_eq!(stats.restarts, 1, "no spare: the kill must force a restart");
    assert_eq!(stats.recoveries, 0, "nothing was healed online");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_composes_with_channel_chaos() {
    // The full gauntlet: drops, duplicates, reordering, and corruption in
    // every channel, plus a kill healed by a hot spare. The reliability
    // protocol and the recovery protocol are orthogonal layers; the
    // result must still be bit-exact with zero restarts.
    let p = benchmark(BenchmarkId::S2d9ptBox)
        .program(&[16, 16], DType::F64, 6)
        .unwrap();
    let init: Grid<f64> = Grid::random(&p.grid.shape, &p.grid.halo, 42);
    let (golden, _) = run_program(&p, &Executor::Reference, &init).unwrap();
    let mut plan = FaultPlan::new(1337).with_kill(3, 3);
    plan.drop_p = 0.05;
    plan.dup_p = 0.03;
    plan.delay_p = 0.05;
    plan.corrupt_p = 0.03;
    let opts = RunOptions {
        chaos: Some(Arc::new(plan)),
        reliability: fast_reliability(),
        checkpoint_every: 2,
        spare_ranks: 1,
        heartbeat: Some(fast_heartbeat()),
        ..RunOptions::default()
    };
    let (out, stats) = run_distributed_resilient(
        &p,
        &[2, 2],
        &init,
        Boundary::Dirichlet,
        &opts,
        simple_plan,
    )
    .unwrap();
    assert_eq!(golden.as_slice(), out.as_slice());
    assert_eq!(stats.restarts, 0);
    assert!(stats.recoveries >= 1);
    assert!(stats.faults_injected() > 0, "the chaos must have happened");
}

#[test]
fn two_spares_survive_repeated_runs_deterministically() {
    // Determinism of the recovered numerics: the same seeded kill healed
    // twice produces the same bits both times (wall-clock detection
    // latency varies; the grid must not).
    let run = || run_killed_with_spare(ExecTier::Auto);
    let (a, sa, golden) = run();
    let (b, sb, _) = run();
    assert_eq!(a.as_slice(), b.as_slice());
    assert_eq!(a.as_slice(), golden.as_slice());
    assert!(sa.recoveries >= 1 && sb.recoveries >= 1);
}
