//! Roofline model (paper §5.2.2, Figure 9): attainable performance as a
//! function of operational intensity — plus *measured* kernel placement,
//! where a runtime [`Profile`] from `msc-trace` supplies the achieved
//! coordinates instead of an analytic estimate.

use crate::model::{MachineModel, Precision};
use msc_trace::{Counter, Profile};

/// Roofline of one machine at one precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak compute, GFlop/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth, GB/s.
    pub bw_gbps: f64,
}

impl Roofline {
    pub fn of(machine: &MachineModel, prec: Precision) -> Roofline {
        Roofline {
            peak_gflops: machine.peak_gflops(prec),
            bw_gbps: machine.mem_bw_gbps,
        }
    }

    /// The ridge point: the operational intensity (flops/byte) at which
    /// the memory roof meets the compute roof.
    pub fn ridge_point(&self) -> f64 {
        self.peak_gflops / self.bw_gbps
    }

    /// Attainable GFlop/s at operational intensity `oi` (flops/byte).
    pub fn attainable_gflops(&self, oi: f64) -> f64 {
        (oi * self.bw_gbps).min(self.peak_gflops)
    }

    /// Whether a kernel at intensity `oi` is memory-bound (left of the
    /// ridge).
    pub fn is_memory_bound(&self, oi: f64) -> bool {
        oi < self.ridge_point()
    }

    /// Place a measured kernel on this roofline.
    pub fn place(&self, kernel: &MeasuredKernel) -> Placement {
        let oi = kernel.intensity();
        let achieved_gflops = kernel.achieved_gflops();
        let attainable_gflops = self.attainable_gflops(oi);
        Placement {
            oi,
            achieved_gflops,
            attainable_gflops,
            memory_bound: self.is_memory_bound(oi),
            efficiency: if attainable_gflops > 0.0 {
                achieved_gflops / attainable_gflops
            } else {
                0.0
            },
        }
    }
}

/// A kernel's measured roofline coordinates: floating-point work done,
/// bytes moved, and elapsed wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredKernel {
    pub name: String,
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes moved to/from memory.
    pub bytes: f64,
    /// Elapsed wall time in seconds.
    pub elapsed_s: f64,
}

impl MeasuredKernel {
    pub fn new(name: impl Into<String>, flops: f64, bytes: f64, elapsed_s: f64) -> MeasuredKernel {
        MeasuredKernel {
            name: name.into(),
            flops,
            bytes,
            elapsed_s,
        }
    }

    /// Build from a runtime [`Profile`]: flops come from the computed-point
    /// counter scaled by the kernel's flops/point, bytes from measured DMA
    /// traffic (falling back to halo traffic when no SPM staging ran), and
    /// elapsed time from the span timeline. Any coordinate the profile did
    /// not capture comes out zero; [`Roofline::place`] guards the ratios.
    pub fn from_profile(profile: &Profile, flops_per_point: f64) -> MeasuredKernel {
        let flops = profile.get(Counter::ComputedPoints) as f64 * flops_per_point;
        let dma =
            profile.get(Counter::DmaGetBytes) + profile.get(Counter::DmaPutBytes);
        let bytes = if dma > 0 {
            dma as f64
        } else {
            profile.get(Counter::HaloBytes) as f64
        };
        let elapsed_s = profile.timeline_ns() as f64 * 1e-9;
        MeasuredKernel::new(profile.label.clone(), flops, bytes, elapsed_s)
    }

    /// Measured operational intensity (flops/byte); zero when no bytes
    /// were observed.
    pub fn intensity(&self) -> f64 {
        if self.bytes > 0.0 {
            self.flops / self.bytes
        } else {
            0.0
        }
    }

    /// Achieved GFlop/s; zero when no time was observed.
    pub fn achieved_gflops(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.flops / self.elapsed_s * 1e-9
        } else {
            0.0
        }
    }
}

/// Where a measured kernel lands relative to the roofs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Measured operational intensity, flops/byte.
    pub oi: f64,
    /// Measured performance, GFlop/s.
    pub achieved_gflops: f64,
    /// The roofline's bound at the measured intensity, GFlop/s.
    pub attainable_gflops: f64,
    /// Left of the ridge point?
    pub memory_bound: bool,
    /// achieved / attainable, in [0, 1] for a sane measurement.
    pub efficiency: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{matrix_processor, sunway_cg};

    #[test]
    fn ridge_point_is_consistent() {
        let r = Roofline {
            peak_gflops: 742.4,
            bw_gbps: 32.0,
        };
        let ridge = r.ridge_point();
        assert!((r.attainable_gflops(ridge) - r.peak_gflops).abs() < 1e-9);
        assert!(r.is_memory_bound(ridge * 0.5));
        assert!(!r.is_memory_bound(ridge * 2.0));
    }

    #[test]
    fn attainable_clamps_at_peak() {
        let r = Roofline {
            peak_gflops: 100.0,
            bw_gbps: 10.0,
        };
        assert_eq!(r.attainable_gflops(5.0), 50.0);
        assert_eq!(r.attainable_gflops(1000.0), 100.0);
    }

    #[test]
    fn measured_placement_lands_on_the_right_side_of_the_ridge() {
        let r = Roofline {
            peak_gflops: 100.0,
            bw_gbps: 10.0,
        }; // ridge at oi = 10
        // 1 GFlop over 0.1 GB in 0.1 s: oi 10^1, achieved 10 GFlop/s.
        let mem = MeasuredKernel::new("mem", 1e9, 1e9, 0.1);
        let p = r.place(&mem);
        assert!((p.oi - 1.0).abs() < 1e-12);
        assert!(p.memory_bound);
        assert!((p.attainable_gflops - 10.0).abs() < 1e-9);
        assert!((p.efficiency - 1.0).abs() < 1e-9);
        // Same flops over far fewer bytes: compute-bound, half-efficient.
        let cmp = MeasuredKernel::new("cmp", 1e10, 1e8, 0.2);
        let p = r.place(&cmp);
        assert!(!p.memory_bound);
        assert!((p.achieved_gflops - 50.0).abs() < 1e-9);
        assert!((p.efficiency - 0.5).abs() < 1e-9);
    }

    #[test]
    fn measured_kernel_from_profile_uses_dma_traffic() {
        use msc_trace::{Counter, CounterSet, Profile};
        let mut c = CounterSet::new();
        c.set(Counter::ComputedPoints, 1_000_000);
        c.set(Counter::DmaGetBytes, 8_000_000);
        c.set(Counter::DmaPutBytes, 2_000_000);
        let p = Profile::from_counters("spm-run", c);
        let k = MeasuredKernel::from_profile(&p, 10.0);
        assert_eq!(k.name, "spm-run");
        assert!((k.flops - 1e7).abs() < 1e-6);
        assert!((k.intensity() - 1.0).abs() < 1e-12);
        // No spans captured: elapsed unknown, achieved rate degrades to 0
        // instead of dividing by zero.
        assert_eq!(k.achieved_gflops(), 0.0);
    }

    #[test]
    fn matrix_ridge_is_lower_than_sunway() {
        // Paper Fig. 9: 2d169pt is compute-bound on Sunway but still
        // memory-bound on Matrix "due to the limited bandwidth" — in
        // roofline terms the achieved-intensity gap matters, but the CG's
        // ridge must be materially high.
        let s = Roofline::of(&sunway_cg(), Precision::Fp64);
        let m = Roofline::of(&matrix_processor(), Precision::Fp64);
        assert!(s.ridge_point() > 15.0, "sunway ridge {}", s.ridge_point());
        assert!(m.ridge_point() > 5.0, "matrix ridge {}", m.ridge_point());
    }
}
