//! Roofline model (paper §5.2.2, Figure 9): attainable performance as a
//! function of operational intensity.

use crate::model::{MachineModel, Precision};

/// Roofline of one machine at one precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak compute, GFlop/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth, GB/s.
    pub bw_gbps: f64,
}

impl Roofline {
    pub fn of(machine: &MachineModel, prec: Precision) -> Roofline {
        Roofline {
            peak_gflops: machine.peak_gflops(prec),
            bw_gbps: machine.mem_bw_gbps,
        }
    }

    /// The ridge point: the operational intensity (flops/byte) at which
    /// the memory roof meets the compute roof.
    pub fn ridge_point(&self) -> f64 {
        self.peak_gflops / self.bw_gbps
    }

    /// Attainable GFlop/s at operational intensity `oi` (flops/byte).
    pub fn attainable_gflops(&self, oi: f64) -> f64 {
        (oi * self.bw_gbps).min(self.peak_gflops)
    }

    /// Whether a kernel at intensity `oi` is memory-bound (left of the
    /// ridge).
    pub fn is_memory_bound(&self, oi: f64) -> bool {
        oi < self.ridge_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{matrix_processor, sunway_cg};

    #[test]
    fn ridge_point_is_consistent() {
        let r = Roofline {
            peak_gflops: 742.4,
            bw_gbps: 32.0,
        };
        let ridge = r.ridge_point();
        assert!((r.attainable_gflops(ridge) - r.peak_gflops).abs() < 1e-9);
        assert!(r.is_memory_bound(ridge * 0.5));
        assert!(!r.is_memory_bound(ridge * 2.0));
    }

    #[test]
    fn attainable_clamps_at_peak() {
        let r = Roofline {
            peak_gflops: 100.0,
            bw_gbps: 10.0,
        };
        assert_eq!(r.attainable_gflops(5.0), 50.0);
        assert_eq!(r.attainable_gflops(1000.0), 100.0);
    }

    #[test]
    fn matrix_ridge_is_lower_than_sunway() {
        // Paper Fig. 9: 2d169pt is compute-bound on Sunway but still
        // memory-bound on Matrix "due to the limited bandwidth" — in
        // roofline terms the achieved-intensity gap matters, but the CG's
        // ridge must be materially high.
        let s = Roofline::of(&sunway_cg(), Precision::Fp64);
        let m = Roofline::of(&matrix_processor(), Precision::Fp64);
        assert!(s.ridge_point() > 15.0, "sunway ridge {}", s.ridge_point());
        assert!(m.ridge_point() > 5.0, "matrix ridge {}", m.ridge_point());
    }
}
