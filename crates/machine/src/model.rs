//! Core machine description: compute throughput plus a memory system.

use crate::cache::CacheModel;
use crate::dma::DmaEngine;

/// Floating-point precision of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    Fp32,
    Fp64,
}

impl Precision {
    pub fn bytes(self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp64 => 8,
        }
    }
}

/// The memory system attached to the compute cores.
#[derive(Debug, Clone, PartialEq)]
pub enum MemorySystem {
    /// Cache-less cores with software-managed scratchpad memory and a DMA
    /// engine (Sunway CPEs). `direct_bw_gbps` is the effective bandwidth
    /// of discrete global loads/stores issued directly by the cores —
    /// the path OpenACC-style code takes — which on SW26010 is an order
    /// of magnitude below DMA bandwidth.
    Scratchpad {
        spm_bytes_per_core: usize,
        dma: DmaEngine,
        direct_bw_gbps: f64,
    },
    /// Cache-coherent hierarchy (Matrix, Xeon).
    Cache(CacheModel),
}

/// An analytic model of one processor (or one Sunway core group).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    pub name: &'static str,
    /// Compute cores participating in kernels (CPEs, Matrix cores, Xeon
    /// cores).
    pub cores: usize,
    pub freq_ghz: f64,
    /// Double-precision flops per core per cycle.
    pub flops_per_cycle_fp64: f64,
    /// Ratio of fp32 to fp64 throughput (2.0 for packed-SIMD machines).
    pub fp32_ratio: f64,
    /// Aggregate DRAM bandwidth available to this model, GB/s.
    pub mem_bw_gbps: f64,
    /// Fraction of peak flops stencil inner loops sustain (instruction
    /// mix, dependency chains, no perfect FMA balance). Peak figures stay
    /// untouched for rooflines; the simulator charges sustained compute.
    pub compute_efficiency: f64,
    pub memory: MemorySystem,
}

impl MachineModel {
    /// Peak floating-point throughput in GFlop/s for a precision.
    pub fn peak_gflops(&self, prec: Precision) -> f64 {
        let fp64 = self.cores as f64 * self.freq_ghz * self.flops_per_cycle_fp64;
        match prec {
            Precision::Fp64 => fp64,
            Precision::Fp32 => fp64 * self.fp32_ratio,
        }
    }

    /// Time in seconds to execute `flops` at the *sustained* stencil rate
    /// (peak × compute efficiency).
    pub fn compute_time_s(&self, flops: f64, prec: Precision) -> f64 {
        flops / (self.peak_gflops(prec) * self.compute_efficiency * 1e9)
    }

    /// Time in seconds to move `bytes` over DRAM at full bandwidth.
    pub fn mem_time_s(&self, bytes: f64) -> f64 {
        bytes / (self.mem_bw_gbps * 1e9)
    }

    /// Scratchpad capacity per core, if the machine has one.
    pub fn spm_bytes(&self) -> Option<usize> {
        match &self.memory {
            MemorySystem::Scratchpad {
                spm_bytes_per_core, ..
            } => Some(*spm_bytes_per_core),
            MemorySystem::Cache(_) => None,
        }
    }

    /// Whether kernels must be staged through SPM via DMA.
    pub fn is_cacheless(&self) -> bool {
        matches!(self.memory, MemorySystem::Scratchpad { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::*;

    #[test]
    fn sunway_cg_peak_matches_paper() {
        // SW26010: 3.06 TFlops over 4 CGs -> ~742-765 GFlops per CG of
        // CPE throughput (64 CPEs x 1.45 GHz x 8 flops/cycle).
        let m = sunway_cg();
        let peak = m.peak_gflops(Precision::Fp64);
        assert!((peak - 742.4).abs() < 1.0, "peak = {peak}");
    }

    #[test]
    fn matrix_chip_peak_matches_paper() {
        // Full MT2000+: 128 cores x 2.0 GHz x 8 flops/cycle = 2048 GFlops
        // ("around 2.048 TFlops", paper §2.2). Our preset models the
        // 32-core supernode allocation: a quarter of that.
        let m = matrix_processor();
        let peak = m.peak_gflops(Precision::Fp64);
        assert!((peak * 4.0 - 2048.0).abs() < 1.0, "peak = {peak}");
    }

    #[test]
    fn xeon_peak() {
        // 28 cores x 2.4 GHz x 16 dp flops/cycle (AVX2 FMA) ~ 1075 GFlops.
        let m = xeon_server();
        let peak = m.peak_gflops(Precision::Fp64);
        assert!((peak - 1075.2).abs() < 1.0, "peak = {peak}");
    }

    #[test]
    fn fp32_doubles_throughput() {
        let m = sunway_cg();
        assert_eq!(
            m.peak_gflops(Precision::Fp32),
            2.0 * m.peak_gflops(Precision::Fp64)
        );
    }

    #[test]
    fn compute_and_mem_times() {
        let m = sunway_cg();
        let t = m.compute_time_s(m.peak_gflops(Precision::Fp64) * 1e9, Precision::Fp64);
        assert!((t - 1.0 / m.compute_efficiency).abs() < 1e-9);
        let tm = m.mem_time_s(m.mem_bw_gbps * 1e9);
        assert!((tm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_rate_is_a_proper_fraction_of_peak() {
        for m in [sunway_cg(), matrix_processor(), xeon_server()] {
            assert!(m.compute_efficiency > 0.0 && m.compute_efficiency <= 1.0);
        }
    }

    #[test]
    fn sunway_is_cacheless_matrix_is_not() {
        assert!(sunway_cg().is_cacheless());
        assert_eq!(sunway_cg().spm_bytes(), Some(64 * 1024));
        assert!(!matrix_processor().is_cacheless());
        assert_eq!(matrix_processor().spm_bytes(), None);
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Fp64.bytes(), 8);
    }
}
