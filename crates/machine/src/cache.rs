//! Cache hierarchy model for coherent many-cores (Matrix MT2000+, Xeon).
//!
//! Stencil sweeps are bandwidth-bound; what differs between machines and
//! schedules is how much DRAM traffic the cache filters out. The model
//! charges compulsory traffic (one read + one write per point) when the
//! stencil's working set fits the last-level capacity available to a
//! core, degrading smoothly toward one miss per stencil tap when it does
//! not.

/// Analytic cache model.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheModel {
    /// Private L1 data capacity per core, bytes.
    pub l1_bytes: usize,
    /// Last-level capacity *available per core* (shared capacity divided
    /// by sharers), bytes.
    pub llc_bytes_per_core: usize,
    /// Cache line size, bytes.
    pub line_bytes: usize,
}

impl CacheModel {
    /// Multiplier on compulsory *read* traffic for a stencil streaming a
    /// window of `window_rows` rows (the `2r+1` planes a stencil keeps
    /// live), each of `row_bytes` bytes.
    ///
    /// When the whole window fits in the core's cache share, each row is
    /// fetched from DRAM exactly once (amplification 1.0). When only `h`
    /// rows fit, each step of the stream re-fetches the `window_rows - h`
    /// evicted rows in addition to the one compulsory new row.
    pub fn read_amplification(&self, window_rows: usize, row_bytes: f64) -> f64 {
        let cap = self.llc_bytes_per_core as f64;
        let held = (cap / row_bytes.max(1.0)).floor();
        let w = window_rows as f64;
        if held >= w {
            1.0
        } else {
            (w - held + 1.0).min(w).max(1.0)
        }
    }

    /// Traffic multiplier for scattered single-element accesses: the full
    /// line is moved for `elem_bytes` of payload.
    pub fn line_amplification(&self, elem_bytes: usize) -> f64 {
        self.line_bytes as f64 / elem_bytes as f64
    }

    /// Working set of one stencil row-window: the `2r+1` rows (2D) or
    /// planes (3D) the stencil keeps live while streaming, each of
    /// `row_bytes` bytes.
    pub fn stencil_working_set(radius: usize, row_bytes: f64) -> f64 {
        (2 * radius + 1) as f64 * row_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> CacheModel {
        CacheModel {
            l1_bytes: 32 * 1024,
            llc_bytes_per_core: 512 * 1024,
            line_bytes: 64,
        }
    }

    #[test]
    fn fitting_window_is_compulsory_only() {
        let c = cache();
        // 13 rows of 16 KB = 208 KB < 512 KB share.
        assert_eq!(c.read_amplification(13, 16.0 * 1024.0), 1.0);
    }

    #[test]
    fn amplification_counts_evicted_rows() {
        let c = cache();
        // 13 rows of 64 KB: only 8 fit -> 13 - 8 + 1 = 6 fetches per row.
        assert_eq!(c.read_amplification(13, 64.0 * 1024.0), 6.0);
    }

    #[test]
    fn amplification_bounded_by_window() {
        let c = cache();
        // Rows far larger than the cache: every window row misses.
        assert_eq!(c.read_amplification(13, 1e9), 13.0);
    }

    #[test]
    fn amplification_monotone_in_row_bytes() {
        let c = cache();
        let a1 = c.read_amplification(13, 40.0 * 1024.0);
        let a2 = c.read_amplification(13, 80.0 * 1024.0);
        assert!(a1 <= a2);
    }

    #[test]
    fn line_amplification_for_doubles() {
        assert_eq!(cache().line_amplification(8), 8.0);
    }

    #[test]
    fn working_set_scales_with_radius() {
        let row = 4096.0 * 8.0;
        assert_eq!(CacheModel::stencil_working_set(1, row), 3.0 * row);
        assert_eq!(CacheModel::stencil_working_set(6, row), 13.0 * row);
    }
}
