//! Interconnect model for multi-node (MPI) runs.
//!
//! Halo exchange in MSC is fully asynchronous (paper §4.4): every process
//! posts isend/irecv to all neighbours and the exchange completes when the
//! slowest link drains. The model therefore charges, per exchange round:
//! per-message latency, payload over link bandwidth, and a congestion term
//! that grows with the number of simultaneous messages in the fabric —
//! the term responsible for the 2D strong-scaling dip on the prototype
//! Tianhe-3 (paper §5.3: "halo regions of 2D stencils are exchanged more
//! frequently, which leads to network congestion").

/// Analytic network model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    pub name: &'static str,
    /// Per-message latency, microseconds.
    pub latency_us: f64,
    /// Per-node injection bandwidth, GB/s.
    pub bw_gbps: f64,
    /// Congestion coefficient: extra microseconds per message scaled by
    /// the square root of the number of communicating nodes.
    pub congestion_us_per_msg: f64,
}

impl NetworkModel {
    /// Point-to-point time for one message of `bytes`.
    pub fn message_time_s(&self, bytes: f64) -> f64 {
        self.latency_us * 1e-6 + bytes / (self.bw_gbps * 1e9)
    }

    /// Message size below which the per-message software/congestion
    /// overhead does not amortize.
    pub const SMALL_MSG_BYTES: f64 = 64.0 * 1024.0;

    /// Wire time for one asynchronous halo-exchange round where each node
    /// sends `msgs_per_node` messages totalling `bytes_per_node`. This
    /// part overlaps with computation.
    pub fn exchange_time_s(&self, msgs_per_node: usize, bytes_per_node: f64, nodes: usize) -> f64 {
        let _ = nodes;
        self.latency_us * 1e-6 * msgs_per_node as f64 + bytes_per_node / (self.bw_gbps * 1e9)
    }

    /// CPU-side software overhead of issuing/progressing the exchange:
    /// per message, growing with fabric endpoint count, and — crucially —
    /// *not* overlappable with computation. Large messages amortize it
    /// (weight `SMALL_MSG_BYTES / size`); small ones pay in full. This is
    /// the term behind the paper's observation that 2D stencils (many
    /// small faces) deviate from ideal strong scaling on the prototype
    /// Tianhe-3 while 3D stencils (large faces) do not.
    pub fn software_overhead_s(
        &self,
        msgs_per_node: usize,
        bytes_per_node: f64,
        nodes: usize,
    ) -> f64 {
        if msgs_per_node == 0 {
            return 0.0;
        }
        let msg_size = bytes_per_node / msgs_per_node as f64;
        let weight = (Self::SMALL_MSG_BYTES / msg_size.max(1.0)).min(1.0);
        self.congestion_us_per_msg * 1e-6
            * msgs_per_node as f64
            * weight
            * (nodes as f64).sqrt()
    }

    /// Time for a *synchronous, master-coordinated* exchange (the Physis
    /// RPC-runtime pattern, paper §5.5): all `nodes * msgs_per_node`
    /// messages serialize through one coordinator.
    pub fn coordinated_exchange_time_s(
        &self,
        msgs_per_node: usize,
        bytes_per_node: f64,
        nodes: usize,
    ) -> f64 {
        let total_msgs = msgs_per_node * nodes;
        let rpc_overhead = self.latency_us * 1e-6 * 2.0; // request + grant
        total_msgs as f64 * rpc_overhead
            + self.latency_us * 1e-6 * total_msgs as f64
            + bytes_per_node * nodes as f64 / (self.bw_gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel {
            name: "test",
            latency_us: 1.0,
            bw_gbps: 8.0,
            congestion_us_per_msg: 0.05,
        }
    }

    #[test]
    fn message_time_latency_floor() {
        let n = net();
        assert!(n.message_time_s(0.0) >= 1e-6);
        assert!(n.message_time_s(8e9) > 0.9);
    }

    #[test]
    fn wire_time_is_scale_independent() {
        let n = net();
        let t64 = n.exchange_time_s(6, 1e6, 64);
        let t1024 = n.exchange_time_s(6, 1e6, 1024);
        assert_eq!(t64, t1024, "wire time depends on payload, not fabric size");
    }

    #[test]
    fn software_overhead_grows_with_nodes() {
        let n = net();
        let small = n.software_overhead_s(6, 6.0 * 8.0 * 1024.0, 64);
        let big = n.software_overhead_s(6, 6.0 * 8.0 * 1024.0, 1024);
        assert!(big > 3.0 * small);
    }

    #[test]
    fn large_messages_amortize_software_overhead() {
        let n = net();
        // 8 KB vs 1 MB messages: same count, very different overhead.
        let tiny = n.software_overhead_s(6, 6.0 * 8.0 * 1024.0, 256);
        let large = n.software_overhead_s(6, 6.0 * 1024.0 * 1024.0, 256);
        assert!(tiny > 10.0 * large, "tiny {tiny} vs large {large}");
    }

    #[test]
    fn zero_messages_zero_overhead() {
        assert_eq!(net().software_overhead_s(0, 0.0, 128), 0.0);
    }

    #[test]
    fn coordinated_exchange_serializes_with_nodes() {
        let n = net();
        let async_t = n.exchange_time_s(6, 1e6, 512);
        let coord_t = n.coordinated_exchange_time_s(6, 1e6, 512);
        assert!(
            coord_t > 10.0 * async_t,
            "coordinated {coord_t} vs async {async_t}"
        );
    }

    #[test]
    fn latency_grows_with_message_count() {
        let n = net();
        let few = n.exchange_time_s(4, 1e6, 256);
        let many = n.exchange_time_s(26, 1e6, 256);
        assert!(many > few);
    }
}
