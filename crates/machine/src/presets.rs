//! Preset machine models for the paper's three platforms (Table 3) and
//! the two interconnects of the scalability study.

use crate::cache::CacheModel;
use crate::dma::DmaEngine;
use crate::model::{MachineModel, MemorySystem};
use crate::network::NetworkModel;

/// One Sunway SW26010 core group: 1 MPE + 64 CPEs at 1.45 GHz, 64 KB SPM
/// per CPE, no data cache, DMA to main memory (paper §2.2, Figure 1).
///
/// Bandwidth figures follow published SW26010 measurements: ~34 GB/s DRAM
/// per CG, ~28 GB/s achievable via DMA, and on the order of 1.5 GB/s for
/// discrete global loads/stores issued directly by CPEs (`gld/gst`) — the
/// gap that makes SPM/DMA staging essential and drives Figure 7.
pub fn sunway_cg() -> MachineModel {
    MachineModel {
        name: "Sunway SW26010 (1 CG)",
        cores: 64,
        freq_ghz: 1.45,
        flops_per_cycle_fp64: 8.0,
        fp32_ratio: 2.0,
        mem_bw_gbps: 34.0,
        compute_efficiency: 0.35,
        memory: MemorySystem::Scratchpad {
            spm_bytes_per_core: 64 * 1024,
            dma: DmaEngine {
                bw_gbps: 28.0,
                startup_us: 0.2,
                strided_efficiency: 0.85,
            },
            direct_bw_gbps: 1.5,
        },
    }
}

/// A full Sunway node: 4 CGs (used as the per-process unit in large-scale
/// runs is one CG; the node model aggregates them).
pub fn sunway_node() -> MachineModel {
    let mut m = sunway_cg();
    m.name = "Sunway SW26010 (node, 4 CGs)";
    m.cores *= 4;
    m.mem_bw_gbps *= 4.0;
    m
}

/// The Matrix MT2000+ allocation the paper's single-processor experiments
/// use: one supernode of 32 cache-coherent cores at 2.0 GHz (paper §2.2
/// and §5.1: "core resources assigned to the user are at the granularity
/// of 32 cores"). The full 128-core chip delivers ~2.048 TFlops and eight
/// DDR4-2400 channels (~153.6 GB/s); one supernode gets a quarter share.
pub fn matrix_processor() -> MachineModel {
    MachineModel {
        name: "Matrix MT2000+ (1 SN, 32 cores)",
        cores: 32,
        freq_ghz: 2.0,
        flops_per_cycle_fp64: 8.0,
        fp32_ratio: 2.0,
        mem_bw_gbps: 38.4,
        compute_efficiency: 0.50,
        memory: MemorySystem::Cache(CacheModel {
            l1_bytes: 32 * 1024,
            llc_bytes_per_core: 128 * 1024,
            line_bytes: 64,
        }),
    }
}

/// The local CPU server of Table 3: two Xeon E5-2680v4 sockets, 28 cores
/// total at 2.4 GHz with AVX2 FMA (16 dp flops/cycle), ~76.8 GB/s DDR4
/// bandwidth per socket.
pub fn xeon_server() -> MachineModel {
    MachineModel {
        name: "2x Intel E5-2680v4 (28 cores)",
        cores: 28,
        freq_ghz: 2.4,
        flops_per_cycle_fp64: 16.0,
        fp32_ratio: 2.0,
        mem_bw_gbps: 153.6,
        compute_efficiency: 0.60,
        memory: MemorySystem::Cache(CacheModel {
            l1_bytes: 32 * 1024,
            llc_bytes_per_core: 1250 * 1024, // 35 MB LLC / 14 cores per socket
            line_bytes: 64,
        }),
    }
}

/// Sunway TaihuLight interconnect: custom fat-tree with high injection
/// bandwidth and effective congestion management — the paper's strong
/// scaling on Sunway stays near-ideal to 1,024 CGs.
pub fn taihulight_network() -> NetworkModel {
    NetworkModel {
        name: "TaihuLight fat-tree",
        latency_us: 1.0,
        bw_gbps: 8.0,
        congestion_us_per_msg: 0.1,
    }
}

/// Prototype Tianhe-3 interconnect: the paper observes 2D stencils
/// deviating from ideal strong scaling due to congestion from frequent
/// halo exchanges — modelled with a larger congestion coefficient.
pub fn tianhe3_network() -> NetworkModel {
    NetworkModel {
        name: "Tianhe-3 prototype",
        latency_us: 1.5,
        bw_gbps: 6.0,
        congestion_us_per_msg: 6.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Precision;

    #[test]
    fn node_is_four_cgs() {
        let cg = sunway_cg();
        let node = sunway_node();
        assert_eq!(node.cores, 4 * cg.cores);
        assert_eq!(
            node.peak_gflops(Precision::Fp64),
            4.0 * cg.peak_gflops(Precision::Fp64)
        );
        // ~3.06 TFlops per processor except MPE contribution (paper §2.2).
        assert!(node.peak_gflops(Precision::Fp64) > 2900.0);
    }

    #[test]
    fn dma_much_faster_than_direct_access() {
        let m = sunway_cg();
        if let MemorySystem::Scratchpad {
            dma, direct_bw_gbps, ..
        } = &m.memory
        {
            assert!(dma.bw_gbps > 10.0 * direct_bw_gbps);
        } else {
            panic!("sunway must be scratchpad-based");
        }
    }

    #[test]
    fn tianhe3_congests_more_than_taihulight() {
        assert!(
            tianhe3_network().congestion_us_per_msg > taihulight_network().congestion_us_per_msg
        );
    }

    #[test]
    fn matrix_bw_is_quarter_of_chip() {
        assert!((matrix_processor().mem_bw_gbps * 4.0 - 153.6).abs() < 1e-9);
    }
}
