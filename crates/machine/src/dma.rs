//! DMA engine model for cache-less many-cores (Sunway CPE clusters).
//!
//! CPEs reach main memory through DMA block transfers; throughput depends
//! heavily on transfer size (startup cost) and contiguity (coalescing —
//! the earthquake-simulation Gordon Bell work the paper cites leaned on
//! coalesced DMA for exactly this reason).

/// Analytic DMA model: `time = startup + bytes / bw`, with an efficiency
/// penalty for strided (non-contiguous) transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct DmaEngine {
    /// Peak aggregate DMA bandwidth of the core cluster, GB/s.
    pub bw_gbps: f64,
    /// Per-transfer startup latency, microseconds.
    pub startup_us: f64,
    /// Efficiency multiplier for strided transfers in (0, 1].
    pub strided_efficiency: f64,
}

impl DmaEngine {
    /// Seconds to transfer `bytes` contiguously.
    pub fn contiguous_time_s(&self, bytes: f64) -> f64 {
        self.startup_us * 1e-6 + bytes / (self.bw_gbps * 1e9)
    }

    /// Seconds to transfer `bytes` as `rows` separate contiguous rows
    /// (2D/3D tile reads): each row pays startup, and the stream runs at
    /// strided efficiency.
    pub fn tile_time_s(&self, bytes: f64, rows: usize) -> f64 {
        let eff_bw = self.bw_gbps * self.strided_efficiency;
        self.startup_us * 1e-6 * rows as f64 + bytes / (eff_bw * 1e9)
    }

    /// Effective bandwidth (GB/s) achieved moving `bytes` in `rows` rows.
    pub fn effective_bw_gbps(&self, bytes: f64, rows: usize) -> f64 {
        bytes / self.tile_time_s(bytes, rows) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dma() -> DmaEngine {
        DmaEngine {
            bw_gbps: 28.0,
            startup_us: 0.5,
            strided_efficiency: 0.85,
        }
    }

    #[test]
    fn contiguous_time_has_startup_floor() {
        let d = dma();
        assert!(d.contiguous_time_s(0.0) > 0.0);
        let t1 = d.contiguous_time_s(1e6);
        let t2 = d.contiguous_time_s(2e6);
        assert!(t2 > t1);
        assert!(t2 < 2.0 * t1); // startup amortizes
    }

    #[test]
    fn more_rows_cost_more() {
        let d = dma();
        assert!(d.tile_time_s(1e6, 64) > d.tile_time_s(1e6, 8));
    }

    #[test]
    fn effective_bw_below_peak_and_grows_with_size() {
        let d = dma();
        let small = d.effective_bw_gbps(8.0 * 1024.0, 8);
        let large = d.effective_bw_gbps(8.0 * 1024.0 * 1024.0, 8);
        assert!(small < large);
        assert!(large < d.bw_gbps);
        assert!(large > 0.5 * d.bw_gbps);
    }
}
