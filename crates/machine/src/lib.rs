//! # msc-machine — architectural models of the paper's platforms
//!
//! The paper evaluates MSC on hardware we cannot access (Sunway SW26010
//! core groups on TaihuLight, Matrix MT2000+ nodes on the prototype
//! Tianhe-3, and a two-socket Xeon E5-2680v4 server). This crate models
//! those machines: core counts, frequencies, peak flops, memory systems
//! (64 KB scratchpad + DMA on Sunway, coherent caches on Matrix/Xeon),
//! and the interconnects between nodes.
//!
//! The models are *analytic*: the timing simulator (`msc-sim`) charges
//! compute and memory traffic against them deterministically, which is
//! what lets the repository reproduce the paper's figures on any host.
//! See DESIGN.md §2 for the substitution rationale.

pub mod cache;
pub mod dma;
pub mod model;
pub mod network;
pub mod presets;
pub mod roofline;

pub use cache::CacheModel;
pub use dma::DmaEngine;
pub use model::{MachineModel, MemorySystem, Precision};
pub use network::NetworkModel;
pub use presets::{matrix_processor, sunway_cg, sunway_node, tianhe3_network, taihulight_network, xeon_server};
pub use roofline::Roofline;
