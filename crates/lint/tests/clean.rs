//! All committed examples and every catalog benchmark must lint clean —
//! the acceptance bar for shipping the verifier as a default-on gate.

use msc_core::catalog::all_benchmarks;
use msc_core::dtype::DType;
use msc_core::parse::parse;
use msc_core::schedule::{preset_for, Target};
use msc_lint::lint_program;

#[test]
fn committed_examples_lint_fully_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/dsl");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "msc") {
            continue;
        }
        seen += 1;
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        let source = std::fs::read_to_string(&path).unwrap();
        let parsed = parse(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = lint_program(&parsed.program, parsed.target);
        assert!(
            report.is_clean(),
            "{name}: committed examples must lint clean (not even warnings):\n{}",
            report.render()
        );
    }
    assert!(seen >= 3, "expected the committed example set, found {seen}");
}

#[test]
fn catalog_benchmarks_lint_clean_unscheduled() {
    for b in all_benchmarks() {
        for grid in [b.test_grid(), b.default_grid()] {
            let p = b.program(&grid, DType::F64, 4).unwrap();
            let report = lint_program(&p, None);
            assert!(report.is_clean(), "{}: {}", b.name, report.render());
        }
    }
}

#[test]
fn catalog_benchmarks_lint_deny_free_with_sunway_presets() {
    // The paper's Table 5 schedules on the paper's grids: no denies, and
    // on the default (paper-sized) grids not even warnings.
    for b in all_benchmarks() {
        let grid = b.default_grid();
        let mut p = b.program(&grid, DType::F64, 4).unwrap();
        let sched = preset_for(b.ndim, b.points(), Target::SunwayCG);
        for k in &mut p.stencil.kernels {
            *k.sched() = sched.clone();
        }
        let report = lint_program(&p, Some(Target::SunwayCG));
        assert!(
            report.is_clean(),
            "{} with Table 5 preset: {}",
            b.name,
            report.render()
        );
    }
}
