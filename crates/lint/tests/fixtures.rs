//! Every lint family is seeded with a known-bad fixture pair: the
//! `.deny.msc` file must fail with the stable code named in its
//! `// expect: MSC-Lnnn` header, and its `.fixed.msc` twin must pass.

use msc_core::parse::parse_unchecked;
use msc_lint::lint_program;

fn fixtures() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "msc"))
        .collect();
    files.sort();
    files
}

#[test]
fn deny_fixtures_fail_with_their_expected_code() {
    let mut deny_seen = 0;
    for path in fixtures() {
        let name = path.file_name().unwrap().to_str().unwrap();
        if !name.contains(".deny.") {
            continue;
        }
        deny_seen += 1;
        let source = std::fs::read_to_string(&path).unwrap();
        let expected = source
            .lines()
            .find_map(|l| l.trim().strip_prefix("// expect: "))
            .unwrap_or_else(|| panic!("{name}: missing `// expect:` header"))
            .trim()
            .to_string();
        let parsed = parse_unchecked(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = lint_program(&parsed.program, parsed.target);
        assert!(report.has_deny(), "{name}: expected a deny diagnostic");
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d| d.code.as_str() == expected),
            "{name}: expected {expected}, got:\n{}",
            report.render()
        );
    }
    // One deny fixture per lint family (halo, window, race, capacity x2).
    assert!(deny_seen >= 4, "only {deny_seen} deny fixtures found");
}

#[test]
fn fixed_twins_pass() {
    let mut fixed_seen = 0;
    for path in fixtures() {
        let name = path.file_name().unwrap().to_str().unwrap();
        if !name.contains(".fixed.") {
            continue;
        }
        fixed_seen += 1;
        let source = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_unchecked(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = lint_program(&parsed.program, parsed.target);
        assert!(
            !report.has_deny(),
            "{name}: fixed twin must pass, got:\n{}",
            report.render()
        );
    }
    assert!(fixed_seen >= 4, "only {fixed_seen} fixed fixtures found");
}

#[test]
fn every_deny_fixture_has_a_fixed_twin() {
    let files = fixtures();
    let names: Vec<String> = files
        .iter()
        .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
        .collect();
    for n in &names {
        if let Some(stem) = n.strip_suffix(".deny.msc") {
            assert!(
                names.contains(&format!("{stem}.fixed.msc")),
                "{n} has no fixed twin"
            );
        }
    }
}
