//! # msc-lint — compile-time stencil verifier
//!
//! Multi-pass static analysis over the single-level IR and schedule,
//! run before any codegen or execution. The passes consume the
//! [`msc_core::footprint::Footprint`] inferred from each kernel's
//! expression tree and prove, rather than assume:
//!
//! * **halo sufficiency** — every grid's declared halo covers the
//!   per-axis min/max offset box (MSC-L101/L102);
//! * **time-window depth** — the sliding window keeps every read state
//!   alive (`S[t-2]` with a 2-deep window is a compile error,
//!   MSC-L201/L202);
//! * **parallel races** — `parallel()` on a sweep whose window aliases
//!   read and write states is a cross-thread data race
//!   (MSC-L301/L302/L303);
//! * **capacity** — `cache_read`/`cache_write` staging buffers versus
//!   the target's SPM size, DMA row granularity, and the MPI process
//!   grid versus the global extents (MSC-L401..L404).
//!
//! Diagnostics are structured ([`LintCode`], [`Severity`], source
//! context, machine-readable JSON) and surfaced through `mscc check`;
//! `mscc` build/run, `msc-codegen`, `msc-exec` and `msc-comm` all call
//! [`check_deny`] so no pipeline can skip the gate. Programs built
//! through the strict `ProgramBuilder::build()` are already halo/window
//! sound; the lint layer exists so the *unchecked* parse path used by
//! `mscc check` can explain every defect at once, and so
//! schedule/capacity defects that the builder never sees are caught
//! before they become runtime errors or silent corruption.

pub mod code;
pub mod diag;
pub mod passes;

pub use code::LintCode;
pub use diag::{Diagnostic, Report, Severity};

use msc_core::dsl::StencilProgram;
use msc_core::error::{MscError, Result};
use msc_core::footprint::Footprint;
use msc_core::schedule::Target;

/// Run every lint pass over a program. `target` enables the
/// target-specific capacity lints (SPM size, DMA granularity); pass
/// `None` when the target is unknown (e.g. the functional executor).
pub fn lint_program(program: &StencilProgram, target: Option<Target>) -> Report {
    let mut report = Report::new(&program.name);
    // `of_stencil` only fails on a term naming an unknown kernel, which
    // `Stencil::new` rejects before a `StencilProgram` can exist.
    let Ok(fp) = Footprint::of_stencil(&program.stencil) else {
        return report;
    };
    passes::halo::run(program, &fp, &mut report);
    passes::window::run(program, &fp, &mut report);
    passes::race::run(program, &fp, &mut report);
    passes::capacity::run(program, &fp, target, &mut report);
    report
}

/// The gate used by codegen and the execution entry points: lint, and
/// refuse to proceed on any deny-level diagnostic. Warnings pass through
/// in the returned report for the caller to surface.
pub fn check_deny(program: &StencilProgram, target: Option<Target>) -> Result<Report> {
    let report = lint_program(program, target);
    if report.has_deny() {
        return Err(MscError::InvalidConfig(format!(
            "lint rejected `{}`:\n{}",
            program.name,
            report.render_denies()
        )));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_core::dtype::DType;
    use msc_core::kernel::Kernel;
    use msc_core::schedule::BufferScope;

    fn narrow_halo() -> StencilProgram {
        StencilProgram::builder("bad")
            .grid_3d("B", DType::F64, [64, 64, 64], 1, 3)
            .kernel(Kernel::star_normalized("S", 3, 2)) // reach 2
            .combine(&[(1, 0.6, "S"), (2, 0.4, "S")])
            .build_unchecked()
            .unwrap()
    }

    #[test]
    fn narrow_halo_denied() {
        let r = lint_program(&narrow_halo(), None);
        assert!(r.has_code(LintCode::HaloTooNarrow));
        assert!(r.has_deny());
        assert!(check_deny(&narrow_halo(), None).is_err());
    }

    #[test]
    fn strictly_built_catalog_programs_are_clean() {
        for b in msc_core::catalog::all_benchmarks() {
            let p = b.program(&b.test_grid(), DType::F64, 4).unwrap();
            let r = lint_program(&p, None);
            assert!(r.is_clean(), "{}: {}", b.name, r.render());
        }
    }

    #[test]
    fn shallow_window_denied_and_fix_passes() {
        let bad = StencilProgram::builder("w")
            .grid_3d("B", DType::F64, [32, 32, 32], 1, 2) // window 2
            .kernel(Kernel::star_normalized("S", 3, 1))
            .combine(&[(1, 0.5, "S"), (2, 0.5, "S")]) // reads t-2
            .build_unchecked()
            .unwrap();
        let r = lint_program(&bad, None);
        assert!(r.has_code(LintCode::WindowTooShallow));
        // Serial aliased sweep is an order dependence, not a thread race.
        assert!(r.has_code(LintCode::InPlaceOrderDependence));

        let good = StencilProgram::builder("w")
            .grid_3d("B", DType::F64, [32, 32, 32], 1, 3)
            .kernel(Kernel::star_normalized("S", 3, 1))
            .combine(&[(1, 0.5, "S"), (2, 0.5, "S")])
            .build()
            .unwrap();
        assert!(lint_program(&good, None).is_clean());
    }

    #[test]
    fn parallel_on_aliased_window_is_a_race() {
        let mut k = Kernel::star_normalized("S", 3, 1);
        k.sched().tile(&[8, 8, 32]).parallel("xo", 8);
        let bad = StencilProgram::builder("race")
            .grid_3d("B", DType::F64, [64, 64, 64], 1, 2)
            .kernel(k)
            .combine(&[(1, 0.5, "S"), (2, 0.5, "S")])
            .build_unchecked()
            .unwrap();
        let r = lint_program(&bad, None);
        assert!(r.has_code(LintCode::ParallelWindowRace));
        assert!(!r.has_code(LintCode::InPlaceOrderDependence));
    }

    #[test]
    fn oversized_halo_and_window_warn_but_pass() {
        let p = StencilProgram::builder("wide")
            .grid_3d("B", DType::F64, [32, 32, 32], 3, 4) // reach 1, needs 3
            .kernel(Kernel::star_normalized("S", 3, 1))
            .combine(&[(1, 0.5, "S"), (2, 0.5, "S")])
            .build()
            .unwrap();
        let r = lint_program(&p, None);
        assert!(r.has_code(LintCode::HaloOversized));
        assert!(r.has_code(LintCode::WindowOversized));
        assert!(!r.has_deny());
        assert!(check_deny(&p, None).is_ok());
    }

    #[test]
    fn spm_overflow_denied_only_with_cacheless_target() {
        let mut k = Kernel::star_normalized("S", 3, 1);
        k.sched()
            .tile(&[64, 64, 64])
            .parallel("xo", 1)
            .cache_read("B", "br", BufferScope::Global)
            .cache_write("bw", BufferScope::Global)
            .compute_at("br", "zo")
            .compute_at("bw", "zo");
        let p = StencilProgram::builder("big")
            .grid_3d("B", DType::F64, [64, 64, 64], 1, 3)
            .kernel(k)
            .combine(&[(1, 0.6, "S"), (2, 0.4, "S")])
            .build()
            .unwrap();
        let sunway = lint_program(&p, Some(Target::SunwayCG));
        assert!(sunway.has_code(LintCode::SpmOverflow));
        let cpu = lint_program(&p, Some(Target::Cpu));
        assert!(!cpu.has_code(LintCode::SpmOverflow));
        assert!(lint_program(&p, None).is_clean());
    }

    #[test]
    fn short_dma_rows_warn() {
        let mut k = Kernel::star_normalized("S", 3, 1);
        k.sched()
            .tile(&[8, 8, 8])
            .parallel("xo", 8)
            .cache_read("B", "br", BufferScope::Global)
            .cache_write("bw", BufferScope::Global)
            .compute_at("br", "zo")
            .compute_at("bw", "zo");
        let p = StencilProgram::builder("short")
            .grid_3d("B", DType::F64, [64, 64, 64], 1, 3)
            .kernel(k)
            .combine(&[(1, 0.6, "S"), (2, 0.4, "S")])
            .build()
            .unwrap();
        let r = lint_program(&p, Some(Target::SunwayCG));
        // Rows are (8+2)·8 = 80 B < 128 B.
        assert!(r.has_code(LintCode::DmaRowTooShort));
        assert!(!r.has_deny());
    }

    #[test]
    fn indivisible_mpi_grid_denied() {
        let p = StencilProgram::builder("mpi")
            .grid_3d("B", DType::F64, [60, 64, 64], 1, 3)
            .kernel(Kernel::star_normalized("S", 3, 1))
            .combine(&[(1, 0.6, "S"), (2, 0.4, "S")])
            .mpi_grid(&[7, 2, 2]) // 60 % 7 != 0
            .build()
            .unwrap();
        let r = lint_program(&p, None);
        assert!(r.has_code(LintCode::MpiGridIndivisible));
        assert!(r.has_deny());
    }

    #[test]
    fn threads_exceeding_tiles_warn() {
        let mut k = Kernel::star_normalized("S", 3, 1);
        k.sched().tile(&[32, 8, 64]).parallel("xo", 8);
        let p = StencilProgram::builder("idle")
            .grid_3d("B", DType::F64, [64, 64, 64], 1, 3)
            .kernel(k)
            .combine(&[(1, 0.6, "S"), (2, 0.4, "S")])
            .build()
            .unwrap();
        let r = lint_program(&p, None);
        // Only 64/32 = 2 tiles along x for 8 threads.
        assert!(r.has_code(LintCode::ThreadsExceedTiles));
        assert!(!r.has_deny());
    }
}
