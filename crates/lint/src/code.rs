//! Stable lint codes. Codes are grouped by family (`MSC-L1xx` halo,
//! `MSC-L2xx` time window, `MSC-L3xx` parallel races, `MSC-L4xx`
//! capacity/decomposition, `MSC-L5xx` C lifting) and are part of the
//! tool's public contract:
//! fixtures, CI greps and downstream tooling match on the code string, so
//! codes are never renumbered or reused.

use crate::diag::Severity;

/// Every lint the verifier can emit. See DESIGN.md §10 for the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// MSC-L101: declared halo narrower than the inferred footprint.
    HaloTooNarrow,
    /// MSC-L102: declared halo wider than any access reaches.
    HaloOversized,
    /// MSC-L201: sliding time window shallower than the deepest read.
    WindowTooShallow,
    /// MSC-L202: sliding time window deeper than any read requires.
    WindowOversized,
    /// MSC-L301: `parallel()` while the window aliases read and write
    /// states — threads read cells other threads are overwriting.
    ParallelWindowRace,
    /// MSC-L302: window aliasing without `parallel()` — the sweep is an
    /// in-place (Gauss–Seidel-style) update whose result depends on tile
    /// traversal order.
    InPlaceOrderDependence,
    /// MSC-L303: more `parallel()` threads than tiles along the
    /// parallelized axis.
    ThreadsExceedTiles,
    /// MSC-L401: `cache_read`/`cache_write` staging buffers exceed the
    /// target's SPM capacity.
    SpmOverflow,
    /// MSC-L402: innermost DMA rows below the startup-dominated
    /// threshold.
    DmaRowTooShort,
    /// MSC-L403: grid extent not divisible by the MPI process grid.
    MpiGridIndivisible,
    /// MSC-L404: per-rank sub-extent smaller than the halo depth.
    MpiSubgridTooNarrow,
    /// MSC-L501: the C source does not lex/parse in the supported
    /// subset (see DESIGN.md §16 for the grammar).
    LiftSyntaxError,
    /// MSC-L502: an array subscript is not affine in the loop
    /// variables (`var + integer constant` per dimension).
    LiftNonAffineSubscript,
    /// MSC-L503: loop structure outside the supported subset
    /// (non-unit step, non-constant bounds, or loop order that does
    /// not match the subscript order).
    LiftUnsupportedLoop,
    /// MSC-L504: statement or expression form the lifter cannot
    /// summarize (multiple stores, non-linear arithmetic, calls).
    LiftUnsupportedConstruct,
    /// MSC-L505: accesses disagree on array rank or extents.
    LiftShapeMismatch,
    /// MSC-L506: interior margins are asymmetric, non-uniform across
    /// dimensions, or narrower than the stencil's reach.
    LiftMarginMismatch,
    /// MSC-L507: parenthesized expressions nested beyond the parser's
    /// depth cap (hostile or generated input).
    LiftNestTooDeep,
    /// MSC-L508: translation validation failed — the lifted program
    /// is not bit-identical to direct interpretation of the loop nest.
    LiftValidationMismatch,
}

impl LintCode {
    /// The stable code string (`MSC-Lnnn`).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::HaloTooNarrow => "MSC-L101",
            LintCode::HaloOversized => "MSC-L102",
            LintCode::WindowTooShallow => "MSC-L201",
            LintCode::WindowOversized => "MSC-L202",
            LintCode::ParallelWindowRace => "MSC-L301",
            LintCode::InPlaceOrderDependence => "MSC-L302",
            LintCode::ThreadsExceedTiles => "MSC-L303",
            LintCode::SpmOverflow => "MSC-L401",
            LintCode::DmaRowTooShort => "MSC-L402",
            LintCode::MpiGridIndivisible => "MSC-L403",
            LintCode::MpiSubgridTooNarrow => "MSC-L404",
            LintCode::LiftSyntaxError => "MSC-L501",
            LintCode::LiftNonAffineSubscript => "MSC-L502",
            LintCode::LiftUnsupportedLoop => "MSC-L503",
            LintCode::LiftUnsupportedConstruct => "MSC-L504",
            LintCode::LiftShapeMismatch => "MSC-L505",
            LintCode::LiftMarginMismatch => "MSC-L506",
            LintCode::LiftNestTooDeep => "MSC-L507",
            LintCode::LiftValidationMismatch => "MSC-L508",
        }
    }

    /// The pass family the code belongs to.
    pub fn family(self) -> &'static str {
        match self {
            LintCode::HaloTooNarrow | LintCode::HaloOversized => "halo",
            LintCode::WindowTooShallow | LintCode::WindowOversized => "window",
            LintCode::ParallelWindowRace
            | LintCode::InPlaceOrderDependence
            | LintCode::ThreadsExceedTiles => "race",
            LintCode::SpmOverflow
            | LintCode::DmaRowTooShort
            | LintCode::MpiGridIndivisible
            | LintCode::MpiSubgridTooNarrow => "capacity",
            LintCode::LiftSyntaxError
            | LintCode::LiftNonAffineSubscript
            | LintCode::LiftUnsupportedLoop
            | LintCode::LiftUnsupportedConstruct
            | LintCode::LiftShapeMismatch
            | LintCode::LiftMarginMismatch
            | LintCode::LiftNestTooDeep
            | LintCode::LiftValidationMismatch => "lift",
        }
    }

    /// Default severity (deny = refuses codegen/execution, warn =
    /// reported but non-fatal).
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::HaloTooNarrow
            | LintCode::WindowTooShallow
            | LintCode::ParallelWindowRace
            | LintCode::InPlaceOrderDependence
            | LintCode::SpmOverflow
            | LintCode::MpiGridIndivisible
            | LintCode::MpiSubgridTooNarrow
            | LintCode::LiftSyntaxError
            | LintCode::LiftNonAffineSubscript
            | LintCode::LiftUnsupportedLoop
            | LintCode::LiftUnsupportedConstruct
            | LintCode::LiftShapeMismatch
            | LintCode::LiftMarginMismatch
            | LintCode::LiftNestTooDeep
            | LintCode::LiftValidationMismatch => Severity::Deny,
            LintCode::HaloOversized
            | LintCode::WindowOversized
            | LintCode::ThreadsExceedTiles
            | LintCode::DmaRowTooShort => Severity::Warn,
        }
    }

    /// Every code, for docs and exhaustiveness tests.
    pub fn all() -> &'static [LintCode] {
        &[
            LintCode::HaloTooNarrow,
            LintCode::HaloOversized,
            LintCode::WindowTooShallow,
            LintCode::WindowOversized,
            LintCode::ParallelWindowRace,
            LintCode::InPlaceOrderDependence,
            LintCode::ThreadsExceedTiles,
            LintCode::SpmOverflow,
            LintCode::DmaRowTooShort,
            LintCode::MpiGridIndivisible,
            LintCode::MpiSubgridTooNarrow,
            LintCode::LiftSyntaxError,
            LintCode::LiftNonAffineSubscript,
            LintCode::LiftUnsupportedLoop,
            LintCode::LiftUnsupportedConstruct,
            LintCode::LiftShapeMismatch,
            LintCode::LiftMarginMismatch,
            LintCode::LiftNestTooDeep,
            LintCode::LiftValidationMismatch,
        ]
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for c in LintCode::all() {
            assert!(seen.insert(c.as_str()), "duplicate code {}", c);
            assert!(c.as_str().starts_with("MSC-L"));
        }
        assert_eq!(seen.len(), 19);
    }

    #[test]
    fn family_matches_code_block() {
        for c in LintCode::all() {
            let hundreds = &c.as_str()[5..6];
            let fam = match hundreds {
                "1" => "halo",
                "2" => "window",
                "3" => "race",
                "4" => "capacity",
                "5" => "lift",
                _ => unreachable!(),
            };
            assert_eq!(c.family(), fam, "{}", c);
        }
    }
}
