//! Structured diagnostics: severity levels, one diagnostic per finding,
//! and a [`Report`] that renders human-readable text or machine-readable
//! JSON (hand-rolled — the workspace builds offline with no serde).

use crate::code::LintCode;

/// Diagnostic severity, rustc-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suppressed (reserved for future per-program lint config).
    Allow,
    /// Reported on stderr; does not fail the build.
    Warn,
    /// Refuses codegen and execution.
    Deny,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One finding of the verifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: LintCode,
    pub severity: Severity,
    /// What is wrong, with the inferred and declared quantities.
    pub message: String,
    /// Where in the program (`grid \`B\``, `kernel \`S\` schedule`, ...).
    pub context: String,
    /// How to fix it (empty when there is no one-line fix).
    pub help: String,
}

impl Diagnostic {
    pub fn new(code: LintCode, message: String, context: String, help: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message,
            context,
            help,
        }
    }

    fn render(&self) -> String {
        let mut s = format!(
            "{} [{}] {}: {}",
            self.code.as_str(),
            self.severity.as_str(),
            self.context,
            self.message
        );
        if !self.help.is_empty() {
            s.push_str(&format!("\n    help: {}", self.help));
        }
        s
    }

    /// One finding as a standalone JSON object — the same shape the
    /// report embeds, reusable by services that ship diagnostics over
    /// the wire one at a time.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":{},\"severity\":{},\"family\":{},\"message\":{},\"context\":{},\"help\":{}}}",
            json_str(self.code.as_str()),
            json_str(self.severity.as_str()),
            json_str(self.code.family()),
            json_str(&self.message),
            json_str(&self.context),
            json_str(&self.help),
        )
    }
}

/// All diagnostics from one lint run over one program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Program name the run analyzed.
    pub program: String,
    diags: Vec<Diagnostic>,
}

impl Report {
    pub fn new(program: &str) -> Report {
        Report {
            program: program.to_string(),
            diags: Vec::new(),
        }
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    pub fn has_deny(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Deny)
    }

    pub fn deny_count(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Deny).count()
    }

    pub fn warn_count(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warn).count()
    }

    /// No findings at all (not even warnings).
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// True if `code` appears at any severity.
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Human-readable multi-line rendering (empty string when clean).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render());
            out.push('\n');
        }
        if !self.diags.is_empty() {
            out.push_str(&format!(
                "lint: {} deny, {} warn in `{}`\n",
                self.deny_count(),
                self.warn_count(),
                self.program
            ));
        }
        out
    }

    /// Render only the deny-level findings (for error messages).
    pub fn render_denies(&self) -> String {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Machine-readable JSON for `mscc check --json`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"tool\":\"msc-lint\",\"program\":{}", json_str(&self.program)));
        s.push_str(",\"diagnostics\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push_str(&format!(
            "],\"deny_count\":{},\"warn_count\":{}}}",
            self.deny_count(),
            self.warn_count()
        ));
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("p");
        r.push(Diagnostic::new(
            LintCode::HaloTooNarrow,
            "halo 1 but reach 2".into(),
            "grid `B`".into(),
            "widen the halo to 2".into(),
        ));
        r.push(Diagnostic::new(
            LintCode::DmaRowTooShort,
            "rows are 32 B".into(),
            "kernel `S` schedule".into(),
            String::new(),
        ));
        r
    }

    #[test]
    fn counts_and_flags() {
        let r = sample();
        assert!(r.has_deny());
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(!r.is_clean());
        assert!(r.has_code(LintCode::HaloTooNarrow));
        assert!(!r.has_code(LintCode::SpmOverflow));
    }

    #[test]
    fn render_mentions_code_and_help() {
        let text = sample().render();
        assert!(text.contains("MSC-L101 [deny] grid `B`"));
        assert!(text.contains("help: widen the halo to 2"));
        assert!(text.contains("lint: 1 deny, 1 warn in `p`"));
    }

    #[test]
    fn diagnostic_json_is_a_standalone_object() {
        let d = Diagnostic::new(
            LintCode::HaloTooNarrow,
            "halo 1 but reach \"2\"".into(),
            "grid `B`".into(),
            String::new(),
        );
        let j = d.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"code\":\"MSC-L101\""));
        assert!(j.contains("\\\"2\\\""));
        // The report embeds exactly this rendering.
        let mut r = Report::new("p");
        r.push(d.clone());
        assert!(r.to_json().contains(&j));
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report::new("a\"b");
        r.push(Diagnostic::new(
            LintCode::SpmOverflow,
            "needs\n70000".into(),
            "ctx".into(),
            String::new(),
        ));
        let j = r.to_json();
        assert!(j.contains("\"program\":\"a\\\"b\""));
        assert!(j.contains("\"needs\\n70000\""));
        assert!(j.contains("\"deny_count\":1"));
        assert!(j.contains("\"family\":\"capacity\""));
    }
}
