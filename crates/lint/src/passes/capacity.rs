//! Capacity and decomposition lints (MSC-L401..L404): SPM staging
//! buffers versus the target's scratchpad size, DMA row granularity, and
//! the MPI process grid versus the global extents.

use crate::code::LintCode;
use crate::diag::{Diagnostic, Report};
use msc_core::dsl::StencilProgram;
use msc_core::footprint::Footprint;
use msc_core::schedule::plan::ExecPlan;
use msc_core::schedule::Target;
use msc_machine::{matrix_processor, sunway_cg, xeon_server, MachineModel};

/// DMA transfers below this row size are dominated by the engine's
/// startup latency (paper §5.2: short innermost tiles waste DMA
/// bandwidth).
pub const DMA_MIN_ROW_BYTES: usize = 128;

fn machine_for(target: Target) -> MachineModel {
    match target {
        Target::SunwayCG => sunway_cg(),
        Target::Matrix => matrix_processor(),
        Target::Cpu => xeon_server(),
    }
}

pub fn run(
    program: &StencilProgram,
    fp: &Footprint,
    target: Option<Target>,
    report: &mut Report,
) {
    let grid = &program.grid;

    // Static mirror of `CartDecomp::new`: a bad process grid is known
    // before any rank spawns.
    if let Some(mpi) = &program.mpi_grid {
        let reach = fp.required_halo();
        for d in 0..grid.ndim().min(mpi.len()) {
            let g = grid.shape[d];
            let p = mpi[d];
            if p == 0 {
                continue; // rejected structurally by the builder
            }
            if !g.is_multiple_of(p) {
                report.push(Diagnostic::new(
                    LintCode::MpiGridIndivisible,
                    format!(
                        "global extent {g} in dim {d} is not divisible by the \
                         {p}-way process grid"
                    ),
                    format!("mpi grid of `{}`", program.name),
                    "choose a process count that divides the extent".to_string(),
                ));
            } else if g / p < reach[d] {
                report.push(Diagnostic::new(
                    LintCode::MpiSubgridTooNarrow,
                    format!(
                        "per-rank sub-extent {} in dim {d} is smaller than the \
                         halo exchange depth {}",
                        g / p,
                        reach[d]
                    ),
                    format!("mpi grid of `{}`", program.name),
                    "use fewer ranks along this dimension".to_string(),
                ));
            }
        }
    }

    // SPM staging capacity: only meaningful when a cache-less target is
    // known. The formula mirrors `msc-exec`'s `SpmWorker::new` exactly
    // (read buffer = ∏(tile+2·reach), write buffer = ∏tile, doubled when
    // streaming), so a program that passes here cannot hit the runtime
    // "SPM buffers need N bytes" error.
    let Some(target) = target else { return };
    let machine = machine_for(target);
    let Some(spm) = machine.spm_bytes() else { return };
    let elem = grid.dtype.size_bytes();
    let reach = program.stencil.reach();

    for kernel in &program.stencil.kernels {
        let sched = &kernel.schedule;
        if !sched.uses_spm() {
            continue;
        }
        // Illegal schedules are the legality layer's report, not ours.
        let Ok(plan) = ExecPlan::lower(sched, grid.ndim(), &grid.shape) else {
            continue;
        };
        let read: usize = plan
            .tile
            .iter()
            .zip(&reach)
            .map(|(&t, &r)| t + 2 * r)
            .product();
        let write: usize = plan.tile.iter().product();
        let mut needed = (read + write) * elem;
        if plan.double_buffer {
            needed *= 2;
        }
        let ctx = format!("kernel `{}` schedule", kernel.name);
        if needed > spm {
            report.push(Diagnostic::new(
                LintCode::SpmOverflow,
                format!(
                    "staging buffers need {needed} B ({read}+{write} elements{}) \
                     but `{}` has {spm} B of SPM per core",
                    if plan.double_buffer {
                        ", double-buffered"
                    } else {
                        ""
                    },
                    machine.name
                ),
                ctx,
                "shrink the tile factors (see the Table 5 presets) or drop \
                 stream()"
                    .to_string(),
            ));
        } else {
            let last = grid.ndim() - 1;
            let row_bytes = (plan.tile[last] + 2 * reach[last]) * elem;
            if row_bytes < DMA_MIN_ROW_BYTES {
                report.push(Diagnostic::new(
                    LintCode::DmaRowTooShort,
                    format!(
                        "innermost DMA rows are {row_bytes} B; transfers below \
                         {DMA_MIN_ROW_BYTES} B are startup-dominated on `{}`",
                        machine.name
                    ),
                    ctx,
                    "widen the innermost tile factor".to_string(),
                ));
            }
        }
    }
}
