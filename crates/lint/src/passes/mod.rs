//! The lint passes, one module per family. Each pass receives the
//! program, the precomputed stencil-level [`msc_core::footprint::Footprint`]
//! and appends [`crate::diag::Diagnostic`]s to the shared report.

pub mod capacity;
pub mod halo;
pub mod race;
pub mod window;
