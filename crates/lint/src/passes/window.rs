//! Sliding-time-window depth (MSC-L201/L202): the declared window versus
//! the deepest temporal read `max(term.dt + access.time_back)`.

use crate::code::LintCode;
use crate::diag::{Diagnostic, Report};
use msc_core::dsl::StencilProgram;
use msc_core::footprint::Footprint;

pub fn run(program: &StencilProgram, fp: &Footprint, report: &mut Report) {
    let grid = &program.grid;
    let need = fp.required_window();
    let declared = grid.time_window;
    let ctx = format!("grid `{}`", grid.name);
    if declared < need {
        report.push(Diagnostic::new(
            LintCode::WindowTooShallow,
            format!(
                "sliding window holds {declared} state(s) but the stencil reads \
                 {} step(s) back; the state at t-{} would be overwritten before \
                 it is consumed",
                fp.max_time(),
                fp.max_time()
            ),
            ctx,
            format!("declare a time window of {need}"),
        ));
    } else if declared > need {
        let buf_bytes = grid.alloc_bytes() / declared;
        report.push(Diagnostic::new(
            LintCode::WindowOversized,
            format!(
                "sliding window holds {declared} states but the deepest read is \
                 {} step(s) back; {} extra state buffer(s) of {} B each stay \
                 allocated",
                fp.max_time(),
                declared - need,
                buf_bytes
            ),
            ctx,
            format!("shrink the time window to {need}"),
        ));
    }
}
