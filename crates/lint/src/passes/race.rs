//! Parallel-race detection (MSC-L301/L302/L303).
//!
//! In this Jacobi-style IR every read is at least one timestep behind the
//! write, so a *spatial* axis only carries a dependence when the sliding
//! window is too shallow to keep the read states alive: with a
//! `W`-deep ring and a read `k ≥ W` steps back, the slot being read is
//! the slot being overwritten. The race pass is therefore the parallel
//! refinement of the window check — `parallel()` on an aliased window is
//! a data race between threads (L301), and even a serial sweep over an
//! aliased window is an in-place (Gauss–Seidel-style) update whose result
//! depends on tile traversal order (L302). L303 flags thread counts the
//! tiling cannot feed.

use crate::code::LintCode;
use crate::diag::{Diagnostic, Report};
use msc_core::dsl::StencilProgram;
use msc_core::footprint::Footprint;
use msc_core::schedule::plan::ExecPlan;
use msc_core::schedule::primitives::parse_split_axis;

pub fn run(program: &StencilProgram, fp: &Footprint, report: &mut Report) {
    let grid = &program.grid;
    let max_t = fp.max_time();
    let aliased = grid.time_window <= max_t;
    let has_reach = fp.required_halo().iter().any(|&r| r > 0);

    for kernel in &program.stencil.kernels {
        let sched = &kernel.schedule;
        let ctx = format!("kernel `{}` schedule", kernel.name);

        if aliased && has_reach {
            if let Some((axis, n)) = &sched.parallel {
                if *n > 1 {
                    report.push(Diagnostic::new(
                        LintCode::ParallelWindowRace,
                        format!(
                            "parallel(`{axis}`, {n}) races on `{}`: the {}-deep \
                             window aliases the output state with the state read \
                             {max_t} step(s) back, so threads read neighbour cells \
                             other threads are overwriting",
                            grid.name, grid.time_window
                        ),
                        ctx.clone(),
                        format!("deepen the time window to {} to give every read \
                                 state its own buffer", max_t + 1),
                    ));
                }
            }
            if sched.n_threads() <= 1 {
                report.push(Diagnostic::new(
                    LintCode::InPlaceOrderDependence,
                    format!(
                        "the {}-deep window aliases the output state with the \
                         state read {max_t} step(s) back: the sweep updates `{}` \
                         in place and its result depends on tile traversal order",
                        grid.time_window, grid.name
                    ),
                    ctx.clone(),
                    format!("deepen the time window to {}", max_t + 1),
                ));
            }
        }

        if let Some((axis, n)) = &sched.parallel {
            if *n > 1 {
                if let (Ok(plan), Ok((dim, _))) = (
                    ExecPlan::lower(sched, grid.ndim(), &grid.shape),
                    parse_split_axis(axis),
                ) {
                    let tiles = plan.tiles_along(dim);
                    if *n > tiles {
                        report.push(Diagnostic::new(
                            LintCode::ThreadsExceedTiles,
                            format!(
                                "parallel(`{axis}`, {n}) but the tiling yields only \
                                 {tiles} tile(s) along `{axis}`; {} thread(s) never \
                                 receive work",
                                n - tiles
                            ),
                            ctx,
                            "reduce the thread count or shrink the tile factor on \
                             the parallel axis"
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }
}
