//! Halo sufficiency (MSC-L101/L102): the declared halo of every grid
//! versus the per-axis offset box inferred from the stencil footprint.

use crate::code::LintCode;
use crate::diag::{Diagnostic, Report};
use msc_core::dsl::StencilProgram;
use msc_core::footprint::Footprint;

pub fn run(program: &StencilProgram, fp: &Footprint, report: &mut Report) {
    let grid = &program.grid;
    let required = fp.required_halo();
    let lo = fp.lo();
    let hi = fp.hi();
    for d in 0..grid.ndim() {
        let declared = grid.halo[d];
        let req = required[d];
        if declared < req {
            report.push(Diagnostic::new(
                LintCode::HaloTooNarrow,
                format!(
                    "declared halo {declared} in dim {d} but the inferred footprint \
                     spans offsets {}..{} (needs halo {req}); the sweep would read \
                     uninitialized or foreign memory at the domain boundary",
                    lo[d], hi[d]
                ),
                format!("grid `{}`", grid.name),
                format!("widen the halo to {req} or reduce the kernel radius"),
            ));
        } else if declared > req {
            report.push(Diagnostic::new(
                LintCode::HaloOversized,
                format!(
                    "declared halo {declared} in dim {d} but no access reaches past \
                     {req}; every halo exchange moves {} unused layer(s)",
                    declared - req
                ),
                format!("grid `{}`", grid.name),
                format!("shrink the halo to {req}"),
            ));
        }
    }
}
