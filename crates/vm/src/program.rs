//! The register-machine program and its row executor.
//!
//! A program is a flat `Vec<Op>` over physical registers, where every
//! register holds a **row chunk** of up to [`CHUNK`] contiguous grid
//! points rather than a single value. `run_row` walks a whole unit-stride
//! row through the program chunk by chunk: one instruction-dispatch loop
//! per chunk instead of one tree walk per point.
//!
//! All register storage lives in a caller-owned [`VmScratch`] so the hot
//! path never allocates; workers keep one scratch per thread.

use crate::scalar::VmScalar;

/// Points processed per dispatch of the instruction loop. 64 elements is
/// 512 B of f64 — several vector registers worth of work per instruction,
/// while `n_regs × CHUNK` scratch stays comfortably inside L1.
pub const CHUNK: usize = 64;

/// Maximum taps merged into one [`Op::FmaChain`] dispatch.
pub const MAX_CHAIN: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Pow,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    Neg,
    Abs,
    Sqrt,
    Exp,
    Sin,
    Cos,
}

/// One VM instruction. Register operands are indices into the scratch
/// (`reg * CHUNK` is the row base); `idx`/`c` index the constant pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `dst[i] = consts[idx]` — broadcast a pooled constant over the row.
    Const { dst: u16, idx: u16 },
    /// `dst[i] = states[slot][base + off + i]` — unit-stride tap load with
    /// the flat offset (per-tap strides dotted out at compile time).
    Load { dst: u16, slot: u16, off: i64 },
    /// `dst[i] = consts[c] * b[i] + acc[i]`, evaluated as a multiply then
    /// a separate add (two roundings, never fused). This is the exact
    /// shape of the interpreter's `acc + coeff * src[..]` step, so the
    /// linear path stays bit-identical to the oracle.
    MulAddC { dst: u16, c: u16, b: u16, acc: u16 },
    /// `dst[i] = consts[c] * states[slot][base + off + i] + acc[i]` —
    /// `Load` fused into `MulAddC`, reading the tap straight from the
    /// state grid instead of materializing it in a register first. Same
    /// two-rounding arithmetic as `MulAddC`; the allocator places `dst`
    /// in `acc`'s register when `acc` dies here, making the hot linear
    /// chain an in-place accumulation with no row copies at all.
    FmaLoad {
        dst: u16,
        c: u16,
        slot: u16,
        off: i64,
        acc: u16,
    },
    /// Up to [`MAX_CHAIN`] consecutive in-place [`Op::FmaLoad`]s merged
    /// into one dispatch (the peephole in `compile::finish`):
    ///
    /// ```text
    /// t = acc[i]
    /// for k in 0..n: t = consts[c[k]] * states[slot[k]][base + off[k] + i] + t
    /// dst[i] = t
    /// ```
    ///
    /// Per lane this is the identical multiply-then-add sequence the
    /// unmerged chain performs, so bit-identity is untouched; the win is
    /// one accumulator read and one write per lane for the whole group
    /// instead of one per tap, with a const-generic unrolled tap loop.
    FmaChain {
        dst: u16,
        acc: u16,
        n: u8,
        c: [u16; MAX_CHAIN],
        slot: [u16; MAX_CHAIN],
        off: [i64; MAX_CHAIN],
    },
    /// One whole temporal term fused into a single dispatch: an
    /// [`Op::FmaChain`] whose seed is a pooled constant (the zero splat),
    /// followed by the `MulAddC` that folds the term into the running
    /// output:
    ///
    /// ```text
    /// t = consts[seed_c]
    /// for k in 0..n: t = consts[c[k]] * states[slot[k]][base + off[k] + i] + t
    /// dst[i] = consts[w] * t + acc[i]
    /// ```
    ///
    /// Same multiply-then-add sequence per lane as the unfused ops, so
    /// bit-identity holds; the term's accumulator now lives entirely in a
    /// local, and the output row is read and written once per term — the
    /// same memory traffic as the shape-specialized kernels.
    FmaChainW {
        dst: u16,
        acc: u16,
        w: u16,
        seed_c: u16,
        n: u8,
        c: [u16; MAX_CHAIN],
        slot: [u16; MAX_CHAIN],
        off: [i64; MAX_CHAIN],
    },
    /// `dst[i] = a[i] <op> b[i]`.
    Bin {
        op: BinKind,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// `dst[i] = <op>(a[i])`.
    Un { op: UnKind, dst: u16, a: u16 },
}

impl Op {
    pub(crate) fn dst(self) -> u16 {
        match self {
            Op::Const { dst, .. }
            | Op::Load { dst, .. }
            | Op::MulAddC { dst, .. }
            | Op::FmaLoad { dst, .. }
            | Op::FmaChain { dst, .. }
            | Op::FmaChainW { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Un { dst, .. } => dst,
        }
    }

    /// Source registers (0–2 of them) as a fixed array + count.
    pub(crate) fn srcs(self) -> ([u16; 2], usize) {
        match self {
            Op::Const { .. } | Op::Load { .. } => ([0, 0], 0),
            Op::Un { a, .. }
            | Op::FmaLoad { acc: a, .. }
            | Op::FmaChain { acc: a, .. }
            | Op::FmaChainW { acc: a, .. } => ([a, 0], 1),
            Op::MulAddC { b, acc, .. } => ([b, acc], 2),
            Op::Bin { a, b, .. } => ([a, b], 2),
        }
    }

    pub(crate) fn remap(&mut self, dst: u16, srcs: [u16; 2]) {
        match self {
            Op::Const { dst: d, .. } | Op::Load { dst: d, .. } => *d = dst,
            Op::Un { dst: d, a, .. } => {
                *d = dst;
                *a = srcs[0];
            }
            Op::FmaLoad { dst: d, acc, .. }
            | Op::FmaChain { dst: d, acc, .. }
            | Op::FmaChainW { dst: d, acc, .. } => {
                *d = dst;
                *acc = srcs[0];
            }
            Op::MulAddC { dst: d, b, acc, .. } => {
                *d = dst;
                *b = srcs[0];
                *acc = srcs[1];
            }
            Op::Bin { dst: d, a, b, .. } => {
                *d = dst;
                *a = srcs[0];
                *b = srcs[1];
            }
        }
    }
}

/// A compiled register-machine program for one stencil update.
#[derive(Debug, Clone)]
pub struct VmProgram<T> {
    pub(crate) ops: Vec<Op>,
    pub(crate) consts: Vec<T>,
    pub(crate) n_regs: usize,
    /// Register holding the final per-point value after the last op.
    pub(crate) out: u16,
    /// Number of state slots the program reads (`states.len()` must be at
    /// least this).
    pub n_slots: usize,
}

/// Caller-owned register file: `n_regs × CHUNK` elements, allocated once
/// and reused across every row of every tile.
#[derive(Debug, Clone)]
pub struct VmScratch<T> {
    regs: Vec<T>,
}

impl<T: VmScalar> VmProgram<T> {
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    pub fn n_regs(&self) -> usize {
        self.n_regs
    }

    pub fn n_consts(&self) -> usize {
        self.consts.len()
    }

    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    pub fn scratch(&self) -> VmScratch<T> {
        VmScratch {
            regs: vec![T::default(); self.n_regs * CHUNK],
        }
    }

    /// Number of chunk dispatches `run_row` performs for a row of `len`.
    pub fn dispatches_for(len: usize) -> u64 {
        (len.div_ceil(CHUNK)) as u64
    }

    /// Execute the program over a unit-stride row: for each `i` in
    /// `0..out.len()`, the point at flat index `base + i` is evaluated and
    /// written to `out[i]`. `states[slot]` are the flat input grids the
    /// `Load` ops read (slot 0 = most recent state, matching the
    /// interpreter's `states[dt - 1]` convention shifted by the caller).
    pub fn run_row(&self, states: &[&[T]], base: usize, out: &mut [T], scratch: &mut VmScratch<T>) {
        debug_assert!(states.len() >= self.n_slots);
        debug_assert_eq!(scratch.regs.len(), self.n_regs * CHUNK);
        let mut done = 0;
        while done < out.len() {
            let n = (out.len() - done).min(CHUNK);
            self.run_chunk(states, base + done, &mut out[done..done + n], scratch);
            done += n;
        }
    }

    fn run_chunk(&self, states: &[&[T]], base: usize, out: &mut [T], scratch: &mut VmScratch<T>) {
        let n = out.len();
        let regs = &mut scratch.regs[..];
        for &op in &self.ops {
            match op {
                Op::Const { dst, idx } => {
                    let v = self.consts[idx as usize];
                    let d = dst as usize * CHUNK;
                    for r in &mut regs[d..d + n] {
                        *r = v;
                    }
                }
                Op::Load { dst, slot, off } => {
                    let src = states[slot as usize];
                    let start = (base as i64 + off) as usize;
                    let d = dst as usize * CHUNK;
                    regs[d..d + n].copy_from_slice(&src[start..start + n]);
                }
                Op::MulAddC { dst, c, b, acc } => {
                    let cv = self.consts[c as usize];
                    let d = dst as usize * CHUNK;
                    let bo = b as usize * CHUNK;
                    let ao = acc as usize * CHUNK;
                    for i in 0..n {
                        let prod = cv * regs[bo + i];
                        regs[d + i] = prod + regs[ao + i];
                    }
                }
                Op::FmaChain {
                    dst,
                    acc,
                    n: taps,
                    c,
                    slot,
                    off,
                } => {
                    let d = dst as usize * CHUNK;
                    let a = acc as usize * CHUNK;
                    if d != a {
                        // Seed the destination with the incoming
                        // accumulator; the allocator has already made the
                        // hot chains in-place, so this is the cold case.
                        regs.copy_within(a..a + n, d);
                    }
                    let dst_row = &mut regs[d..d + n];
                    macro_rules! chain {
                        ($k:literal) => {{
                            let rows: [&[T]; $k] = std::array::from_fn(|k| {
                                let start = (base as i64 + off[k]) as usize;
                                &states[slot[k] as usize][start..start + n]
                            });
                            let cv: [T; $k] = std::array::from_fn(|k| self.consts[c[k] as usize]);
                            for (i, r) in dst_row.iter_mut().enumerate() {
                                let mut t = *r;
                                for (&cvk, row) in cv.iter().zip(rows.iter()) {
                                    let prod = cvk * row[i];
                                    t = prod + t;
                                }
                                *r = t;
                            }
                        }};
                    }
                    match taps {
                        1 => chain!(1),
                        2 => chain!(2),
                        3 => chain!(3),
                        4 => chain!(4),
                        5 => chain!(5),
                        6 => chain!(6),
                        7 => chain!(7),
                        _ => chain!(8),
                    }
                }
                Op::FmaChainW {
                    dst,
                    acc,
                    w,
                    seed_c,
                    n: taps,
                    c,
                    slot,
                    off,
                } => {
                    let d = dst as usize * CHUNK;
                    let a = acc as usize * CHUNK;
                    if d != a {
                        regs.copy_within(a..a + n, d);
                    }
                    let seed = self.consts[seed_c as usize];
                    let wv = self.consts[w as usize];
                    let dst_row = &mut regs[d..d + n];
                    macro_rules! wchain {
                        ($k:literal) => {{
                            let rows: [&[T]; $k] = std::array::from_fn(|k| {
                                let start = (base as i64 + off[k]) as usize;
                                &states[slot[k] as usize][start..start + n]
                            });
                            let cv: [T; $k] = std::array::from_fn(|k| self.consts[c[k] as usize]);
                            for (i, r) in dst_row.iter_mut().enumerate() {
                                let mut t = seed;
                                for (&cvk, row) in cv.iter().zip(rows.iter()) {
                                    let prod = cvk * row[i];
                                    t = prod + t;
                                }
                                let prod = wv * t;
                                *r = prod + *r;
                            }
                        }};
                    }
                    match taps {
                        1 => wchain!(1),
                        2 => wchain!(2),
                        3 => wchain!(3),
                        4 => wchain!(4),
                        5 => wchain!(5),
                        6 => wchain!(6),
                        7 => wchain!(7),
                        _ => wchain!(8),
                    }
                }
                Op::FmaLoad {
                    dst,
                    c,
                    slot,
                    off,
                    acc,
                } => {
                    let cv = self.consts[c as usize];
                    let src = states[slot as usize];
                    let start = (base as i64 + off) as usize;
                    let row = &src[start..start + n];
                    let d = dst as usize * CHUNK;
                    let ao = acc as usize * CHUNK;
                    if d == ao {
                        // The common case after allocation: in-place
                        // accumulation, one read-modify-write per lane.
                        for (r, &x) in regs[d..d + n].iter_mut().zip(row) {
                            let prod = cv * x;
                            *r = prod + *r;
                        }
                    } else {
                        for i in 0..n {
                            let prod = cv * row[i];
                            regs[d + i] = prod + regs[ao + i];
                        }
                    }
                }
                Op::Bin { op, dst, a, b } => {
                    let d = dst as usize * CHUNK;
                    let ao = a as usize * CHUNK;
                    let bo = b as usize * CHUNK;
                    macro_rules! lanes {
                        ($f:expr) => {
                            for i in 0..n {
                                let (x, y) = (regs[ao + i], regs[bo + i]);
                                regs[d + i] = $f(x, y);
                            }
                        };
                    }
                    match op {
                        BinKind::Add => lanes!(|x: T, y: T| x + y),
                        BinKind::Sub => lanes!(|x: T, y: T| x - y),
                        BinKind::Mul => lanes!(|x: T, y: T| x * y),
                        BinKind::Div => lanes!(|x: T, y: T| x / y),
                        BinKind::Min => lanes!(|x: T, y: T| x.vmin(y)),
                        BinKind::Max => lanes!(|x: T, y: T| x.vmax(y)),
                        BinKind::Pow => lanes!(|x: T, y: T| x.vpow(y)),
                    }
                }
                Op::Un { op, dst, a } => {
                    let d = dst as usize * CHUNK;
                    let ao = a as usize * CHUNK;
                    macro_rules! lanes {
                        ($f:expr) => {
                            for i in 0..n {
                                let x = regs[ao + i];
                                regs[d + i] = $f(x);
                            }
                        };
                    }
                    match op {
                        UnKind::Neg => lanes!(|x: T| x.vneg()),
                        UnKind::Abs => lanes!(|x: T| x.vabs()),
                        UnKind::Sqrt => lanes!(|x: T| x.vsqrt()),
                        UnKind::Exp => lanes!(|x: T| x.vexp()),
                        UnKind::Sin => lanes!(|x: T| x.vsin()),
                        UnKind::Cos => lanes!(|x: T| x.vcos()),
                    }
                }
            }
        }
        let o = self.out as usize * CHUNK;
        out.copy_from_slice(&regs[o..o + n]);
    }

    /// Evaluate a single point (a row of length one). Test/debug helper;
    /// the executors always go through `run_row`.
    pub fn run_point(&self, states: &[&[T]], base: usize, scratch: &mut VmScratch<T>) -> T {
        let mut out = [T::default()];
        self.run_row(states, base, &mut out, scratch);
        out[0]
    }

    /// One-shot static audit of the bytecode, run before first dispatch
    /// in debug builds: every register is defined before it is read and
    /// in bounds, every constant index hits the pool, every load's slot
    /// is within `n_slots`, chain lengths stay in `1..=MAX_CHAIN`, and —
    /// when the caller knows the stencil's tap set — every `(slot, off)`
    /// the program can touch is one of the stencil's own taps, so a
    /// miscompiled offset can never read outside the kernel's footprint.
    ///
    /// `run_chunk` itself stays check-free: this walk is O(ops), once,
    /// instead of per-row bounds logic in the hot loop.
    pub fn sanity_check(
        &self,
        allowed_taps: Option<&std::collections::BTreeSet<(usize, i64)>>,
    ) -> Result<(), String> {
        let mut defined = vec![false; self.n_regs];
        let reg = |r: u16, what: &str, i: usize| -> Result<usize, String> {
            if (r as usize) < self.n_regs {
                Ok(r as usize)
            } else {
                Err(format!(
                    "op {i}: {what} register r{r} out of bounds (n_regs = {})",
                    self.n_regs
                ))
            }
        };
        let konst = |c: u16, i: usize| -> Result<(), String> {
            if (c as usize) < self.consts.len() {
                Ok(())
            } else {
                Err(format!(
                    "op {i}: constant index {c} out of pool (len {})",
                    self.consts.len()
                ))
            }
        };
        let tap = |slot: u16, off: i64, i: usize| -> Result<(), String> {
            if slot as usize >= self.n_slots {
                return Err(format!(
                    "op {i}: state slot {slot} out of bounds (n_slots = {})",
                    self.n_slots
                ));
            }
            if let Some(taps) = allowed_taps {
                if !taps.contains(&(slot as usize, off)) {
                    return Err(format!(
                        "op {i}: load (slot {slot}, off {off}) is not a tap of \
                         the stencil's footprint"
                    ));
                }
            }
            Ok(())
        };
        for (i, op) in self.ops.iter().enumerate() {
            // Sources must be defined before this op runs.
            let (srcs, n_srcs) = op.srcs();
            for &s in &srcs[..n_srcs] {
                let s = reg(s, "source", i)?;
                if !defined[s] {
                    return Err(format!("op {i}: reads r{s} before any op defines it"));
                }
            }
            match *op {
                Op::Const { idx, .. } => konst(idx, i)?,
                Op::Load { slot, off, .. } => tap(slot, off, i)?,
                Op::MulAddC { c, .. } => konst(c, i)?,
                Op::FmaLoad { c, slot, off, .. } => {
                    konst(c, i)?;
                    tap(slot, off, i)?;
                }
                Op::FmaChain {
                    n, c, slot, off, ..
                } => {
                    if n == 0 || n as usize > MAX_CHAIN {
                        return Err(format!("op {i}: chain length {n} outside 1..={MAX_CHAIN}"));
                    }
                    for k in 0..n as usize {
                        konst(c[k], i)?;
                        tap(slot[k], off[k], i)?;
                    }
                }
                Op::FmaChainW {
                    w,
                    seed_c,
                    n,
                    c,
                    slot,
                    off,
                    ..
                } => {
                    konst(w, i)?;
                    konst(seed_c, i)?;
                    if n == 0 || n as usize > MAX_CHAIN {
                        return Err(format!("op {i}: chain length {n} outside 1..={MAX_CHAIN}"));
                    }
                    for k in 0..n as usize {
                        konst(c[k], i)?;
                        tap(slot[k], off[k], i)?;
                    }
                }
                Op::Bin { .. } | Op::Un { .. } => {}
            }
            defined[reg(op.dst(), "destination", i)?] = true;
        }
        let out = reg(self.out, "output", self.ops.len())?;
        if !defined[out] {
            return Err(format!("output register r{out} is never defined"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod sanity_tests {
    use super::*;
    use std::collections::BTreeSet;

    fn prog(
        ops: Vec<Op>,
        consts: Vec<f64>,
        n_regs: usize,
        out: u16,
        n_slots: usize,
    ) -> VmProgram<f64> {
        VmProgram {
            ops,
            consts,
            n_regs,
            out,
            n_slots,
        }
    }

    #[test]
    fn well_formed_program_passes() {
        let p = prog(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::FmaLoad {
                    dst: 0,
                    c: 1,
                    slot: 0,
                    off: -1,
                    acc: 0,
                },
            ],
            vec![0.0, 0.5],
            1,
            0,
            1,
        );
        p.sanity_check(None).unwrap();
        let allowed: BTreeSet<(usize, i64)> = [(0usize, -1i64)].into();
        p.sanity_check(Some(&allowed)).unwrap();
    }

    #[test]
    fn use_before_def_is_caught() {
        let p = prog(
            vec![Op::Un {
                op: UnKind::Neg,
                dst: 0,
                a: 1,
            }],
            vec![],
            2,
            0,
            1,
        );
        let e = p.sanity_check(None).unwrap_err();
        assert!(e.contains("before any op defines it"), "{e}");
    }

    #[test]
    fn register_const_and_slot_bounds_are_caught() {
        let oob_reg = prog(vec![Op::Const { dst: 7, idx: 0 }], vec![0.0], 1, 0, 1);
        assert!(oob_reg
            .sanity_check(None)
            .unwrap_err()
            .contains("out of bounds"));

        let oob_const = prog(vec![Op::Const { dst: 0, idx: 9 }], vec![0.0], 1, 0, 1);
        assert!(oob_const
            .sanity_check(None)
            .unwrap_err()
            .contains("out of pool"));

        let oob_slot = prog(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Load {
                    dst: 0,
                    slot: 3,
                    off: 0,
                },
            ],
            vec![0.0],
            1,
            0,
            2,
        );
        assert!(oob_slot.sanity_check(None).unwrap_err().contains("slot 3"));
    }

    #[test]
    fn off_footprint_tap_is_caught() {
        let p = prog(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::FmaLoad {
                    dst: 0,
                    c: 0,
                    slot: 0,
                    off: 99,
                    acc: 0,
                },
            ],
            vec![0.25],
            1,
            0,
            1,
        );
        p.sanity_check(None).unwrap();
        let allowed: BTreeSet<(usize, i64)> = [(0usize, -1i64), (0, 0), (0, 1)].into();
        let e = p.sanity_check(Some(&allowed)).unwrap_err();
        assert!(e.contains("not a tap"), "{e}");
    }

    #[test]
    fn bad_chain_length_and_undefined_out_are_caught() {
        let chain = prog(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::FmaChain {
                    dst: 0,
                    acc: 0,
                    n: (MAX_CHAIN + 1) as u8,
                    c: [0; MAX_CHAIN],
                    slot: [0; MAX_CHAIN],
                    off: [0; MAX_CHAIN],
                },
            ],
            vec![0.0],
            1,
            0,
            1,
        );
        assert!(chain
            .sanity_check(None)
            .unwrap_err()
            .contains("chain length"));

        let undef_out = prog(vec![Op::Const { dst: 0, idx: 0 }], vec![0.0], 2, 1, 1);
        assert!(undef_out
            .sanity_check(None)
            .unwrap_err()
            .contains("never defined"));
    }
}
