//! Lowering to bytecode: constant pooling, load CSE, and a liveness-based
//! register allocator.
//!
//! The builder emits SSA over virtual registers; `finish` runs a backward
//! last-use pass and remaps onto a small pool of physical registers with a
//! free list, so even a 169-tap kernel executes in a handful of row
//! buffers (an op's destination can reuse an operand register that dies at
//! that op — the row loops are elementwise, so in-place updates are fine).

use std::collections::BTreeMap;
use std::collections::HashMap;

use msc_core::error::{MscError, Result};
use msc_core::expr::{Access, BinOp, Expr, UnOp};

use crate::program::{BinKind, Op, UnKind, VmProgram, VmScratch, MAX_CHAIN};
use crate::scalar::VmScalar;

/// One temporal term of a linearized stencil: `weight * Σ coeff·state[slot][p+off]`,
/// with taps already dotted against the grid strides into flat offsets.
#[derive(Debug, Clone)]
pub struct LinearTerm<T> {
    /// Index into the `states` slice handed to `run_row`.
    pub slot: usize,
    pub weight: T,
    pub taps: Vec<(i64, T)>,
}

/// One temporal term of a general stencil: `weight * expr`, where the
/// expression's accesses read `states[slot + access.time_back]`.
#[derive(Debug, Clone)]
pub struct ExprTerm<'a> {
    pub slot: usize,
    pub weight: f64,
    pub expr: &'a Expr,
}

struct Builder<T> {
    ops: Vec<Op>,
    consts: Vec<T>,
    /// Constant pool index by f64 bit pattern of the value.
    pool_ix: HashMap<u64, u16>,
    /// Splatted-constant register by pool index.
    const_reg: HashMap<u16, u16>,
    /// Load CSE: virtual register by `(slot, flat offset)`.
    load_reg: HashMap<(u16, i64), u16>,
    next_vreg: u32,
    max_slot: usize,
}

impl<T: VmScalar> Builder<T> {
    fn new() -> Builder<T> {
        Builder {
            ops: Vec::new(),
            consts: Vec::new(),
            pool_ix: HashMap::new(),
            const_reg: HashMap::new(),
            load_reg: HashMap::new(),
            next_vreg: 0,
            max_slot: 0,
        }
    }

    fn fresh(&mut self) -> Result<u16> {
        if self.next_vreg > u16::MAX as u32 {
            return Err(MscError::UnsupportedExpr(
                "kernel too large for the VM (more than 65536 virtual registers)".into(),
            ));
        }
        let r = self.next_vreg as u16;
        self.next_vreg += 1;
        Ok(r)
    }

    /// Intern a value in the constant pool (dedup by bit pattern).
    fn pool(&mut self, v: T) -> Result<u16> {
        let bits = v.to_f64().to_bits();
        if let Some(&ix) = self.pool_ix.get(&bits) {
            return Ok(ix);
        }
        if self.consts.len() > u16::MAX as usize {
            return Err(MscError::UnsupportedExpr(
                "kernel too large for the VM (constant pool overflow)".into(),
            ));
        }
        let ix = self.consts.len() as u16;
        self.consts.push(v);
        self.pool_ix.insert(bits, ix);
        Ok(ix)
    }

    /// A register holding `v` broadcast over the row (splat once, reuse).
    fn splat(&mut self, v: T) -> Result<u16> {
        let idx = self.pool(v)?;
        if let Some(&r) = self.const_reg.get(&idx) {
            return Ok(r);
        }
        let dst = self.fresh()?;
        self.ops.push(Op::Const { dst, idx });
        self.const_reg.insert(idx, dst);
        Ok(dst)
    }

    /// A register holding the tap `states[slot][base + off + i]` (CSE'd:
    /// repeated reads of the same tap load once).
    fn load(&mut self, slot: u16, off: i64) -> Result<u16> {
        if let Some(&r) = self.load_reg.get(&(slot, off)) {
            return Ok(r);
        }
        let dst = self.fresh()?;
        self.ops.push(Op::Load { dst, slot, off });
        self.load_reg.insert((slot, off), dst);
        self.max_slot = self.max_slot.max(slot as usize);
        Ok(dst)
    }

    fn mul_add_c(&mut self, c: u16, b: u16, acc: u16) -> Result<u16> {
        let dst = self.fresh()?;
        self.ops.push(Op::MulAddC { dst, c, b, acc });
        Ok(dst)
    }

    fn fma_load(&mut self, c: u16, slot: u16, off: i64, acc: u16) -> Result<u16> {
        let dst = self.fresh()?;
        self.ops.push(Op::FmaLoad {
            dst,
            c,
            slot,
            off,
            acc,
        });
        self.max_slot = self.max_slot.max(slot as usize);
        Ok(dst)
    }

    fn bin(&mut self, op: BinKind, a: u16, b: u16) -> Result<u16> {
        let dst = self.fresh()?;
        self.ops.push(Op::Bin { op, dst, a, b });
        Ok(dst)
    }

    fn un(&mut self, op: UnKind, a: u16) -> Result<u16> {
        let dst = self.fresh()?;
        self.ops.push(Op::Un { op, dst, a });
        Ok(dst)
    }

    /// Fuse tap chains, allocate physical registers (liveness + free
    /// list), and seal the program.
    fn finish(self, out: u16) -> VmProgram<T> {
        let n_virtual = self.next_vreg as usize;
        // SSA use counts guard the peepholes: a value may be folded into
        // its consumer only when that consumer is its sole reader (the
        // program result `out` is additionally read externally, so it is
        // never folded away).
        let mut uses = vec![0u32; n_virtual];
        for op in &self.ops {
            let (srcs, n) = op.srcs();
            for &s in &srcs[..n] {
                uses[s as usize] += 1;
            }
        }
        // vreg -> constant pool index for splatted constants, to turn a
        // chain seeded by the zero register into an immediate seed.
        let splat_of: HashMap<u16, u16> = self.const_reg.iter().map(|(&ix, &r)| (r, ix)).collect();
        let ops = merge_fma_chains(self.ops, &uses, &splat_of, out);

        // Last instruction index that reads each virtual register; the
        // result register lives past the end of the program.
        let mut last_use = vec![usize::MAX; n_virtual];
        for (i, op) in ops.iter().enumerate().rev() {
            let (srcs, n) = op.srcs();
            for &s in &srcs[..n] {
                if last_use[s as usize] == usize::MAX {
                    last_use[s as usize] = i;
                }
            }
        }
        let live_forever = ops.len(); // sentinel > any instruction index
        for lu in last_use.iter_mut() {
            if *lu == usize::MAX {
                *lu = live_forever;
            }
        }
        last_use[out as usize] = live_forever;

        let mut map = vec![u16::MAX; n_virtual];
        let mut free: Vec<u16> = Vec::new();
        let mut n_phys: u16 = 0;
        let mut alloc_ops = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            let (srcs, n) = op.srcs();
            let mut phys_srcs = [0u16; 2];
            for (k, &s) in srcs[..n].iter().enumerate() {
                phys_srcs[k] = map[s as usize];
            }
            // Release operands that die here (dedup so a register used
            // twice by one op is freed once), making them available for
            // this op's destination — elementwise ops may run in place.
            for (k, &s) in srcs[..n].iter().enumerate() {
                if last_use[s as usize] == i && srcs[..k].iter().all(|&p| p != s) {
                    free.push(map[s as usize]);
                }
            }
            let dst = free.pop().unwrap_or_else(|| {
                let p = n_phys;
                n_phys += 1;
                p
            });
            map[op.dst() as usize] = dst;
            let mut new = *op;
            new.remap(dst, phys_srcs);
            alloc_ops.push(new);
        }
        let prog = VmProgram {
            ops: alloc_ops,
            consts: self.consts,
            n_regs: n_phys as usize,
            out: map[out as usize],
            n_slots: self.max_slot + 1,
        };
        // Debug builds audit the bytecode once, right here, before it can
        // ever dispatch: def-before-use over the *physical* registers
        // (which also proves the allocator never wired an op to a freed
        // register), bounds on every register/constant/slot index, and
        // chain-length invariants. Release builds skip the walk.
        #[cfg(debug_assertions)]
        if let Err(e) = prog.sanity_check(None) {
            panic!("compiled VM bytecode failed the static sanity pass: {e}");
        }
        prog
    }
}

/// SSA peephole, run before register allocation:
///
/// 1. collapse runs of `FmaLoad`s threaded through single-use
///    accumulators into [`Op::FmaChain`] groups of up to [`MAX_CHAIN`]
///    taps;
/// 2. fold a `MulAddC` whose tap operand is a single-use chain seeded by
///    a splatted constant into [`Op::FmaChainW`] — one dispatch for the
///    whole temporal term.
///
/// Both rewrites perform the identical per-lane multiply-then-add
/// sequence, so they are purely dispatch/accumulator-traffic
/// optimizations; `uses` proves the folded intermediates have no other
/// reader (`out` is read externally and is never folded).
fn merge_fma_chains(ops: Vec<Op>, uses: &[u32], splat_of: &HashMap<u16, u16>, out: u16) -> Vec<Op> {
    let mut merged: Vec<Op> = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            Op::FmaLoad {
                dst,
                c,
                slot,
                off,
                acc,
            } => {
                if let Some(Op::FmaChain {
                    dst: cd,
                    n,
                    c: cc,
                    slot: cs,
                    off: co,
                    ..
                }) = merged.last_mut()
                {
                    if *cd == acc
                        && acc != out
                        && uses[acc as usize] == 1
                        && (*n as usize) < MAX_CHAIN
                    {
                        let k = *n as usize;
                        cc[k] = c;
                        cs[k] = slot;
                        co[k] = off;
                        *n += 1;
                        *cd = dst; // the chain now defines this value
                        continue;
                    }
                }
                let mut cc = [0u16; MAX_CHAIN];
                let mut cs = [0u16; MAX_CHAIN];
                let mut co = [0i64; MAX_CHAIN];
                cc[0] = c;
                cs[0] = slot;
                co[0] = off;
                merged.push(Op::FmaChain {
                    dst,
                    acc,
                    n: 1,
                    c: cc,
                    slot: cs,
                    off: co,
                });
            }
            Op::MulAddC { dst, c, b, acc } => {
                let fused = match merged.last() {
                    Some(&Op::FmaChain {
                        dst: cd,
                        acc: ca,
                        n,
                        c: cc,
                        slot: cs,
                        off: co,
                    }) if cd == b && b != out && uses[b as usize] == 1 => {
                        splat_of.get(&ca).map(|&seed_c| Op::FmaChainW {
                            dst,
                            acc,
                            w: c,
                            seed_c,
                            n,
                            c: cc,
                            slot: cs,
                            off: co,
                        })
                    }
                    _ => None,
                };
                if let Some(f) = fused {
                    merged.pop();
                    merged.push(f);
                } else {
                    merged.push(op);
                }
            }
            _ => merged.push(op),
        }
    }
    merged
}

/// Compile linearized tap lists into a VM program that replays the
/// interpreter's exact evaluation order:
///
/// ```text
/// out = 0
/// for term:  acc = 0; for (off, coeff): acc = acc + coeff * tap
///            out = out + term.weight * acc
/// ```
///
/// Both the inner accumulation and the outer combine start from an actual
/// zero register and use multiply-then-add (two roundings), so every
/// intermediate value is bit-identical to `CompiledStencil::apply_at`,
/// including the `-0.0` cases a bare first multiply would miss.
///
/// The inner chain lowers to fused [`Op::FmaLoad`] — tap reads come
/// straight from the state grids, never staged through a register copy,
/// and the allocator keeps the whole accumulation in one register.
pub fn compile_linear<T: VmScalar>(terms: &[LinearTerm<T>]) -> Result<VmProgram<T>> {
    if terms.is_empty() {
        return Err(MscError::UnsupportedExpr(
            "cannot compile a stencil with no temporal terms".into(),
        ));
    }
    let mut b = Builder::new();
    let zero = b.splat(T::default())?;
    let mut out = zero;
    for t in terms {
        let slot = u16::try_from(t.slot)
            .map_err(|_| MscError::UnsupportedExpr("state slot index overflow".into()))?;
        let mut acc = zero;
        for &(off, coeff) in &t.taps {
            let c = b.pool(coeff)?;
            acc = b.fma_load(c, slot, off, acc)?;
        }
        let w = b.pool(t.weight)?;
        out = b.mul_add_c(w, acc, out)?;
    }
    Ok(b.finish(out))
}

/// Compile general expression terms (the non-linear path: `min`/`max`,
/// calls, variable coefficients). Matches `Expr::eval` semantics; spatial
/// offsets are dotted against `strides` at compile time.
pub fn compile_expr<T: VmScalar>(
    terms: &[ExprTerm<'_>],
    strides: &[usize],
    vars: &BTreeMap<String, f64>,
) -> Result<VmProgram<T>> {
    if terms.is_empty() {
        return Err(MscError::UnsupportedExpr(
            "cannot compile a stencil with no temporal terms".into(),
        ));
    }
    let mut b = Builder::new();
    let zero = b.splat(T::default())?;
    let mut out = zero;
    for t in terms {
        let acc = lower(&mut b, t.expr, t.slot, strides, vars)?;
        let w = b.pool(T::from_f64(t.weight))?;
        out = b.mul_add_c(w, acc, out)?;
    }
    Ok(b.finish(out))
}

fn flat_offset(a: &Access, strides: &[usize]) -> Result<i64> {
    if a.offsets.len() != strides.len() {
        return Err(MscError::DimMismatch {
            expected: strides.len(),
            got: a.offsets.len(),
        });
    }
    Ok(a.offsets
        .iter()
        .zip(strides)
        .map(|(&o, &s)| o * s as i64)
        .sum())
}

fn lower<T: VmScalar>(
    b: &mut Builder<T>,
    expr: &Expr,
    slot: usize,
    strides: &[usize],
    vars: &BTreeMap<String, f64>,
) -> Result<u16> {
    Ok(match expr {
        Expr::Const(v) => b.splat(T::from_f64(*v))?,
        Expr::ConstI(v) => b.splat(T::from_f64(*v as f64))?,
        Expr::Var(name) => {
            let v = *vars.get(name).ok_or_else(|| MscError::Undefined {
                kind: "variable",
                name: name.clone(),
            })?;
            b.splat(T::from_f64(v))?
        }
        Expr::Access(a) => {
            let off = flat_offset(a, strides)?;
            let s = u16::try_from(slot + a.time_back)
                .map_err(|_| MscError::UnsupportedExpr("state slot index overflow".into()))?;
            b.load(s, off)?
        }
        Expr::Unary(op, a) => {
            let r = lower(b, a, slot, strides, vars)?;
            let kind = match op {
                UnOp::Neg => UnKind::Neg,
                UnOp::Abs => UnKind::Abs,
                UnOp::Sqrt => UnKind::Sqrt,
            };
            b.un(kind, r)?
        }
        Expr::Binary(op, x, y) => {
            let rx = lower(b, x, slot, strides, vars)?;
            let ry = lower(b, y, slot, strides, vars)?;
            let kind = match op {
                BinOp::Add => BinKind::Add,
                BinOp::Sub => BinKind::Sub,
                BinOp::Mul => BinKind::Mul,
                BinOp::Div => BinKind::Div,
                BinOp::Min => BinKind::Min,
                BinOp::Max => BinKind::Max,
            };
            b.bin(kind, rx, ry)?
        }
        Expr::Call(name, args) => match (name.as_str(), args.as_slice()) {
            ("exp", [x]) => {
                let r = lower(b, x, slot, strides, vars)?;
                b.un(UnKind::Exp, r)?
            }
            ("sin", [x]) => {
                let r = lower(b, x, slot, strides, vars)?;
                b.un(UnKind::Sin, r)?
            }
            ("cos", [x]) => {
                let r = lower(b, x, slot, strides, vars)?;
                b.un(UnKind::Cos, r)?
            }
            ("pow", [x, y]) => {
                let rx = lower(b, x, slot, strides, vars)?;
                let ry = lower(b, y, slot, strides, vars)?;
                b.bin(BinKind::Pow, rx, ry)?
            }
            _ => {
                return Err(MscError::UnsupportedExpr(format!(
                    "unknown external function `{name}` with {} args",
                    args.len()
                )))
            }
        },
    })
}

/// Convenience used by tests: evaluate one point through a freshly
/// allocated scratch.
pub fn eval_point<T: VmScalar>(prog: &VmProgram<T>, states: &[&[T]], base: usize) -> T {
    let mut scratch: VmScratch<T> = prog.scratch();
    prog.run_point(states, base, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CHUNK;

    /// Interpreter-order reference for the linear path.
    fn apply_ref(terms: &[LinearTerm<f64>], states: &[&[f64]], base: usize) -> f64 {
        let mut out = 0.0;
        for t in terms {
            let src = states[t.slot];
            let mut acc = 0.0;
            for &(off, coeff) in &t.taps {
                acc += coeff * src[(base as i64 + off) as usize];
            }
            out += t.weight * acc;
        }
        out
    }

    fn ragged_grid(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic, non-uniform values with varied exponents so
        // bit-identity failures actually show up.
        (0..n)
            .map(|i| {
                let x = ((i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 11) as f64
                    / (1u64 << 53) as f64;
                (x - 0.5) * 1e3
            })
            .collect()
    }

    fn star_1d(weight: f64) -> LinearTerm<f64> {
        LinearTerm {
            slot: 0,
            weight,
            taps: vec![(-1, 0.25), (0, 0.5), (1, 0.25)],
        }
    }

    #[test]
    fn linear_program_is_bit_identical_to_interpreter_order() {
        let terms = vec![
            star_1d(0.6),
            LinearTerm {
                slot: 1,
                weight: 0.4,
                taps: vec![(-2, -0.125), (0, 1.0), (2, 0.125)],
            },
        ];
        let prog: VmProgram<f64> = compile_linear(&terms).unwrap();
        assert_eq!(prog.n_slots, 2);
        let a = ragged_grid(256, 1);
        let b = ragged_grid(256, 2);
        let states: Vec<&[f64]> = vec![&a, &b];
        let mut out = vec![0.0; 200];
        let mut scratch = prog.scratch();
        prog.run_row(&states, 8, &mut out, &mut scratch);
        for (i, &got) in out.iter().enumerate() {
            let want = apply_ref(&terms, &states, 8 + i);
            assert_eq!(got.to_bits(), want.to_bits(), "point {i}");
        }
    }

    #[test]
    fn rows_longer_than_one_chunk_match_pointwise_eval() {
        let terms = vec![star_1d(1.0)];
        let prog: VmProgram<f64> = compile_linear(&terms).unwrap();
        let a = ragged_grid(3 * CHUNK + 10, 7);
        let states: Vec<&[f64]> = vec![&a];
        let mut out = vec![0.0; 2 * CHUNK + 31]; // deliberately ragged tail
        let mut scratch = prog.scratch();
        prog.run_row(&states, 2, &mut out, &mut scratch);
        for (i, &got) in out.iter().enumerate() {
            let want = prog.run_point(&states, 2 + i, &mut scratch);
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn linear_loads_are_fused_and_constants_pooled() {
        // Two terms over the same slot with repeated coefficients: every
        // tap becomes one fused load-FMA (no standalone Load ops at all),
        // and the pool dedups coefficients and weights.
        let terms = vec![
            LinearTerm {
                slot: 0,
                weight: 0.5,
                taps: vec![(-1, 0.25), (0, 0.25), (1, 0.25)],
            },
            LinearTerm {
                slot: 0,
                weight: 0.5,
                taps: vec![(-1, 0.25), (1, 0.25)],
            },
        ];
        let prog: VmProgram<f64> = compile_linear(&terms).unwrap();
        let chains: Vec<u8> = prog
            .ops()
            .iter()
            .filter_map(|o| match o {
                Op::FmaChainW { n, .. } => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(chains, vec![3, 2], "one fused dispatch per term");
        assert!(
            !prog
                .ops()
                .iter()
                .any(|o| matches!(o, Op::Load { .. } | Op::FmaLoad { .. } | Op::MulAddC { .. })),
            "short linear terms must fuse completely"
        );
        // Pool: 0.0, 0.25, 0.5 — dedup across taps and weights.
        assert_eq!(prog.n_consts(), 3);
    }

    #[test]
    fn expr_taps_are_cse_d() {
        use msc_core::expr::Expr;
        // u[1] * u[1] + u[1]: three reads of one tap must load once.
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::at("u", &[1])),
                Box::new(Expr::at("u", &[1])),
            )),
            Box::new(Expr::at("u", &[1])),
        );
        let terms = vec![ExprTerm {
            slot: 0,
            weight: 1.0,
            expr: &e,
        }];
        let prog: VmProgram<f64> = compile_expr(&terms, &[1], &BTreeMap::new()).unwrap();
        let loads = prog
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::Load { .. }))
            .count();
        assert_eq!(loads, 1, "repeated taps must load once");
    }

    #[test]
    fn register_allocator_reuses_dead_registers() {
        // A long single-term chain: the accumulator dies at every MulAddC,
        // so physical register pressure stays tiny however many taps.
        let taps: Vec<(i64, f64)> = (-60..=60).map(|o| (o, 1.0 / 121.0)).collect();
        let terms = vec![LinearTerm {
            slot: 0,
            weight: 1.0,
            taps,
        }];
        let prog: VmProgram<f64> = compile_linear(&terms).unwrap();
        assert!(
            prog.n_regs() <= 8,
            "121-tap chain should run in a handful of registers, got {}",
            prog.n_regs()
        );
        // And it still computes the right thing.
        let a = ragged_grid(400, 3);
        let states: Vec<&[f64]> = vec![&a];
        let got = eval_point(&prog, &states, 200);
        let mut want = 0.0;
        for off in -60i64..=60 {
            want += (1.0 / 121.0) * a[(200 + off) as usize];
        }
        assert_eq!(got.to_bits(), (0.0 + 1.0 * want).to_bits());
    }

    #[test]
    fn general_expr_path_matches_expr_eval() {
        use msc_core::expr::Expr;
        // max(|u[-1]|, sqrt(exp(sin(u[1])))) * 0.5 + pow(u[0], 2) + c
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::Binary(
                    BinOp::Max,
                    Box::new(Expr::Unary(UnOp::Abs, Box::new(Expr::at("u", &[-1])))),
                    Box::new(Expr::Unary(
                        UnOp::Sqrt,
                        Box::new(Expr::Call(
                            "exp".into(),
                            vec![Expr::Call("sin".into(), vec![Expr::at("u", &[1])])],
                        )),
                    )),
                )),
                Box::new(Expr::Const(0.5)),
            )),
            Box::new(Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Call(
                    "pow".into(),
                    vec![Expr::at("u", &[0]), Expr::Const(2.0)],
                )),
                Box::new(Expr::Var("c".into())),
            )),
        );
        let mut vars = BTreeMap::new();
        vars.insert("c".to_string(), 0.75);
        let terms = vec![ExprTerm {
            slot: 0,
            weight: 1.0,
            expr: &e,
        }];
        let prog: VmProgram<f64> = compile_expr(&terms, &[1], &vars).unwrap();
        let grid = ragged_grid(128, 9);
        let states: Vec<&[f64]> = vec![&grid];
        let mut scratch = prog.scratch();
        let mut out = vec![0.0; 64];
        prog.run_row(&states, 10, &mut out, &mut scratch);
        for (i, &got) in out.iter().enumerate() {
            let base = 10 + i;
            let want = e
                .eval(
                    &mut |a: &Access| grid[(base as i64 + a.offsets[0]) as usize],
                    &vars,
                )
                .unwrap();
            // The program computes 0 + 1.0 * eval(expr).
            let want = 0.0 + 1.0 * want;
            assert_eq!(got.to_bits(), want.to_bits(), "point {i}");
        }
    }

    #[test]
    fn unknown_call_is_rejected() {
        use msc_core::expr::Expr;
        let e = Expr::Call("erf".into(), vec![Expr::at("u", &[0])]);
        let terms = vec![ExprTerm {
            slot: 0,
            weight: 1.0,
            expr: &e,
        }];
        let err = compile_expr::<f64>(&terms, &[1], &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, MscError::UnsupportedExpr(_)));
    }

    #[test]
    fn f32_linear_path_matches_f32_interpreter_order() {
        let terms = vec![LinearTerm::<f32> {
            slot: 0,
            weight: 1.0,
            taps: vec![(-1, 0.3), (0, 0.4), (1, 0.3)],
        }];
        let prog: VmProgram<f32> = compile_linear(&terms).unwrap();
        let a: Vec<f32> = ragged_grid(128, 11).iter().map(|&v| v as f32).collect();
        let states: Vec<&[f32]> = vec![&a];
        let got = eval_point(&prog, &states, 64);
        let mut acc = 0.0f32;
        for &(off, c) in &terms[0].taps {
            acc += c * a[(64 + off) as usize];
        }
        let want = 0.0f32 + 1.0f32 * acc;
        assert_eq!(got.to_bits(), want.to_bits());
    }
}
