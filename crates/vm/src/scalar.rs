//! The numeric element trait shared by the VM and the tiers above it.
//!
//! `msc-exec`'s `Scalar` is a supertrait of this one; the trait lives here
//! (the lowest crate in the execution stack) so the VM can be generic over
//! `f32`/`f64` without depending on the executor crate. Every method must
//! match the semantics `Expr::eval` uses on `f64` — `min`/`max` with IEEE
//! NaN propagation as implemented by `f64::min`, `powf` for `pow`, etc. —
//! so the general compiled path agrees with the tree-walking evaluator.

use std::ops::{Add, Div, Mul, Sub};

pub trait VmScalar:
    Copy
    + Send
    + Sync
    + Default
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + 'static
{
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn vneg(self) -> Self;
    fn vabs(self) -> Self;
    fn vsqrt(self) -> Self;
    fn vmin(self, other: Self) -> Self;
    fn vmax(self, other: Self) -> Self;
    fn vexp(self) -> Self;
    fn vsin(self) -> Self;
    fn vcos(self) -> Self;
    fn vpow(self, exp: Self) -> Self;
}

macro_rules! impl_vm_scalar {
    ($t:ty) => {
        impl VmScalar for $t {
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn vneg(self) -> Self {
                -self
            }
            #[inline]
            fn vabs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn vsqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn vmin(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline]
            fn vmax(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline]
            fn vexp(self) -> Self {
                self.exp()
            }
            #[inline]
            fn vsin(self) -> Self {
                self.sin()
            }
            #[inline]
            fn vcos(self) -> Self {
                self.cos()
            }
            #[inline]
            fn vpow(self, exp: Self) -> Self {
                self.powf(exp)
            }
        }
    };
}

impl_vm_scalar!(f32);
impl_vm_scalar!(f64);
