//! msc-vm: bytecode compiler + row-dispatch register VM.
//!
//! The executors in `msc-exec` historically evaluated one grid point at a
//! time (`CompiledStencil::apply_at` walks the tap list per point). This
//! crate lowers a kernel once into a flat register-machine program —
//! constant pooling, common-subexpression reuse of loaded taps, per-tap
//! strides resolved at compile time — and then executes a **full row of
//! points per dispatch loop**: every instruction operates on a chunk of
//! [`CHUNK`] contiguous unit-stride points, so the per-instruction dispatch
//! cost is amortized ~64× and the inner loops are plain unit-stride slices
//! the backend can vectorize.
//!
//! Two compilation entry points:
//!
//! * [`compile::compile_linear`] — from linearized tap lists (the form
//!   `CompiledStencil` already holds). The emitted program replays the
//!   interpreter's exact evaluation order (`acc = acc + coeff * src[..]`,
//!   starting from `0.0`), so results are **bit-identical** to the
//!   interpreter tier, which stays the correctness oracle.
//! * [`compile::compile_expr`] — from arbitrary `Expr` trees (non-linear
//!   kernels with `min`/`max`/calls). Matches `Expr::eval` semantics.
//!
//! The crate is deliberately tiny and dependency-free (only `msc-core` for
//! the IR types): no unsafe (enforced below), no atomics, no I/O. Tier
//! selection, tracing, and the shape-specialized loops live one layer up
//! in `msc-exec`.

#![forbid(unsafe_code)]

pub mod compile;
pub mod program;
pub mod scalar;

pub use compile::{compile_expr, compile_linear, ExprTerm, LinearTerm};
pub use program::{BinKind, Op, UnKind, VmProgram, VmScratch, CHUNK};
pub use scalar::VmScalar;
