/* Strided (non-affine) subscript: `A[i*2][j]` does not normalize to
 * `var + constant`, so the affine pass must reject it with MSC-L502. */
double A[34][34];
double B[34][34];

void strided(void) {
  for (int i = 1; i < 16; i++)
    for (int j = 1; j < 33; j++)
      B[i][j] = 0.5*A[i*2][j] + 0.5*A[i][j];
}
