/* Gauss-Seidel-style in-place sweep: reads the cell the previous
 * iteration just overwrote. Lifts structurally, but the ordinary lint
 * passes must deny it (MSC-L201 window too shallow, MSC-L302 in-place
 * order dependence) through the same gate as DSL programs. */
double A[34][34];

void gauss_seidel(void) {
  for (int i = 1; i < 33; i++)
    for (int j = 1; j < 33; j++)
      A[i][j] = 0.25*A[i-1][j] + 0.25*A[i][j-1]
              + 0.25*A[i][j+1] + 0.25*A[i+1][j];
}
