//! Footprint recovery (pass 3 of the lift pipeline, DESIGN.md §16.3).
//!
//! Maps the affine summary onto the stencil IR: loop margins become the
//! grid's interior shape and halo, the tap list becomes a
//! [`msc_core::Kernel`] expression (source order preserved), and array
//! aliasing picks the time-slot assignment — a two-buffer `B = f(A)`
//! nest lifts to the canonical `t-1 → t` sweep (window 2), an in-place
//! `A = f(A)` nest lifts to a window-1 program that the ordinary lint
//! passes then deny as order-dependent (`MSC-L201`/`MSC-L302`), exactly
//! as they would a hand-written DSL program.

use crate::affine::AffineNest;
use crate::LiftError;
use msc_core::{DType, Expr, Footprint, Kernel, SpNode, StencilProgram};
use msc_lint::LintCode;

/// Timestep count stamped on lifted programs. The C nest describes one
/// sweep; scheduling and validation iterate it a few times so time-slot
/// bugs (not just single-step arithmetic) are exercised.
pub const LIFT_TIMESTEPS: usize = 4;

/// A successfully lifted program plus the affine summary it came from
/// (the validator interprets the summary's `rhs` directly).
#[derive(Debug, Clone)]
pub struct Lifted {
    pub program: StencilProgram,
    pub nest: AffineNest,
}

fn mismatch(msg: String, context: String, help: &str) -> LiftError {
    LiftError::new(LintCode::LiftMarginMismatch, msg, context, help.into())
}

/// Map an [`AffineNest`] onto a [`StencilProgram`].
pub fn recover(nest: AffineNest) -> Result<Lifted, LiftError> {
    let ndim = nest.extents.len();
    let ctx = format!("nest `{}`", nest.name);

    // Loop margins: the cells each loop leaves unswept on either side.
    let mut margins = Vec::with_capacity(ndim);
    for d in 0..ndim {
        let lo = nest.lo[d];
        let hi_gap = nest.extents[d] as i64 - nest.hi[d];
        if lo < 0 || hi_gap < 0 {
            return Err(mismatch(
                format!(
                    "loop {} sweeps [{}, {}) but `{}` only has extent {}",
                    d + 1,
                    nest.lo[d],
                    nest.hi[d],
                    nest.out_array,
                    nest.extents[d]
                ),
                ctx.clone(),
                "the store runs outside the declared array",
            ));
        }
        if lo != hi_gap {
            return Err(mismatch(
                format!(
                    "loop {} leaves {} cell(s) below and {} above the sweep; \
                     halos must be symmetric",
                    d + 1,
                    lo,
                    hi_gap
                ),
                ctx.clone(),
                "centre the loop bounds in the array",
            ));
        }
        margins.push(lo as usize);
    }
    let margin = margins[0];
    if margins.iter().any(|&m| m != margin) {
        return Err(mismatch(
            format!("margins {margins:?} differ across dimensions"),
            ctx,
            "MSC grids carry one uniform halo width; pad every dimension \
             equally",
        ));
    }

    // Kernel expression: the source-order tap sum. Coefficients of ±1
    // stay bare accesses (or negations) so the expression — and with it
    // the interp tier's rounding sequence — mirrors the C source.
    let mut expr: Option<Expr> = None;
    for t in &nest.taps {
        let access = Expr::at(&nest.in_array, &t.offsets);
        let term = if t.coeff == 1.0 {
            access
        } else if t.coeff == -1.0 {
            -1.0 * access
        } else {
            t.coeff * access
        };
        expr = Some(match expr {
            Some(e) => e + term,
            None => term,
        });
    }
    let expr = expr.expect("affine pass guarantees at least one tap");

    // The stencil's reach must fit inside the unswept margin, or the C
    // nest reads cells the lifted halo does not hold.
    let reach = Footprint::of_expr(&expr, ndim).required_halo();
    if let Some((d, &r)) = reach.iter().enumerate().find(|&(_, &r)| r > margin) {
        return Err(mismatch(
            format!(
                "taps reach {r} cell(s) along dimension {} but the loop margin \
                 is only {margin}; the nest reads outside the swept interior's \
                 guard band",
                d + 1
            ),
            format!("nest `{}`", nest.name),
            "widen the loop margins to cover the stencil's reach",
        ));
    }

    let shape: Vec<usize> = (0..ndim)
        .map(|d| (nest.hi[d] - nest.lo[d]) as usize)
        .collect();
    // Two-buffer nests are the canonical Jacobi `t-1 → t` sweep; in-place
    // nests get the minimal window and let the lint passes judge them.
    let window = if nest.in_place { 1 } else { 2 };

    let node = SpNode::new(&nest.in_array, DType::F64, &shape, margin, window).map_err(|e| {
        mismatch(
            format!("recovered grid is not representable: {e}"),
            format!("nest `{}`", nest.name),
            "",
        )
    })?;
    let kernel = Kernel::new(&nest.name, ndim, expr).map_err(|e| {
        LiftError::new(
            LintCode::LiftUnsupportedConstruct,
            format!("recovered kernel is not representable: {e}"),
            format!("nest `{}`", nest.name),
            String::new(),
        )
    })?;
    let kname = kernel.name.clone();
    let program = StencilProgram::builder(&nest.name)
        .grid(node)
        .kernel(kernel)
        .combine(&[(1, 1.0, kname.as_str())])
        .timesteps(LIFT_TIMESTEPS)
        .build_unchecked()
        .map_err(|e| {
            LiftError::new(
                LintCode::LiftUnsupportedConstruct,
                format!("recovered program is not representable: {e}"),
                format!("nest `{}`", nest.name),
                String::new(),
            )
        })?;
    Ok(Lifted { program, nest })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::analyze;
    use crate::ast::parse;

    fn lift(src: &str) -> Result<Lifted, LiftError> {
        recover(analyze(&parse(src).unwrap(), "t").unwrap())
    }

    #[test]
    fn recovers_grid_halo_and_window() {
        let l = lift(
            "double A[12][12]; double B[12][12];
             for (int i = 2; i < 10; i++)
               for (int j = 2; j < 10; j++)
                 B[i][j] = 0.25*A[i-2][j] + 0.5*A[i][j] + 0.25*A[i][j+2];",
        )
        .unwrap();
        assert_eq!(l.program.grid.shape, vec![8, 8]);
        assert_eq!(l.program.grid.halo, vec![2, 2]);
        assert_eq!(l.program.grid.time_window, 2);
        assert_eq!(l.program.timesteps, LIFT_TIMESTEPS);
        assert_eq!(l.program.stencil.kernels.len(), 1);
        let op = l.program.stencil.kernels[0].to_op().unwrap();
        assert_eq!(op.points(), 3);
    }

    #[test]
    fn in_place_gets_window_one() {
        let l = lift(
            "double A[8];
             for (int i = 1; i < 7; i++) A[i] = 0.5*A[i-1] + 0.5*A[i+1];",
        )
        .unwrap();
        assert_eq!(l.program.grid.time_window, 1);
    }

    #[test]
    fn margin_problems_are_l506() {
        for bad in [
            // asymmetric margins
            "double A[8]; double B[8];
             for (int i = 1; i < 8; i++) B[i] = 1.0*A[i];",
            // non-uniform across dims
            "double A[10][10]; double B[10][10];
             for (int i = 1; i < 9; i++) for (int j = 2; j < 8; j++)
               B[i][j] = 1.0*A[i][j];",
            // reach exceeds margin: reads A[0-1] = out of bounds
            "double A[8]; double B[8];
             for (int i = 1; i < 7; i++) B[i] = 0.5*A[i-2] + 0.5*A[i];",
            // sweep escapes the array entirely
            "double A[8]; double B[8];
             for (int i = 0; i < 9; i++) B[i] = 1.0*A[i];",
        ] {
            assert_eq!(
                lift(bad).unwrap_err().code,
                LintCode::LiftMarginMismatch,
                "{bad}"
            );
        }
    }

    #[test]
    fn margin_zero_pointwise_nests_lift() {
        let l = lift(
            "double A[8]; double B[8];
             for (int i = 0; i < 8; i++) B[i] = 2.0*A[i];",
        )
        .unwrap();
        assert_eq!(l.program.grid.halo, vec![0]);
        assert_eq!(l.program.grid.shape, vec![8]);
    }
}
