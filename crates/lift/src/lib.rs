//! msc-lift — static lifting of legacy C loop nests into verified
//! stencil IR (DESIGN.md §16).
//!
//! The lifter ingests a restricted C `for`-nest kernel and emits a
//! semantically equivalent [`msc_core::StencilProgram`], in four passes:
//!
//! 1. **Parse** ([`lex`], [`ast`]) — a recursive-descent parser over the
//!    supported subset, producing an AST with source spans.
//! 2. **Affine analysis** ([`affine`]) — every subscript normalized to
//!    `loop_var + constant`, the RHS linearized into a source-order tap
//!    list; non-affine or non-linear input is rejected with typed
//!    `MSC-L5xx` diagnostics.
//! 3. **Footprint recovery** ([`recover`]) — offset sets mapped onto the
//!    IR: grid shape and halo from the loop margins, taps onto a
//!    [`msc_core::Kernel`], time slots (`t-1 → t` two-buffer vs
//!    in-place) from the array aliasing.
//! 4. **Translation validation** ([`validate`]) — the lifted program is
//!    executed through the normal lint → schedule → execute pipeline and
//!    differenced **bit-for-bit** against direct interpretation of the
//!    original loop nest on random grids, across all execution tiers.
//!
//! Every failure mode is a [`msc_lint::Diagnostic`] carried in a
//! [`msc_lint::Report`], so `mscc lift` renders and `--json`-serializes
//! lift errors exactly like DSL lint errors, and the same deny gate
//! applies.

pub mod affine;
pub mod ast;
pub mod lex;
pub mod recover;
pub mod validate;

pub use affine::{analyze, AffineNest, LinTap, RExpr};
pub use ast::{parse, CFile, MAX_EXPR_DEPTH};
pub use recover::{recover, Lifted, LIFT_TIMESTEPS};
pub use validate::{validate, ValidationOutcome, DEFAULT_SEEDS};

use msc_lint::{lint_program, Diagnostic, LintCode, Report};

/// A typed lift failure: a lint code plus the message/context/help
/// triple that [`msc_lint::Diagnostic`] wants. Every pass before the
/// linter reports through this type.
#[derive(Debug, Clone, PartialEq)]
pub struct LiftError {
    pub code: LintCode,
    pub message: String,
    pub context: String,
    pub help: String,
}

impl LiftError {
    pub fn new(code: LintCode, message: String, context: String, help: String) -> LiftError {
        LiftError {
            code,
            message,
            context,
            help,
        }
    }

    /// Convert into the lint pipeline's diagnostic type.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::new(
            self.code,
            self.message.clone(),
            self.context.clone(),
            self.help.clone(),
        )
    }
}

impl std::fmt::Display for LiftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.code, self.context, self.message)
    }
}

impl std::error::Error for LiftError {}

/// Everything `mscc lift` needs: the diagnostics report (lift errors
/// merged with the ordinary lint passes) and, when lifting succeeded,
/// the recovered program plus its affine summary.
#[derive(Debug)]
pub struct LiftOutcome {
    pub report: Report,
    pub lifted: Option<Lifted>,
}

/// Lift C source to a stencil program. `fallback_name` names the
/// program when the nest is not wrapped in a `void name() {}` function
/// (callers pass the file stem).
///
/// The returned report always exists; `lifted` is `Some` iff parsing,
/// affine analysis, and footprint recovery all succeeded. The lifted
/// program has additionally been run through [`msc_lint::lint_program`],
/// so downstream races (`MSC-L3xx`) and halo/window findings surface in
/// the same report — check [`Report::has_deny`] before executing.
pub fn lift_source(source: &str, fallback_name: &str) -> LiftOutcome {
    let mut report = Report::new(fallback_name);
    let lifted = ast::parse(source)
        .and_then(|file| affine::analyze(&file, fallback_name))
        .and_then(recover::recover);
    match lifted {
        Err(e) => {
            report.push(e.to_diagnostic());
            LiftOutcome {
                report,
                lifted: None,
            }
        }
        Ok(lifted) => {
            // Re-report under the program's real name and run the
            // ordinary lint passes over the recovered IR, so halo/window
            // findings and in-place races surface alongside lift codes.
            let report = lint_program(&lifted.program, None);
            LiftOutcome {
                report,
                lifted: Some(lifted),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JACOBI: &str = "
        double A[10][10];
        double B[10][10];
        void jacobi(void) {
          for (int i = 1; i < 9; i++)
            for (int j = 1; j < 9; j++)
              B[i][j] = 0.2*A[i-1][j] + 0.2*A[i][j-1] + 0.2*A[i][j]
                      + 0.2*A[i][j+1] + 0.2*A[i+1][j];
        }";

    #[test]
    fn lift_source_produces_a_clean_program() {
        let out = lift_source(JACOBI, "fallback");
        assert!(out.report.is_clean(), "{}", out.report.render());
        let lifted = out.lifted.expect("lifted");
        assert_eq!(lifted.program.name, "jacobi");
        assert_eq!(lifted.program.grid.shape, vec![8, 8]);
        assert_eq!(lifted.program.grid.halo, vec![1, 1]);
        assert_eq!(lifted.program.grid.time_window, 2);
    }

    #[test]
    fn lift_errors_land_in_the_report() {
        let out = lift_source("for (int i = 1; i < 9; i++) A[i] = A[i*i];", "bad");
        assert!(out.lifted.is_none());
        assert!(out.report.has_deny());
        assert!(out.report.has_code(LintCode::LiftNonAffineSubscript));
    }

    #[test]
    fn in_place_lift_is_denied_by_the_ordinary_lint_passes() {
        let out = lift_source(
            "double A[10][10];
             void gs(void) {
               for (int i = 1; i < 9; i++)
                 for (int j = 1; j < 9; j++)
                   A[i][j] = 0.25*A[i-1][j] + 0.25*A[i][j-1]
                           + 0.25*A[i][j+1] + 0.25*A[i+1][j];
             }",
            "gs",
        );
        assert!(out.lifted.is_some(), "in-place nests still lift");
        assert!(out.report.has_deny(), "…but the race lints deny them");
        assert!(
            out.report.has_code(LintCode::WindowTooShallow)
                || out.report.has_code(LintCode::InPlaceOrderDependence),
            "{}",
            out.report.render()
        );
    }
}
