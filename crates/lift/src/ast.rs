//! Recursive-descent parser for the supported C subset (pass 1 of the
//! lift pipeline, DESIGN.md §16.1).
//!
//! The accepted shape is a restricted Jacobi-style kernel:
//!
//! ```text
//! file   := decl* ( func | nest )
//! decl   := "double" IDENT ("[" INT "]")+ ";"
//! func   := "void" IDENT "(" params? ")" "{" nest "}"
//! params := "void" | decl-param ("," decl-param)*
//! nest   := "for" "(" "int"? IDENT "=" INT ";" IDENT ("<"|"<=") INT ";" inc ")" body
//! body   := "{" (nest | store) "}" | nest | store
//! store  := IDENT ("[" iexpr "]")+ "=" expr ";"
//! expr   := term (("+"|"-") term)*
//! term   := factor ("*" factor)*
//! factor := NUMBER | "-" factor | "(" expr ")" | IDENT ("[" iexpr "]")+
//! ```
//!
//! Parenthesized expressions (and bracketed index expressions) are
//! capped at [`MAX_EXPR_DEPTH`] levels; beyond that the parser returns
//! `MSC-L507` instead of risking a stack overflow on hostile input —
//! the same hardening the PR 9 JSON parser got.

use crate::lex::{lex, Span, Tok, Token};
use crate::LiftError;
use msc_lint::LintCode;

/// Maximum nesting depth of parenthesized/bracketed expressions.
pub const MAX_EXPR_DEPTH: usize = 64;

/// `double NAME[e0][e1]...;` — a global array declaration (or a
/// function parameter of the same shape).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    pub name: String,
    pub extents: Vec<usize>,
    pub span: Span,
}

/// One `for` loop of the nest, already reduced to constant bounds:
/// `for (int var = lo; var < hi; var++)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoop {
    pub var: String,
    pub lo: i64,
    pub hi: i64,
    pub span: Span,
}

/// An array access with raw (not yet affine-normalized) index
/// expressions: `NAME[i-1][j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RawAccess {
    pub array: String,
    pub indices: Vec<IExpr>,
    pub span: Span,
}

/// Integer index expression (subscript arithmetic).
#[derive(Debug, Clone, PartialEq)]
pub enum IExpr {
    Num(i64),
    Var(String, Span),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
    Neg(Box<IExpr>),
}

/// Value expression on the right-hand side of the store.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    Num(f64),
    Access(RawAccess),
    Add(Box<CExpr>, Box<CExpr>),
    Sub(Box<CExpr>, Box<CExpr>),
    Mul(Box<CExpr>, Box<CExpr>),
    Neg(Box<CExpr>),
}

/// The single assignment in the innermost loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Store {
    pub target: RawAccess,
    pub rhs: CExpr,
    pub span: Span,
}

/// A fully parsed input file: declarations, the loop nest, and the one
/// store statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CFile {
    /// Function name when the nest is wrapped in `void name(...) {}`.
    pub name: Option<String>,
    pub decls: Vec<ArrayDecl>,
    pub loops: Vec<ForLoop>,
    pub store: Store,
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    depth: usize,
}

type PResult<T> = Result<T, LiftError>;

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn span(&self) -> Span {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|t| t.span)
            .unwrap_or(Span { line: 1, col: 1 })
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, code: LintCode, msg: impl Into<String>, help: &str) -> LiftError {
        LiftError::new(code, msg.into(), format!("{}", self.span()), help.into())
    }

    fn syntax(&self, msg: impl Into<String>) -> LiftError {
        self.err(LintCode::LiftSyntaxError, msg, "")
    }

    fn expect(&mut self, want: &Tok) -> PResult<Span> {
        match self.bump() {
            Some(t) if &t.tok == want => Ok(t.span),
            Some(t) => Err(LiftError::new(
                LintCode::LiftSyntaxError,
                format!("expected {}, found {}", want.describe(), t.tok.describe()),
                format!("{}", t.span),
                String::new(),
            )),
            None => Err(self.syntax(format!("expected {}, found end of input", want.describe()))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> PResult<(String, Span)> {
        match self.bump() {
            Some(Token {
                tok: Tok::Ident(s),
                span,
            }) => Ok((s, span)),
            Some(t) => Err(LiftError::new(
                LintCode::LiftSyntaxError,
                format!("expected {what}, found {}", t.tok.describe()),
                format!("{}", t.span),
                String::new(),
            )),
            None => Err(self.syntax(format!("expected {what}, found end of input"))),
        }
    }

    /// A possibly negated integer literal.
    fn expect_int(&mut self, what: &str) -> PResult<i64> {
        let neg = if self.peek() == Some(&Tok::Minus) {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            Some(Token {
                tok: Tok::Int(v), ..
            }) => Ok(if neg { -v } else { v }),
            Some(t) => Err(LiftError::new(
                LintCode::LiftUnsupportedLoop,
                format!(
                    "{what} must be an integer literal, found {}",
                    t.tok.describe()
                ),
                format!("{}", t.span),
                "the subset has no macros or symbolic bounds; spell the bound \
                 out as a number"
                    .into(),
            )),
            None => Err(self.syntax(format!("expected {what}, found end of input"))),
        }
    }

    fn enter(&mut self) -> PResult<()> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(self.err(
                LintCode::LiftNestTooDeep,
                format!("expression nesting exceeds the depth cap of {MAX_EXPR_DEPTH}"),
                "flatten the expression; deeply nested parentheses are not \
                 something a stencil kernel needs",
            ));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    // ---- declarations -------------------------------------------------

    /// `double NAME [n]+` (shared by globals and parameters). The caller
    /// consumes the trailing `;` or `,`.
    fn decl_body(&mut self) -> PResult<ArrayDecl> {
        let (name, span) = self.expect_ident("array name")?;
        let mut extents = Vec::new();
        while self.peek() == Some(&Tok::LBracket) {
            self.bump();
            let n = self.expect_int("array extent")?;
            if n <= 0 {
                return Err(self.err(
                    LintCode::LiftShapeMismatch,
                    format!("array `{name}` has non-positive extent {n}"),
                    "",
                ));
            }
            extents.push(n as usize);
            self.expect(&Tok::RBracket)?;
        }
        if extents.is_empty() {
            return Err(self.err(
                LintCode::LiftUnsupportedConstruct,
                format!("scalar variable `{name}` is not in the subset (arrays only)"),
                "",
            ));
        }
        Ok(ArrayDecl {
            name,
            extents,
            span,
        })
    }

    // ---- loop nest ----------------------------------------------------

    fn for_header(&mut self) -> PResult<ForLoop> {
        let span = self.expect(&Tok::Ident("for".into()))?;
        self.expect(&Tok::LParen)?;
        if self.peek() == Some(&Tok::Ident("int".into())) {
            self.bump();
        }
        let (var, _) = self.expect_ident("loop variable")?;
        self.expect(&Tok::Assign)?;
        let lo = self.expect_int("loop lower bound")?;
        self.expect(&Tok::Semi)?;
        let (cond_var, cond_span) = self.expect_ident("loop condition variable")?;
        if cond_var != var {
            return Err(LiftError::new(
                LintCode::LiftUnsupportedLoop,
                format!("loop condition tests `{cond_var}` but the loop declares `{var}`"),
                format!("{cond_span}"),
                String::new(),
            ));
        }
        let le = match self.bump() {
            Some(Token { tok: Tok::Lt, .. }) => false,
            Some(Token { tok: Tok::Le, .. }) => true,
            Some(t) => {
                return Err(LiftError::new(
                    LintCode::LiftUnsupportedLoop,
                    format!(
                        "loop condition must use `<` or `<=`, found {}",
                        t.tok.describe()
                    ),
                    format!("{}", t.span),
                    String::new(),
                ))
            }
            None => return Err(self.syntax("expected loop condition, found end of input")),
        };
        let bound = self.expect_int("loop upper bound")?;
        let hi = if le { bound + 1 } else { bound };
        self.expect(&Tok::Semi)?;
        // Increment: `var++` | `++var` | `var += 1` | `var = var + 1`.
        let ok = match self.bump() {
            Some(Token {
                tok: Tok::Ident(v), ..
            }) if v == var => match self.bump().map(|t| t.tok) {
                Some(Tok::PlusPlus) => true,
                Some(Tok::PlusAssign) => matches!(self.bump().map(|t| t.tok), Some(Tok::Int(1))),
                Some(Tok::Assign) => {
                    matches!(self.bump().map(|t| t.tok), Some(Tok::Ident(v2)) if v2 == var)
                        && self.bump().map(|t| t.tok) == Some(Tok::Plus)
                        && self.bump().map(|t| t.tok) == Some(Tok::Int(1))
                }
                _ => false,
            },
            Some(Token {
                tok: Tok::PlusPlus, ..
            }) => matches!(self.bump().map(|t| t.tok), Some(Tok::Ident(v)) if v == var),
            _ => false,
        };
        if !ok {
            return Err(self.err(
                LintCode::LiftUnsupportedLoop,
                format!("loop over `{var}` must step by exactly 1 (`{var}++`)"),
                "non-unit strides cannot be summarized as a dense stencil sweep",
            ));
        }
        self.expect(&Tok::RParen)?;
        Ok(ForLoop { var, lo, hi, span })
    }

    /// Parse the nest: one or more `for` loops around a single store.
    fn nest(&mut self, loops: &mut Vec<ForLoop>) -> PResult<Store> {
        loops.push(self.for_header()?);
        let braced = self.peek() == Some(&Tok::LBrace);
        if braced {
            self.bump();
        }
        let store = if self.peek() == Some(&Tok::Ident("for".into())) {
            self.nest(loops)?
        } else {
            let s = self.store()?;
            if braced && self.peek() != Some(&Tok::RBrace) {
                return Err(self.err(
                    LintCode::LiftUnsupportedConstruct,
                    "loop body holds more than the single supported assignment",
                    "a liftable nest updates exactly one array point per iteration",
                ));
            }
            s
        };
        if braced {
            self.expect(&Tok::RBrace)?;
        }
        Ok(store)
    }

    fn store(&mut self) -> PResult<Store> {
        let target = self.access()?;
        let span = target.span;
        if target.indices.is_empty() {
            return Err(self.err(
                LintCode::LiftUnsupportedConstruct,
                format!("store to scalar `{}` is not a stencil update", target.array),
                "",
            ));
        }
        match self.bump() {
            Some(Token {
                tok: Tok::Assign, ..
            }) => {}
            Some(t) => {
                return Err(LiftError::new(
                    LintCode::LiftUnsupportedConstruct,
                    format!(
                        "only plain `=` assignment is supported, found {}",
                        t.tok.describe()
                    ),
                    format!("{}", t.span),
                    String::new(),
                ))
            }
            None => return Err(self.syntax("expected `=`, found end of input")),
        }
        let rhs = self.expr()?;
        self.expect(&Tok::Semi)?;
        Ok(Store { target, rhs, span })
    }

    // ---- expressions --------------------------------------------------

    fn access(&mut self) -> PResult<RawAccess> {
        let (array, span) = self.expect_ident("array name")?;
        let mut indices = Vec::new();
        while self.peek() == Some(&Tok::LBracket) {
            self.enter()?;
            self.bump();
            let ix = self.iexpr()?;
            self.expect(&Tok::RBracket)?;
            self.leave();
            indices.push(ix);
        }
        Ok(RawAccess {
            array,
            indices,
            span,
        })
    }

    fn expr(&mut self) -> PResult<CExpr> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    lhs = CExpr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                Some(Tok::Minus) => {
                    self.bump();
                    lhs = CExpr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> PResult<CExpr> {
        let mut lhs = self.factor()?;
        while self.peek() == Some(&Tok::Star) {
            self.bump();
            lhs = CExpr::Mul(Box::new(lhs), Box::new(self.factor()?));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> PResult<CExpr> {
        match self.peek() {
            Some(Tok::Float(_)) | Some(Tok::Int(_)) => {
                let t = self.bump().expect("peeked");
                Ok(match t.tok {
                    Tok::Float(v) => CExpr::Num(v),
                    Tok::Int(v) => CExpr::Num(v as f64),
                    _ => unreachable!(),
                })
            }
            Some(Tok::Minus) => {
                self.bump();
                Ok(CExpr::Neg(Box::new(self.factor()?)))
            }
            Some(Tok::LParen) => {
                self.enter()?;
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.leave();
                Ok(e)
            }
            Some(Tok::Ident(_)) => Ok(CExpr::Access(self.access()?)),
            Some(t) => Err(self.syntax(format!("expected an expression, found {}", t.describe()))),
            None => Err(self.syntax("expected an expression, found end of input")),
        }
    }

    fn iexpr(&mut self) -> PResult<IExpr> {
        let mut lhs = self.iterm()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    lhs = IExpr::Add(Box::new(lhs), Box::new(self.iterm()?));
                }
                Some(Tok::Minus) => {
                    self.bump();
                    lhs = IExpr::Sub(Box::new(lhs), Box::new(self.iterm()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn iterm(&mut self) -> PResult<IExpr> {
        let mut lhs = self.ifactor()?;
        while self.peek() == Some(&Tok::Star) {
            self.bump();
            lhs = IExpr::Mul(Box::new(lhs), Box::new(self.ifactor()?));
        }
        Ok(lhs)
    }

    fn ifactor(&mut self) -> PResult<IExpr> {
        match self.bump() {
            Some(Token {
                tok: Tok::Int(v), ..
            }) => Ok(IExpr::Num(v)),
            Some(Token {
                tok: Tok::Ident(s),
                span,
            }) => Ok(IExpr::Var(s, span)),
            Some(Token {
                tok: Tok::Minus, ..
            }) => Ok(IExpr::Neg(Box::new(self.ifactor()?))),
            Some(Token {
                tok: Tok::LParen, ..
            }) => {
                self.enter()?;
                let e = self.iexpr()?;
                self.expect(&Tok::RParen)?;
                self.leave();
                Ok(e)
            }
            Some(t) => Err(LiftError::new(
                LintCode::LiftSyntaxError,
                format!("expected an index expression, found {}", t.tok.describe()),
                format!("{}", t.span),
                String::new(),
            )),
            None => Err(self.syntax("expected an index expression, found end of input")),
        }
    }

    // ---- file ---------------------------------------------------------

    fn file(&mut self) -> PResult<CFile> {
        let mut decls = Vec::new();
        let mut name = None;
        loop {
            match self.peek() {
                Some(Tok::Ident(s)) if s == "double" => {
                    self.bump();
                    decls.push(self.decl_body()?);
                    self.expect(&Tok::Semi)?;
                }
                Some(Tok::Ident(s)) if s == "void" => {
                    self.bump();
                    let (fname, _) = self.expect_ident("function name")?;
                    name = Some(fname);
                    self.expect(&Tok::LParen)?;
                    // Parameter list: empty, `void`, or array parameters.
                    if self.peek() == Some(&Tok::Ident("void".into())) {
                        self.bump();
                    }
                    while self.peek() != Some(&Tok::RParen) {
                        self.expect(&Tok::Ident("double".into()))?;
                        decls.push(self.decl_body()?);
                        if self.peek() == Some(&Tok::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    self.expect(&Tok::LBrace)?;
                    let mut loops = Vec::new();
                    let store = self.nest(&mut loops)?;
                    self.expect(&Tok::RBrace)?;
                    if self.pos != self.toks.len() {
                        return Err(self.err(
                            LintCode::LiftUnsupportedConstruct,
                            "only a single kernel function per file is supported",
                            "",
                        ));
                    }
                    return Ok(CFile {
                        name,
                        decls,
                        loops,
                        store,
                    });
                }
                Some(Tok::Ident(s)) if s == "for" => {
                    let mut loops = Vec::new();
                    let store = self.nest(&mut loops)?;
                    if self.pos != self.toks.len() {
                        return Err(self.err(
                            LintCode::LiftUnsupportedConstruct,
                            "trailing input after the loop nest",
                            "",
                        ));
                    }
                    return Ok(CFile {
                        name,
                        decls,
                        loops,
                        store,
                    });
                }
                Some(t) => {
                    let d = t.describe();
                    return Err(self.syntax(format!(
                        "expected a declaration, function, or `for` nest, found {d}"
                    )));
                }
                None => {
                    return Err(self.syntax(
                        "no loop nest found (the file must contain a `for` nest or a \
                         `void` kernel function)",
                    ))
                }
            }
        }
    }
}

/// Parse the supported C subset; never panics on any input.
pub fn parse(src: &str) -> Result<CFile, LiftError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    p.file()
}

#[cfg(test)]
mod tests {
    use super::*;

    const JACOBI: &str = "
        double A[10][10];
        double B[10][10];
        void sweep() {
          for (int i = 1; i < 9; i++)
            for (int j = 1; j < 9; j++)
              B[i][j] = 0.25*A[i-1][j] + 0.5*A[i][j] + 0.25*A[i+1][j];
        }";

    #[test]
    fn parses_a_wrapped_jacobi_nest() {
        let f = parse(JACOBI).unwrap();
        assert_eq!(f.name.as_deref(), Some("sweep"));
        assert_eq!(f.decls.len(), 2);
        assert_eq!(f.loops.len(), 2);
        assert_eq!(f.loops[0].var, "i");
        assert_eq!(f.loops[0].lo, 1);
        assert_eq!(f.loops[0].hi, 9);
        assert_eq!(f.store.target.array, "B");
    }

    #[test]
    fn parses_params_bare_nests_and_le_bounds() {
        let f = parse(
            "void k(double A[8], double B[8]) {
               for (int i = 1; i <= 6; i++) { B[i] = 1.0*A[i]; }
             }",
        )
        .unwrap();
        assert_eq!(f.decls.len(), 2);
        assert_eq!(f.loops[0].hi, 7, "<= bound is inclusive");

        let bare = parse("for (i = 0; i < 4; ++i) A[i] = 2*A[i];").unwrap();
        assert!(bare.name.is_none());
        assert!(bare.decls.is_empty());
    }

    #[test]
    fn rejects_multi_statement_bodies_and_bad_steps() {
        let two = "for (int i = 1; i < 9; i++) { A[i] = A[i]; A[i] = A[i]; }";
        assert_eq!(
            parse(two).unwrap_err().code,
            LintCode::LiftUnsupportedConstruct
        );
        let stride = "for (int i = 1; i < 9; i += 2) A[i] = A[i];";
        assert_eq!(
            parse(stride).unwrap_err().code,
            LintCode::LiftUnsupportedLoop
        );
        let sym = "for (int i = 1; i < N; i++) A[i] = A[i];";
        assert_eq!(parse(sym).unwrap_err().code, LintCode::LiftUnsupportedLoop);
    }

    #[test]
    fn caps_paren_nesting_with_l507() {
        let deep = format!(
            "for (int i = 1; i < 9; i++) A[i] = {}1.0{};",
            "(".repeat(MAX_EXPR_DEPTH + 1),
            ")".repeat(MAX_EXPR_DEPTH + 1)
        );
        assert_eq!(parse(&deep).unwrap_err().code, LintCode::LiftNestTooDeep);
        // One level under the cap parses fine.
        let ok = format!(
            "for (int i = 1; i < 9; i++) A[i] = {}1.0{}*A[i];",
            "(".repeat(MAX_EXPR_DEPTH - 2),
            ")".repeat(MAX_EXPR_DEPTH - 2)
        );
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let err = parse("double A[4];\nfor (int i = 1; i < 3; i++) A[i] = ;").unwrap_err();
        assert_eq!(err.code, LintCode::LiftSyntaxError);
        assert!(err.context.contains("line 2"), "{}", err.context);
    }
}
