//! Lexer for the supported C subset (DESIGN.md §16.1).
//!
//! Produces a flat token stream with line/column spans so every later
//! pass can point diagnostics at the offending source position. The
//! lexer is total over arbitrary input: any byte sequence either lexes
//! or returns a typed `MSC-L501` error — it never panics (the fuzz
//! suite in `tests/parse_prop.rs` holds it to that).

use crate::LiftError;
use msc_lint::LintCode;

/// A source position (1-based, like rustc and every C compiler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {} col {}", self.line, self.col)
    }
}

/// One lexical token of the subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`for`, `int`, `double`, `void` stay idents;
    /// the parser gives them meaning by position).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Assign,
    Plus,
    Minus,
    Star,
    Lt,
    Le,
    /// `++` (postfix or prefix increment).
    PlusPlus,
    /// `+=`.
    PlusAssign,
}

impl Tok {
    /// Short human name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(v) => format!("`{v}`"),
            Tok::Float(v) => format!("`{v}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Assign => "`=`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::PlusPlus => "`++`".into(),
            Tok::PlusAssign => "`+=`".into(),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn err(&self, msg: String) -> LiftError {
        LiftError::new(
            LintCode::LiftSyntaxError,
            msg,
            format!("{}", self.span()),
            String::new(),
        )
    }
}

/// Lex `src` into tokens, or return an `MSC-L501` diagnostic.
pub fn lex(src: &str) -> Result<Vec<Token>, LiftError> {
    let mut lx = Lexer {
        chars: src.chars().peekable(),
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and both comment styles.
        match lx.peek() {
            None => break,
            Some(c) if c.is_whitespace() => {
                lx.bump();
                continue;
            }
            Some('/') => {
                let span = lx.span();
                lx.bump();
                match lx.peek() {
                    Some('/') => {
                        while let Some(c) = lx.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                        continue;
                    }
                    Some('*') => {
                        lx.bump();
                        let mut closed = false;
                        while let Some(c) = lx.bump() {
                            if c == '*' && lx.peek() == Some('/') {
                                lx.bump();
                                closed = true;
                                break;
                            }
                        }
                        if !closed {
                            return Err(LiftError::new(
                                LintCode::LiftSyntaxError,
                                "unterminated block comment".into(),
                                format!("{span}"),
                                String::new(),
                            ));
                        }
                        continue;
                    }
                    // Division is outside the subset: every kernel
                    // coefficient must be a literal (DESIGN.md §16.1).
                    _ => {
                        return Err(LiftError::new(
                            LintCode::LiftSyntaxError,
                            "`/` is not in the supported subset (write the \
                             coefficient as a literal)"
                                .into(),
                            format!("{span}"),
                            String::new(),
                        ))
                    }
                }
            }
            Some(_) => {}
        }
        let span = lx.span();
        let c = lx.bump().expect("peeked");
        let tok = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            ';' => Tok::Semi,
            ',' => Tok::Comma,
            '*' => Tok::Star,
            '-' => Tok::Minus,
            '=' => Tok::Assign,
            '<' => {
                if lx.peek() == Some('=') {
                    lx.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            '+' => match lx.peek() {
                Some('+') => {
                    lx.bump();
                    Tok::PlusPlus
                }
                Some('=') => {
                    lx.bump();
                    Tok::PlusAssign
                }
                _ => Tok::Plus,
            },
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                s.push(c);
                while let Some(n) = lx.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' {
                        s.push(n);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                Tok::Ident(s)
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                s.push(c);
                let mut is_float = false;
                while let Some(n) = lx.peek() {
                    if n.is_ascii_digit() {
                        s.push(n);
                        lx.bump();
                    } else if n == '.' && !is_float {
                        is_float = true;
                        s.push(n);
                        lx.bump();
                    } else if (n == 'e' || n == 'E') && !s.contains('e') && !s.contains('E') {
                        is_float = true;
                        s.push(n);
                        lx.bump();
                        if let Some(sgn) = lx.peek() {
                            if sgn == '+' || sgn == '-' {
                                s.push(sgn);
                                lx.bump();
                            }
                        }
                    } else {
                        break;
                    }
                }
                if is_float {
                    match s.parse::<f64>() {
                        Ok(v) if v.is_finite() => Tok::Float(v),
                        _ => return Err(lx.err(format!("malformed float literal `{s}`"))),
                    }
                } else {
                    match s.parse::<i64>() {
                        Ok(v) => Tok::Int(v),
                        Err(_) => return Err(lx.err(format!("integer literal `{s}` overflows"))),
                    }
                }
            }
            other => {
                return Err(LiftError::new(
                    LintCode::LiftSyntaxError,
                    format!("unexpected character `{}`", other.escape_default()),
                    format!("{span}"),
                    String::new(),
                ))
            }
        };
        out.push(Token { tok, span });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_loop_header_with_spans() {
        let toks = lex("for (int i = 1; i < 33; i++)").unwrap();
        assert_eq!(toks[0].tok, Tok::Ident("for".into()));
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert!(toks.iter().any(|t| t.tok == Tok::PlusPlus));
        assert!(toks.iter().any(|t| t.tok == Tok::Lt));
    }

    #[test]
    fn lexes_floats_ints_and_exponents() {
        let toks = lex("0.25 3 1e-3 2.5E2").unwrap();
        assert_eq!(toks[0].tok, Tok::Float(0.25));
        assert_eq!(toks[1].tok, Tok::Int(3));
        assert_eq!(toks[2].tok, Tok::Float(1e-3));
        assert_eq!(toks[3].tok, Tok::Float(2.5e2));
    }

    #[test]
    fn skips_both_comment_styles_and_tracks_lines() {
        let toks = lex("// a\n/* b\nc */ x").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].tok, Tok::Ident("x".into()));
        assert_eq!(toks[0].span.line, 3);
    }

    #[test]
    fn rejects_division_and_strays_with_l501() {
        for src in [
            "a / b",
            "a @ b",
            "\"str\"",
            "/* open",
            "999999999999999999999",
        ] {
            let err = lex(src).unwrap_err();
            assert_eq!(err.code, LintCode::LiftSyntaxError, "{src}");
        }
    }
}
